"""The paper's "Summary of major findings" (§1), verified end to end.

Four headline claims open the paper; this capstone benchmark measures
each one directly, independent of the per-figure reproductions:

1. Significant performance variation among serving frameworks of the
   same type for the same SPS.
2. No clear embedded/external dichotomy — external serving can beat
   embedded designs under some conditions.
3. Every examined configuration benefits from GPU acceleration, to
   varying extents.
4. A given serving framework performs very differently depending on the
   SPS it is integrated with.
"""

from bench_util import mean_latency, table, throughput

from repro.config import ExperimentConfig, WorkloadKind


def test_summary_of_major_findings(once, record_table):
    def run_all():
        measured = {}
        # Finding 1/2: all five tools on Flink (throughput) + a latency
        # comparison of external TF-Serving vs embedded DL4J.
        for tool in ("onnx", "savedmodel", "dl4j", "tf_serving", "torchserve"):
            measured[("tput", tool)] = throughput(
                ExperimentConfig(sps="flink", serving=tool, model="ffnn", duration=2.0),
                seeds=(0,),
            )[0]
        for tool in ("dl4j", "tf_serving"):
            measured[("lat128", tool)] = mean_latency(
                ExperimentConfig(
                    sps="flink", serving=tool, model="ffnn",
                    workload=WorkloadKind.CLOSED_LOOP, ir=1.0, bsz=128, duration=8.0,
                ),
                seeds=(0,),
            )[0]
        # Finding 3: GPU gains for one embedded and one external tool.
        for tool in ("onnx", "tf_serving"):
            for gpu in (False, True):
                measured[("gpu", tool, gpu)] = mean_latency(
                    ExperimentConfig(
                        sps="flink", serving=tool, model="resnet50",
                        workload=WorkloadKind.CLOSED_LOOP, ir=0.2, bsz=8,
                        duration=40.0, gpu=gpu,
                    ),
                    seeds=(0,),
                )[0]
        # Finding 4: the same tool (TF-Serving) across all four SPSs.
        for sps in ("flink", "kafka_streams", "spark_ss", "ray"):
            measured[("sps", sps)] = throughput(
                ExperimentConfig(
                    sps=sps, serving="tf_serving", model="ffnn",
                    duration=4.0 if sps == "spark_ss" else 2.0,
                ),
                seeds=(0,),
            )[0]
        return measured

    m = once(run_all)

    embedded = [m[("tput", t)] for t in ("onnx", "savedmodel", "dl4j")]
    external = [m[("tput", t)] for t in ("tf_serving", "torchserve")]
    gpu_gain = {
        tool: 1 - m[("gpu", tool, True)] / m[("gpu", tool, False)]
        for tool in ("onnx", "tf_serving")
    }
    sps_rates = {sps: m[("sps", sps)] for sps in ("flink", "kafka_streams", "spark_ss", "ray")}

    rows = [
        ("1. same-type variation",
         f"embedded spread {max(embedded) / min(embedded):.2f}x, "
         f"external spread {max(external) / min(external):.2f}x"),
        ("2. no dichotomy",
         f"external tf_serving {m[('lat128', 'tf_serving')] * 1e3:.0f} ms < "
         f"embedded dl4j {m[('lat128', 'dl4j')] * 1e3:.0f} ms at bsz=128"),
        ("3. GPU helps all",
         f"onnx -{gpu_gain['onnx']:.0%}, tf_serving -{gpu_gain['tf_serving']:.0%}"),
        ("4. SPS matters",
         "tf_serving events/s: "
         + ", ".join(f"{sps} {rate:,.0f}" for sps, rate in sps_rates.items())),
    ]
    record_table(
        "summary_findings",
        table(
            "The paper's summary of major findings, measured",
            ["finding", "measured evidence"],
            rows,
        ),
    )

    # 1. Same-type variation is significant (paper: DL4J 42.6% below
    #    SavedModel; TF-Serving ~3x TorchServe).
    assert max(embedded) / min(embedded) > 1.4
    assert max(external) / min(external) > 1.8
    # 2. An external tool beats an embedded one on latency.
    assert m[("lat128", "tf_serving")] < m[("lat128", "dl4j")]
    # 3. Every configuration gains from the GPU, to varying extents.
    assert all(gain > 0.05 for gain in gpu_gain.values())
    assert abs(gpu_gain["onnx"] - gpu_gain["tf_serving"]) > 0.02
    # 4. The same tool varies by an order of magnitude across SPSs.
    assert max(sps_rates.values()) / min(sps_rates.values()) > 10
