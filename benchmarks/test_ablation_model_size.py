"""Ablation: the model-size spectrum (takeaway 5, extended).

Table 4's takeaway 5 — "larger models narrow the performance gap among
serving tools" — is shown in the paper with two endpoints (FFNN,
ResNet50). Adding MobileNetV1 (one of Fig. 2's candidate classifiers,
~1.1 GFLOPs) fills in the middle of the spectrum: the embedded/external
throughput ratio shrinks monotonically as compute per point grows and
fixed per-request overheads stop mattering.
"""

from bench_util import table, throughput

from repro.config import ExperimentConfig
from repro.nn.zoo import model_info

MODELS = ["ffnn", "mobilenet", "resnet50"]
DURATIONS = {"ffnn": 3.0, "mobilenet": 10.0, "resnet50": 40.0}


def test_ablation_model_size_spectrum(once, record_table):
    def run_all():
        measured = {}
        for model in MODELS:
            for tool in ("onnx", "tf_serving"):
                config = ExperimentConfig(
                    sps="flink",
                    serving=tool,
                    model=model,
                    duration=DURATIONS[model],
                )
                measured[(model, tool)] = throughput(config, seeds=(0,))
        return measured

    measured = once(run_all)
    rows = []
    gaps = {}
    for model in MODELS:
        onnx = measured[(model, "onnx")][0]
        tfs = measured[(model, "tf_serving")][0]
        gaps[model] = onnx / tfs
        info = model_info(model)
        rows.append(
            (
                model,
                f"{info.flops_per_point / 1e9:.3f}",
                f"{onnx:,.2f}",
                f"{tfs:,.2f}",
                f"{gaps[model]:.2f}x",
            )
        )
    record_table(
        "ablation_model_size",
        table(
            "Ablation: embedded/external gap across the model-size spectrum "
            "(Flink, bsz=1, mp=1)",
            ["model", "GFLOPs/point", "onnx (e)", "tf_serving (x)", "gap"],
            rows,
        ),
    )

    # Takeaway 5, now as a monotone trend over three sizes.
    assert gaps["ffnn"] > gaps["mobilenet"] > gaps["resnet50"]
    assert gaps["ffnn"] > 1.8
    assert gaps["resnet50"] < 1.35
