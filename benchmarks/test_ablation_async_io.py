"""Ablation: Flink Async I/O for external serving.

The paper deliberately ran all external calls as *blocking* (§4.3) so no
SPS got an unfair advantage — and notes Flink's Async I/O operator exists.
This ablation quantifies what that fairness decision left on the table:
with an in-flight window, a single Flink task saturates the external
server instead of idling on round trips, recovering most of the gap to
Spark's micro-batching (§7.1).
"""

from bench_util import table, throughput

from repro.config import ExperimentConfig

WINDOWS = [0, 2, 4, 16]


def test_ablation_flink_async_io(once, record_table):
    def run_all():
        measured = {}
        for window in WINDOWS:
            config = ExperimentConfig(
                sps="flink",
                serving="tf_serving",
                model="ffnn",
                duration=2.0,
                async_io=window,
                server_workers=16,
            )
            measured[window] = throughput(config, seeds=(0,))
        return measured

    measured = once(run_all)
    baseline = measured[0][0]
    rows = [
        (window if window else "blocking (paper)", f"{mean:,.0f}",
         f"{mean / baseline:.2f}x")
        for window, (mean, __) in measured.items()
    ]
    record_table(
        "ablation_async_io",
        table(
            "Ablation: Flink async I/O window vs blocking calls "
            "(TF-Serving, mp=1, 16 server workers; events/s)",
            ["in-flight window", "throughput", "vs blocking"],
            rows,
        ),
    )

    # Async I/O multiplies single-task external throughput several times...
    assert measured[4][0] > 3.0 * baseline
    # ...but saturates once the window covers the round-trip/service gap.
    assert measured[16][0] < 1.3 * measured[4][0]


def test_ablation_async_io_rejected_for_embedded():
    import pytest

    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        ExperimentConfig(sps="flink", serving="onnx", async_io=4)
    with pytest.raises(ConfigError):
        ExperimentConfig(sps="kafka_streams", serving="tf_serving", async_io=4)
