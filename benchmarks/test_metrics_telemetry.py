"""Whole-system telemetry profile: one metrics-on run per engine.

Not a paper figure — a perf-regression harness. Each engine runs briefly
with the scraper on; the scraped series compile into ``BENCH_metrics.json``
at the repository root. Diffing that file across revisions surfaces
regressions the headline numbers hide: a queue whose peak doubled, lag
that stopped draining, an autoscaler that started flapping.
"""

from bench_util import (
    load_bench_baseline,
    record_bench_metrics,
    table,
    telemetry_summary,
)

from repro.config import ExperimentConfig
from repro.core.runner import ExperimentRunner
from repro.metrics import MetricsOptions

ENGINES = ["flink", "kafka_streams", "spark_ss", "ray"]


def test_metrics_telemetry(once, record_table):
    def run_all():
        entries = {}
        for sps in ENGINES:
            config = ExperimentConfig(
                sps=sps, serving="onnx", model="ffnn", duration=3.0
            )
            result = ExperimentRunner(config).run(
                seed=0, metrics=MetricsOptions(scrape_interval=0.05)
            )
            entries[config.label()] = telemetry_summary(result)
        return entries

    # Baseline comes through the results store when CRAYFISH_STORE is
    # set (latest recorded bench rows), else from BENCH_metrics.json —
    # read *before* recording so we compare against the prior revision.
    baseline = load_bench_baseline()
    entries = once(run_all)
    record_bench_metrics(entries)

    drift_rows = []
    for label, summary in entries.items():
        prior = baseline.get(label)
        if not prior or not prior.get("throughput"):
            drift_rows.append((label, "-", "new entry"))
            continue
        change = (
            summary["throughput"] - prior["throughput"]
        ) / prior["throughput"]
        drift_rows.append(
            (
                label,
                f"{change * 100:+.1f}%",
                "ok" if abs(change) <= 0.15 else "DRIFT",
            )
        )
    record_table(
        "metrics_telemetry_drift",
        table(
            "Throughput drift vs recorded baseline",
            ["config", "throughput change", "verdict"],
            drift_rows,
        ),
    )

    rows = []
    for label, summary in entries.items():
        lag = summary["series"].get(
            'crayfish_broker_consumer_lag{topic="crayfish-input"}', {}
        )
        rows.append(
            (
                label,
                f"{summary['throughput']:,.0f}",
                f"{summary['latency_mean'] * 1e3:.1f}",
                f"{lag.get('peak', float('nan')):.0f}",
                f"{lag.get('last', float('nan')):.0f}",
            )
        )
    record_table(
        "metrics_telemetry",
        table(
            "Telemetry profile (BENCH_metrics.json regression baseline)",
            ["config", "events/s", "mean ms", "peak lag", "final lag"],
            rows,
        ),
    )

    # Every layer must export at least one series for every engine.
    for label, summary in entries.items():
        names = set(summary["series"])
        assert any(n.startswith("crayfish_broker_consumer_lag") for n in names), label
        assert any(n.startswith("crayfish_engine_input_queue") for n in names), label
        assert "crayfish_serving_requests" in names, label
        assert "crayfish_pipeline_batches_completed" in names, label
        # Scraped series actually carry samples.
        assert all(s["samples"] > 0 for s in summary["series"].values()), label
