"""Figure 11: vertical scalability across SPSs (FFNN, bsz=1).

Paper shapes: Spark SS sits at a high flat ceiling (~23k events/s) that
added parallelism does not move; Kafka Streams scales steadily to ~23k
@ mp=16 (beating Flink's ~13k / 9.8k); Spark + TF-Serving saturates the
server where Kafka Streams @ mp=2 is ~7.2x slower (10.2k vs ~1.4k); Ray
peaks near 1.2k (node scheduler) and its external path near 455 events/s
(single Ray Serve HTTP proxy).
"""

from bench_util import table, throughput

from repro.config import ExperimentConfig
from repro.core.ascii_chart import render_chart

SPS = ["flink", "kafka_streams", "spark_ss", "ray"]
TOOLS = ["onnx", "tf_serving"]
PARALLELISM = [1, 2, 4, 8, 16]


def test_fig11_sps_scaling(once, record_table):
    def run_all():
        measured = {}
        for sps in SPS:
            for tool in TOOLS:
                for mp in PARALLELISM:
                    duration = 3.0 if sps == "spark_ss" else 2.0
                    config = ExperimentConfig(
                        sps=sps, serving=tool, model="ffnn", mp=mp, duration=duration
                    )
                    measured[(sps, tool, mp)] = throughput(config, seeds=(0,))
        return measured

    measured = once(run_all)
    rows = []
    for sps in SPS:
        for tool in TOOLS:
            series = " ".join(
                f"{measured[(sps, tool, mp)][0]:,.0f}" for mp in PARALLELISM
            )
            rows.append((sps, tool, series))
    chart = render_chart(
        {
            f"{sps}/{tool}": [
                (mp, measured[(sps, tool, mp)][0]) for mp in PARALLELISM
            ]
            for sps in SPS
            for tool in TOOLS
        },
        x_label="mp",
        log_y=True,
        height=20,
    )
    record_table(
        "fig11",
        table(
            "Fig. 11: SPS scaling (events/s at mp=1,2,4,8,16)",
            ["sps", "tool", "measured series"],
            rows,
        )
        + "\n\n"
        + chart,
    )

    def rate(sps, tool, mp):
        return measured[(sps, tool, mp)][0]

    # Shape 1: Spark's ceiling is flat at high parallelism (mp 8 -> 16
    # buys < 25% where the others still near-double) and is the highest
    # of all engines.
    assert rate("spark_ss", "onnx", 16) < 1.25 * rate("spark_ss", "onnx", 8)
    assert rate("flink", "onnx", 16) > 1.45 * rate("flink", "onnx", 8)
    spark_peak = max(rate("spark_ss", "onnx", mp) for mp in PARALLELISM)
    ks_peak = max(rate("kafka_streams", "onnx", mp) for mp in PARALLELISM)
    flink_peak = max(rate("flink", "onnx", mp) for mp in PARALLELISM)
    assert spark_peak >= 0.95 * ks_peak > flink_peak
    # Shape 2: Spark + TF-Serving saturates the external server at mp=2
    # far beyond Kafka Streams (paper: 7.2x).
    ratio = rate("spark_ss", "tf_serving", 2) / rate("kafka_streams", "tf_serving", 2)
    assert ratio > 4.0
    # Shape 3: Kafka Streams scales consistently and beats Flink at 16.
    for lo, hi in zip(PARALLELISM, PARALLELISM[1:]):
        assert rate("kafka_streams", "onnx", hi) > rate("kafka_streams", "onnx", lo)
    assert rate("kafka_streams", "onnx", 16) > rate("flink", "onnx", 16)
    # Shape 4: Ray plateaus ~1.2k embedded; its external path is pinned
    # near 455 events/s by the single HTTP proxy.
    assert 1_000 < rate("ray", "onnx", 16) < 1_500
    assert rate("ray", "tf_serving", 16) < 500
    assert rate("ray", "tf_serving", 16) < 1.1 * rate("ray", "tf_serving", 8)
