"""Kernel microbenchmark: events/sec of the calendar-queue scheduler.

Not a paper figure — this pins the simulation kernel itself.  The
committed trajectory lives in ``BENCH_kernel.json`` (regenerate with
``crayfish kernel-bench --update-baseline``); the numbers here run at
reduced scale so the suite stays fast.
"""

from repro.simul.bench import (
    WORKLOADS,
    format_kernel_bench,
    run_kernel_bench,
)


def test_kernel_bench_entry_structure(record_table):
    entries = run_kernel_bench(scale=0.1, repeats=2)
    assert set(entries) == set(WORKLOADS)
    for workload, entry in entries.items():
        assert entry["events"] > 0
        assert entry["baseline"]["scheduler"] == "heap"
        assert entry["current"]["scheduler"] == "calendar"
        for side in ("baseline", "current"):
            assert entry[side]["seconds"] > 0
            assert entry[side]["events_per_sec"] > 0
        assert entry["speedup"] > 0
    record_table("kernel_bench", format_kernel_bench(entries))


def test_scalability_workload_clears_speedup_floor():
    # The acceptance floor is 5x at full scale; at 0.5 scale under a
    # loaded CI host we assert a conservative 3x so the check stays
    # robust while still catching a vectorized-path regression (the
    # full-scale measurement on a quiet host is 7-9x).
    entries = run_kernel_bench(workloads=("scalability",), scale=0.5, repeats=3)
    assert entries["scalability"]["speedup"] >= 3.0


def test_scalar_workloads_do_not_regress():
    # churn/handoff exercise the slab + now-lane paths; the calendar
    # scheduler must stay within noise of the old heap kernel on them.
    entries = run_kernel_bench(workloads=("churn", "handoff"), scale=0.5, repeats=3)
    for workload in ("churn", "handoff"):
        assert entries[workload]["speedup"] >= 0.7
