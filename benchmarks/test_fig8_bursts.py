"""Figure 8: periodic-burst recovery, ONNX vs TF-Serving on Flink.

The paper drives 30 s bursts at 110% of sustainable throughput separated
by 120 s at 70%, and measures the time from burst start until latency
re-stabilizes. Paper: best recovery ONNX 41.37 s / TF-Serving 34.16 s;
averages ONNX 46.52 s / TF-Serving 56.15 s — i.e. TF-Serving *can*
recover faster but varies a lot between bursts, ONNX is stable.

Time scaling: we shrink the cycle 10x (bd=3 s, tbb=12 s) to keep the
simulation tractable; recovery times below are therefore in scaled
seconds (multiply by 10 to compare with the paper's absolute numbers).
"""

import statistics

from bench_util import table

from repro.config import ExperimentConfig
from repro.core.ascii_chart import render_chart
from repro.core.scenarios import measure_sustainable_throughput, run_burst_scenario

TOOLS = ["onnx", "tf_serving"]
PAPER = {  # seconds, unscaled
    "onnx": {"best": 41.37, "avg": 46.52},
    "tf_serving": {"best": 34.16, "avg": 56.15},
}
SCALE = 10.0


def test_fig8_burst_recovery(once, record_table):
    def run_all():
        outcome = {}
        timelines = {}
        for tool in TOOLS:
            config = ExperimentConfig(
                sps="flink",
                serving=tool,
                model="ffnn",
                bd=3.0,
                tbb=12.0,
                duration=2.0,
            )
            st = measure_sustainable_throughput(config, seeds=(0,)).mean
            recoveries = []
            # 4 runs x 3 bursts: the scaled-down bursts are 10x shorter
            # than the paper's, so we sample more of them per tool.
            for seed in (0, 1, 2, 3):
                scenario = run_burst_scenario(config, st, bursts=3, seed=seed)
                recoveries.extend(scenario.recovery_times)
                if seed == 0:
                    # Keep one latency timeline per tool for the chart
                    # (downsampled; Fig. 8 plots exactly this signal).
                    series = scenario.result.series
                    timelines[tool] = series[:: max(len(series) // 300, 1)]
            outcome[tool] = recoveries
        return outcome, timelines

    outcome, timelines = once(run_all)
    chart = render_chart(
        {tool: list(points) for tool, points in timelines.items()},
        title="latency over time (3 bursts; scaled seconds)",
        x_label="time (s)",
        log_y=True,
        height=14,
    )
    rows = []
    for tool in TOOLS:
        recoveries = [SCALE * r for r in outcome[tool]]
        rows.append(
            (
                tool,
                f"{PAPER[tool]['best']:.1f}",
                f"{min(recoveries):.1f}",
                f"{PAPER[tool]['avg']:.1f}",
                f"{statistics.fmean(recoveries):.1f}",
                f"{statistics.pstdev(recoveries):.2f}",
            )
        )
    record_table(
        "fig8",
        table(
            "Fig. 8: burst recovery (seconds, rescaled 10x to paper time)",
            ["tool", "paper best", "measured best", "paper avg", "measured avg", "std"],
            rows,
        )
        + "\n\n"
        + chart,
    )

    onnx, tfs = outcome["onnx"], outcome["tf_serving"]
    assert len(onnx) >= 10 and len(tfs) >= 10  # recovered from ~all bursts
    # Shape 1 (takeaway 6): TF-Serving's fastest recovery beats ONNX's
    # fastest (paper: 34.16 s vs 41.37 s).
    assert min(tfs) < min(onnx)
    # Shape 2 (takeaway 6): TF-Serving varies far more between bursts.
    assert statistics.pstdev(tfs) > 2.0 * statistics.pstdev(onnx)
    # Shape 3: recovery lands in the right range — longer than the burst
    # itself, well within the inter-burst window (paper: 34-56 s vs
    # bd=30 s, tbb=120 s).
    for recovery in onnx + tfs:
        assert 3.0 <= recovery <= 3.0 + 12.0
