"""Table 2: pre-trained model characteristics.

Paper values: FFNN — 28x28 input, 10x1 output, 28K params; artifacts
ONNX 113 KB / SavedModel 508 KB / Torch 115 KB / H5 133 KB.
ResNet50 — 224x224x3 input, 1000x1 output, 23M params; artifacts
ONNX 97 MB / SavedModel 101 MB / Torch 98 MB / H5 98 MB.
"""

from bench_util import table

from repro.nn.formats import FORMATS, serialized_size
from repro.nn.zoo import get_model, model_info

PAPER_FFNN_KB = {"onnx": 113, "savedmodel": 508, "torch": 115, "h5": 133}
PAPER_RESNET_MB = {"onnx": 97, "savedmodel": 101, "torch": 98, "h5": 98}


def test_table2_model_characteristics(once, record_table, tmp_path):
    def build_and_measure():
        ffnn = get_model("ffnn", seed=0)
        sizes = {
            fmt: serialized_size(ffnn, fmt, str(tmp_path)) for fmt in FORMATS
        }
        return sizes

    ffnn_sizes = once(build_and_measure)
    ffnn_info = model_info("ffnn")
    resnet_info = model_info("resnet50")

    rows = [
        ("Input Size", "28 x 28", f"{ffnn_info.input_shape[0]} x {ffnn_info.input_shape[1]}",
         "224 x 224 x 3", "x".join(str(d) for d in resnet_info.input_shape)),
        ("Output Size", "10x1", f"{ffnn_info.output_values}x1",
         "1000x1", f"{resnet_info.output_values}x1"),
        ("Parameters", "28 K", f"{ffnn_info.param_count / 1e3:.1f} K",
         "23 M", f"{resnet_info.param_count / 1e6:.1f} M"),
    ]
    for fmt, paper_kb in PAPER_FFNN_KB.items():
        measured_kb = ffnn_sizes[fmt] / 1024
        # ResNet artifact sizes follow from params + per-format envelope;
        # predicted from weight bytes to avoid writing ~400 MB in CI.
        rows.append(
            (f"Size {fmt}", f"{paper_kb} KB", f"{measured_kb:.0f} KB",
             f"{PAPER_RESNET_MB[fmt]} MB", f"~{resnet_info.param_count * 4 / 1e6:.0f} MB")
        )
    record_table(
        "table2",
        table(
            "Table 2: model characteristics (paper vs measured)",
            ["metric", "FFNN paper", "FFNN measured", "ResNet50 paper", "ResNet50 measured"],
            rows,
        ),
    )

    # Shape assertions: parameter counts and the artifact-size ordering.
    assert 27_000 <= ffnn_info.param_count <= 29_000
    assert 23e6 <= resnet_info.param_count <= 26e6
    assert ffnn_sizes["onnx"] <= ffnn_sizes["torch"] < ffnn_sizes["h5"] < ffnn_sizes["savedmodel"]
    for fmt, paper_kb in PAPER_FFNN_KB.items():
        assert 0.5 * paper_kb <= ffnn_sizes[fmt] / 1024 <= 1.5 * paper_kb, fmt
