"""Ablation: server-side adaptive batching (Clipper-style, related work).

The paper's servers answer one request per call; Clipper/InferLine-style
systems coalesce queued requests into one engine invocation. For
TorchServe — whose per-request Python handler is the costliest in the
study (Table 4) — coalescing multiplies saturated throughput several
times, while idle-pipeline latency pays up to ``max_delay`` of waiting.
"""

from bench_util import mean_latency, table, throughput

from repro.config import ExperimentConfig, WorkloadKind

POLICY = (8, 0.005)  # up to 8 requests or 5 ms


def test_ablation_adaptive_batching(once, record_table):
    def run_all():
        loaded = ExperimentConfig(
            sps="flink",
            serving="torchserve",
            model="ffnn",
            duration=2.0,
            mp=4,
            async_io=32,
            server_workers=4,
        )
        idle = ExperimentConfig(
            sps="flink",
            serving="torchserve",
            model="ffnn",
            workload=WorkloadKind.CLOSED_LOOP,
            ir=5.0,
            duration=4.0,
        )
        return {
            ("throughput", False): throughput(loaded, seeds=(0,))[0],
            ("throughput", True): throughput(
                loaded.replace(adaptive_batching=POLICY), seeds=(0,)
            )[0],
            ("latency", False): mean_latency(idle, seeds=(0,))[0],
            ("latency", True): mean_latency(
                idle.replace(adaptive_batching=POLICY), seeds=(0,)
            )[0],
        }

    measured = once(run_all)
    rows = [
        (
            "saturated throughput (ev/s)",
            f"{measured[('throughput', False)]:,.0f}",
            f"{measured[('throughput', True)]:,.0f}",
        ),
        (
            "idle latency (ms)",
            f"{measured[('latency', False)] * 1e3:.2f}",
            f"{measured[('latency', True)] * 1e3:.2f}",
        ),
    ]
    record_table(
        "ablation_adaptive_batching",
        table(
            "Ablation: TorchServe adaptive batching "
            f"(max {POLICY[0]} requests / {POLICY[1] * 1e3:.0f} ms)",
            ["metric", "request-at-a-time (paper)", "adaptive batching"],
            rows,
        ),
    )

    # Coalescing multiplies TorchServe's saturated throughput...
    assert measured[("throughput", True)] > 3.0 * measured[("throughput", False)]
    # ...at a bounded latency cost when the pipeline is idle.
    added = measured[("latency", True)] - measured[("latency", False)]
    assert 0 < added < 2.5 * POLICY[1]
