"""Figure 5: end-to-end latency vs batch size on Flink, FFNN (ir=1, mp=1).

Paper anchors at bsz=128: TF-Serving 191 ms, DL4J 229 ms, SavedModel
188 ms. Shapes: latency grows with bsz; the embedded options are close
to each other; TF-Serving is comparable to — sometimes below — embedded
latencies despite the network hop; stddev grows with bsz.
"""

from bench_util import mean_latency, table

from repro.config import ExperimentConfig, WorkloadKind

TOOLS = ["onnx", "savedmodel", "dl4j", "tf_serving", "torchserve"]
BATCH_SIZES = [8, 32, 128, 512]
PAPER_AT_128_MS = {"tf_serving": 191.0, "dl4j": 229.0, "savedmodel": 188.0}


def test_fig5_latency_vs_batch_size(once, record_table):
    def run_all():
        measured = {}
        for tool in TOOLS:
            for bsz in BATCH_SIZES:
                config = ExperimentConfig(
                    sps="flink",
                    serving=tool,
                    model="ffnn",
                    workload=WorkloadKind.CLOSED_LOOP,
                    ir=1.0,
                    bsz=bsz,
                    duration=8.0,
                )
                measured[(tool, bsz)] = mean_latency(config)
        return measured

    measured = once(run_all)
    rows = []
    for tool in TOOLS:
        for bsz in BATCH_SIZES:
            mean, std = measured[(tool, bsz)]
            paper = PAPER_AT_128_MS.get(tool) if bsz == 128 else None
            rows.append(
                (tool, bsz, f"{paper:.0f}" if paper else "-",
                 f"{mean * 1e3:.1f}", f"{std * 1e3:.2f}")
            )
    record_table(
        "fig5",
        table(
            "Fig. 5: latency vs bsz on Flink + FFNN (ms/batch)",
            ["tool", "bsz", "paper (ms)", "measured (ms)", "std"],
            rows,
        ),
    )

    def latency(tool, bsz):
        return measured[(tool, bsz)][0]

    # Shape 1: latency grows with batch size for every tool.
    for tool in TOOLS:
        values = [latency(tool, bsz) for bsz in BATCH_SIZES]
        assert values == sorted(values), tool
    # Shape 2 (paper's headline surprise): the external TF-Serving sits
    # inside the embedded band at bsz=128 — below DL4J, near SavedModel.
    assert latency("tf_serving", 128) < latency("dl4j", 128)
    assert latency("tf_serving", 128) < 1.35 * latency("savedmodel", 128)
    # Shape 3: embedded options are within ~2x of each other.
    embedded = [latency(t, 128) for t in ("onnx", "savedmodel", "dl4j")]
    assert max(embedded) / min(embedded) < 2.0
