"""Figure 9: GPU acceleration, Flink + ResNet50 (ir=0.2, mp=1, bsz=8).

Paper (ms/batch): onnx-cpu 3698 -> onnx-gpu 3089 (-16.4%);
tf-serving-cpu 3974 -> tf-serving-gpu 3016 (-24.1%). tf-serving-gpu also
beats onnx-cpu by ~18% — an accelerated external server amortizes its
network overhead.
"""

from bench_util import mean_latency, table

from repro.config import ExperimentConfig, WorkloadKind

PAPER_MS = {
    ("onnx", False): 3698,
    ("onnx", True): 3089,
    ("tf_serving", False): 3974,
    ("tf_serving", True): 3016,
}


def test_fig9_gpu_acceleration(once, record_table):
    def run_all():
        measured = {}
        for (tool, gpu) in PAPER_MS:
            config = ExperimentConfig(
                sps="flink",
                serving=tool,
                model="resnet50",
                workload=WorkloadKind.CLOSED_LOOP,
                ir=0.2,
                bsz=8,
                gpu=gpu,
                duration=60.0,
            )
            measured[(tool, gpu)] = mean_latency(config)
        return measured

    measured = once(run_all)
    rows = []
    for (tool, gpu), paper in PAPER_MS.items():
        mean, std = measured[(tool, gpu)]
        label = f"{tool}-{'gpu' if gpu else 'cpu'}"
        rows.append(
            (label, paper, f"{mean * 1e3:.0f}", f"{std * 1e3:.0f}",
             f"{mean * 1e3 / paper:.2f}x")
        )
    record_table(
        "fig9",
        table(
            "Fig. 9: ResNet50 latency, CPU vs GPU (ms/batch, bsz=8)",
            ["configuration", "paper (ms)", "measured (ms)", "std", "vs paper"],
            rows,
        ),
    )

    def latency(tool, gpu):
        return measured[(tool, gpu)][0]

    onnx_gain = 1 - latency("onnx", True) / latency("onnx", False)
    tfs_gain = 1 - latency("tf_serving", True) / latency("tf_serving", False)
    # Shape 1: both gain from the GPU (paper: 16.4% and 24.1%).
    assert 0.08 < onnx_gain < 0.30
    assert 0.15 < tfs_gain < 0.40
    # Shape 2: the specialized server benefits more than the embedded lib.
    assert tfs_gain > onnx_gain
    # Shape 3: the GPU-accelerated external server beats embedded CPU.
    assert latency("tf_serving", True) < latency("onnx", False)
