"""Assemble EXPERIMENTS.md from the recorded benchmark outputs.

Run the benchmarks first (they persist their tables under
``benchmarks/results/``), then::

    python benchmarks/compile_experiments.py

The narrative blocks below state, per experiment, which of the paper's
claims the benchmark asserts and how our measurements compare.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
OUTPUT = os.path.join(os.path.dirname(__file__), os.pardir, "EXPERIMENTS.md")

PREAMBLE = """\
# EXPERIMENTS — paper vs measured

Reproduction of every table and figure in the evaluation of *Crayfish*
(EDBT 2024), measured on the discrete-event-simulation substrate described
in DESIGN.md. Regenerate with::

    pytest benchmarks/ --benchmark-only
    python benchmarks/compile_experiments.py

Absolute numbers are not the target — the paper measured a 9-VM GCP
cluster, we measure a calibrated simulator — but each benchmark *asserts*
the paper's qualitative claims (orderings, crossovers, scaling knees), so
`pytest benchmarks/` failing means the reproduction lost a finding.

Methodological notes (details in DESIGN.md):

- Open-loop throughput runs use a backlog-maintaining producer instead of
  simulating millions of discarded sends at the paper's 30k ev/s offered
  rates; the steady state is identical.
- The burst experiment (Fig. 8) scales the paper's 30 s / 120 s cycles
  down 10x (3 s bursts, 12 s valleys); recovery times are rescaled by 10
  in the table for comparison.
- Every experiment is run twice with different seeds (the paper's
  protocol); tables report means and standard deviations where shown.
"""

SECTIONS = [
    (
        "summary_findings",
        "Summary of major findings (§1), measured",
        "The paper's four headline claims verified end to end, "
        "independently of the per-figure reproductions: same-type tools "
        "vary significantly; external serving can beat embedded; every "
        "configuration gains from the GPU (to differing extents); and "
        "the same serving tool behaves very differently across stream "
        "processors.",
    ),
    (
        "table2",
        "Table 2 — model characteristics",
        "The FFNN and ResNet-50 are real architectures (`repro.nn.zoo`); "
        "parameter counts and tensor shapes are computed, not configured. "
        "Serialized sizes come from actually writing the four artifact "
        "formats. Asserted: parameter counts in the paper's ranges; "
        "artifact-size ordering ONNX <= Torch < H5 << SavedModel with the "
        "~4.5x SavedModel/ONNX ratio for the small model. Note: we count "
        "ResNet-50's full 25.6M parameters where the paper rounds to 23M.",
    ),
    (
        "table4",
        "Table 4 — serving-tool throughput on Flink",
        "Asserted: the paper's exact FFNN ordering ONNX > SavedModel > "
        "DL4J > TF-Serving > TorchServe; TF-Serving ~3x TorchServe; "
        "ResNet50 collapses all tools under ~3 ev/s and closes the "
        "embedded/external gap (ONNX ~ TF-Serving). Measured values land "
        "within 0.8-1.05x of the paper's.",
    ),
    (
        "fig5",
        "Figure 5 — latency vs batch size (Flink, FFNN)",
        "Asserted: latency grows monotonically with bsz for every tool; "
        "the external TF-Serving sits inside the embedded band (below "
        "DL4J, near SavedModel) — the paper's headline surprise; embedded "
        "options stay within ~2x of each other. Our absolute latencies "
        "run ~2x below the paper's (its GCP serde/transport stack is "
        "heavier than our calibrated model at large payloads); the "
        "orderings and growth shape match.",
    ),
    (
        "fig6",
        "Figure 6 — vertical scalability (Flink, FFNN)",
        "Asserted: everything scales to mp=8; DL4J flattens past mp=8 "
        "(its engine's 8-slot internal cap); the rest keep gaining at 16; "
        "TF-Serving scales closer to linear than embedded ONNX (dedicated "
        "vs shared resources); peak ordering ONNX > SavedModel > "
        "TF-Serving > DL4J. Peaks land at 0.9-1.1x the paper's.",
    ),
    (
        "fig7",
        "Figure 7 — vertical scalability (Flink, ResNet50)",
        "Asserted: ONNX keeps scaling; TF-Serving is flat (single-session "
        "execution of large models, <1.4x from mp=1 to 16); TorchServe "
        "starts behind TF-Serving and overtakes it at high parallelism "
        "(paper: past mp=8).",
    ),
    (
        "fig8",
        "Figure 8 — burst recovery (ONNX vs TF-Serving)",
        "Asserted (takeaway 6): TF-Serving's best recovery beats ONNX's "
        "best, and its burst-to-burst variance is >2x ONNX's. Mechanism: "
        "slow service-rate modulation (GC/load swings) on the noisy "
        "server vs the stable embedded library. Rescaled bests: 33.8 s vs "
        "39.8 s (paper: 34.2 s vs 41.4 s).",
    ),
    (
        "fig9",
        "Figure 9 — GPU acceleration (ResNet50, bsz=8)",
        "Asserted: both tools gain from the GPU; the specialized server "
        "gains more (paper: -24.1% vs -16.4%); the GPU-accelerated "
        "external server beats embedded CPU — acceleration amortizes the "
        "network hop.",
    ),
    (
        "table5",
        "Table 5 — throughput across stream processors",
        "Asserted: SPS ordering Spark SS > Kafka Streams > Flink > Ray "
        "for both serving styles; Spark nearly erases the embedded/"
        "external gap (<15%) where Flink keeps >2x; Kafka Streams boosts "
        "ONNX over Flink by more than it boosts TF-Serving (paper: +49.6% "
        "vs +13.7%).",
    ),
    (
        "table5_latency",
        "§5.3.1 — per-event latency, Kafka Streams vs Spark at ir=512",
        "Asserted: Spark's micro-batching costs >5x Kafka Streams' "
        "per-event latency under moderate load (paper: 290.78 ms vs "
        "16.25 ms).",
    ),
    (
        "fig10",
        "Figure 10 — latency across SPSs vs batch size",
        "Asserted: Flink lowest at bsz=32 but beaten by Kafka Streams at "
        "bsz=512 (network-buffer fragmentation of large records); Spark "
        "SS worst at every size (trigger overhead); Ray competitive with "
        "the JVM engines at bsz=128 despite Python + HTTP.",
    ),
    (
        "fig11",
        "Figure 11 — vertical scalability across SPSs",
        "Asserted: Spark sits at the highest, flat ceiling (serialized "
        "driver); Kafka Streams scales steadily and beats Flink at mp=16; "
        "Spark+TF-Serving saturates the server >4x beyond Kafka Streams "
        "at mp=2 (paper: 7.2x); Ray plateaus ~1.2k ev/s (node scheduler) "
        "and its external path pins at ~455 ev/s — the single Ray Serve "
        "HTTP proxy, reproduced exactly.",
    ),
    (
        "fig12",
        "Figure 12 / §6.1 — operator-level parallelism on Flink",
        "Asserted: flink[32-N-32] (unchained, Kafka-facing operators at "
        "partition parallelism) beats flink[N-N-N] at every N for both "
        "tools; at N=1 the gain is 2.5-5x (paper: 3.8x, 5373 vs 1393 "
        "ev/s).",
    ),
    (
        "fig13",
        "Figure 13 / §6.2 — Kafka transport overhead",
        "Asserted: the broker adds <10% throughput overhead (paper: "
        "2.42%) but the standalone pipeline's latency is >35% lower at "
        "every batch size (paper: up to 59% lower) — serde and broker "
        "hops dominate end-to-end latency for small models.",
    ),
    (
        "ablation_async_io",
        "Ablation — Flink Async I/O (the §4.3 fairness decision)",
        "The paper ran all external calls blocking so no SPS got an "
        "unfair advantage, noting Flink's Async I/O operator exists. "
        "Implemented here: an in-flight window multiplies a single "
        "task's external throughput >3x and saturates once it covers "
        "the round-trip/service gap.",
    ),
    (
        "ablation_resource_split",
        "Ablation — non-uniform SPS/server resource allocation (§9)",
        "With a fixed 16-worker budget split between Flink scoring tasks "
        "and TF-Serving workers, the optimum for a cheap model is "
        "heavily client-sided (blocking RPC idles clients on round "
        "trips) but interior — starving the server eventually queues "
        "requests. The paper names this allocation problem as open "
        "future work.",
    ),
    (
        "ablation_producer_batching",
        "Ablation — producer-level batching (§3.5 design decision)",
        "Point throughput (events/s x bsz) rises steeply with batch size "
        "as per-event machinery amortizes — the same mechanism behind "
        "Spark's micro-batch advantage.",
    ),
    (
        "ablation_fault_tolerance",
        "Ablation — processing guarantees under failures (§7.2)",
        "A crash at t=3 s with 1 s checkpoints: at-least-once leaks "
        "replayed batches downstream; an exactly-once (transactional) "
        "sink delivers each batch once but quantizes latency to "
        "checkpoint commits — and the external server is re-queried "
        "either way, the paper's point that inference side effects "
        "escape the SPS's guarantees.",
    ),
    (
        "ablation_adaptive_batching",
        "Ablation — server-side adaptive batching (related work)",
        "Clipper-style request coalescing multiplies TorchServe's "
        "saturated throughput several times (its per-request Python "
        "handler is the costliest in the study) at a bounded idle-"
        "latency cost.",
    ),
    (
        "ablation_autoscaling",
        "Ablation — external-server autoscaling (§1/§7.2)",
        "A queue-driven autoscaler (1..8 workers, 1 s provisioning "
        "delay) absorbs periodic bursts that a fixed single worker "
        "turns into long queues, cutting p50 by an order of magnitude "
        "and p95 by >2x.",
    ),
    (
        "ablation_gnn",
        "Ablation — GNN serving with k-hop state reads (§9 future work)",
        "Serving a real GCN whose requests read their k-hop "
        "neighborhoods from an embedded state store: by k=3 the state "
        "fetch dominates the request — why the paper flags GNNs as an "
        "open challenge for streaming inference.",
    ),
    (
        "ablation_model_size",
        "Ablation — the model-size spectrum (takeaway 5, extended)",
        "Adding MobileNetV1 (~1.1 GFLOPs) between the paper's FFNN and "
        "ResNet-50 shows the embedded/external gap shrinking "
        "monotonically as compute per point grows.",
    ),
    (
        "ablation_scoring_window",
        "Ablation — SPS-side micro-batching (§7.1's recommendation)",
        "A count window in front of Flink's scoring operator — the "
        "paper's 'Micro-batching Support for External Servers' design "
        "recommendation, implemented. Doubles single-task external "
        "throughput; partial windows flush on idle, so low-rate latency "
        "is untouched.",
    ),
    (
        "ablation_protocol",
        "Ablation — gRPC vs REST for TF-Serving (§3.4.3)",
        "The paper chose TF-Serving's gRPC API; this quantifies the "
        "choice: REST's JSON payloads cost throughput at bsz=1 and "
        "substantially more latency at bsz=128 where payload codecs "
        "dominate.",
    ),
]


def main() -> None:
    blocks = [PREAMBLE]
    missing = []
    for name, title, narrative in SECTIONS:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        blocks.append(f"## {title}\n\n{narrative}\n")
        if os.path.exists(path):
            with open(path) as handle:
                blocks.append("```\n" + handle.read().strip() + "\n```\n")
        else:
            missing.append(name)
            blocks.append("*(run the benchmark to fill in this table)*\n")
    extra = sorted(
        f[:-4]
        for f in os.listdir(RESULTS_DIR)
        if f.endswith(".txt") and f[:-4] not in {name for name, *_ in SECTIONS}
    ) if os.path.isdir(RESULTS_DIR) else []
    if extra:
        blocks.append("## Ablations beyond the paper\n")
        for name in extra:
            with open(os.path.join(RESULTS_DIR, f"{name}.txt")) as handle:
                blocks.append("```\n" + handle.read().strip() + "\n```\n")
    with open(OUTPUT, "w") as handle:
        handle.write("\n".join(blocks))
    print(f"wrote {os.path.abspath(OUTPUT)}")
    if missing:
        print("missing results for:", ", ".join(missing))


if __name__ == "__main__":
    main()
