"""Figure 10: end-to-end latency across SPSs vs batch size (ir=1, mp=1).

Paper shapes: Flink lowest at bsz=32/128 but beaten by Kafka Streams at
bsz=512 (network-buffer fragmentation of large records); Spark SS highest
across the board (micro-batch trigger); Ray competitive — e.g. 169.7 ms
vs Flink's 167.44 ms at bsz=128 with TF-Serving — despite HTTP.
"""

from bench_util import mean_latency, table

from repro.config import ExperimentConfig, WorkloadKind

SPS = ["flink", "kafka_streams", "spark_ss", "ray"]
TOOLS = ["onnx", "tf_serving"]
BATCH_SIZES = [32, 128, 512]


def test_fig10_sps_latency(once, record_table):
    def run_all():
        measured = {}
        for sps in SPS:
            for tool in TOOLS:
                for bsz in BATCH_SIZES:
                    config = ExperimentConfig(
                        sps=sps,
                        serving=tool,
                        model="ffnn",
                        workload=WorkloadKind.CLOSED_LOOP,
                        ir=1.0,
                        bsz=bsz,
                        duration=8.0,
                    )
                    measured[(sps, tool, bsz)] = mean_latency(config)
        return measured

    measured = once(run_all)
    rows = []
    for sps in SPS:
        for tool in TOOLS:
            series = " ".join(
                f"{measured[(sps, tool, bsz)][0] * 1e3:.1f}" for bsz in BATCH_SIZES
            )
            rows.append((sps, tool, series))
    record_table(
        "fig10",
        table(
            "Fig. 10: latency vs bsz across SPSs (ms at bsz=32,128,512)",
            ["sps", "tool", "measured series"],
            rows,
        ),
    )

    def latency(sps, bsz, tool="onnx"):
        return measured[(sps, tool, bsz)][0]

    for tool in TOOLS:
        # Shape 1: Flink wins at small batches, loses to KS at bsz=512.
        assert latency("flink", 32, tool) < latency("kafka_streams", 32, tool)
        assert latency("flink", 512, tool) > latency("kafka_streams", 512, tool)
        # Shape 2: Spark SS is the worst at every batch size.
        for bsz in BATCH_SIZES:
            others = [latency(s, bsz, tool) for s in ("flink", "kafka_streams")]
            assert latency("spark_ss", bsz, tool) > max(others)
    # Shape 3: Ray is the same order of magnitude as the JVM engines at
    # bsz=128 despite Python actors and HTTP (paper: 169.7 vs 167.44 ms
    # with TF-Serving) — not tens of times slower like its throughput gap.
    assert latency("ray", 128, "tf_serving") < 2.0 * latency("flink", 128, "tf_serving")
