"""Figure 6: vertical scalability on Flink + FFNN (mp = 1..16, bsz=1).

Paper peaks: ONNX ~13.6k @ mp=16, SavedModel ~10.4k @ 16, DL4J ~2.8k and
flat past mp=8; TF-Serving ~9.8k @ 16 scaling ~linearly, TorchServe
~2.8k @ 16. Embedded tools scale sublinearly (shared resources); the
external ones keep improving with every worker added.
"""

from bench_util import table, throughput

from repro.config import ExperimentConfig
from repro.core.ascii_chart import render_chart

TOOLS = ["onnx", "savedmodel", "dl4j", "tf_serving", "torchserve"]
PARALLELISM = [1, 2, 4, 8, 16]
PAPER_PEAK = {
    "onnx": 13_600,
    "savedmodel": 10_400,
    "dl4j": 2_800,
    "tf_serving": 9_800,
    "torchserve": 2_800,
}


def test_fig6_vertical_scalability_ffnn(once, record_table):
    def run_all():
        measured = {}
        for tool in TOOLS:
            for mp in PARALLELISM:
                config = ExperimentConfig(
                    sps="flink", serving=tool, model="ffnn", mp=mp, duration=2.0
                )
                measured[(tool, mp)] = throughput(config)
        return measured

    measured = once(run_all)
    rows = []
    for tool in TOOLS:
        peak = max(measured[(tool, mp)][0] for mp in PARALLELISM)
        series = " ".join(f"{measured[(tool, mp)][0]:,.0f}" for mp in PARALLELISM)
        rows.append(
            (tool, series, f"{PAPER_PEAK[tool]:,}", f"{peak:,.0f}",
             f"{peak / PAPER_PEAK[tool]:.2f}x")
        )
    chart = render_chart(
        {
            tool: [(mp, measured[(tool, mp)][0]) for mp in PARALLELISM]
            for tool in TOOLS
        },
        x_label="mp",
        log_y=True,
    )
    record_table(
        "fig6",
        table(
            "Fig. 6: Flink + FFNN scaling (events/s at mp=1,2,4,8,16)",
            ["tool", "measured series", "paper peak", "measured peak", "vs paper"],
            rows,
        )
        + "\n\n"
        + chart,
    )

    def rate(tool, mp):
        return measured[(tool, mp)][0]

    # Shape 1: every tool improves from mp=1 to mp=8.
    for tool in TOOLS:
        assert rate(tool, 8) > 2.5 * rate(tool, 1), tool
    # Shape 2: DL4J stops scaling past mp=8 (engine cap).
    assert rate("dl4j", 16) < 1.25 * rate("dl4j", 8)
    # Shape 3: the others keep gaining at mp=16.
    for tool in ("onnx", "savedmodel", "tf_serving", "torchserve"):
        assert rate(tool, 16) > 1.3 * rate(tool, 8), tool
    # Shape 4: external tools scale closer to linearly than embedded ones.
    tf_speedup = rate("tf_serving", 16) / rate("tf_serving", 1)
    onnx_speedup = rate("onnx", 16) / rate("onnx", 1)
    assert tf_speedup > onnx_speedup
    # Shape 5: peak ordering ONNX > SavedModel > TF-S > DL4J ~ TorchServe.
    peaks = {t: max(rate(t, mp) for mp in PARALLELISM) for t in TOOLS}
    assert peaks["onnx"] > peaks["savedmodel"] > peaks["tf_serving"]
    assert peaks["tf_serving"] > peaks["dl4j"]
