"""Table 5: throughput across stream processors, FFNN (bsz=1, mp=1).

Paper (events/s): Flink 1373.07 / 617.2, Kafka Streams 2054.21 / 702.12,
Spark SS 4044.99 / 3924.49, Ray 157.4 / 122.44 — for ONNX (embedded) /
TF-Serving (external) respectively. Also §5.3.1: with ir=512 and ONNX,
Kafka Streams serves one event in 16.25 ms vs 290.78 ms on Spark SS.
"""

from bench_util import mean_latency, table, throughput

from repro.config import ExperimentConfig, WorkloadKind

PAPER = {
    ("flink", "onnx"): 1373.07,
    ("flink", "tf_serving"): 617.2,
    ("kafka_streams", "onnx"): 2054.21,
    ("kafka_streams", "tf_serving"): 702.12,
    ("spark_ss", "onnx"): 4044.99,
    ("spark_ss", "tf_serving"): 3924.49,
    ("ray", "onnx"): 157.4,
    ("ray", "tf_serving"): 122.44,
}


def test_table5_sps_throughput(once, record_table):
    def run_all():
        measured = {}
        for (sps, tool) in PAPER:
            duration = 4.0 if sps == "spark_ss" else 3.0
            config = ExperimentConfig(
                sps=sps, serving=tool, model="ffnn", duration=duration
            )
            measured[(sps, tool)] = throughput(config)
        return measured

    measured = once(run_all)
    rows = []
    for (sps, tool), paper in PAPER.items():
        mean, std = measured[(sps, tool)]
        rows.append(
            (sps, tool, f"{paper:,.0f}", f"{mean:,.0f}", f"{std:,.0f}",
             f"{mean / paper:.2f}x")
        )
    record_table(
        "table5",
        table(
            "Table 5: SPS throughput comparison, FFNN (events/s), bsz=1 mp=1",
            ["sps", "tool", "paper", "measured", "std", "vs paper"],
            rows,
        ),
    )

    def rate(sps, tool):
        return measured[(sps, tool)][0]

    # Shape 1: SPS ordering for both serving tools: Spark > KS > Flink > Ray.
    for tool in ("onnx", "tf_serving"):
        assert rate("spark_ss", tool) > rate("kafka_streams", tool)
        assert rate("kafka_streams", tool) > rate("flink", tool)
        assert rate("flink", tool) > rate("ray", tool)
    # Shape 2: Spark nearly erases the embedded/external gap (<15% apart);
    # the event-at-a-time engines keep a >2x gap.
    assert rate("spark_ss", "onnx") / rate("spark_ss", "tf_serving") < 1.15
    assert rate("flink", "onnx") / rate("flink", "tf_serving") > 2.0
    # Shape 3: Kafka Streams boosts ONNX over Flink by a larger factor
    # than it boosts TF-Serving (paper: +49.6% vs +13.7%).
    onnx_boost = rate("kafka_streams", "onnx") / rate("flink", "onnx")
    tfs_boost = rate("kafka_streams", "tf_serving") / rate("flink", "tf_serving")
    assert onnx_boost > tfs_boost > 1.0


def test_table5_event_latency_ks_vs_spark(once, record_table):
    """§5.3.1: at ir=512 Kafka Streams serves one event ~18x faster than
    Spark SS (16.25 ms vs 290.78 ms)."""

    def run_both():
        measured = {}
        for sps in ("kafka_streams", "spark_ss"):
            config = ExperimentConfig(
                sps=sps,
                serving="onnx",
                model="ffnn",
                workload=WorkloadKind.OPEN_LOOP,
                ir=512.0,
                duration=6.0,
            )
            measured[sps] = mean_latency(config, seeds=(0,))
        return measured

    measured = once(run_both)
    rows = [
        ("kafka_streams", "16.25", f"{measured['kafka_streams'][0] * 1e3:.2f}"),
        ("spark_ss", "290.78", f"{measured['spark_ss'][0] * 1e3:.2f}"),
    ]
    record_table(
        "table5_latency",
        table(
            "§5.3.1: per-event latency at ir=512, ONNX (ms)",
            ["sps", "paper", "measured"],
            rows,
        ),
    )
    assert measured["spark_ss"][0] > 5.0 * measured["kafka_streams"][0]
    assert measured["kafka_streams"][0] < 0.05
