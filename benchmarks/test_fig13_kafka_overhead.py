"""Figure 13 / §6.2: the overhead Crayfish's Kafka transport introduces.

A standalone Flink pipeline (in-process generation, no broker, no JSON
hops) against the Kafka-based Crayfish pipeline with identical
operator-level parallelism. Paper: throughput overhead as low as 2.42%;
standalone latency up to 59% lower.
"""

from bench_util import mean_latency, table, throughput

from repro.config import ExperimentConfig, WorkloadKind

BATCH_SIZES = [32, 128, 512]


def test_fig13_kafka_overhead(once, record_table):
    def run_all():
        base = ExperimentConfig(
            sps="flink",
            serving="onnx",
            model="ffnn",
            duration=3.0,
            operator_parallelism=(32, 1, 32),
        )
        tput = {
            "kafka": throughput(base, seeds=(0,))[0],
            "no-kafka": throughput(base.replace(use_broker=False), seeds=(0,))[0],
        }
        lat = {}
        for bsz in BATCH_SIZES:
            closed = ExperimentConfig(
                sps="flink",
                serving="onnx",
                model="ffnn",
                workload=WorkloadKind.CLOSED_LOOP,
                ir=1.0,
                bsz=bsz,
                duration=8.0,
            )
            lat[("kafka", bsz)] = mean_latency(closed, seeds=(0,))[0]
            lat[("no-kafka", bsz)] = mean_latency(
                closed.replace(use_broker=False), seeds=(0,)
            )[0]
        return tput, lat

    tput, lat = once(run_all)
    overhead = 1 - tput["kafka"] / tput["no-kafka"]
    rows = [
        ("throughput (ev/s)", "2.42% overhead",
         f"kafka {tput['kafka']:,.0f} vs no-kafka {tput['no-kafka']:,.0f} "
         f"({overhead:+.1%} overhead)")
    ]
    for bsz in BATCH_SIZES:
        reduction = 1 - lat[("no-kafka", bsz)] / lat[("kafka", bsz)]
        rows.append(
            (f"latency bsz={bsz}", "up to 59% lower standalone",
             f"kafka {lat[('kafka', bsz)] * 1e3:.1f} ms vs "
             f"no-kafka {lat[('no-kafka', bsz)] * 1e3:.1f} ms "
             f"({reduction:.0%} lower)")
        )
    record_table(
        "fig13",
        table(
            "Fig. 13: Kafka transport overhead (kafka vs standalone)",
            ["metric", "paper", "measured"],
            rows,
        ),
    )

    # Shape 1: throughput overhead is small (paper: 2.42%).
    assert abs(overhead) < 0.10
    # Shape 2: standalone latency is dramatically lower at every bsz
    # (paper: up to 59% lower; serde + broker hops dominate small models).
    for bsz in BATCH_SIZES:
        assert lat[("no-kafka", bsz)] < 0.65 * lat[("kafka", bsz)]
