"""Ablation: SPS-side micro-batching (§7.1's design recommendation).

"Micro-batching Support for External Servers": the paper recommends that
event-based SPSs batch inference requests like Spark does. Implemented
here as a count window in front of Flink's scoring operator that flushes
early when the stream idles — so the throughput gain under load costs
nothing at low rates (unlike server-side adaptive batching, which waits
out its delay).
"""

from bench_util import mean_latency, table, throughput

from repro.config import ExperimentConfig, WorkloadKind

WINDOWS = [0, 4, 16]


def test_ablation_scoring_window(once, record_table):
    def run_all():
        loaded = ExperimentConfig(
            sps="flink", serving="tf_serving", model="ffnn", duration=2.0
        )
        idle = loaded.replace(
            workload=WorkloadKind.CLOSED_LOOP, ir=2.0, duration=5.0
        )
        measured = {}
        for window in WINDOWS:
            measured[("throughput", window)] = throughput(
                loaded.replace(scoring_window=window), seeds=(0,)
            )[0]
            measured[("latency", window)] = mean_latency(
                idle.replace(scoring_window=window), seeds=(0,)
            )[0]
        return measured

    measured = once(run_all)
    rows = [
        (
            window if window else "1 (paper)",
            f"{measured[('throughput', window)]:,.0f}",
            f"{measured[('latency', window)] * 1e3:.2f}",
        )
        for window in WINDOWS
    ]
    record_table(
        "ablation_scoring_window",
        table(
            "Ablation: Flink count-window before the scoring operator "
            "(TF-Serving + FFNN, mp=1)",
            ["window size", "saturated events/s", "idle latency (ms)"],
            rows,
        ),
    )

    # The window roughly doubles single-task external throughput...
    assert measured[("throughput", 16)] > 1.8 * measured[("throughput", 0)]
    assert measured[("throughput", 4)] > 1.4 * measured[("throughput", 0)]
    # ...and, because partial windows flush on idle, costs nothing at
    # low rates (within 5%).
    assert measured[("latency", 16)] < 1.05 * measured[("latency", 0)]
