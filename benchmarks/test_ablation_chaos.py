"""Ablation: client resilience under a serving-server crash (§7.2).

The paper's discussion attributes much of the external-serving latency
labyrinth to the client's handling of failures. This ablation crashes
the TF-Serving process mid-run and measures goodput retention under
three client policies:

- none: failed scoring calls shed their batches (fire-and-forget),
- retry: exponential backoff retries ride out the downtime,
- fallback: exhausted retries score on an embedded ONNX session.
"""

from bench_util import table

from repro.config import ExperimentConfig
from repro.core.runner import run_experiment
from repro.faults import FaultPlan, ResiliencePolicy, ServerCrash
from repro.faults.report import run_chaos_scenario

RATE = 100.0
DURATION = 4.0
CRASH = FaultPlan(server_crashes=(ServerCrash(at=2.0, downtime=0.3),))

POLICIES = {
    "none": None,  # runner default: shed on first failure
    "retry": ResiliencePolicy(retries=6, backoff_base=0.05, backoff_max=0.5),
    "fallback": ResiliencePolicy(
        retries=2,
        backoff_base=0.05,
        on_exhausted="fallback",
        fallback="onnx",
    ),
}


def test_ablation_chaos(once, record_table):
    def run_all():
        outcomes = {}
        for name, policy in POLICIES.items():
            config = ExperimentConfig(
                sps="flink",
                serving="tf_serving",
                model="ffnn",
                ir=RATE,
                duration=DURATION,
                fault_plan=CRASH,
                resilience=policy,
            )
            outcomes[name] = run_chaos_scenario(config, seed=0)
        return outcomes

    outcomes = once(run_all)
    rows = []
    for name, outcome in outcomes.items():
        faults = outcome.faulted.faults
        rows.append(
            (
                name,
                f"{outcome.goodput_ratio:.3f}",
                faults.shed,
                faults.retries,
                faults.fallbacks,
                (
                    f"{outcome.recovery.recovery_time:.2f}"
                    if outcome.recovered
                    else "-"
                ),
            )
        )
    record_table(
        "ablation_chaos",
        table(
            "Ablation: TF-Serving crash at t=2 s (0.3 s down), "
            "Flink client policies (100 ev/s)",
            [
                "policy",
                "goodput ratio",
                "batches shed",
                "retries",
                "fallbacks",
                "latency recovery (s)",
            ],
            rows,
        ),
    )

    none, retry, fallback = (
        outcomes["none"],
        outcomes["retry"],
        outcomes["fallback"],
    )
    # Without retries the crash drops requests on the floor.
    assert none.faulted.faults.shed > 0
    assert none.goodput_ratio < 0.95
    # Backoff retries ride out the downtime: >= 90% of no-fault goodput
    # and nothing shed (ISSUE acceptance).
    assert retry.faulted.faults.shed == 0
    assert retry.goodput_ratio >= 0.9
    # Degrading to the embedded session also loses nothing.
    assert fallback.faulted.faults.shed == 0
    assert fallback.goodput_ratio >= 0.9
