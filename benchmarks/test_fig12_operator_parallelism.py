"""Figure 12 / §6.1: operator-level vs default parallelism on Flink.

flink[N-N-N] chains source-scoring-sink into N task slots; flink[32-N-32]
disables chaining and gives the Kafka-facing operators the topic's 32
partitions while scaling only the scoring stage. Paper: at N=1 the
operator-parallel pipeline reaches 5373.15 events/s, ~3.8x the chained
1393.07, and dominates at every N for both ONNX and TF-Serving.
"""

from bench_util import table, throughput

from repro.config import ExperimentConfig

PARALLELISM = [1, 2, 4, 8, 16]
PAPER_N1 = {"chained": 1393.07, "operator": 5373.15}


def test_fig12_operator_parallelism(once, record_table):
    def run_all():
        measured = {}
        for tool in ("onnx", "tf_serving"):
            for n in PARALLELISM:
                base = ExperimentConfig(
                    sps="flink", serving=tool, model="ffnn", mp=n, duration=2.0
                )
                measured[(tool, "chained", n)] = throughput(base, seeds=(0,))
                operator = base.replace(operator_parallelism=(32, n, 32))
                measured[(tool, "operator", n)] = throughput(operator, seeds=(0,))
        return measured

    measured = once(run_all)
    rows = []
    for tool in ("onnx", "tf_serving"):
        for mode in ("chained", "operator"):
            label = "flink[N-N-N]" if mode == "chained" else "flink[32-N-32]"
            series = " ".join(
                f"{measured[(tool, mode, n)][0]:,.0f}" for n in PARALLELISM
            )
            rows.append((tool, label, series))
    record_table(
        "fig12",
        table(
            "Fig. 12: Flink operator-level parallelism (events/s at N=1,2,4,8,16)",
            ["tool", "pipeline", "measured series"],
            rows,
        ),
    )

    def rate(tool, mode, n):
        return measured[(tool, mode, n)][0]

    # Shape 1: the paper's headline — ~3.8x at N=1 for ONNX.
    ratio = rate("onnx", "operator", 1) / rate("onnx", "chained", 1)
    assert 2.5 < ratio < 5.0
    # Shape 2: operator-level parallelism dominates at every N, both tools.
    for tool in ("onnx", "tf_serving"):
        for n in PARALLELISM:
            assert rate(tool, "operator", n) > rate(tool, "chained", n), (tool, n)
    # Shape 3: TF-Serving shows the same trend (paper: "similar trends").
    tf_ratio = rate("tf_serving", "operator", 1) / rate("tf_serving", "chained", 1)
    assert tf_ratio > 1.2
