"""Ablation: non-uniform SPS/server resource allocation (§9 future work).

The paper gives the external server as many workers as the SPS has
scoring tasks (mp) and names optimal *non-uniform* splits as open work.
With a fixed worker budget split between Flink scoring tasks (clients)
and TF-Serving workers, this ablation maps the trade-off: blocking RPC
makes client tasks the scarce resource for a cheap model, so the optimum
is heavily client-sided — more evidence for §7.1's "decoupled
scalability" argument.
"""

from bench_util import table, throughput

from repro.config import ExperimentConfig

TOTAL_WORKERS = 16
SPLITS = [2, 4, 8, 12, 14]


def test_ablation_resource_split(once, record_table):
    def run_all():
        measured = {}
        for clients in SPLITS:
            config = ExperimentConfig(
                sps="flink",
                serving="tf_serving",
                model="ffnn",
                duration=2.0,
                mp=clients,
                server_workers=TOTAL_WORKERS - clients,
            )
            measured[clients] = throughput(config, seeds=(0,))
        return measured

    measured = once(run_all)
    rows = [
        (f"{clients} / {TOTAL_WORKERS - clients}", f"{mean:,.0f}")
        for clients, (mean, __) in measured.items()
    ]
    record_table(
        "ablation_resource_split",
        table(
            f"Ablation: client/server split of {TOTAL_WORKERS} workers "
            "(Flink + TF-Serving + FFNN, blocking RPC; events/s)",
            ["flink tasks / server workers", "throughput"],
            rows,
        ),
    )

    # The uniform paper-style split is far from optimal for a cheap model:
    # the best split in this sweep is client-heavy (blocking RPC keeps
    # clients mostly idle on round trips)...
    best_clients = max(measured, key=lambda c: measured[c][0])
    assert best_clients > TOTAL_WORKERS // 2
    assert measured[best_clients][0] > 1.2 * measured[TOTAL_WORKERS // 2][0]
    # ...but the optimum is interior: starving the server eventually
    # queues requests (14/2 is no better than 12/4).
    assert measured[14][0] <= measured[12][0] * 1.02
