"""Ablation: gRPC vs REST for the external servers (§3.4.3).

TF-Serving exposes both APIs; the paper "used the gRPC API in this
study". This ablation quantifies the choice: REST's JSON payloads cost
more to encode/decode and more bytes on the wire, so gRPC wins on both
throughput and latency — more for large batches, where payload costs
dominate the fixed request overhead.
"""

from bench_util import mean_latency, table, throughput

from repro.config import ExperimentConfig, WorkloadKind


def test_ablation_grpc_vs_rest(once, record_table):
    def run_all():
        loaded = ExperimentConfig(
            sps="flink", serving="tf_serving", model="ffnn", duration=2.0
        )
        big_batch = ExperimentConfig(
            sps="flink",
            serving="tf_serving",
            model="ffnn",
            workload=WorkloadKind.CLOSED_LOOP,
            ir=1.0,
            bsz=128,
            duration=8.0,
        )
        measured = {}
        for protocol in ("grpc", "rest"):
            measured[("throughput", protocol)] = throughput(
                loaded.replace(protocol=protocol), seeds=(0,)
            )[0]
            measured[("latency128", protocol)] = mean_latency(
                big_batch.replace(protocol=protocol), seeds=(0,)
            )[0]
        return measured

    measured = once(run_all)
    rows = [
        (
            protocol,
            f"{measured[('throughput', protocol)]:,.0f}",
            f"{measured[('latency128', protocol)] * 1e3:.1f}",
        )
        for protocol in ("grpc", "rest")
    ]
    record_table(
        "ablation_protocol",
        table(
            "Ablation: TF-Serving over gRPC (paper) vs REST "
            "(Flink + FFNN, mp=1)",
            ["protocol", "events/s (bsz=1)", "latency ms (bsz=128)"],
            rows,
        ),
    )

    # gRPC wins throughput at bsz=1 and latency at bsz=128, where REST's
    # JSON payload costs dominate.
    assert measured[("throughput", "grpc")] > measured[("throughput", "rest")]
    assert measured[("latency128", "grpc")] < 0.9 * measured[("latency128", "rest")]
