"""Ablation: processing guarantees under failures (§7.2).

The paper's discussion claims streaming engines' exactly-once guarantees
"are not ensured with external interfacing". This ablation injects a
crash mid-run and measures, per delivery guarantee:

- duplicates delivered downstream,
- inference requests replayed against the serving tool (the external
  side effect no sink transaction can undo), and
- the latency cost of transactional (exactly-once) output.
"""

from bench_util import table

from repro.config import ExperimentConfig, WorkloadKind
from repro.core.runner import run_experiment

RATE = 200.0
CHECKPOINT = 1.0
FAILURE_AT = 3.0


def test_ablation_fault_tolerance(once, record_table):
    def run_all():
        base = ExperimentConfig(
            sps="flink",
            serving="tf_serving",
            model="ffnn",
            ir=RATE,
            duration=6.0,
            checkpoint_interval=CHECKPOINT,
            failure_times=(FAILURE_AT,),
        )
        measured = {
            "at_least_once": run_experiment(base),
            "exactly_once": run_experiment(
                base.replace(delivery_guarantee="exactly_once")
            ),
        }
        closed = ExperimentConfig(
            sps="flink",
            serving="tf_serving",
            model="ffnn",
            workload=WorkloadKind.CLOSED_LOOP,
            ir=20.0,
            duration=6.0,
            checkpoint_interval=CHECKPOINT,
        )
        latency = {
            "at_least_once": run_experiment(closed).latency.mean,
            "exactly_once": run_experiment(
                closed.replace(delivery_guarantee="exactly_once")
            ).latency.mean,
        }
        return measured, latency

    measured, latency = once(run_all)
    rows = []
    for guarantee, result in measured.items():
        # ``completed`` counts distinct batches only; replays are in
        # ``duplicates``.
        replayed = result.inference_requests - result.completed
        rows.append(
            (
                guarantee,
                result.duplicates,
                max(replayed, 0),
                f"{latency[guarantee] * 1e3:.1f}",
            )
        )
    record_table(
        "ablation_fault_tolerance",
        table(
            "Ablation: crash at t=3 s with 1 s checkpoints "
            "(Flink + TF-Serving, 200 ev/s)",
            [
                "guarantee",
                "duplicate deliveries",
                "replayed inference calls",
                "failure-free latency (ms)",
            ],
            rows,
        ),
    )

    alo, exo = measured["at_least_once"], measured["exactly_once"]
    # At-least-once leaks duplicates downstream; exactly-once does not.
    assert alo.duplicates > 0
    assert exo.duplicates == 0
    # But the external server is re-queried either way (§7.2): inference
    # is a side effect outside the sink's transaction.
    assert exo.inference_requests > exo.completed
    # The price of exactly-once: latency quantized to checkpoint commits.
    assert latency["exactly_once"] > 10 * latency["at_least_once"]
