"""Helpers shared by the per-table/figure benchmarks."""

from __future__ import annotations

import json
import os
import statistics
import typing

from repro.config import ExperimentConfig
from repro.core.report import format_table
from repro.core.runner import ExperimentRunner  # noqa: F401 - re-export
from repro.matrix import ResultCache, run_replicated_cached

#: Seeds for the paper's run-everything-twice protocol.
SEEDS = (0, 1)

#: Opt-in knobs for the benchmark suite: CRAYFISH_BENCH_CACHE points the
#: matrix result cache at a directory (re-running the paper tables then
#: only executes changed points); CRAYFISH_BENCH_JOBS fans replicas out
#: over worker processes. Defaults reproduce the serial uncached runs.
_BENCH_CACHE_DIR = os.environ.get("CRAYFISH_BENCH_CACHE")
_BENCH_JOBS = int(os.environ.get("CRAYFISH_BENCH_JOBS", "1"))
_BENCH_CACHE = ResultCache(_BENCH_CACHE_DIR) if _BENCH_CACHE_DIR else None


def _store_path() -> str | None:
    """CRAYFISH_STORE, read per call so tests can flip it at runtime.

    When set, the metrics benchmark records its telemetry baselines into
    the results database (and reads them back from there), on top of the
    BENCH_metrics.json file it always maintains.
    """
    return os.environ.get("CRAYFISH_STORE") or None


def replicated(config: ExperimentConfig, seeds=SEEDS):
    """Replicated results via the matrix engine (parallel/cached aware)."""
    return run_replicated_cached(
        config, seeds, jobs=_BENCH_JOBS, cache=_BENCH_CACHE
    )

#: The compiled-telemetry baseline the metrics benchmark maintains.
BENCH_METRICS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_metrics.json",
)


def mean_std(values: typing.Sequence[float]) -> tuple[float, float]:
    return statistics.fmean(values), statistics.pstdev(values)


def throughput(config: ExperimentConfig, seeds=SEEDS) -> tuple[float, float]:
    """Mean/std sustainable throughput across seeds (open loop, saturated)."""
    results = replicated(config.replace(ir=None), seeds)
    return mean_std([r.throughput for r in results])


def mean_latency(config: ExperimentConfig, seeds=SEEDS) -> tuple[float, float]:
    """Mean/std of mean end-to-end latency across seeds."""
    results = replicated(config, seeds)
    return mean_std([r.latency.mean for r in results])


def table(title: str, headers, rows) -> str:
    return format_table(headers, rows, title=title)


def telemetry_summary(result) -> dict:
    """Compress one metrics-on run into per-series summary statistics.

    ``result`` must come from ``ExperimentRunner.run(metrics=...)``; each
    scraped series collapses to last/peak/mean/samples, alongside the
    run's headline throughput and latency numbers.
    """
    if result.telemetry is None:
        raise ValueError("run the experiment with metrics on first")
    from repro.metrics.export import series_summaries

    return {
        "throughput": result.throughput,
        "latency_mean": result.latency.mean,
        "latency_p95": result.latency.p95,
        "completed": result.completed,
        "series": series_summaries(result.telemetry.scraper),
    }


def record_bench_metrics(
    entries: dict[str, dict], path: str = BENCH_METRICS_PATH
) -> dict:
    """Merge per-config telemetry summaries into ``BENCH_metrics.json``.

    The file is the perf-regression baseline: re-running the metrics
    benchmark after a change and diffing it surfaces shifted queue peaks,
    lag, or throughput per engine. Existing entries for other configs are
    preserved so engines can be re-profiled independently.
    """
    payload: dict[str, dict] = {}
    if os.path.exists(path):
        with open(path) as handle:
            payload = json.load(handle)
    payload.update(entries)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    store_path = _store_path()
    if store_path:
        from repro.store import ResultStore
        from repro.store.importers import record_bench_entries

        with ResultStore(store_path) as store:
            record_bench_entries(store, entries, source="bench")
    return payload


def load_bench_baseline(path: str = BENCH_METRICS_PATH) -> dict[str, dict]:
    """The telemetry regression baseline, one entry per config label.

    Reads the latest stored ``bench`` recording per label from the
    results database when ``CRAYFISH_STORE`` is set (so the baseline
    tracks history, not just the last committed file), and falls back to
    ``BENCH_metrics.json`` — always the answer when no store is
    configured or the store has no bench rows yet.
    """
    store_path = _store_path()
    if store_path and os.path.exists(store_path):
        from repro.store import HistoryFilter, ResultStore, history

        with ResultStore(store_path) as store:
            entries: dict[str, dict] = {}
            for row in history(store, HistoryFilter(kind="bench")):
                if row["label"] in entries:
                    continue  # rows are newest first; keep the latest
                entries[row["label"]] = {
                    "throughput": row["throughput"],
                    "latency_mean": row["latency_mean"],
                    "latency_p95": row["latency_p95"],
                    "completed": row["completed"],
                    "series": store.series_of(row["id"]),
                }
            if entries:
                return entries
    if os.path.exists(path):
        with open(path) as handle:
            return json.load(handle)
    return {}
