"""Helpers shared by the per-table/figure benchmarks."""

from __future__ import annotations

import json
import os
import statistics
import typing

from repro.config import ExperimentConfig
from repro.core.report import format_table
from repro.core.runner import ExperimentRunner

#: Seeds for the paper's run-everything-twice protocol.
SEEDS = (0, 1)

#: The compiled-telemetry baseline the metrics benchmark maintains.
BENCH_METRICS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_metrics.json",
)


def mean_std(values: typing.Sequence[float]) -> tuple[float, float]:
    return statistics.fmean(values), statistics.pstdev(values)


def throughput(config: ExperimentConfig, seeds=SEEDS) -> tuple[float, float]:
    """Mean/std sustainable throughput across seeds (open loop, saturated)."""
    runner = ExperimentRunner(config.replace(ir=None))
    return mean_std([runner.run(seed=s).throughput for s in seeds])


def mean_latency(config: ExperimentConfig, seeds=SEEDS) -> tuple[float, float]:
    """Mean/std of mean end-to-end latency across seeds."""
    runner = ExperimentRunner(config)
    return mean_std([runner.run(seed=s).latency.mean for s in seeds])


def table(title: str, headers, rows) -> str:
    return format_table(headers, rows, title=title)


def telemetry_summary(result) -> dict:
    """Compress one metrics-on run into per-series summary statistics.

    ``result`` must come from ``ExperimentRunner.run(metrics=...)``; each
    scraped series collapses to last/peak/mean/samples, alongside the
    run's headline throughput and latency numbers.
    """
    if result.telemetry is None:
        raise ValueError("run the experiment with metrics on first")
    series = {}
    for name, ts in sorted(result.telemetry.series().items()):
        values = list(ts.values)
        series[name] = {
            "last": values[-1],
            "peak": max(values),
            "mean": statistics.fmean(values),
            "samples": len(values),
        }
    return {
        "throughput": result.throughput,
        "latency_mean": result.latency.mean,
        "latency_p95": result.latency.p95,
        "completed": result.completed,
        "series": series,
    }


def record_bench_metrics(
    entries: dict[str, dict], path: str = BENCH_METRICS_PATH
) -> dict:
    """Merge per-config telemetry summaries into ``BENCH_metrics.json``.

    The file is the perf-regression baseline: re-running the metrics
    benchmark after a change and diffing it surfaces shifted queue peaks,
    lag, or throughput per engine. Existing entries for other configs are
    preserved so engines can be re-profiled independently.
    """
    payload: dict[str, dict] = {}
    if os.path.exists(path):
        with open(path) as handle:
            payload = json.load(handle)
    payload.update(entries)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
