"""Helpers shared by the per-table/figure benchmarks."""

from __future__ import annotations

import statistics
import typing

from repro.config import ExperimentConfig
from repro.core.report import format_table
from repro.core.runner import ExperimentRunner

#: Seeds for the paper's run-everything-twice protocol.
SEEDS = (0, 1)


def mean_std(values: typing.Sequence[float]) -> tuple[float, float]:
    return statistics.fmean(values), statistics.pstdev(values)


def throughput(config: ExperimentConfig, seeds=SEEDS) -> tuple[float, float]:
    """Mean/std sustainable throughput across seeds (open loop, saturated)."""
    runner = ExperimentRunner(config.replace(ir=None))
    return mean_std([runner.run(seed=s).throughput for s in seeds])


def mean_latency(config: ExperimentConfig, seeds=SEEDS) -> tuple[float, float]:
    """Mean/std of mean end-to-end latency across seeds."""
    runner = ExperimentRunner(config)
    return mean_std([runner.run(seed=s).latency.mean for s in seeds])


def table(title: str, headers, rows) -> str:
    return format_table(headers, rows, title=title)
