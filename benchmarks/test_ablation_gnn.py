"""Ablation: GNN serving with k-hop state reads (the paper's §9).

Implements the conclusion's future-work scenario — serving a model that
needs historical context per request — and measures where the latency
budget goes as hop depth grows. With an 80%-hit block cache, the k-hop
neighborhood fetch overtakes inference between k=2 and k=3.
"""

from bench_util import table

from repro import calibration as cal
from repro.nn.gnn import build_gcn
from repro.nn.zoo import ModelInfo
from repro.serving.costs import ServingCostModel
from repro.serving.embedded.gnn import GnnEmbeddedTool
from repro.serving.state import StateStore
from repro.simul import Environment

HOPS = [1, 2, 3]


def _measure(hops: int) -> tuple[float, float]:
    """(mean total service time, pure inference time) for one request."""
    env = Environment()
    gcn = build_gcn(hops=hops)
    info = ModelInfo(
        name=gcn.name,
        input_shape=gcn.input_shape,
        output_shape=gcn.output_shape,
        param_count=gcn.param_count,
        flops_per_point=gcn.flops_per_point,
    )
    costs = ServingCostModel(cal.SERVING_PROFILES["onnx"], info)
    tool = GnnEmbeddedTool(env, costs, gcn, StateStore(env))
    times = []

    def driver():
        yield from tool.load()
        for __ in range(100):
            result = yield from tool.score(1)
            times.append(result.service_time)

    env.process(driver())
    env.run()
    return sum(times) / len(times), costs.base_apply_time(1)


def test_ablation_gnn_state_reads(once, record_table):
    measured = once(lambda: {hops: _measure(hops) for hops in HOPS})
    rows = []
    for hops, (total, inference) in measured.items():
        state = total - inference
        keys = build_gcn(hops=hops).neighborhood_size
        rows.append(
            (
                hops,
                keys,
                f"{inference * 1e6:.1f}",
                f"{state * 1e6:.1f}",
                f"{state / total:.0%}",
            )
        )
    record_table(
        "ablation_gnn",
        table(
            "Ablation: GNN serving — where the time goes per request "
            "(ONNX engine, 80% state-cache hits)",
            ["hops", "keys/request", "inference (us)", "state reads (us)", "state share"],
            rows,
        ),
    )

    totals = {hops: measured[hops][0] for hops in HOPS}
    # Latency grows superlinearly with hop depth (geometric neighborhoods).
    assert totals[2] > 2 * totals[1]
    assert totals[3] > 4 * totals[2]
    # By k=3 state reads dominate the request.
    total3, inference3 = measured[3]
    assert (total3 - inference3) > inference3
