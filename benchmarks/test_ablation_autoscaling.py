"""Ablation: external-server autoscaling under bursts (§1/§7.2).

The paper names autoscaling as a headline capability of external serving
but evaluates fixed worker counts. Here a TorchServe deployment faces
periodic bursts above its single-worker capacity: a queue-driven
autoscaler (1..8 workers, 1 s provisioning delay) absorbs what a fixed
single worker turns into long queues.
"""

from bench_util import table

from repro.config import ExperimentConfig, WorkloadKind
from repro.core.runner import run_experiment


def test_ablation_autoscaling(once, record_table):
    def run_both():
        base = ExperimentConfig(
            sps="flink",
            serving="torchserve",
            model="ffnn",
            workload=WorkloadKind.PERIODIC_BURSTS,
            ir=400.0,
            bd=3.0,
            tbb=8.0,
            duration=25.0,
            mp=4,
            async_io=64,
            warmup_fraction=0.1,
        )
        return {
            "fixed (1 worker)": run_experiment(base.replace(server_workers=1)),
            "autoscaled (1..8)": run_experiment(base.replace(autoscale=(1, 8))),
        }

    measured = once(run_both)
    rows = [
        (
            label,
            f"{result.latency.p50 * 1e3:.1f}",
            f"{result.latency.p95 * 1e3:.1f}",
            f"{result.latency.maximum * 1e3:.0f}",
            f"{result.throughput:,.0f}",
        )
        for label, result in measured.items()
    ]
    record_table(
        "ablation_autoscaling",
        table(
            "Ablation: TorchServe under periodic bursts (3 s at 110% of a "
            "single worker's capacity)",
            ["deployment", "p50 (ms)", "p95 (ms)", "max (ms)", "events/s"],
            rows,
        ),
    )

    fixed = measured["fixed (1 worker)"]
    auto = measured["autoscaled (1..8)"]
    # Autoscaling at least halves the burst tail latency...
    assert auto.latency.p95 < 0.6 * fixed.latency.p95
    # ...without losing throughput.
    assert auto.throughput >= 0.95 * fixed.throughput
