"""Shared plumbing for the paper-reproduction benchmarks.

Every benchmark prints a paper-vs-measured table and also writes it to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can be regenerated
without re-running anything.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def record_table():
    """Print a result table and persist it under benchmarks/results/."""

    def _record(name: str, text: str) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
            handle.write(text + "\n")
        print()
        print(text)

    return _record


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    Simulation experiments are deterministic and take seconds; repeating
    them only rescales wall-clock, so one round is the right protocol.
    """

    def _once(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _once
