"""Table 4: serving-tool throughput on Apache Flink (bsz=1, mp=1).

Paper (events/s): FFNN — DL4J 787.53, ONNX 1373.07, SavedModel 1289.68,
TorchServe 225.09, TF-Serving 617.2. ResNet50 — ONNX 2.85,
TorchServe 0.91, TF-Serving 2.62.
"""

from bench_util import table, throughput

from repro.config import ExperimentConfig

PAPER_FFNN = {
    "dl4j": 787.53,
    "onnx": 1373.07,
    "savedmodel": 1289.68,
    "torchserve": 225.09,
    "tf_serving": 617.2,
}
PAPER_RESNET = {"onnx": 2.85, "torchserve": 0.91, "tf_serving": 2.62}


def test_table4_serving_throughput_on_flink(once, record_table):
    def run_all():
        measured = {}
        for tool in PAPER_FFNN:
            config = ExperimentConfig(
                sps="flink", serving=tool, model="ffnn", duration=3.0
            )
            measured[("ffnn", tool)] = throughput(config)
        for tool in PAPER_RESNET:
            config = ExperimentConfig(
                sps="flink", serving=tool, model="resnet50", duration=40.0
            )
            measured[("resnet50", tool)] = throughput(config)
        return measured

    measured = once(run_all)
    rows = []
    for (model, tool), (mean, std) in sorted(measured.items()):
        paper = (PAPER_FFNN if model == "ffnn" else PAPER_RESNET)[tool]
        rows.append(
            (model, tool, f"{paper:.2f}", f"{mean:.2f}", f"{std:.2f}",
             f"{mean / paper:.2f}x")
        )
    record_table(
        "table4",
        table(
            "Table 4: throughput on Flink (events/s), bsz=1 mp=1",
            ["model", "tool", "paper", "measured", "std", "vs paper"],
            rows,
        ),
    )

    ffnn = {tool: measured[("ffnn", tool)][0] for tool in PAPER_FFNN}
    resnet = {tool: measured[("resnet50", tool)][0] for tool in PAPER_RESNET}

    # Shape 1: embedded beats external for the small model, in the paper's
    # exact order ONNX > SavedModel > DL4J > TF-Serving > TorchServe.
    assert ffnn["onnx"] > ffnn["savedmodel"] > ffnn["dl4j"]
    assert ffnn["dl4j"] > ffnn["tf_serving"] > ffnn["torchserve"]
    # Shape 2: TF-Serving ~3x TorchServe.
    assert 2.0 < ffnn["tf_serving"] / ffnn["torchserve"] < 4.0
    # Shape 3: ResNet50 collapses everything under ~3 ev/s and closes the
    # embedded/external gap (ONNX ~ TF-Serving).
    assert all(rate < 3.5 for rate in resnet.values())
    assert 0.8 < resnet["onnx"] / resnet["tf_serving"] < 1.4
    assert resnet["torchserve"] < resnet["tf_serving"]
