"""Ablation: producer-level batching (§3.5 design decision).

Crayfish treats one CrayfishDataBatch of ``bsz`` points as a single event
so the SPS's per-event machinery is paid once per batch. This ablation
quantifies the decision: *point* throughput (points/s = events/s x bsz)
rises steeply with bsz as per-event overheads amortize, which is also the
mechanism behind Spark's micro-batch advantage (§7.1).
"""

from bench_util import table, throughput

from repro.config import ExperimentConfig

BATCH_SIZES = [1, 4, 16, 64]


def test_ablation_producer_batching(once, record_table):
    def run_all():
        measured = {}
        for bsz in BATCH_SIZES:
            # Longer windows for big batches: each event carries more work,
            # so fewer complete per simulated second.
            config = ExperimentConfig(
                sps="flink", serving="onnx", model="ffnn", bsz=bsz,
                duration=2.0 if bsz <= 16 else 6.0,
            )
            measured[bsz] = throughput(config, seeds=(0,))
        return measured

    measured = once(run_all)
    rows = [
        (bsz, f"{mean:,.0f}", f"{mean * bsz:,.0f}")
        for bsz, (mean, __) in measured.items()
    ]
    record_table(
        "ablation_producer_batching",
        table(
            "Ablation: producer-level batching (Flink + ONNX + FFNN)",
            ["bsz", "events/s", "points/s"],
            rows,
        ),
    )

    points = {bsz: measured[bsz][0] * bsz for bsz in BATCH_SIZES}
    # Per-point throughput rises with batch size as per-event overheads
    # amortize (with diminishing returns once serde dominates)...
    assert points[16] > points[4] > points[1]
    assert points[64] > 1.5 * points[1]
    # ...while event throughput falls (each event carries more work).
    assert measured[64][0] < measured[1][0]
