"""Figure 7: vertical scalability on Flink + ResNet50 (mp = 1..16).

Paper shapes: ONNX and TorchServe scale like they did for FFNN;
TF-Serving shows *negligible* gains (single-session execution of large
models); TorchServe starts behind TF-Serving but overtakes it past
mp ~ 8.
"""

from bench_util import table, throughput

from repro.config import ExperimentConfig

TOOLS = ["onnx", "tf_serving", "torchserve"]
PARALLELISM = [1, 2, 4, 8, 16]


def test_fig7_vertical_scalability_resnet(once, record_table):
    def run_all():
        measured = {}
        for tool in TOOLS:
            for mp in PARALLELISM:
                config = ExperimentConfig(
                    sps="flink", serving=tool, model="resnet50", mp=mp, duration=40.0
                )
                measured[(tool, mp)] = throughput(config, seeds=(0,))
        return measured

    measured = once(run_all)
    rows = [
        (tool, " ".join(f"{measured[(tool, mp)][0]:.2f}" for mp in PARALLELISM))
        for tool in TOOLS
    ]
    from repro.core.ascii_chart import render_chart

    chart = render_chart(
        {
            tool: [(mp, measured[(tool, mp)][0]) for mp in PARALLELISM]
            for tool in TOOLS
        },
        x_label="mp",
    )
    record_table(
        "fig7",
        table(
            "Fig. 7: Flink + ResNet50 scaling (events/s at mp=1,2,4,8,16)",
            ["tool", "measured series"],
            rows,
        )
        + "\n\n"
        + chart,
    )

    def rate(tool, mp):
        return measured[(tool, mp)][0]

    # Shape 1: ONNX scales like it did for FFNN.
    assert rate("onnx", 16) > 4.0 * rate("onnx", 1)
    # Shape 2: TF-Serving is flat — negligible gains from scaling.
    assert rate("tf_serving", 16) < 1.4 * rate("tf_serving", 1)
    # Shape 3: TorchServe loses at low mp but overtakes TF-Serving at
    # high parallelism (paper: after mp=8).
    assert rate("torchserve", 1) < rate("tf_serving", 1)
    assert rate("torchserve", 2) < rate("tf_serving", 2)
    assert rate("torchserve", 16) > rate("tf_serving", 16)
