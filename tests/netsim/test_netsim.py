"""Unit tests for the network and serialization cost models."""

import pytest

from repro.netsim import GrpcChannel, HttpChannel, Link, binary_payload, json_payload


def test_json_payload_scales_with_values():
    small = json_payload(10)
    big = json_payload(1000)
    assert big.nbytes > small.nbytes
    assert big.encode_cost > small.encode_cost
    assert big.decode_cost > small.decode_cost


def test_json_payload_has_envelope():
    empty = json_payload(0)
    assert empty.nbytes > 0


def test_binary_payload_smaller_than_json():
    values = 784
    assert binary_payload(values).nbytes < json_payload(values).nbytes


def test_binary_codec_cheaper_than_json():
    values = 10_000
    assert binary_payload(values).encode_cost < json_payload(values).encode_cost


def test_payload_rejects_negative():
    with pytest.raises(ValueError):
        json_payload(-1)


def test_link_matches_paper_ping_times():
    """§4.2: ~0.945 ms RTT for a 3 KB payload, ~1.565 ms for 64 KB."""
    link = Link()
    assert link.rtt(3 * 1024) == pytest.approx(0.945e-3, rel=0.1)
    assert link.rtt(64 * 1024) == pytest.approx(1.565e-3, rel=0.15)


def test_link_transfer_monotone_in_size():
    link = Link()
    assert link.transfer_time(1000) < link.transfer_time(100_000)


def test_link_rejects_bad_parameters():
    with pytest.raises(ValueError):
        Link(base_latency=-1)
    with pytest.raises(ValueError):
        Link(bandwidth=0)
    with pytest.raises(ValueError):
        Link().transfer_time(-5)


def test_grpc_round_trip_costs_positive():
    channel = GrpcChannel()
    costs = channel.round_trip_costs(request_values=784, response_values=10)
    assert costs.client_cpu > 0
    assert costs.request_transfer > 0
    assert costs.response_transfer > 0
    assert costs.total == pytest.approx(
        costs.client_cpu + costs.request_transfer + costs.response_transfer
    )


def test_http_json_costlier_than_grpc():
    values = 784 * 64
    http = HttpChannel().round_trip_costs(values, 10)
    grpc = GrpcChannel().round_trip_costs(values, 10)
    assert http.total > grpc.total


def test_server_codec_costs():
    channel = GrpcChannel()
    assert channel.server_decode_cost(784) > 0
    assert channel.server_encode_cost(10) > 0
