"""Golden-result regression for the scale-out matrix preset.

Pins every aggregate of the ``scaleout`` grid — two engines crossed with
1/2/3-node clusters, fixed seed — against
``tests/golden/scaleout_golden.json``, exactly like the single-node
matrix golden. Any simulator change that moves a scale-out number fails
here first; bless deliberate changes with::

    PYTHONPATH=src python -m pytest tests/cluster/test_golden_scaleout.py --update-golden
"""

import json
import pathlib

import pytest

from repro.matrix import run_matrix
from repro.matrix.presets import preset

GOLDEN_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "golden"
    / "scaleout_golden.json"
)

#: Shortened duration keeps the six clustered runs tier-1-fast while
#: still exercising every placement path the preset does.
DURATION = 0.5
SEEDS = (0,)


def _spec():
    spec = preset("scaleout")
    return spec.base.replace(duration=DURATION), spec.grid


def _run_record(record: dict, seed: int) -> dict:
    return {
        "seed": seed,
        "throughput": record["throughput"],
        "latency": record["latency"],
        "completed": record["completed"],
        "produced": record["produced"],
        "duplicates": record["duplicates"],
        "inference_requests": record["inference_requests"],
    }


def measure() -> dict:
    base, grid = _spec()
    report = run_matrix(base, grid, seeds=SEEDS, jobs=1, cache=None)
    points = []
    for index, point in enumerate(report.points):
        runs = [
            _run_record(report.records[index * len(SEEDS) + offset], seed)
            for offset, seed in enumerate(SEEDS)
        ]
        overrides = {
            key: str(value) for key, value in sorted(point.overrides.items())
        }
        points.append({"overrides": overrides, "runs": runs})
    return {
        "base": base.canonical_dict(),
        "grid": {key: [str(v) for v in grid[key]] for key in sorted(grid)},
        "seeds": list(SEEDS),
        "points": points,
    }


def canonical_text(doc: dict) -> str:
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def test_golden_scaleout(update_golden):
    current = measure()
    if update_golden:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(canonical_text(current))
        pytest.skip(f"golden results refreshed at {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        f"missing {GOLDEN_PATH}; generate it with pytest --update-golden"
    )
    stored = json.loads(GOLDEN_PATH.read_text())
    assert stored["base"] == current["base"], (
        "golden base config drifted; refresh with --update-golden"
    )
    assert stored["grid"] == current["grid"]
    assert stored["seeds"] == current["seeds"]
    for expected, actual in zip(stored["points"], current["points"]):
        label = expected["overrides"]
        assert actual["overrides"] == expected["overrides"]
        assert actual["runs"] == expected["runs"], (
            f"scale-out aggregates changed for {label}: expected "
            f"{expected['runs']}, got {actual['runs']} — if intentional, "
            "re-bless with --update-golden"
        )
    assert canonical_text(stored) == canonical_text(current)
