"""End-to-end clustered experiments: scaling, observability, determinism."""

import pytest

from repro.analysis.determinism import verify_determinism
from repro.cluster.spec import ClusterSpec, FlashCrowd, PopulationSpec
from repro.config import ExperimentConfig
from repro.core.runner import ExperimentRunner, run_experiment
from repro.metrics import MetricsOptions
from repro.tracing.analysis import node_breakdown
from repro.tracing.spans import TraceOptions


def _config(**extra):
    base = dict(
        sps="flink",
        serving="onnx",
        model="ffnn",
        ir=100.0,
        duration=1.5,
        cluster=ClusterSpec(nodes=2),
    )
    base.update(extra)
    return ExperimentConfig(**base)


def test_embedded_clustered_run_completes():
    result = run_experiment(_config())
    assert result.completed > 0
    assert result.throughput == pytest.approx(100.0, rel=0.1)


def test_external_clustered_run_uses_the_fleet():
    result = run_experiment(
        _config(serving="tf_serving", ir=50.0, mp=2)
    )
    assert result.completed > 0
    assert result.inference_requests > 0


def test_saturating_throughput_scales_with_nodes():
    """More nodes -> more engine parallelism -> more events/s."""
    one = run_experiment(
        _config(ir=None, mp=2, cluster=ClusterSpec(nodes=1), duration=1.0)
    )
    three = run_experiment(
        _config(ir=None, mp=2, cluster=ClusterSpec(nodes=3), duration=1.0)
    )
    assert three.throughput > one.throughput * 1.5


def test_population_workload_drives_the_pipeline():
    config = _config(
        ir=None,
        population=PopulationSpec(
            users=10_000,
            events_per_user_per_day=864.0,  # 100 ev/s aggregate
            diurnal_period=10.0,
            flash_crowds=(FlashCrowd(at=0.5, duration=0.3, multiplier=3.0),),
        ),
    )
    result = run_experiment(config)
    assert result.completed > 0
    # the flash crowd pushes production above the flat mean
    assert result.produced > 100 * config.duration


def test_per_node_gauges_registered():
    result = ExperimentRunner(
        _config(serving="tf_serving", ir=50.0)
    ).run(metrics=MetricsOptions(scrape_interval=0.25))
    registry = result.telemetry.registry
    assert registry.get("cluster_nodes").value() == 2.0
    for node in ("node-0", "node-1"):
        labels = {"node": node}
        assert registry.get("cluster_node_brokers", labels).value() == 1.0
        assert registry.get("cluster_node_tasks", labels).value() >= 1.0
        assert registry.get("cluster_node_replicas", labels).value() == 1.0
        assert registry.get("serving_node_requests", labels).value() > 0.0
    assert registry.get("serving_fleet_replicas").value() == 2.0


def test_traces_attribute_spans_to_nodes():
    result = ExperimentRunner(
        _config(serving="tf_serving", ir=50.0)
    ).run(trace=TraceOptions())
    breakdown = node_breakdown(result.trace)
    named = {node for node in breakdown if node.startswith("node-")}
    assert named, f"no node-attributed spans in {sorted(breakdown)}"
    assert all(duration >= 0 for duration in breakdown.values())


def test_clustered_runs_are_byte_identical():
    config = _config(ir=80.0, duration=1.0)
    verdicts = verify_determinism(config, engines=("flink",), sanitize=True)
    assert all(v.identical for v in verdicts), [v.mismatched for v in verdicts]


def test_clustered_external_determinism():
    config = _config(serving="tf_serving", ir=40.0, duration=1.0, mp=2)
    a = run_experiment(config)
    b = run_experiment(config)
    assert a.throughput == b.throughput
    assert a.latency == b.latency
    assert a.completed == b.completed
    assert a.inference_requests == b.inference_requests


def test_unclustered_config_is_untouched():
    """cluster=None keeps the original single-node pipeline semantics."""
    config = ExperimentConfig(
        sps="flink", serving="onnx", model="ffnn", ir=100.0, duration=1.0
    )
    assert config.cluster is None
    result = run_experiment(config)
    assert result.completed > 0
