"""CLI coverage for ``crayfish cluster`` and the scale-out presets."""

import pytest

from repro.cli import main


def test_cluster_run_command(capsys):
    code = main(
        [
            "cluster", "run", "--nodes", "2", "--ir", "50",
            "--duration", "1", "--placement",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "flink/onnx/ffnn@2n" in out
    assert "throughput" in out
    assert "node-0" in out and "node-1" in out


def test_cluster_run_population(capsys):
    code = main(
        [
            "cluster", "run", "--nodes", "2", "--duration", "1",
            "--users", "5000", "--events-per-user-per-day", "864",
            "--diurnal-period", "20",
            "--flash-crowd", "0.2:0.2:3",
        ]
    )
    assert code == 0
    assert "throughput" in capsys.readouterr().out


def test_cluster_run_rejects_bad_flash_crowd(capsys):
    code = main(
        [
            "cluster", "run", "--nodes", "1", "--duration", "1",
            "--users", "10", "--flash-crowd", "nope",
        ]
    )
    assert code == 2
    assert "AT:DURATION:MULTIPLIER" in capsys.readouterr().err


def test_cluster_run_friendly_config_error(capsys):
    code = main(
        [
            "cluster", "run", "--nodes", "2", "--duration", "1",
            "--tasks-per-node", "4", "--partitions", "4",
        ]
    )
    assert code == 2
    assert "partitions" in capsys.readouterr().err


def test_cluster_capacity_search_command(capsys):
    code = main(
        [
            "cluster", "capacity-search",
            "--node-counts", "1,2", "--mp", "1",
            "--duration", "0.5", "--seeds", "0",
            "--start-rate", "200", "--tolerance", "0.4",
            "--max-probes", "5", "--slo-p95", "0.5",
            "--no-cache", "--verbose",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "sustainable" in out
    assert "probe" in out
    assert "monotonically" in out


def test_matrix_accepts_scaleout_preset(capsys):
    code = main(
        [
            "matrix", "--preset", "scaleout", "--duration", "0.25",
            "--seeds", "0", "--no-cache",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "matrix preset 'scaleout'" in out
    assert "1n" in out and "3n" in out


def test_verify_determinism_clustered(capsys):
    code = main(
        [
            "verify-determinism", "--sps", "flink", "--nodes", "2",
            "--ir", "50", "--duration", "1",
        ]
    )
    assert code == 0
    assert "byte-identical" in capsys.readouterr().out


def test_cluster_requires_subcommand():
    with pytest.raises(SystemExit):
        main(["cluster"])
