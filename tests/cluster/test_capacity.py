"""Capacity-search driver: SLO predicate, bisection, and the curve."""

import math

import pytest

import repro.cluster.capacity as capacity_mod
from repro.cluster.capacity import (
    CapacityCurve,
    CapacityResult,
    SloPolicy,
    capacity_curve,
    search_capacity,
)
from repro.cluster.spec import ClusterSpec
from repro.config import ExperimentConfig
from repro.core.metrics import LatencyStats
from repro.errors import ConfigError


class _FakeResult:
    """The slice of ExperimentResult the SLO predicate reads."""

    def __init__(self, throughput, p95):
        self.throughput = throughput
        self.latency = LatencyStats(
            count=1, mean=p95, std=0.0, p50=p95, p95=p95, p99=p95, p999=p95,
            minimum=p95, maximum=p95,
        )


def _config(**extra):
    base = dict(
        sps="flink",
        serving="onnx",
        model="ffnn",
        ir=None,
        duration=1.0,
        cluster=ClusterSpec(nodes=1),
    )
    base.update(extra)
    return ExperimentConfig(**base)


# -- SloPolicy -----------------------------------------------------------


def test_slo_policy_validation():
    with pytest.raises(ConfigError):
        SloPolicy(p95_latency=0.0)
    with pytest.raises(ConfigError):
        SloPolicy(min_goodput=0.0)
    with pytest.raises(ConfigError):
        SloPolicy(min_goodput=1.5)


def test_slo_policy_predicate():
    slo = SloPolicy(p95_latency=0.5, min_goodput=0.9)
    assert slo.satisfied(100.0, [_FakeResult(throughput=95.0, p95=0.1)])
    # p95 over the bound
    assert not slo.satisfied(100.0, [_FakeResult(throughput=95.0, p95=0.6)])
    # goodput below the floor
    assert not slo.satisfied(100.0, [_FakeResult(throughput=80.0, p95=0.1)])
    # no completions in the window -> NaN p95 -> not sustained
    assert not slo.satisfied(
        100.0, [_FakeResult(throughput=0.0, p95=math.nan)]
    )


# -- search (with a fake simulator: capacity cliff at a known rate) ------


def _fake_runner(cliff):
    """run_replicated stand-in: sustains below ``cliff``, collapses above."""

    def run(config, seeds=(0,), jobs=1, cache=None):
        rate = config.ir if config.ir is not None else config.population.mean_rate
        if rate <= cliff:
            return [_FakeResult(throughput=rate, p95=0.05)]
        return [_FakeResult(throughput=cliff * 0.5, p95=2.0)]

    return run


def test_search_brackets_the_cliff(monkeypatch):
    monkeypatch.setattr(capacity_mod, "run_replicated", _fake_runner(1000.0))
    result = search_capacity(
        _config(), seeds=(0,), start_rate=100.0, tolerance=0.05
    )
    assert result.capacity <= 1000.0
    # within the relative tolerance of the true cliff
    assert result.capacity >= 1000.0 * (1 - 0.08)
    rates = [p.rate for p in result.probes]
    assert len(rates) == len(set(rates)), "no rate probed twice"
    sustained = {p.rate for p in result.probes if p.sustained}
    assert result.capacity in sustained


def test_search_handles_failing_first_probe(monkeypatch):
    monkeypatch.setattr(capacity_mod, "run_replicated", _fake_runner(10.0))
    result = search_capacity(
        _config(), seeds=(0,), start_rate=1000.0, tolerance=0.1, max_probes=16
    )
    # bisection searched downward from the broken first probe
    assert 0.0 <= result.capacity <= 10.0


def test_search_respects_probe_budget(monkeypatch):
    monkeypatch.setattr(capacity_mod, "run_replicated", _fake_runner(1e9))
    result = search_capacity(
        _config(), seeds=(0,), start_rate=1.0, max_probes=5
    )
    assert len(result.probes) == 5


def test_search_hook_sees_every_probe(monkeypatch):
    monkeypatch.setattr(capacity_mod, "run_replicated", _fake_runner(500.0))
    seen = []
    result = search_capacity(
        _config(), seeds=(0,), start_rate=100.0, hook=seen.append
    )
    assert [p.rate for p in seen] == [p.rate for p in result.probes]


def test_search_validates_arguments():
    with pytest.raises(ConfigError):
        search_capacity(_config(), start_rate=0.0)
    with pytest.raises(ConfigError):
        search_capacity(_config(), tolerance=1.5)
    with pytest.raises(ConfigError):
        search_capacity(_config(), max_probes=1)


# -- curve ---------------------------------------------------------------


def test_capacity_curve_reshapes_cluster(monkeypatch):
    probed_nodes = []

    def fake_run(config, seeds=(0,), jobs=1, cache=None):
        probed_nodes.append(config.cluster.nodes)
        cliff = 100.0 * config.cluster.nodes
        rate = config.ir
        if rate <= cliff:
            return [_FakeResult(throughput=rate, p95=0.05)]
        return [_FakeResult(throughput=cliff, p95=2.0)]

    monkeypatch.setattr(capacity_mod, "run_replicated", fake_run)
    sizes = []
    curve = capacity_curve(
        _config(cluster=ClusterSpec(nodes=1, racks=1)),
        node_counts=(1, 2, 4),
        seeds=(0,),
        start_rate=50.0,
        size_hook=lambda nodes, result: sizes.append(nodes),
    )
    assert [nodes for nodes, __ in curve.points] == [1, 2, 4]
    assert sizes == [1, 2, 4]
    assert curve.monotonic
    assert set(probed_nodes) == {1, 2, 4}
    capacities = [result.capacity for __, result in curve.points]
    assert capacities[0] < capacities[1] < capacities[2]


def test_capacity_curve_requires_cluster():
    config = ExperimentConfig(
        sps="flink", serving="onnx", model="ffnn", duration=1.0
    )
    with pytest.raises(ConfigError, match="clustered"):
        capacity_curve(config, node_counts=(1, 2))
    with pytest.raises(ConfigError, match="node count"):
        capacity_curve(_config(), node_counts=())


def test_curve_monotonic_property():
    def result(cap):
        return CapacityResult(config=_config(), capacity=cap, probes=())

    assert CapacityCurve(((1, result(10)), (2, result(10)))).monotonic
    assert not CapacityCurve(((1, result(10)), (2, result(5)))).monotonic


# -- one real (tiny) search against the simulator ------------------------


def test_real_search_finds_nonzero_capacity():
    result = search_capacity(
        _config(duration=0.5),
        slo=SloPolicy(p95_latency=0.5),
        seeds=(0,),
        start_rate=200.0,
        tolerance=0.5,
        max_probes=4,
    )
    assert result.capacity > 0.0
    assert result.probes[0].sustained
