"""Property-based tests (hypothesis) for the population workload.

The generator's contract: per-user rates are a pure function of
``(spec, seed)``, heavy-tail parameters shape the rate distribution the
way they claim to, and equal seeds render byte-identical schedules.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.spec import FlashCrowd, PopulationSpec
from repro.cluster.workload import PopulationWorkload

USERS = st.integers(min_value=1, max_value=5000)
SEEDS = st.integers(min_value=0, max_value=2**32 - 1)
DISTS = st.sampled_from(["zipf", "lognormal"])


@given(users=USERS, seed=SEEDS, dist=DISTS)
@settings(max_examples=40, deadline=None)
def test_user_rates_seed_deterministic(users, seed, dist):
    spec = PopulationSpec(users=users, distribution=dist)
    a = PopulationWorkload(spec, seed=seed).user_rates()
    b = PopulationWorkload(spec, seed=seed).user_rates()
    assert np.array_equal(a, b)
    # heaviest-first, all positive, sums to the spec's aggregate rate
    assert np.all(a[:-1] >= a[1:])
    assert np.all(a > 0)
    assert float(a.sum()) == pytest.approx(spec.mean_rate, rel=1e-9)


@given(seed=SEEDS)
@settings(max_examples=20, deadline=None)
def test_lognormal_rates_differ_across_seeds(seed):
    spec = PopulationSpec(users=500, distribution="lognormal")
    a = PopulationWorkload(spec, seed=seed).user_rates()
    b = PopulationWorkload(spec, seed=seed + 1).user_rates()
    assert not np.array_equal(a, b)


@given(
    exponent=st.floats(min_value=1.05, max_value=2.5),
    steeper=st.floats(min_value=0.1, max_value=1.0),
)
@settings(max_examples=25, deadline=None)
def test_zipf_exponent_concentrates_the_head(exponent, steeper):
    """A larger zipf exponent puts a larger share on the heaviest users."""
    users = 10_000
    shallow = PopulationWorkload(
        PopulationSpec(users=users, zipf_exponent=exponent)
    )
    steep = PopulationWorkload(
        PopulationSpec(users=users, zipf_exponent=exponent + steeper)
    )
    assert steep.head_share(0.01) > shallow.head_share(0.01)


@given(sigma=st.floats(min_value=0.5, max_value=2.0), seed=SEEDS)
@settings(max_examples=25, deadline=None)
def test_lognormal_sigma_widens_the_tail(sigma, seed):
    users = 5000
    narrow = PopulationWorkload(
        PopulationSpec(users=users, distribution="lognormal", sigma=sigma * 0.5),
        seed=seed,
    )
    wide = PopulationWorkload(
        PopulationSpec(users=users, distribution="lognormal", sigma=sigma * 1.5),
        seed=seed,
    )
    assert wide.head_share(0.01) > narrow.head_share(0.01)


@given(users=USERS, seed=SEEDS, dist=DISTS)
@settings(max_examples=30, deadline=None)
def test_same_seed_schedules_byte_identical(users, seed, dist):
    spec = PopulationSpec(
        users=users,
        distribution=dist,
        diurnal_period=50.0,
        flash_crowds=(FlashCrowd(at=5.0, duration=3.0, multiplier=4.0),),
    )
    a = PopulationWorkload(spec, seed=seed).schedule_bytes(20.0, resolution=0.5)
    b = PopulationWorkload(spec, seed=seed).schedule_bytes(20.0, resolution=0.5)
    assert a == b


def test_different_seed_schedules_differ_for_lognormal():
    spec = PopulationSpec(users=200, distribution="lognormal")
    a = PopulationWorkload(spec, seed=0).schedule_bytes(5.0)
    b = PopulationWorkload(spec, seed=1).schedule_bytes(5.0)
    assert a != b


@given(
    amplitude=st.floats(min_value=0.0, max_value=0.9),
    time=st.floats(min_value=0.0, max_value=1e4),
)
@settings(max_examples=40, deadline=None)
def test_diurnal_modulation_bounded(amplitude, time):
    spec = PopulationSpec(users=100, diurnal_amplitude=amplitude)
    workload = PopulationWorkload(spec)
    factor = workload.modulation(time)
    eps = 1e-12
    assert 1.0 - amplitude - eps <= factor <= 1.0 + amplitude + eps
    assert workload.rate_at(time) == pytest.approx(
        spec.mean_rate * factor
    )


def test_flash_crowd_multiplies_only_inside_window():
    spec = PopulationSpec(
        users=100,
        diurnal_amplitude=0.0,
        flash_crowds=(FlashCrowd(at=10.0, duration=5.0, multiplier=3.0),),
    )
    workload = PopulationWorkload(spec)
    assert workload.modulation(9.9) == pytest.approx(1.0)
    assert workload.modulation(12.0) == pytest.approx(3.0)
    assert workload.modulation(15.0) == pytest.approx(1.0)


def test_compile_rejects_bad_windows():
    workload = PopulationWorkload(PopulationSpec(users=10))
    with pytest.raises(ValueError):
        workload.compile(0.0)
    with pytest.raises(ValueError):
        workload.compile(1.0, resolution=0.0)
