"""Topology link resolution and deterministic placement."""

import pytest

from repro import calibration as cal
from repro.cluster.spec import ClusterSpec
from repro.cluster.topology import (
    DRIVER_NODE,
    LOOPBACK_LATENCY,
    RACK_LATENCY,
    ClusterTopology,
    NodeSpec,
)
from repro.cluster.placement import PlacementPlan
from repro.errors import ConfigError


def _topology(nodes=4, racks=2, cpus=16):
    return ClusterTopology.from_spec(
        ClusterSpec(nodes=nodes, racks=racks, cpus_per_node=cpus)
    )


# -- topology ------------------------------------------------------------


def test_from_spec_names_and_racks_round_robin():
    topo = _topology(nodes=5, racks=2)
    assert topo.node_names == tuple(f"node-{i}" for i in range(5))
    assert [topo.node(n).rack for n in topo.node_names] == [0, 1, 0, 1, 0]
    assert topo.rack_count == 2


def test_topology_rejects_duplicate_and_reserved_names():
    with pytest.raises(ConfigError, match="duplicate"):
        ClusterTopology([NodeSpec("a", 4, 0), NodeSpec("a", 4, 0)])
    with pytest.raises(ConfigError, match="reserved"):
        ClusterTopology([NodeSpec(DRIVER_NODE, 4, 0)])
    with pytest.raises(ConfigError):
        ClusterTopology([])


def test_link_resolution_tiers():
    topo = _topology(nodes=4, racks=2)
    # same node -> loopback
    assert topo.link_between("node-0", "node-0") is topo.loopback
    # same rack (0 and 2), different node -> rack link
    assert topo.link_between("node-0", "node-2") is topo.rack_link
    # different racks -> lan
    assert topo.link_between("node-0", "node-1") is topo.lan_link
    # the driver always pays the lan, even "to itself"
    assert topo.link_between(DRIVER_NODE, "node-0") is topo.lan_link
    assert topo.link_between(DRIVER_NODE, DRIVER_NODE) is topo.lan_link
    # unattributed endpoint -> typical internal hop
    assert topo.link_between(None, "node-0") is topo.typical_internal_link()


def test_link_latencies_are_ordered():
    topo = _topology()
    assert (
        topo.loopback.base_latency
        < topo.rack_link.base_latency
        < topo.lan_link.base_latency
    )
    assert topo.loopback.base_latency == LOOPBACK_LATENCY
    assert topo.rack_link.base_latency == RACK_LATENCY
    assert topo.lan_link.base_latency == cal.NET_BASE_LATENCY


def test_typical_internal_link_by_size():
    topo0 = _topology(1, 1)
    assert topo0.typical_internal_link() is topo0.loopback
    topo1 = _topology(3, 1)
    assert topo1.typical_internal_link() is topo1.rack_link
    topo2 = _topology(4, 2)
    assert topo2.typical_internal_link() is topo2.lan_link


def test_spec_latency_overrides():
    topo = ClusterTopology.from_spec(
        ClusterSpec(
            nodes=2, rack_latency=0.001, lan_latency=0.002, bandwidth=1e6
        )
    )
    assert topo.rack_link.base_latency == 0.001
    assert topo.lan_link.base_latency == 0.002
    assert topo.lan_link.bandwidth == 1e6


def test_unknown_node_lookup():
    with pytest.raises(ConfigError, match="unknown node"):
        _topology().node("node-99")


# -- placement -----------------------------------------------------------


def test_placement_round_robin_layout():
    plan = PlacementPlan(_topology(nodes=2), tasks_per_node=2, replicas_per_node=2)
    assert plan.broker_nodes == ("node-0", "node-1")
    assert plan.task_nodes == ("node-0", "node-0", "node-1", "node-1")
    assert plan.replica_nodes == ("node-0", "node-0", "node-1", "node-1")
    assert plan.lb_node == "node-0"
    assert plan.driver_node == DRIVER_NODE
    assert plan.total_tasks == 4
    assert plan.total_replicas == 4
    assert plan.node_of_task(1) == "node-0"
    assert plan.node_of_task(2) == "node-1"
    assert plan.node_of_replica(3) == "node-1"


def test_placement_broker_interface():
    plan = PlacementPlan(_topology(nodes=2), tasks_per_node=1)
    assert plan.broker_count == 2
    assert plan.broker_index(5) == 1
    assert plan.node_of_partition(4) == "node-0"
    link = plan.link_to_partition(DRIVER_NODE, 0)
    assert link is plan.topology.lan_link
    assert plan.link_to_partition("node-0", 0) is plan.topology.loopback


def test_placement_is_deterministic():
    spec = ClusterSpec(nodes=3, racks=2, replicas_per_node=2)
    a = PlacementPlan.from_spec(spec, base_tasks=2, external_serving=True)
    b = PlacementPlan.from_spec(spec, base_tasks=2, external_serving=True)
    assert a.task_nodes == b.task_nodes
    assert a.replica_nodes == b.replica_nodes
    assert a.counts_by_node() == b.counts_by_node()


def test_placement_refuses_oversubscription():
    topo = ClusterTopology.from_spec(ClusterSpec(nodes=2, cpus_per_node=4))
    with pytest.raises(ConfigError, match="oversubscribes"):
        PlacementPlan(topo, tasks_per_node=8)


def test_embedded_serving_places_no_replicas():
    plan = PlacementPlan.from_spec(
        ClusterSpec(nodes=2, replicas_per_node=4),
        base_tasks=1,
        external_serving=False,
    )
    assert plan.total_replicas == 0
    counts = plan.counts_by_node()
    assert all(c["replicas"] == 0 for c in counts.values())
    assert all(c["brokers"] == 1 for c in counts.values())


def test_describe_mentions_every_node():
    plan = PlacementPlan.from_spec(
        ClusterSpec(nodes=2, replicas_per_node=1),
        base_tasks=1,
        external_serving=True,
    )
    text = plan.describe()
    assert "node-0" in text and "node-1" in text and "lb" in text
