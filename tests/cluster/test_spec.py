"""Validation and lossless round-trips for the cluster config types."""

import pytest

from repro.cluster.spec import (
    ClusterSpec,
    FlashCrowd,
    PopulationSpec,
    cluster_spec_from_dict,
    population_spec_from_dict,
)
from repro.config import ExperimentConfig, config_from_dict
from repro.errors import ConfigError


# -- ClusterSpec ---------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"nodes": 0},
        {"nodes": 2000},
        {"cpus_per_node": 0},
        {"racks": 0},
        {"nodes": 2, "racks": 3},
        {"tasks_per_node": 0},
        {"replicas_per_node": 0},
        {"rack_latency": -0.1},
        {"lan_latency": -1.0},
        {"bandwidth": 0.0},
    ],
)
def test_cluster_spec_rejects(kwargs):
    with pytest.raises(ConfigError):
        ClusterSpec(**kwargs)


def test_cluster_spec_compact_str():
    assert str(ClusterSpec(nodes=3)) == "3n"
    assert str(ClusterSpec(nodes=4, racks=2)) == "4n/2r"


def test_cluster_spec_dict_round_trip():
    spec = ClusterSpec(nodes=4, racks=2, tasks_per_node=3, bandwidth=2e8)
    import dataclasses

    assert cluster_spec_from_dict(dataclasses.asdict(spec)) == spec


def test_cluster_spec_rejects_unknown_fields():
    with pytest.raises(ConfigError, match="unknown cluster field"):
        cluster_spec_from_dict({"nodes": 2, "cores": 8})


# -- PopulationSpec ------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"users": 0},
        {"users": 200_000_000},
        {"distribution": "pareto"},
        {"zipf_exponent": 1.0},
        {"sigma": -0.5},
        {"events_per_user_per_day": 0.0},
        {"diurnal_amplitude": 1.0},
        {"diurnal_period": 0.0},
        {"rate_scale": 0.0},
        {
            "flash_crowds": (
                FlashCrowd(at=10.0, duration=1.0, multiplier=2.0),
                FlashCrowd(at=5.0, duration=1.0, multiplier=2.0),
            )
        },
    ],
)
def test_population_spec_rejects(kwargs):
    with pytest.raises(ConfigError):
        PopulationSpec(**kwargs)


def test_flash_crowd_validation_and_window():
    with pytest.raises(ConfigError):
        FlashCrowd(at=-1.0, duration=1.0, multiplier=2.0)
    with pytest.raises(ConfigError):
        FlashCrowd(at=0.0, duration=0.0, multiplier=2.0)
    with pytest.raises(ConfigError):
        FlashCrowd(at=0.0, duration=1.0, multiplier=0.0)
    crowd = FlashCrowd(at=2.0, duration=3.0, multiplier=4.0)
    assert not crowd.active(1.99)
    assert crowd.active(2.0)
    assert crowd.active(4.99)
    assert not crowd.active(5.0)


def test_population_mean_rate():
    spec = PopulationSpec(
        users=86_400, events_per_user_per_day=2.0, rate_scale=3.0
    )
    assert spec.mean_rate == pytest.approx(86_400 * 2.0 / 86_400 * 3.0)


def test_population_spec_rejects_unknown_fields():
    with pytest.raises(ConfigError, match="unknown population field"):
        population_spec_from_dict({"users": 10, "countries": 3})


# -- ExperimentConfig integration ---------------------------------------


def _clustered_config(**extra):
    return ExperimentConfig(
        sps="flink",
        serving="onnx",
        model="ffnn",
        ir=50.0,
        duration=1.0,
        cluster=ClusterSpec(nodes=2, racks=2),
        **extra,
    )


def test_config_round_trips_cluster_and_population():
    config = ExperimentConfig(
        sps="flink",
        serving="tf_serving",
        model="ffnn",
        duration=1.0,
        mp=2,
        cluster=ClusterSpec(nodes=3, tasks_per_node=2, replicas_per_node=2),
        population=PopulationSpec(
            users=1000,
            distribution="lognormal",
            sigma=1.5,
            diurnal_period=100.0,
            flash_crowds=(FlashCrowd(at=1.0, duration=2.0, multiplier=3.0),),
        ),
    )
    rebuilt = config_from_dict(config.canonical_dict())
    assert rebuilt == config
    assert rebuilt.canonical_json() == config.canonical_json()


def test_cluster_requires_broker():
    with pytest.raises(ConfigError, match="use_broker"):
        _clustered_config(use_broker=False)


def test_cluster_requires_enough_partitions():
    with pytest.raises(ConfigError, match="partitions"):
        _clustered_config(mp=4, partitions=4)


def test_population_requires_open_loop_without_ir():
    with pytest.raises(ConfigError, match="rate_scale"):
        _clustered_config(population=PopulationSpec(users=10))


def test_cluster_label_gets_node_suffix():
    assert _clustered_config().label().endswith("@2n")
