"""Integration smoke grid: every SPS x serving tool combination.

The paper's framework exists precisely because the combination space is
the product of its parts (§2.2.1). This grid runs a short experiment for
every supported pairing and checks the universal invariants — events
flow, timestamps are ordered, nothing is double-counted.
"""

import pytest

from repro.config import EXTERNAL_TOOLS, SERVING_TOOLS, SPS_NAMES, ExperimentConfig
from repro.core.runner import run_experiment

GRID = [(sps, tool) for sps in SPS_NAMES for tool in SERVING_TOOLS]


@pytest.mark.parametrize("sps,tool", GRID)
def test_combination_processes_events(sps, tool):
    duration = 4.0 if sps == "spark_ss" else 1.0
    rate = 20.0 if sps == "ray" else 100.0
    config = ExperimentConfig(
        sps=sps, serving=tool, model="ffnn", ir=rate, duration=duration
    )
    result = run_experiment(config)
    assert result.completed > 0, (sps, tool)
    assert result.duplicates == 0
    assert result.completed <= result.produced
    if sps == "spark_ss":
        # Micro-batching: one inference call covers a whole chunk.
        assert 0 < result.inference_requests <= result.completed
    else:
        assert result.inference_requests >= result.completed * 0.9
    for end_time, latency in result.series:
        assert latency > 0
        assert end_time <= duration + 1e-9
    # The pipeline keeps up with these modest rates.
    expected = rate * duration
    assert result.completed >= 0.5 * expected, (sps, tool)


@pytest.mark.parametrize("tool", EXTERNAL_TOOLS)
def test_external_tools_slower_than_embedded_on_every_sps(tool):
    """Embedded ONNX beats every external tool for the small model on
    Flink — Table 4's embedded-vs-external gap holds per combination."""
    external = run_experiment(
        ExperimentConfig(sps="flink", serving=tool, model="ffnn", ir=None, duration=1.5)
    )
    embedded = run_experiment(
        ExperimentConfig(sps="flink", serving="onnx", model="ffnn", ir=None, duration=1.5)
    )
    assert embedded.throughput > external.throughput


def test_every_sps_handles_batched_events():
    for sps in SPS_NAMES:
        config = ExperimentConfig(
            sps=sps,
            serving="onnx",
            model="ffnn",
            bsz=16,
            ir=10.0,
            duration=4.0 if sps == "spark_ss" else 2.0,
        )
        result = run_experiment(config)
        assert result.completed > 0, sps
