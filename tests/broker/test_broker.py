"""Unit tests for the simulated Kafka broker."""

import pytest

from repro.broker import BrokerCluster, Consumer, Producer
from repro.broker.consumer import assign_partitions
from repro.errors import ConfigError, MessageTooLargeError, UnknownTopicError
from repro.simul import Environment


def make_cluster(env, partitions=4):
    cluster = BrokerCluster(env)
    cluster.create_topic("input", partitions)
    return cluster


def test_create_topic_and_lookup():
    env = Environment()
    cluster = make_cluster(env)
    assert cluster.topic("input").partition_count == 4


def test_duplicate_topic_rejected():
    env = Environment()
    cluster = make_cluster(env)
    with pytest.raises(ConfigError):
        cluster.create_topic("input", 2)


def test_unknown_topic_rejected():
    env = Environment()
    cluster = BrokerCluster(env)
    with pytest.raises(UnknownTopicError):
        cluster.topic("nope")


def test_produce_assigns_offsets_and_log_append_time():
    env = Environment()
    cluster = make_cluster(env, partitions=1)
    producer = Producer(env, cluster)
    metadatas = []

    def proc():
        for __ in range(3):
            md = yield from producer.send("input", value="x", nbytes=3000)
            metadatas.append(md)

    env.process(proc())
    env.run()
    assert [m.offset for m in metadatas] == [0, 1, 2]
    # LogAppendTime is stamped after transfer + broker service.
    assert all(m.log_append_time > 0 for m in metadatas)
    assert metadatas[0].log_append_time < metadatas[1].log_append_time


def test_round_robin_partitioning():
    env = Environment()
    cluster = make_cluster(env, partitions=3)
    producer = Producer(env, cluster)
    seen = []

    def proc():
        for __ in range(6):
            md = yield from producer.send("input", value="x", nbytes=100)
            seen.append(md.partition)

    env.process(proc())
    env.run()
    assert seen == [0, 1, 2, 0, 1, 2]


def test_idle_partition_waiters_stay_bounded():
    """Regression: each poll parks a data-available waiter on *every*
    assigned partition but only the winner fires; losers used to pile up
    forever on partitions that never grow."""
    env = Environment()
    cluster = make_cluster(env, partitions=2)
    producer = Producer(env, cluster)
    consumer = Consumer(env, cluster, "input")
    consumed = []

    def produce():
        for __ in range(30):
            yield env.timeout(0.01)
            # key=0 pins every record to partition 0; partition 1 starves.
            yield from producer.send("input", value="x", nbytes=100, key=0)

    def consume():
        while len(consumed) < 30:
            records = yield from consumer.poll()
            consumed.extend(records)

    env.process(produce())
    env.process(consume())
    env.run()
    assert len(consumed) == 30
    idle = cluster.topic("input").partition(1)
    assert len(idle._waiters) <= 1  # only the current poll's waiter, if any


def test_cancel_wait_deregisters_untriggered_waiter():
    env = Environment()
    cluster = make_cluster(env, partitions=1)
    log = cluster.topic("input").partition(0)
    waiter = log.data_available(0)
    assert len(log._waiters) == 1
    log.cancel_wait(waiter)
    assert log._waiters == []
    # Cancelling a fired waiter is a no-op (it is no longer registered).
    log.append(timestamp=0.0, value="x", nbytes=10.0)
    fired = log.data_available(0)
    log.cancel_wait(fired)
    assert fired.triggered


def test_keyed_partitioning():
    env = Environment()
    cluster = make_cluster(env, partitions=4)
    producer = Producer(env, cluster)
    seen = []

    def proc():
        for key in [0, 4, 8]:
            md = yield from producer.send("input", value="x", nbytes=100, key=key)
            seen.append(md.partition)

    env.process(proc())
    env.run()
    assert seen == [0, 0, 0]


def test_message_too_large_rejected():
    env = Environment()
    cluster = make_cluster(env)
    producer = Producer(env, cluster)

    def proc():
        yield from producer.send("input", value="x", nbytes=100 * 1024 * 1024)

    proc_event = env.process(proc())
    with pytest.raises(MessageTooLargeError):
        env.run(until=proc_event)


def test_consumer_receives_all_records_in_order():
    env = Environment()
    cluster = make_cluster(env, partitions=1)
    producer = Producer(env, cluster)
    consumer = Consumer(env, cluster, "input")
    received = []

    def produce():
        for i in range(5):
            yield from producer.send("input", value=i, nbytes=100)
            yield env.timeout(0.001)

    def consume():
        while len(received) < 5:
            records = yield from consumer.poll()
            received.extend(r.value for r in records)

    env.process(produce())
    env.process(consume())
    env.run()
    assert received == [0, 1, 2, 3, 4]


def test_consumer_poll_blocks_until_data():
    env = Environment()
    cluster = make_cluster(env, partitions=1)
    producer = Producer(env, cluster)
    consumer = Consumer(env, cluster, "input")
    poll_done_at = []

    def produce():
        yield env.timeout(5.0)
        yield from producer.send("input", value="late", nbytes=100)

    def consume():
        records = yield from consumer.poll()
        poll_done_at.append((env.now, records[0].value))

    env.process(produce())
    env.process(consume())
    env.run()
    assert poll_done_at[0][0] > 5.0
    assert poll_done_at[0][1] == "late"


def test_consumer_group_partition_split():
    env = Environment()
    cluster = make_cluster(env, partitions=4)
    c0 = Consumer(env, cluster, "input", member=0, members=2)
    c1 = Consumer(env, cluster, "input", member=1, members=2)
    assert sorted(c0.partitions + c1.partitions) == [0, 1, 2, 3]
    assert not set(c0.partitions) & set(c1.partitions)


def test_consumer_lag():
    env = Environment()
    cluster = make_cluster(env, partitions=2)
    producer = Producer(env, cluster)
    consumer = Consumer(env, cluster, "input")

    def produce():
        for i in range(4):
            yield from producer.send("input", value=i, nbytes=100)

    env.process(produce())
    env.run()
    assert consumer.lag() == 4

    def consume():
        yield from consumer.poll()

    env.process(consume())
    env.run()
    assert consumer.lag() < 4


def test_assign_partitions_validation():
    with pytest.raises(ConfigError):
        assign_partitions(4, member=2, members=2)
    with pytest.raises(ConfigError):
        assign_partitions(4, member=0, members=0)


def test_consumer_without_partitions_rejected():
    env = Environment()
    cluster = make_cluster(env, partitions=1)
    with pytest.raises(ConfigError):
        Consumer(env, cluster, "input", member=1, members=2)


def test_log_append_time_of_consumed_records_is_append_time():
    """Crayfish's end timestamp (§3.3) must be broker-side, not consume-side."""
    env = Environment()
    cluster = make_cluster(env, partitions=1)
    producer = Producer(env, cluster)
    consumer = Consumer(env, cluster, "input")
    out = []

    def produce():
        yield from producer.send("input", value="x", nbytes=100, timestamp=0.0)

    def consume():
        yield env.timeout(10)  # consume much later than append
        records = yield from consumer.poll()
        out.extend(records)

    env.process(produce())
    env.process(consume())
    env.run()
    assert out[0].log_append_time < 1.0
    assert out[0].timestamp == 0.0
