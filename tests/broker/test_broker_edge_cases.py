"""Broker edge cases: byte-capped fetches, planning fetches, seeks."""

import pytest

from repro.broker import BrokerCluster, Consumer, Producer
from repro.simul import Environment


def setup(partitions=1, max_request_bytes=None):
    env = Environment()
    kwargs = {}
    if max_request_bytes is not None:
        kwargs["max_request_bytes"] = max_request_bytes
    cluster = BrokerCluster(env, **kwargs)
    cluster.create_topic("t", partitions)
    return env, cluster, Producer(env, cluster)


def fill(env, producer, n, nbytes=100):
    def produce():
        for i in range(n):
            yield from producer.send("t", value=i, nbytes=nbytes)

    env.process(produce())
    env.run()


def test_fetch_respects_byte_budget():
    """fetch.max.bytes: one poll never drags more than the cap."""
    env, cluster, producer = setup(max_request_bytes=1000)
    fill(env, producer, 10, nbytes=300)
    consumer = Consumer(env, cluster, "t")
    batches = []

    def consume():
        while sum(len(b) for b in batches) < 10:
            records = yield from consumer.poll()
            batches.append(records)

    env.process(consume())
    env.run()
    # 1000-byte budget over 300-byte records: at most 4 per poll.
    assert all(len(batch) <= 4 for batch in batches)
    assert sum(len(b) for b in batches) == 10


def test_fetch_always_makes_progress_on_oversized_record():
    """A record alone above the fetch budget is still delivered (like
    Kafka). Appends happen under a loose limit; the budget is tightened
    before fetching."""
    env2 = Environment()
    cluster2 = BrokerCluster(env2, max_request_bytes=10_000)
    cluster2.create_topic("t", 1)
    producer2 = Producer(env2, cluster2)

    def produce():
        for i in range(2):
            yield from producer2.send("t", value=i, nbytes=9000)

    env2.process(produce())
    env2.run()
    cluster2.max_request_bytes = 1000  # tighten the fetch budget
    consumer2 = Consumer(env2, cluster2, "t")
    got2 = []

    def consume2():
        while len(got2) < 2:
            records = yield from consumer2.poll()
            got2.extend(records)

    env2.process(consume2())
    env2.run()
    assert len(got2) == 2


def test_planning_fetch_is_cheaper_than_data_fetch():
    """data_transfer=False (Spark's driver) skips the payload transfer."""

    def poll_time(data_transfer):
        env, cluster, producer = setup()
        fill(env, producer, 100, nbytes=50_000)
        consumer = Consumer(env, cluster, "t")
        start = {}

        def consume():
            start["t"] = env.now
            yield from consumer.poll(max_records=100, data_transfer=data_transfer)
            start["elapsed"] = env.now - start["t"]

        env.process(consume())
        env.run()
        return start["elapsed"]

    assert poll_time(False) < 0.2 * poll_time(True)


def test_seek_replays_records():
    env, cluster, producer = setup()
    fill(env, producer, 5)
    consumer = Consumer(env, cluster, "t")
    seen = []

    def consume(n):
        while len(seen) < n:
            records = yield from consumer.poll()
            seen.extend(r.value for r in records)

    env.process(consume(5))
    env.run()
    consumer.seek({0: 2})
    env.process(consume(8))
    env.run()
    assert seen == [0, 1, 2, 3, 4, 2, 3, 4]


def test_lag_reflects_seek():
    env, cluster, producer = setup()
    fill(env, producer, 5)
    consumer = Consumer(env, cluster, "t")
    assert consumer.lag() == 5
    consumer.seek({0: 5})
    assert consumer.lag() == 0
    consumer.seek({0: 0})
    assert consumer.lag() == 5


def test_broker_count_validation():
    env = Environment()
    with pytest.raises(Exception):
        BrokerCluster(env, broker_count=0)
