"""Property-based tests for broker invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broker import BrokerCluster, Consumer, Producer
from repro.simul import Environment


@given(
    n_records=st.integers(min_value=1, max_value=40),
    partitions=st.integers(min_value=1, max_value=8),
    gap=st.floats(min_value=0.0, max_value=0.01),
)
@settings(max_examples=40, deadline=None)
def test_every_record_consumed_exactly_once(n_records, partitions, gap):
    env = Environment()
    cluster = BrokerCluster(env)
    cluster.create_topic("t", partitions)
    producer = Producer(env, cluster)
    consumer = Consumer(env, cluster, "t")
    received = []

    def produce():
        for i in range(n_records):
            yield from producer.send("t", value=i, nbytes=50)
            if gap:
                yield env.timeout(gap)

    def consume():
        while len(received) < n_records:
            records = yield from consumer.poll()
            received.extend(r.value for r in records)

    env.process(produce())
    env.process(consume())
    env.run()
    assert sorted(received) == list(range(n_records))


@given(
    n_records=st.integers(min_value=2, max_value=30),
    partitions=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_offsets_monotonic_per_partition(n_records, partitions):
    env = Environment()
    cluster = BrokerCluster(env)
    cluster.create_topic("t", partitions)
    producer = Producer(env, cluster)
    consumer = Consumer(env, cluster, "t")
    records = []

    def produce():
        for i in range(n_records):
            yield from producer.send("t", value=i, nbytes=50)

    def consume():
        while len(records) < n_records:
            chunk = yield from consumer.poll()
            records.extend(chunk)

    env.process(produce())
    env.process(consume())
    env.run()
    per_partition = {}
    for record in records:
        per_partition.setdefault(record.partition, []).append(record.offset)
    for offsets in per_partition.values():
        assert offsets == sorted(offsets)
        assert offsets == list(range(offsets[0], offsets[0] + len(offsets)))


@given(
    n_records=st.integers(min_value=1, max_value=30),
    members=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_group_members_partition_disjoint_coverage(n_records, members):
    env = Environment()
    cluster = BrokerCluster(env)
    cluster.create_topic("t", max(members, 4))
    producer = Producer(env, cluster)
    consumers = [
        Consumer(env, cluster, "t", member=m, members=members) for m in range(members)
    ]
    received = []

    def produce():
        for i in range(n_records):
            yield from producer.send("t", value=i, nbytes=50)

    def consume(consumer):
        while True:
            records = yield from consumer.poll()
            received.extend(r.value for r in records)

    env.process(produce())
    for consumer in consumers:
        env.process(consume(consumer))
    # Consumers poll forever; run bounded time instead of to exhaustion.
    env.run(until=60.0)
    assert sorted(received) == list(range(n_records))


@given(nbytes=st.floats(min_value=1, max_value=1e6))
@settings(max_examples=30, deadline=None)
def test_log_append_time_after_send_start(nbytes):
    env = Environment()
    cluster = BrokerCluster(env)
    cluster.create_topic("t", 1)
    producer = Producer(env, cluster)
    out = []

    def produce():
        start = env.now
        md = yield from producer.send("t", value="x", nbytes=nbytes)
        out.append((start, md.log_append_time))

    env.process(produce())
    env.run()
    start, append_time = out[0]
    assert append_time > start
