"""The old ``repro.broker.cluster`` import path keeps working.

PR 6 renamed the broker-internal module to ``kafka_cluster`` so the new
top-level ``repro.cluster`` package is unambiguous; the shim re-exports
the same objects under the old name with a deprecation warning.
"""

import importlib
import sys
import warnings


def test_old_import_path_warns_and_aliases():
    sys.modules.pop("repro.broker.cluster", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        shim = importlib.import_module("repro.broker.cluster")
    assert any(
        issubclass(w.category, DeprecationWarning) for w in caught
    ), "importing repro.broker.cluster should warn"

    from repro.broker import kafka_cluster

    assert shim.BrokerCluster is kafka_cluster.BrokerCluster


def test_package_export_is_the_new_module():
    from repro.broker import BrokerCluster
    from repro.broker.kafka_cluster import BrokerCluster as New

    assert BrokerCluster is New
