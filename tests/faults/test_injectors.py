"""End-to-end fault injection through the experiment runner."""

import pytest

from repro.config import ExperimentConfig
from repro.core.runner import run_experiment
from repro.errors import ConfigError
from repro.faults import (
    FaultPlan,
    NetworkDegradation,
    PartitionOutage,
    ResiliencePolicy,
    ServerCrash,
    StragglerReplica,
)
from repro.faults.injectors import FaultInjector
from repro.simul import Environment


def config(**kw):
    kw.setdefault("sps", "flink")
    kw.setdefault("serving", "tf_serving")
    kw.setdefault("model", "ffnn")
    kw.setdefault("ir", 100.0)
    kw.setdefault("duration", 4.0)
    return ExperimentConfig(**kw)


RETRY = ResiliencePolicy(retries=6, backoff_base=0.05, backoff_max=0.5)


def test_injector_validation():
    env = Environment()
    with pytest.raises(ConfigError):
        FaultInjector(
            env,
            FaultPlan(partition_outages=(PartitionOutage(at=1.0, duration=0.5),)),
        )  # no cluster
    with pytest.raises(ConfigError):
        FaultInjector(
            env, FaultPlan(server_crashes=(ServerCrash(at=1.0),))
        )  # no server
    with pytest.raises(ConfigError):
        FaultInjector(
            env,
            FaultPlan(
                network_degradations=(
                    NetworkDegradation(at=1.0, duration=0.5, error_rate=0.1),
                )
            ),
            server=object(),
        )  # error injection without seeded streams


def test_no_faults_means_no_summary():
    result = run_experiment(config())
    assert result.faults is None


def test_server_crash_sheds_without_retries():
    plan = FaultPlan(server_crashes=(ServerCrash(at=2.0, downtime=0.3),))
    baseline = run_experiment(config())
    crashed = run_experiment(config(fault_plan=plan))
    assert crashed.faults.server_crashes == 1
    assert crashed.faults.shed > 0  # default policy drops failed batches
    assert crashed.throughput < baseline.throughput
    assert crashed.completed < baseline.completed


def test_server_crash_recovers_with_retries():
    plan = FaultPlan(server_crashes=(ServerCrash(at=2.0, downtime=0.3),))
    baseline = run_experiment(config())
    recovered = run_experiment(config(fault_plan=plan, resilience=RETRY))
    assert recovered.faults.retries > 0
    assert recovered.faults.shed == 0
    assert recovered.throughput >= 0.9 * baseline.throughput


def test_partition_outage_recovers():
    plan = FaultPlan(
        partition_outages=(
            PartitionOutage(at=1.5, duration=0.5, partitions=tuple(range(4))),
        )
    )
    result = run_experiment(config(sps="kafka_streams", partitions=4, fault_plan=plan))
    assert result.faults.partition_outages == 1
    # Blocked partitions buffer, then drain: nothing is lost.
    assert result.completed == run_experiment(
        config(sps="kafka_streams", partitions=4)
    ).completed


def test_network_errors_absorbed_by_retries():
    plan = FaultPlan(
        network_degradations=(
            NetworkDegradation(at=1.0, duration=1.0, error_rate=0.5),
        )
    )
    result = run_experiment(config(fault_plan=plan, resilience=RETRY))
    assert result.faults.network_degradations == 1
    assert result.faults.retries > 0
    assert result.faults.shed == 0


def test_network_latency_slows_but_completes():
    plan = FaultPlan(
        network_degradations=(
            NetworkDegradation(at=1.0, duration=1.0, extra_latency=0.02),
        )
    )
    baseline = run_experiment(config())
    slowed = run_experiment(config(fault_plan=plan))
    assert slowed.faults.network_degradations == 1
    assert slowed.faults.shed == 0  # latency alone cannot fail a request
    assert slowed.completed == baseline.completed
    assert slowed.latency.p99 > baseline.latency.p99


def test_straggler_absorbed_by_pool():
    plan = FaultPlan(
        stragglers=(StragglerReplica(at=1.0, duration=1.0, slowdown=8.0),)
    )
    baseline = run_experiment(config(mp=4))
    straggled = run_experiment(config(mp=4, fault_plan=plan))
    assert straggled.faults.stragglers == 1
    assert straggled.faults.shed == 0
    assert straggled.completed == baseline.completed


def test_fallback_degrades_to_embedded():
    plan = FaultPlan(server_crashes=(ServerCrash(at=2.0, downtime=0.5),))
    policy = ResiliencePolicy(
        retries=1, backoff_base=0.01, on_exhausted="fallback", fallback="onnx"
    )
    result = run_experiment(config(fault_plan=plan, resilience=policy))
    assert result.faults.fallbacks > 0
    assert result.faults.shed == 0


def test_summary_round_trips_to_dict():
    from repro.core.results_io import result_to_dict

    plan = FaultPlan(server_crashes=(ServerCrash(at=2.0, downtime=0.3),))
    result = run_experiment(config(fault_plan=plan, resilience=RETRY))
    payload = result_to_dict(result)
    assert payload["faults"]["server_crashes"] == 1
    assert payload["faults"]["retries"] == result.faults.retries
