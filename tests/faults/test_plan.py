"""Validation of fault plans and resilience policies (pure config)."""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    FaultPlan,
    NetworkDegradation,
    PartitionOutage,
    ResiliencePolicy,
    ServerCrash,
    StragglerReplica,
)


def test_fault_spec_validation():
    with pytest.raises(ConfigError):
        ServerCrash(at=0.0)
    with pytest.raises(ConfigError):
        ServerCrash(at=1.0, downtime=-0.1)
    with pytest.raises(ConfigError):
        PartitionOutage(at=1.0, duration=0.0)
    with pytest.raises(ConfigError):
        PartitionOutage(at=1.0, duration=1.0, topic="orders")
    with pytest.raises(ConfigError):
        PartitionOutage(at=1.0, duration=1.0, partitions=())
    with pytest.raises(ConfigError):
        NetworkDegradation(at=1.0, duration=1.0)  # neither latency nor errors
    with pytest.raises(ConfigError):
        NetworkDegradation(at=1.0, duration=1.0, error_rate=1.5)
    with pytest.raises(ConfigError):
        StragglerReplica(at=1.0, duration=1.0, slowdown=0.5)


def test_plan_properties():
    assert FaultPlan().empty
    crash_plan = FaultPlan(server_crashes=(ServerCrash(at=1.0),))
    assert not crash_plan.empty
    assert crash_plan.touches_serving
    assert crash_plan.can_fail_requests

    outage = FaultPlan(partition_outages=(PartitionOutage(at=1.0, duration=0.5),))
    assert not outage.touches_serving
    assert not outage.can_fail_requests

    slow_net = FaultPlan(
        network_degradations=(
            NetworkDegradation(at=1.0, duration=0.5, extra_latency=0.01),
        )
    )
    assert slow_net.touches_serving
    assert not slow_net.can_fail_requests  # latency-only cannot fail calls

    flaky_net = FaultPlan(
        network_degradations=(
            NetworkDegradation(at=1.0, duration=0.5, error_rate=0.2),
        )
    )
    assert flaky_net.can_fail_requests


def test_plan_windows_sorted():
    plan = FaultPlan(
        server_crashes=(ServerCrash(at=5.0, downtime=0.5),),
        stragglers=(StragglerReplica(at=1.0, duration=2.0),),
    )
    assert plan.windows() == [(1.0, 3.0), (5.0, 5.5)]


def test_policy_validation():
    with pytest.raises(ConfigError):
        ResiliencePolicy(timeout=0.0)
    with pytest.raises(ConfigError):
        ResiliencePolicy(retries=-1)
    with pytest.raises(ConfigError):
        ResiliencePolicy(backoff_factor=0.5)
    with pytest.raises(ConfigError):
        ResiliencePolicy(jitter=1.0)
    with pytest.raises(ConfigError):
        ResiliencePolicy(breaker_threshold=0)
    with pytest.raises(ConfigError):
        ResiliencePolicy(on_exhausted="explode")
    with pytest.raises(ConfigError):
        ResiliencePolicy(on_exhausted="fallback")  # needs a fallback name
    with pytest.raises(ConfigError):
        ResiliencePolicy(fallback="onnx")  # fallback without the mode
    ResiliencePolicy(on_exhausted="fallback", fallback="onnx")


def test_config_integration():
    from repro.config import ExperimentConfig

    plan = FaultPlan(server_crashes=(ServerCrash(at=1.0),))
    with pytest.raises(ConfigError):
        ExperimentConfig(serving="onnx", fault_plan=plan)  # embedded
    with pytest.raises(ConfigError):
        ExperimentConfig(
            serving="tf_serving", fault_plan=plan, autoscale=(1, 4)
        )
    with pytest.raises(ConfigError):
        ExperimentConfig(serving="onnx", resilience=ResiliencePolicy())
    with pytest.raises(ConfigError):
        ExperimentConfig(
            serving="tf_serving",
            resilience=ResiliencePolicy(on_exhausted="fallback", fallback="tf_serving"),
        )
    outages = FaultPlan(partition_outages=(PartitionOutage(at=1.0, duration=0.5),))
    with pytest.raises(ConfigError):
        ExperimentConfig(serving="onnx", use_broker=False, fault_plan=outages)
    ExperimentConfig(serving="tf_serving", fault_plan=plan)
