"""Unit tests for the client resilience layer (breaker, retries, degrade)."""

import pytest

from repro.errors import TransientError
from repro.faults import ResiliencePolicy
from repro.faults.resilience import CircuitBreaker, ResilientScorer
from repro.simul import Environment, RandomStreams
from repro.tracing.spans import NO_TRACE


class FakeTool:
    """Scripted serving tool: fails the first ``failures`` calls."""

    kind = "external"
    name = "fake"
    costs = None
    tracer = NO_TRACE

    def __init__(self, env, failures=0, service_time=0.01):
        self.env = env
        self.failures = failures
        self.service_time = service_time
        self.calls = 0
        self.requests_served = 0
        self.loaded = False

    def load(self):
        self.loaded = True
        return
        yield

    def score(self, bsz, vectorized=False, ctx=None):
        self.calls += 1
        yield self.env.timeout(self.service_time)
        if self.calls <= self.failures:
            raise TransientError("scripted failure")
        self.requests_served += 1
        return f"result-{self.calls}"


class HangingTool(FakeTool):
    """Never answers: every call sleeps past any client deadline."""

    def score(self, bsz, vectorized=False, ctx=None):
        self.calls += 1
        yield self.env.timeout(1e9)
        return "never"


def drive(env, gen):
    holder = {}

    def runner():
        holder["value"] = yield from gen

    env.process(runner())
    env.run(until=1e6)
    return holder.get("value")


def make_scorer(env, tool, fallback_tool=None, **policy_kw):
    policy = ResiliencePolicy(**policy_kw)
    return ResilientScorer(
        env, tool, policy, rng=RandomStreams(0), fallback=fallback_tool
    )


def test_breaker_trips_and_recovers():
    env = Environment()
    breaker = CircuitBreaker(env, threshold=2, reset_after=1.0)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == "closed"
    breaker.record_failure()
    assert breaker.state == "open"
    assert breaker.opens == 1
    assert not breaker.allow()  # fast fail while open
    assert breaker.fast_fails == 1
    env._now = 1.5  # past the reset window
    assert breaker.allow()  # half-open probe goes through
    assert breaker.state == "half_open"
    assert not breaker.allow()  # only one probe at a time
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.allow()


def test_breaker_reopens_on_failed_probe():
    env = Environment()
    breaker = CircuitBreaker(env, threshold=1, reset_after=1.0)
    breaker.record_failure()
    env._now = 1.0
    assert breaker.allow()
    breaker.record_failure()  # probe failed
    assert breaker.state == "open"
    assert breaker.opens == 2


def test_disabled_breaker_always_allows():
    env = Environment()
    breaker = CircuitBreaker(env, threshold=None, reset_after=1.0)
    for __ in range(10):
        breaker.record_failure()
        assert breaker.allow()
    assert breaker.opens == 0


def test_retry_until_success():
    env = Environment()
    tool = FakeTool(env, failures=2)
    scorer = make_scorer(env, tool, retries=3, jitter=0.0)
    result = drive(env, scorer.score(1))
    assert result == "result-3"
    assert scorer.retries == 2
    assert tool.calls == 3


def test_exhausted_retries_shed():
    env = Environment()
    tool = FakeTool(env, failures=100)
    scorer = make_scorer(env, tool, retries=2, jitter=0.0)
    result = drive(env, scorer.score(1))
    assert result is None
    assert scorer.shed == 1
    assert tool.calls == 3  # first attempt + 2 retries


def test_exhausted_retries_raise():
    env = Environment()
    tool = FakeTool(env, failures=100)
    scorer = make_scorer(env, tool, retries=0, jitter=0.0, on_exhausted="raise")

    def runner():
        with pytest.raises(TransientError):
            yield from scorer.score(1)

    env.process(runner())
    env.run(until=10.0)


def test_fallback_scores_on_secondary():
    env = Environment()
    tool = FakeTool(env, failures=100)
    fallback = FakeTool(env)
    scorer = make_scorer(
        env, tool, fallback_tool=fallback,
        retries=1, jitter=0.0, on_exhausted="fallback", fallback="onnx",
    )
    result = drive(env, scorer.score(1))
    assert result == "result-1"
    assert fallback.loaded  # loaded lazily on first degrade
    assert scorer.fallbacks == 1
    assert scorer.requests_served == 1  # fallback's count is included


def test_timeout_abandons_and_retries():
    env = Environment()
    tool = HangingTool(env)
    scorer = make_scorer(env, tool, timeout=0.05, retries=1, jitter=0.0)
    result = drive(env, scorer.score(1))
    assert result is None  # both attempts timed out, then shed
    assert scorer.timeouts == 2
    assert tool.calls == 2


def test_backoff_grows_and_caps():
    env = Environment()
    tool = FakeTool(env)
    scorer = make_scorer(
        env, tool, retries=5, jitter=0.0,
        backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3,
    )
    delays = [scorer._backoff_delay(attempt) for attempt in (1, 2, 3, 4)]
    assert delays == [0.1, 0.2, 0.3, 0.3]


def test_jitter_is_seeded():
    env = Environment()
    a = make_scorer(env, FakeTool(env), retries=1, jitter=0.5)
    b = make_scorer(Environment(), FakeTool(env), retries=1, jitter=0.5)
    assert [a._backoff_delay(i) for i in (1, 2, 3)] == [
        b._backoff_delay(i) for i in (1, 2, 3)
    ]


def test_breaker_open_degrades_immediately():
    env = Environment()
    tool = FakeTool(env, failures=100)
    scorer = make_scorer(
        env, tool, retries=0, jitter=0.0, breaker_threshold=1,
    )
    results = []

    def runner():
        results.append((yield from scorer.score(1)))  # fails, trips breaker
        results.append((yield from scorer.score(1)))  # open: fail fast

    env.process(runner())
    env.run(until=0.1)
    assert results == [None, None]
    assert tool.calls == 1  # second score never reached the tool
    assert scorer.breaker.fast_fails == 1
    assert scorer.shed == 2
