"""Checkpoint/replay recovery on the non-Flink engines."""

import pytest

from repro.config import ExperimentConfig
from repro.core.runner import run_experiment
from repro.errors import ConfigError
from repro.faults.recovery import EngineRecovery
from repro.simul import Environment
from repro.sps.flink.fault_tolerance import FaultToleranceConfig

ENGINES = ["kafka_streams", "spark_ss", "ray"]


def config(**kw):
    kw.setdefault("sps", "kafka_streams")
    kw.setdefault("serving", "onnx")
    kw.setdefault("model", "ffnn")
    kw.setdefault("ir", 100.0)
    kw.setdefault("duration", 5.0)
    kw.setdefault("checkpoint_interval", 0.5)
    return ExperimentConfig(**kw)


def test_rejects_exactly_once():
    ft = FaultToleranceConfig(guarantee="exactly_once")
    with pytest.raises(ConfigError):
        EngineRecovery(Environment(), engine=object(), ft=ft)


@pytest.mark.parametrize("sps", ENGINES)
def test_checkpointing_without_failures(sps):
    result = run_experiment(config(sps=sps))
    assert result.faults.checkpoints > 0
    assert result.faults.engine_failures == 0
    assert result.duplicates == 0
    assert result.completed > 0


@pytest.mark.parametrize("sps", ENGINES)
def test_crash_and_recover(sps):
    result = run_experiment(config(sps=sps, failure_times=(2.5,), recovery_time=0.3))
    assert result.faults.engine_failures == 1
    assert result.faults.engine_restarts == 1
    assert result.faults.checkpoints > 0
    # No loss: every distinct batch still lands despite the crash.
    assert result.completed > 0.6 * 100.0 * 5.0
    assert result.duplicates >= 0


def test_replays_surface_as_duplicates():
    result = run_experiment(config(failure_times=(2.5,), recovery_time=0.3))
    # Kafka Streams replays from the last committed offsets; everything
    # consumed after the checkpoint is delivered twice downstream.
    assert result.duplicates > 0
    assert result.duplicates <= 1.2 * 100.0 * 0.6  # bounded by one interval


def test_recovery_downtime_costs_throughput():
    plain = run_experiment(config())
    failed = run_experiment(config(failure_times=(2.5,), recovery_time=1.0))
    assert failed.throughput < plain.throughput * 1.2
    assert failed.completed <= plain.completed


def test_multiple_failures():
    result = run_experiment(config(failure_times=(1.5, 3.5), recovery_time=0.3))
    assert result.faults.engine_failures == 2
    assert result.faults.engine_restarts == 2
    assert result.completed > 0


def test_external_serving_with_engine_recovery():
    result = run_experiment(
        config(serving="tf_serving", failure_times=(2.5,), recovery_time=0.3)
    )
    assert result.faults.engine_failures == 1
    assert result.completed > 0
