"""Chaos must be deterministic, and idle chaos must be invisible.

Two contracts from the issue:

1. The same seed and the same fault plan replay *exactly* — every fault
   fires at the same instant, every retry draws the same jitter, so two
   runs are indistinguishable on any engine.
2. Faults off means byte-identical: a run with the resilience layer
   armed and a fault plan whose windows never arrive inside the horizon
   must produce exactly the results of a plain run. The wrapper and the
   injectors may not schedule events or draw randomness on the happy
   path.
"""

import dataclasses

import pytest

from repro.config import ExperimentConfig
from repro.core.runner import ExperimentRunner
from repro.faults import (
    FaultPlan,
    NetworkDegradation,
    ResiliencePolicy,
    ServerCrash,
)

COMBOS = [
    ("flink", "tf_serving"),
    ("kafka_streams", "tf_serving"),
    ("spark_ss", "tf_serving"),
    ("ray", "tf_serving"),
]

#: Fires mid-run: exercises crash + flaky network on every engine.
ACTIVE_PLAN = FaultPlan(
    server_crashes=(ServerCrash(at=1.0, downtime=0.2),),
    network_degradations=(
        NetworkDegradation(at=2.0, duration=0.5, error_rate=0.3),
    ),
)

#: Armed but idle: every window starts far beyond the horizon.
IDLE_PLAN = FaultPlan(
    server_crashes=(ServerCrash(at=50.0, downtime=0.2),),
    network_degradations=(
        NetworkDegradation(at=60.0, duration=0.5, error_rate=0.3),
    ),
)

RETRY = ResiliencePolicy(retries=3, backoff_base=0.02, jitter=0.1)


def snapshot(result):
    return (
        dataclasses.asdict(result.latency),
        result.throughput,
        result.completed,
        result.produced,
        result.duplicates,
        result.series,
    )


@pytest.mark.parametrize("sps,serving", COMBOS)
def test_same_seed_same_chaos(sps, serving):
    config = ExperimentConfig(
        sps=sps,
        serving=serving,
        model="ffnn",
        ir=100.0,
        duration=3.0,
        fault_plan=ACTIVE_PLAN,
        resilience=RETRY,
    )
    first = ExperimentRunner(config).run(seed=7)
    second = ExperimentRunner(config).run(seed=7)
    assert snapshot(first) == snapshot(second)
    assert first.faults == second.faults
    assert first.faults.faults_injected == 2


@pytest.mark.parametrize("sps,serving", COMBOS)
def test_faults_off_is_byte_identical(sps, serving):
    base = dict(
        sps=sps, serving=serving, model="ffnn", ir=100.0, duration=3.0
    )
    plain = ExperimentRunner(ExperimentConfig(**base)).run(seed=0)
    armed = ExperimentRunner(
        ExperimentConfig(**base, fault_plan=IDLE_PLAN, resilience=RETRY)
    ).run(seed=0)
    assert snapshot(plain) == snapshot(armed)
    assert armed.faults is not None
    assert armed.faults.faults_injected == 0
    assert armed.faults.retries == 0


def test_engine_recovery_is_deterministic():
    config = ExperimentConfig(
        sps="spark_ss",
        serving="onnx",
        model="ffnn",
        ir=100.0,
        duration=4.0,
        checkpoint_interval=0.5,
        failure_times=(2.0,),
        recovery_time=0.3,
    )
    first = ExperimentRunner(config).run(seed=3)
    second = ExperimentRunner(config).run(seed=3)
    assert snapshot(first) == snapshot(second)
    assert first.faults == second.faults
