"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "flink" in out
    assert "tf_serving" in out
    assert "resnet50" in out


def test_run_command(capsys):
    code = main(["run", "--sps", "flink", "--serving", "onnx", "--duration", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "flink/onnx/ffnn" in out


def test_latency_command(capsys):
    code = main(
        ["latency", "--sps", "flink", "--serving", "onnx", "--bsz", "8", "--duration", "2"]
    )
    assert code == 0
    assert "ms/batch" in capsys.readouterr().out


def test_bursts_command(capsys):
    code = main(
        [
            "bursts", "--sps", "flink", "--serving", "onnx",
            "--bd", "1", "--tbb", "3", "--bursts", "1", "--duration", "1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "sustainable throughput" in out
    assert "burst 1" in out


def test_sweep_command(capsys):
    code = main(
        [
            "sweep", "--sps", "flink", "--serving", "onnx",
            "--duration", "1", "--field", "mp", "--values", "1,2",
            "--no-cache",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "sweep over mp" in out
    assert "events/s" in out


def test_sweep_command_unknown_field_is_friendly(capsys):
    code = main(
        [
            "sweep", "--duration", "1", "--field", "batch_size",
            "--values", "1,2", "--no-cache",
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown sweep field(s) 'batch_size'" in err


def test_sweep_command_uses_cache(tmp_path, capsys):
    argv = [
        "sweep", "--duration", "1", "--field", "mp", "--values", "1,2",
        "--cache-dir", str(tmp_path / "cache"),
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "4 store(s)" in first
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "4 hit(s)" in second
    # The tables themselves are identical, cached or not.
    assert first.split("cache")[0] == second.split("cache")[0]


def test_matrix_command_list(capsys):
    assert main(["matrix", "--list"]) == 0
    out = capsys.readouterr().out
    for name in ("latency", "throughput", "scalability", "burst-recovery", "smoke"):
        assert name in out


def test_matrix_command_smoke_cold_then_cached(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    jsonl_a = str(tmp_path / "a.jsonl")
    jsonl_b = str(tmp_path / "b.jsonl")
    argv = ["matrix", "--preset", "smoke", "--jobs", "2", "--cache-dir", cache_dir]

    assert main(argv + ["--jsonl", jsonl_a]) == 0
    cold = capsys.readouterr().out
    assert "2 executed, 0 from cache" in cold
    assert "2 miss(es)" in cold

    assert main(argv + ["--jsonl", jsonl_b]) == 0
    warm = capsys.readouterr().out
    assert "0 executed, 2 from cache" in warm
    assert "2 hit(s)" in warm

    with open(jsonl_a, "rb") as a, open(jsonl_b, "rb") as b:
        assert a.read() == b.read()


def test_matrix_command_exports(tmp_path, capsys):
    json_path = str(tmp_path / "out.json")
    csv_path = str(tmp_path / "out.csv")
    code = main(
        [
            "matrix", "--preset", "smoke", "--no-cache",
            "--duration", "0.5", "--json", json_path, "--csv", csv_path,
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "matrix preset 'smoke'" in out
    import json as json_module

    with open(json_path) as handle:
        records = json_module.load(handle)
    assert len(records) == 2
    with open(csv_path) as handle:
        assert len(handle.readlines()) == 3  # header + 2 rows


def test_json_export(tmp_path, capsys):
    path = str(tmp_path / "out.json")
    code = main(["run", "--duration", "1", "--json", path])
    assert code == 0
    import json

    with open(path) as handle:
        records = json.load(handle)
    assert records[0]["config"]["sps"] == "flink"
    assert records[0]["throughput"] > 0


def test_async_io_flag(capsys):
    code = main(
        [
            "run", "--serving", "tf_serving", "--duration", "1",
            "--async-io", "8", "--server-workers", "4",
        ]
    )
    assert code == 0
    assert "throughput" in capsys.readouterr().out


def test_trace_command(tmp_path, capsys):
    trace_path = str(tmp_path / "trace.json")
    csv_path = str(tmp_path / "spans.csv")
    code = main(
        [
            "trace", "--sps", "flink", "--serving", "onnx",
            "--ir", "50", "--duration", "2",
            "--out", trace_path, "--csv", csv_path,
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Latency breakdown" in out
    assert "bottleneck ranking" in out
    assert "Chrome trace written" in out

    from repro.tracing.export import load_chrome_trace

    data = load_chrome_trace(trace_path)
    assert any(e.get("ph") == "X" for e in data["traceEvents"])
    with open(csv_path) as handle:
        header = handle.readline().strip()
    assert header == "trace_id,span_id,parent_id,name,start,end,duration"


def test_trace_command_sampling(capsys, tmp_path):
    code = main(
        [
            "trace", "--ir", "50", "--duration", "2",
            "--sample-every", "10", "--max-traces", "5",
            "--out", str(tmp_path / "t.json"),
        ]
    )
    assert code == 0
    assert "traced 5 records" in capsys.readouterr().out


def test_metrics_command(tmp_path, capsys):
    om_path = tmp_path / "nested" / "metrics.txt"
    jsonl_path = tmp_path / "timeline.jsonl"
    code = main(
        [
            "metrics", "--sps", "flink", "--serving", "onnx",
            "--duration", "1", "--scrape-interval", "0.1",
            "--openmetrics", str(om_path), "--jsonl", str(jsonl_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "scrapes" in out
    assert "-- broker" in out
    assert "backpressure & lag summary:" in out
    assert "OpenMetrics exposition written" in out
    # The shared export helper creates missing parent directories.
    assert om_path.exists()

    from repro.metrics.export import load_metrics_jsonl, parse_openmetrics

    families = parse_openmetrics(om_path.read_text())
    assert "crayfish_broker_consumer_lag" in families
    assert "crayfish_pipeline_latency_seconds" in families
    assert load_metrics_jsonl(str(jsonl_path))


def test_chaos_command(capsys):
    code = main(
        [
            "chaos", "--sps", "flink", "--serving", "tf_serving",
            "--ir", "100", "--duration", "4",
            "--fault", "server-crash", "--at", "2", "--fault-duration", "0.3",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "chaos: server-crash @ 2.0s" in out
    assert "goodput ratio" in out
    assert "faults injected" in out


def test_chaos_engine_crash_command(capsys):
    code = main(
        [
            "chaos", "--sps", "kafka_streams", "--serving", "onnx",
            "--ir", "100", "--duration", "4",
            "--fault", "engine-crash", "--at", "2", "--fault-duration", "0.3",
            "--checkpoint-interval", "0.5",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "chaos: engine-crash" in out
    assert "engine restarts / checkpoints" in out


def test_chaos_requires_external_serving():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        main(
            [
                "chaos", "--sps", "flink", "--serving", "onnx",
                "--fault", "server-crash",
            ]
        )


def test_invalid_choice_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--sps", "storm"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_lint_command_clean_tree(capsys):
    code = main(["lint", "src"])
    assert code == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_lint_command_finds_violations(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    code = main(["lint", str(bad)])
    assert code == 1
    out = capsys.readouterr().out
    assert "wall-clock" in out
    assert "1 finding(s)" in out


def test_lint_command_json_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x=[]):\n    return x\n")
    code = main(["lint", str(bad), "--format", "json"])
    assert code == 1
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["findings"] == 1
    assert payload["findings"][0]["rule"] == "mutable-default"


def test_lint_command_only_subset(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\nh = hash('x')\n")
    code = main(["lint", str(bad), "--only", "hash-randomization"])
    assert code == 1
    out = capsys.readouterr().out
    assert "hash-randomization" in out
    assert "wall-clock" not in out


def test_lint_command_rule_catalogue(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("wall-clock", "global-random", "silent-except"):
        assert rule in out


def test_lint_command_list_suppressions(capsys):
    code = main(["lint", "src", "--list-suppressions"])
    assert code == 0
    out = capsys.readouterr().out
    assert "# Determinism lint suppressions" in out
    assert "src/repro/simul/rng.py" in out


def test_lint_command_missing_path(capsys):
    assert main(["lint", "no/such/dir"]) == 2


def test_lint_command_select_filters(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\nh = hash('x')\n")
    code = main(["lint", str(bad), "--select", "hash-randomization"])
    assert code == 1
    out = capsys.readouterr().out
    assert "hash-randomization" in out
    assert "wall-clock" not in out


def test_lint_command_select_clean_subset_exit_zero(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    assert main(["lint", str(bad), "--select", "hash-randomization"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_lint_command_ignore_drops_rule(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\nh = hash('x')\n")
    code = main(["lint", str(bad), "--ignore", "wall-clock"])
    assert code == 1
    out = capsys.readouterr().out
    assert "hash-randomization" in out
    assert "wall-clock" not in out
    assert main(["lint", str(bad), "--ignore", "wall-clock,hash-randomization"]) == 0


def test_lint_command_unknown_rule_exits_two(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("x = 1\n")
    assert main(["lint", str(bad), "--select", "no-such-rule"]) == 2
    assert "no-such-rule" in capsys.readouterr().err
    assert main(["lint", str(bad), "--ignore", "also-bogus"]) == 2
    assert "also-bogus" in capsys.readouterr().err


def test_lint_command_check_suppressions_fresh(tmp_path, capsys, monkeypatch):
    target = tmp_path / "mod.py"
    target.write_text(
        "import time\n"
        "t = time.time()  # crayfish: allow[wall-clock]: test boundary\n"
    )
    inventory = tmp_path / "SUPPRESSIONS.md"
    assert main(["lint", str(target), "--list-suppressions"]) == 0
    inventory.write_text(capsys.readouterr().out)
    code = main([
        "lint", str(target), "--check-suppressions",
        "--suppressions-file", str(inventory),
    ])
    assert code == 0
    assert "is fresh" in capsys.readouterr().out


def test_lint_command_check_suppressions_stale_prints_diff(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text(
        "import time\n"
        "t = time.time()  # crayfish: allow[wall-clock]: test boundary\n"
    )
    inventory = tmp_path / "SUPPRESSIONS.md"
    inventory.write_text("# stale inventory\n")
    code = main([
        "lint", str(target), "--check-suppressions",
        "--suppressions-file", str(inventory),
    ])
    assert code == 1
    out = capsys.readouterr().out
    assert "--- " in out and "+++ " in out  # unified diff headers
    assert "regenerate with" in out
    assert f"--list-suppressions {target} > {inventory}" in out


def test_verify_determinism_command(capsys):
    code = main(
        ["verify-determinism", "--sps", "flink", "--ir", "60", "--duration", "1"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "byte-identical" in out
    assert "reproduce byte-identically" in out


def test_verify_order_command(capsys):
    code = main([
        "verify-order", "--sps", "flink", "--ir", "30",
        "--duration", "0.5", "--permutations", "1", "--no-sanitize",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "order-independent" in out
    assert "byte-identical across 2 perturbed schedule(s)" in out


def test_run_command_sanitized(capsys):
    code = main(["run", "--duration", "1", "--ir", "50", "--sanitize"])
    assert code == 0
    assert "throughput" in capsys.readouterr().out


def test_run_command_tie_track(capsys):
    code = main(["run", "--duration", "1", "--ir", "50", "--tie-track"])
    assert code == 0
    out = capsys.readouterr().out
    assert "tie tracker:" in out
    assert "0 conflict(s)" in out
