"""Unit tests for the GNN extension (real GCN math + accounting)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.gnn import GcnModel, GraphConvLayer, build_gcn, normalize_adjacency


def ring_graph(n):
    adj = np.zeros((n, n), dtype=np.float32)
    for i in range(n):
        adj[i, (i + 1) % n] = 1.0
        adj[(i + 1) % n, i] = 1.0
    return adj


def test_normalize_adjacency_symmetric_and_bounded():
    adj = ring_graph(6)
    norm = normalize_adjacency(adj)
    np.testing.assert_allclose(norm, norm.T, atol=1e-6)
    assert (norm >= 0).all()
    # Self-loops added: the diagonal is non-zero.
    assert (np.diag(norm) > 0).all()


def test_normalize_adjacency_rejects_non_square():
    with pytest.raises(ShapeError):
        normalize_adjacency(np.zeros((3, 4)))


def test_graph_conv_layer_forward():
    layer = GraphConvLayer(4, 3)
    layer.initialize(np.random.default_rng(0))
    adj = normalize_adjacency(ring_graph(5))
    h = np.random.default_rng(1).random((5, 4)).astype(np.float32)
    out = layer.forward(h, adj)
    assert out.shape == (5, 3)
    assert (out >= 0).all()  # non-final layer applies ReLU


def test_graph_conv_requires_init():
    layer = GraphConvLayer(4, 3)
    with pytest.raises(ShapeError):
        layer.forward(np.zeros((2, 4)), np.eye(2))


def test_graph_conv_validates_features():
    layer = GraphConvLayer(4, 3)
    layer.initialize(np.random.default_rng(0))
    with pytest.raises(ShapeError):
        layer.forward(np.zeros((2, 5), dtype=np.float32), np.eye(2))


def test_gcn_predict_is_distribution():
    model = build_gcn(initialize=True, seed=0, feature_dim=8, hidden_dim=16, classes=3)
    adj = ring_graph(10)
    x = np.random.default_rng(2).random((10, 8)).astype(np.float32)
    probs = model.predict(x, adj)
    assert probs.shape == (10, 3)
    np.testing.assert_allclose(probs.sum(axis=1), np.ones(10), rtol=1e-5)


def test_gcn_predict_validation():
    model = build_gcn(initialize=True, feature_dim=8)
    with pytest.raises(ShapeError):
        model.predict(np.zeros((4, 8), dtype=np.float32))  # no adjacency
    with pytest.raises(ShapeError):
        model.predict(np.zeros((4, 9), dtype=np.float32), ring_graph(4))
    with pytest.raises(ShapeError):
        model.predict(np.zeros((4, 8), dtype=np.float32), ring_graph(5))


def test_gcn_neighborhood_grows_geometrically_with_hops():
    one = build_gcn(hops=1, avg_degree=8)
    two = build_gcn(hops=2, avg_degree=8)
    three = build_gcn(hops=3, avg_degree=8)
    assert one.neighborhood_size == 1 + 8
    assert two.neighborhood_size == 1 + 8 + 64
    assert three.neighborhood_size > 5 * two.neighborhood_size


def test_gcn_flops_scale_with_neighborhood():
    shallow = build_gcn(hops=1)
    deep = build_gcn(hops=3)
    assert deep.flops_per_point > 10 * shallow.flops_per_point


def test_gcn_param_count_matches_layers():
    model = build_gcn(feature_dim=8, hidden_dim=16, classes=3, hops=2)
    assert model.param_count == (8 * 16 + 16) + (16 * 3 + 3)


def test_gcn_invalid_configs():
    with pytest.raises(ShapeError):
        build_gcn(hops=0)
    with pytest.raises(ShapeError):
        GcnModel(8, 16, 2, avg_degree=0.5)


def test_gcn_registers_in_zoo():
    from repro.nn.zoo import available_models, model_info, register_model, unregister_model

    register_model("gcn_test", build_gcn)
    try:
        assert "gcn_test" in available_models()
        info = model_info("gcn_test")
        assert info.input_shape == (64,)
        assert info.flops_per_point > 0
    finally:
        unregister_model("gcn_test")
    assert "gcn_test" not in available_models()
