"""Unit tests for Swish, SqueezeExcite, and EfficientNet-B0."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.layers import Residual, Dense, SqueezeExcite, Swish
from repro.nn.zoo import model_info
from repro.nn.zoo.efficientnet import build_efficientnet

RNG = np.random.default_rng(0)


def test_swish_matches_definition():
    swish = Swish((4,))
    x = np.array([[-2.0, 0.0, 1.0, 3.0]], dtype=np.float32)
    expected = x / (1.0 + np.exp(-x))
    np.testing.assert_allclose(swish.forward(x), expected, rtol=1e-5)


def test_swish_handles_extreme_inputs():
    swish = Swish((2,))
    out = swish.forward(np.array([[-1000.0, 1000.0]], dtype=np.float32))
    assert np.isfinite(out).all()
    assert out[0, 0] == pytest.approx(0.0, abs=1e-5)
    assert out[0, 1] == pytest.approx(1000.0, rel=1e-5)


def test_squeeze_excite_shapes_and_params():
    se = SqueezeExcite((32, 8, 8), reduction=4)
    assert se.output_shape == (32, 8, 8)
    assert se.squeezed == 8
    assert se.param_count == (32 * 8 + 8) + (8 * 32 + 32)


def test_squeeze_excite_gates_channels():
    se = SqueezeExcite((4, 3, 3), reduction=2)
    se.initialize(np.random.default_rng(1))
    x = RNG.random((2, 4, 3, 3)).astype(np.float32)
    out = se.forward(x)
    assert out.shape == x.shape
    # Gates are in (0, 1): output magnitude never exceeds the input's.
    assert (np.abs(out) <= np.abs(x) + 1e-6).all()
    # Scaling is per channel: within one channel the ratio is constant.
    ratio = out[0, 0] / x[0, 0]
    assert np.allclose(ratio, ratio.flat[0], rtol=1e-4)


def test_squeeze_excite_validation():
    with pytest.raises(ShapeError):
        SqueezeExcite((4,), reduction=2)
    with pytest.raises(ShapeError):
        SqueezeExcite((4, 2, 2), reduction=0)


def test_residual_without_final_relu():
    block = Residual((4,), [Dense((4,), 4)], final_relu=False)
    block.initialize(np.random.default_rng(0))
    x = RNG.standard_normal((8, 4)).astype(np.float32)
    out = block.forward(x)
    # Without the ReLU, negative outputs survive.
    assert (out < 0).any()
    assert block.config()["final_relu"] is False


def test_efficientnet_matches_published_characteristics():
    """Tan & Le: B0 has ~5.3M params and ~0.39 GMACs (~0.78 GFLOPs)."""
    info = model_info("efficientnet_b0")
    assert info.input_shape == (3, 224, 224)
    assert info.output_shape == (1000,)
    assert 5.0e6 <= info.param_count <= 5.7e6
    assert 0.7e9 <= info.flops_per_point <= 0.95e9


def test_efficientnet_sits_between_mobilenet_in_params():
    assert (
        model_info("mobilenet").param_count
        < model_info("efficientnet_b0").param_count
        < model_info("resnet50").param_count
    )


def test_efficientnet_forward():
    model = build_efficientnet(initialize=True, seed=0)
    x = RNG.random((1, 3, 224, 224), dtype=np.float32)
    probs = model.predict(x)
    assert probs.shape == (1, 1000)
    np.testing.assert_allclose(probs.sum(), 1.0, rtol=1e-4)


def test_efficientnet_serializes():
    """The architecture (incl. SE/Swish/no-relu residuals) round-trips."""
    from repro.nn.model import Sequential

    model = build_efficientnet(initialize=False)
    rebuilt = Sequential.from_architecture(model.architecture(), name=model.name)
    assert rebuilt.param_count == model.param_count
    assert rebuilt.flops_per_point == pytest.approx(model.flops_per_point)


def test_efficientnet_usable_in_experiments():
    from repro.config import ExperimentConfig
    from repro.core.runner import run_experiment

    result = run_experiment(
        ExperimentConfig(
            sps="flink", serving="onnx", model="efficientnet_b0", ir=None, duration=3.0
        )
    )
    assert result.completed > 5
    # Input serde dominates at 224x224x3, so the rate sits near
    # MobileNet's despite fewer FLOPs.
    assert 5 < result.throughput < 25
