"""Unit tests for NN layers: shapes, params, FLOPs, and forward math."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import (
    Add,
    BatchNorm2d,
    Conv2d,
    Dense,
    Flatten,
    GlobalAvgPool2d,
    MaxPool2d,
    ReLU,
    Residual,
    Softmax,
)

RNG = np.random.default_rng(0)


def test_dense_shapes_and_params():
    layer = Dense((784,), 32)
    assert layer.output_shape == (32,)
    assert layer.param_count == 784 * 32 + 32
    assert layer.flops_per_point == 2 * 784 * 32


def test_dense_forward_matches_numpy():
    layer = Dense((3,), 2)
    layer.set_params(
        {
            "weight": np.array([[1, 0], [0, 1], [1, 1]], dtype=np.float32),
            "bias": np.array([10, 20], dtype=np.float32),
        }
    )
    out = layer.forward(np.array([[1.0, 2.0, 3.0]]))
    np.testing.assert_allclose(out, [[14.0, 25.0]])


def test_dense_rejects_bad_input_shape():
    layer = Dense((3,), 2)
    layer.initialize(RNG)
    with pytest.raises(ShapeError):
        layer.forward(np.zeros((1, 4)))


def test_dense_requires_weights():
    layer = Dense((3,), 2)
    with pytest.raises(ShapeError, match="no weights"):
        layer.forward(np.zeros((1, 3)))


def test_dense_rejects_wrong_param_shapes():
    layer = Dense((3,), 2)
    with pytest.raises(ShapeError):
        layer.set_params(
            {
                "weight": np.zeros((2, 3), dtype=np.float32),
                "bias": np.zeros(2, dtype=np.float32),
            }
        )


def test_conv2d_output_shape():
    conv = Conv2d((3, 224, 224), filters=64, kernel_size=7, stride=2, padding=3)
    assert conv.output_shape == (64, 112, 112)


def test_conv2d_param_count():
    conv = Conv2d((3, 224, 224), filters=64, kernel_size=7, stride=2, padding=3)
    assert conv.param_count == 64 * 3 * 7 * 7 + 64


def test_conv2d_forward_identity_kernel():
    conv = Conv2d((1, 4, 4), filters=1, kernel_size=1)
    conv.set_params(
        {
            "weight": np.ones((1, 1, 1, 1), dtype=np.float32),
            "bias": np.zeros(1, dtype=np.float32),
        }
    )
    x = RNG.standard_normal((2, 1, 4, 4)).astype(np.float32)
    np.testing.assert_allclose(conv.forward(x), x, rtol=1e-6)


def test_conv2d_forward_matches_naive():
    conv = Conv2d((2, 5, 5), filters=3, kernel_size=3, stride=2, padding=1)
    conv.initialize(np.random.default_rng(1))
    x = RNG.standard_normal((2, 2, 5, 5)).astype(np.float32)
    out = conv.forward(x)
    w = conv.get_params()["weight"]
    b = conv.get_params()["bias"]
    padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
    expected = np.zeros_like(out)
    for n in range(2):
        for f in range(3):
            for i in range(out.shape[2]):
                for j in range(out.shape[3]):
                    window = padded[n, :, 2 * i : 2 * i + 3, 2 * j : 2 * j + 3]
                    expected[n, f, i, j] = (window * w[f]).sum() + b[f]
    np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)


def test_conv2d_kernel_too_big_rejected():
    with pytest.raises(ShapeError):
        Conv2d((1, 3, 3), filters=1, kernel_size=5)


def test_batchnorm_normalizes():
    bn = BatchNorm2d((2, 3, 3))
    bn.set_params(
        {
            "gamma": np.ones(2, dtype=np.float32),
            "beta": np.zeros(2, dtype=np.float32),
            "running_mean": np.array([1.0, -1.0], dtype=np.float32),
            "running_var": np.array([4.0, 1.0], dtype=np.float32),
        }
    )
    x = np.ones((1, 2, 3, 3), dtype=np.float32)
    out = bn.forward(x)
    np.testing.assert_allclose(out[0, 0], np.zeros((3, 3)), atol=1e-3)
    np.testing.assert_allclose(out[0, 1], 2 * np.ones((3, 3)), atol=1e-3)


def test_relu_clips_negative():
    relu = ReLU((4,))
    out = relu.forward(np.array([[-1.0, 0.0, 2.0, -3.0]]))
    np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0, 0.0]])


def test_softmax_rows_sum_to_one():
    softmax = Softmax((5,))
    out = softmax.forward(RNG.standard_normal((8, 5)).astype(np.float32))
    np.testing.assert_allclose(out.sum(axis=1), np.ones(8), rtol=1e-5)
    assert (out >= 0).all()


def test_softmax_handles_large_logits():
    softmax = Softmax((3,))
    out = softmax.forward(np.array([[1000.0, 1000.0, -1000.0]]))
    assert np.isfinite(out).all()
    np.testing.assert_allclose(out[0, :2], [0.5, 0.5], rtol=1e-5)


def test_flatten():
    flat = Flatten((2, 3, 4))
    assert flat.output_shape == (24,)
    x = RNG.standard_normal((5, 2, 3, 4)).astype(np.float32)
    assert flat.forward(x).shape == (5, 24)


def test_maxpool_shape_and_values():
    pool = MaxPool2d((1, 4, 4), pool_size=2)
    assert pool.output_shape == (1, 2, 2)
    x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
    out = pool.forward(x)
    np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])


def test_maxpool_with_padding():
    pool = MaxPool2d((1, 3, 3), pool_size=3, stride=2, padding=1)
    assert pool.output_shape == (1, 2, 2)
    x = np.arange(9, dtype=np.float32).reshape(1, 1, 3, 3)
    out = pool.forward(x)
    assert np.isfinite(out).all()


def test_global_avg_pool():
    gap = GlobalAvgPool2d((2, 3, 3))
    x = np.ones((1, 2, 3, 3), dtype=np.float32)
    x[0, 1] = 3.0
    np.testing.assert_allclose(gap.forward(x), [[1.0, 3.0]])


def test_add_layer():
    add = Add((3,))
    out = add.forward(np.ones((1, 3)), np.full((1, 3), 2.0))
    np.testing.assert_array_equal(out, [[3.0, 3.0, 3.0]])
    with pytest.raises(ShapeError):
        add.forward(np.ones((1, 3)))


def test_residual_identity_shortcut():
    main = [Dense((4,), 4)]
    block = Residual((4,), main)
    block.initialize(np.random.default_rng(0))
    x = RNG.standard_normal((2, 4)).astype(np.float32)
    expected = np.maximum(main[0].forward(x) + x, 0.0)
    np.testing.assert_allclose(block.forward(x), expected, rtol=1e-6)


def test_residual_projection_shortcut():
    main = [Dense((4,), 8)]
    shortcut = [Dense((4,), 8)]
    block = Residual((4,), main, shortcut)
    block.initialize(np.random.default_rng(0))
    out = block.forward(RNG.standard_normal((2, 4)).astype(np.float32))
    assert out.shape == (2, 8)
    assert (out >= 0).all()


def test_residual_shape_mismatch_rejected():
    with pytest.raises(ShapeError):
        Residual((4,), [Dense((4,), 8)])  # identity shortcut shape mismatch


def test_residual_param_accounting():
    block = Residual((4,), [Dense((4,), 4)], [Dense((4,), 4)])
    assert block.param_count == 2 * (4 * 4 + 4)
    assert set(block.param_shapes()) == {
        "main.0.weight",
        "main.0.bias",
        "shortcut.0.weight",
        "shortcut.0.bias",
    }


def test_invalid_shapes_rejected():
    with pytest.raises(ShapeError):
        Dense((0,), 3)
    with pytest.raises(ShapeError):
        Dense((2, 2), 3)
    with pytest.raises(ShapeError):
        Conv2d((4,), 1, 1)
    with pytest.raises(ShapeError):
        Softmax((2, 2))
