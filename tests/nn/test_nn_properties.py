"""Property-based tests for NN invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Dense, Flatten, ReLU, Sequential, Softmax
from repro.nn.formats import FORMATS


@given(
    x=hnp.arrays(
        dtype=np.float32,
        shape=st.tuples(
            st.integers(min_value=1, max_value=8),
            st.integers(min_value=1, max_value=20),
        ),
        elements=st.floats(min_value=-1e4, max_value=1e4, width=32),
    )
)
def test_softmax_is_a_distribution(x):
    softmax = Softmax((x.shape[1],))
    out = softmax.forward(x)
    assert (out >= 0).all()
    np.testing.assert_allclose(out.sum(axis=1), np.ones(x.shape[0]), rtol=1e-4)


@given(
    x=hnp.arrays(
        dtype=np.float32,
        shape=st.tuples(
            st.integers(min_value=1, max_value=4),
            st.integers(min_value=1, max_value=10),
        ),
        elements=st.floats(min_value=-100, max_value=100, width=32),
    )
)
def test_relu_idempotent_and_nonnegative(x):
    relu = ReLU((x.shape[1],))
    once = relu.forward(x)
    assert (once >= 0).all()
    np.testing.assert_array_equal(relu.forward(once), once)


@given(
    batch=st.integers(min_value=1, max_value=4),
    dims=st.tuples(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
    ),
)
def test_flatten_preserves_values(batch, dims):
    flat = Flatten(dims)
    x = np.random.default_rng(0).random((batch, *dims)).astype(np.float32)
    out = flat.forward(x)
    np.testing.assert_array_equal(out.reshape(x.shape), x)


@given(
    in_dim=st.integers(min_value=1, max_value=16),
    hidden=st.integers(min_value=1, max_value=16),
    out_dim=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_param_count_matches_materialized_weights(in_dim, hidden, out_dim, seed):
    model = Sequential(
        [Dense((in_dim,), hidden), ReLU((hidden,)), Dense((hidden,), out_dim)]
    ).initialize(seed)
    total = sum(w.size for w in model.get_weights().values())
    assert total == model.param_count


@given(
    in_dim=st.integers(min_value=1, max_value=8),
    out_dim=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
    fmt=st.sampled_from(["onnx", "torch", "h5"]),
)
@settings(max_examples=20, deadline=None)
def test_format_round_trip_property(in_dim, out_dim, seed, fmt):
    model = Sequential([Dense((in_dim,), out_dim)], name="m").initialize(seed)
    restored = FORMATS[fmt].loads(FORMATS[fmt].dumps(model))
    for name, array in model.get_weights().items():
        np.testing.assert_array_equal(restored.get_weights()[name], array)
