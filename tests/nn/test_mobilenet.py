"""Unit tests for DepthwiseConv2d and the MobileNetV1 zoo model."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import DepthwiseConv2d
from repro.nn.zoo import build_mobilenet, model_info


def test_depthwise_shapes_and_params():
    layer = DepthwiseConv2d((32, 112, 112), kernel_size=3, stride=1, padding=1)
    assert layer.output_shape == (32, 112, 112)
    assert layer.param_count == 32 * 9 + 32


def test_depthwise_stride_halves_resolution():
    layer = DepthwiseConv2d((8, 16, 16), kernel_size=3, stride=2, padding=1)
    assert layer.output_shape == (8, 8, 8)


def test_depthwise_forward_matches_naive():
    layer = DepthwiseConv2d((2, 5, 5), kernel_size=3, stride=1, padding=1)
    layer.initialize(np.random.default_rng(0))
    x = np.random.default_rng(1).standard_normal((2, 2, 5, 5)).astype(np.float32)
    out = layer.forward(x)
    w = layer.get_params()["weight"]
    b = layer.get_params()["bias"]
    padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
    expected = np.zeros_like(out)
    for n in range(2):
        for c in range(2):
            for i in range(5):
                for j in range(5):
                    window = padded[n, c, i : i + 3, j : j + 3]
                    expected[n, c, i, j] = (window * w[c]).sum() + b[c]
    np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)


def test_depthwise_cheaper_than_full_conv():
    from repro.nn import Conv2d

    depthwise = DepthwiseConv2d((64, 28, 28), kernel_size=3, padding=1)
    full = Conv2d((64, 28, 28), filters=64, kernel_size=3, padding=1)
    assert depthwise.flops_per_point < full.flops_per_point / 20


def test_depthwise_validation():
    with pytest.raises(ShapeError):
        DepthwiseConv2d((4,), kernel_size=3)
    with pytest.raises(ShapeError):
        DepthwiseConv2d((1, 2, 2), kernel_size=5)


def test_mobilenet_matches_published_characteristics():
    """Howard et al.: ~4.2M params, ~0.57 GMACs (~1.1 GFLOPs)."""
    info = model_info("mobilenet")
    assert info.input_shape == (3, 224, 224)
    assert info.output_shape == (1000,)
    assert 4.0e6 <= info.param_count <= 4.5e6
    assert 1.0e9 <= info.flops_per_point <= 1.3e9


def test_mobilenet_between_ffnn_and_resnet():
    ffnn = model_info("ffnn")
    mobilenet = model_info("mobilenet")
    resnet = model_info("resnet50")
    assert ffnn.flops_per_point < mobilenet.flops_per_point < resnet.flops_per_point
    assert ffnn.param_count < mobilenet.param_count < resnet.param_count


def test_mobilenet_is_not_a_large_model():
    """MobileNet must not trip the ResNet-class serving restrictions."""
    from repro import calibration as cal
    from repro.serving.costs import ServingCostModel

    costs = ServingCostModel(
        cal.SERVING_PROFILES["tf_serving"], model_info("mobilenet"), mp=8
    )
    assert not costs.is_large_model
    assert costs.engine_concurrency == 8


def test_mobilenet_forward_small_input():
    """Real forward pass on a reduced-resolution clone of the stem."""
    model = build_mobilenet(initialize=False)
    # Materializing the full net is ~17 MB — fine, but run one tiny batch.
    model.initialize(seed=0)
    x = np.random.default_rng(0).random((1, 3, 224, 224), dtype=np.float32)
    probs = model.predict(x)
    assert probs.shape == (1, 1000)
    np.testing.assert_allclose(probs.sum(), 1.0, rtol=1e-4)


def test_mobilenet_usable_in_experiments():
    from repro.config import ExperimentConfig
    from repro.core.runner import run_experiment

    result = run_experiment(
        ExperimentConfig(
            sps="flink", serving="onnx", model="mobilenet", ir=None, duration=3.0
        )
    )
    assert result.completed > 5
    # Sustainable rate sits between FFNN (~1.3k) and ResNet50 (~2.4).
    assert 5 < result.throughput < 500
