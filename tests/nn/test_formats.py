"""Unit tests for model serialization formats."""

import numpy as np
import pytest

from repro.errors import ModelFormatError
from repro.nn import Dense, ReLU, Residual, Sequential, Softmax
from repro.nn.formats import (
    FORMATS,
    format_for_tool,
    load_model,
    save_model,
    serialized_size,
)
from repro.nn.zoo import build_ffnn


def small_model(seed=3):
    layers = [
        Dense((6,), 4),
        ReLU((4,)),
        Residual((4,), [Dense((4,), 4)]),
        Dense((4,), 3),
        Softmax((3,)),
    ]
    return Sequential(layers, name="tiny").initialize(seed)


@pytest.mark.parametrize("fmt", sorted(FORMATS))
def test_round_trip_preserves_weights_and_predictions(fmt, tmp_path):
    model = small_model()
    path = str(tmp_path / f"artifact.{fmt}")
    save_model(model, path, fmt)
    restored = load_model(path, fmt)
    assert restored.name == "tiny"
    for name, array in model.get_weights().items():
        np.testing.assert_array_equal(restored.get_weights()[name], array)
    x = np.random.default_rng(0).random((4, 6)).astype(np.float32)
    np.testing.assert_allclose(restored.predict(x), model.predict(x), rtol=1e-6)


@pytest.mark.parametrize("fmt", ["onnx", "torch", "h5"])
def test_single_file_formats_reject_garbage(fmt):
    with pytest.raises(ModelFormatError):
        FORMATS[fmt].loads(b"garbage bytes that are not a model")


def test_savedmodel_rejects_non_directory(tmp_path):
    with pytest.raises(ModelFormatError):
        FORMATS["savedmodel"].load(str(tmp_path / "missing"))


def test_truncated_onnx_rejected(tmp_path):
    model = small_model()
    data = FORMATS["onnx"].dumps(model)
    with pytest.raises(ModelFormatError):
        FORMATS["onnx"].loads(data[: len(data) - 50])


def test_format_sizes_reproduce_table2_ordering(tmp_path):
    """Table 2 FFNN: ONNX 113 KB < Torch 115 KB < H5 133 KB << SavedModel
    508 KB. Our artifacts must reproduce the ordering and rough ratios."""
    model = build_ffnn(initialize=True, seed=0)
    sizes = {
        fmt: serialized_size(model, fmt, str(tmp_path)) for fmt in FORMATS
    }
    assert sizes["onnx"] <= sizes["torch"] < sizes["h5"] < sizes["savedmodel"]
    # Roughly 4-5x between SavedModel and ONNX for the small model.
    assert 3.0 < sizes["savedmodel"] / sizes["onnx"] < 6.0
    # All artifacts are within a sane band around the raw weight bytes.
    raw = model.param_count * 4
    assert sizes["onnx"] < raw * 1.1


def test_tool_format_mapping():
    assert format_for_tool("onnx").name == "onnx"
    assert format_for_tool("dl4j").name == "h5"
    assert format_for_tool("tf_serving").name == "savedmodel"
    assert format_for_tool("torchserve").name == "torch"
    with pytest.raises(ModelFormatError):
        format_for_tool("mxnet")


def test_unknown_format_rejected(tmp_path):
    with pytest.raises(ModelFormatError):
        save_model(small_model(), str(tmp_path / "x"), "flatbuffer")
