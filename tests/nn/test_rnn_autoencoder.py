"""Unit tests for the GRU and autoencoder model classes (§4.1)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import Gru, Sigmoid
from repro.nn.formats import FORMATS
from repro.nn.zoo import build_autoencoder, build_gru, model_info

RNG = np.random.default_rng(0)


def test_gru_shapes_and_params():
    gru = Gru((10, 6), hidden=16)
    assert gru.output_shape == (16,)
    # 3 gates x (input kernel + recurrent kernel + bias).
    assert gru.param_count == 3 * (6 * 16 + 16 * 16 + 16)


def test_gru_flops_scale_with_timesteps():
    short = Gru((8, 6), hidden=16)
    long = Gru((64, 6), hidden=16)
    assert long.flops_per_point == pytest.approx(8 * short.flops_per_point)


def test_gru_forward_bounded_state():
    gru = Gru((12, 4), hidden=8)
    gru.initialize(np.random.default_rng(1))
    out = gru.forward(RNG.standard_normal((3, 12, 4)).astype(np.float32))
    assert out.shape == (3, 8)
    # GRU hidden state is a convex mix of tanh candidates: |h| <= 1.
    assert np.abs(out).max() <= 1.0 + 1e-6


def test_gru_is_order_sensitive():
    """Reversing the sequence must change the final state (a real
    recurrence, not a pooling operator)."""
    gru = Gru((6, 3), hidden=5)
    gru.initialize(np.random.default_rng(2))
    x = RNG.standard_normal((1, 6, 3)).astype(np.float32)
    forward = gru.forward(x)
    backward = gru.forward(x[:, ::-1, :].copy())
    assert not np.allclose(forward, backward)


def test_gru_validation():
    with pytest.raises(ShapeError):
        Gru((10,), hidden=4)
    with pytest.raises(ShapeError):
        Gru((10, 4), hidden=0)


def test_sigmoid_range():
    sigmoid = Sigmoid((5,))
    out = sigmoid.forward(np.array([[-100.0, -1.0, 0.0, 1.0, 100.0]]))
    # Extreme inputs saturate to exactly 0/1 in float32 — fine, and no
    # overflow warnings thanks to the stable split implementation.
    assert (out >= 0).all() and (out <= 1).all()
    assert out[0, 2] == pytest.approx(0.5)
    assert out[0, 1] == pytest.approx(1 / (1 + np.e), rel=1e-5)


def test_gru_zoo_model():
    info = model_info("gru")
    assert info.input_shape == (32, 64)
    assert info.output_shape == (8,)
    model = build_gru(initialize=True, seed=0)
    probs = model.predict(RNG.standard_normal((2, 32, 64)).astype(np.float32))
    np.testing.assert_allclose(probs.sum(axis=1), np.ones(2), rtol=1e-5)


def test_autoencoder_reconstructs_shape():
    info = model_info("autoencoder")
    assert info.input_shape == (28, 28)
    assert info.output_values == 784
    model = build_autoencoder(initialize=True, seed=0)
    x = RNG.random((3, 28, 28), dtype=np.float32)
    reconstruction = model.predict(x)
    assert reconstruction.shape == (3, 784)
    assert (reconstruction >= 0).all() and (reconstruction <= 1).all()


def test_autoencoder_reconstruction_error_is_a_score():
    """The streaming use case: anomaly scoring by reconstruction error."""
    model = build_autoencoder(initialize=True, seed=0)
    x = RNG.random((4, 28, 28), dtype=np.float32)
    errors = ((model.predict(x) - x.reshape(4, -1)) ** 2).mean(axis=1)
    assert errors.shape == (4,)
    assert (errors >= 0).all()


def test_gru_round_trips_through_formats():
    model = build_gru(initialize=True, seed=1)
    restored = FORMATS["onnx"].loads(FORMATS["onnx"].dumps(model))
    x = RNG.standard_normal((2, 32, 64)).astype(np.float32)
    np.testing.assert_allclose(restored.predict(x), model.predict(x), rtol=1e-5)


def test_sequence_models_usable_in_experiments():
    from repro.config import ExperimentConfig
    from repro.core.runner import run_experiment

    for model in ("gru", "autoencoder"):
        result = run_experiment(
            ExperimentConfig(
                sps="flink", serving="onnx", model=model, ir=None, duration=2.0
            )
        )
        assert result.completed > 10, model
