"""Unit tests for model containers and the zoo (Table 2 characteristics)."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.nn import Dense, ReLU, Sequential
from repro.nn.zoo import build_ffnn, build_resnet50, get_model, model_info


def test_sequential_validates_shape_chain():
    with pytest.raises(ShapeError):
        Sequential([Dense((4,), 8), Dense((4,), 2)])


def test_sequential_empty_rejected():
    with pytest.raises(ShapeError):
        Sequential([])


def test_sequential_accounting():
    model = Sequential([Dense((4,), 8), ReLU((8,)), Dense((8,), 2)])
    assert model.param_count == (4 * 8 + 8) + (8 * 2 + 2)
    assert model.input_shape == (4,)
    assert model.output_shape == (2,)
    assert model.flops_per_point == 2 * 4 * 8 + 8 + 2 * 8 * 2


def test_sequential_initialize_deterministic():
    a = Sequential([Dense((4,), 2)]).initialize(seed=7)
    b = Sequential([Dense((4,), 2)]).initialize(seed=7)
    np.testing.assert_array_equal(
        a.get_weights()["0.weight"], b.get_weights()["0.weight"]
    )


def test_sequential_predict_requires_init():
    model = Sequential([Dense((4,), 2)])
    assert not model.initialized
    with pytest.raises(ShapeError):
        model.predict(np.zeros((1, 4)))


def test_sequential_predict_checks_input_shape():
    model = Sequential([Dense((4,), 2)]).initialize()
    with pytest.raises(ShapeError):
        model.predict(np.zeros((1, 5)))


def test_ffnn_matches_paper_characteristics():
    """Table 2: 28x28 input, 10x1 output, ~28K parameters."""
    info = model_info("ffnn")
    assert info.input_shape == (28, 28)
    assert info.output_shape == (10,)
    assert 27_000 <= info.param_count <= 29_000


def test_ffnn_predicts_distributions():
    model = build_ffnn(initialize=True, seed=0)
    out = model.predict(np.random.default_rng(0).random((6, 28, 28)))
    assert out.shape == (6, 10)
    np.testing.assert_allclose(out.sum(axis=1), np.ones(6), rtol=1e-5)


def test_resnet50_matches_paper_characteristics():
    """Table 2: 224x224x3 input, 1000x1 output, ~23M params (we count
    25.6M, the full torchvision/Keras number)."""
    info = model_info("resnet50")
    assert info.input_shape == (3, 224, 224)
    assert info.output_shape == (1000,)
    assert 23_000_000 <= info.param_count <= 26_000_000
    # He et al. report ~3.8 GMACs = ~7.7 GFLOPs.
    assert 7.0e9 <= info.flops_per_point <= 8.5e9


def test_resnet50_architecture_without_weights_is_cheap():
    model = build_resnet50(initialize=False)
    assert not model.initialized
    assert model.param_count > 20_000_000  # counting needs no allocation


def test_model_info_cached_and_validated():
    assert model_info("ffnn") is model_info("ffnn")
    with pytest.raises(ConfigError):
        model_info("alexnet")
    with pytest.raises(ConfigError):
        get_model("alexnet")


def test_model_info_value_counts():
    info = model_info("ffnn")
    assert info.input_values == 784
    assert info.output_values == 10


def test_ffnn_flops_consistent_with_architecture():
    info = model_info("ffnn")
    dense_flops = 2 * (784 * 32 + 32 * 32 + 32 * 32 + 32 * 10)
    assert dense_flops <= info.flops_per_point <= dense_flops * 1.05
