"""Schema lifecycle and recording semantics of the results database."""

import sqlite3

import pytest

from repro.store import ResultStore, SCHEMA_VERSION, apply_migrations, open_store
from repro.store.migrations import schema_version

from tests.store.conftest import FINGERPRINT, GIT_REV, make_record


def test_fresh_store_lands_on_current_schema(store):
    assert store.schema_version == SCHEMA_VERSION
    tables = {
        row[0]
        for row in store.conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
        )
    }
    assert {"runs", "sweeps", "series", "artifacts"} <= tables


def test_reopening_is_a_noop(tmp_path):
    path = tmp_path / "db.sqlite"
    with ResultStore(path, fingerprint=FINGERPRINT, git_rev=None):
        pass
    conn = sqlite3.connect(path)
    assert apply_migrations(conn) == 0  # already current: nothing to apply
    conn.close()


def test_old_version_database_upgrades_in_place(tmp_path):
    """A v1 database (older build) upgrades to v2 on open, keeping rows."""
    path = tmp_path / "old.sqlite"
    conn = sqlite3.connect(path)
    assert apply_migrations(conn, upto=1) == 1
    assert schema_version(conn) == 1
    # v1 had no cost_proxy column and no series/artifacts tables.
    columns = {row[1] for row in conn.execute("PRAGMA table_info(runs)")}
    assert "cost_proxy" not in columns
    conn.execute(
        "INSERT INTO runs(slot_id, kind, label, sps, serving, model,"
        " seed, fingerprint, recorded_at, record_json)"
        " VALUES ('s', 'run', 'l', 'flink', 'onnx', 'ffnn', 0, 'f', 1.0, '{}')"
    )
    conn.commit()
    conn.close()

    with ResultStore(path, fingerprint=FINGERPRINT, git_rev=None) as store:
        assert store.schema_version == SCHEMA_VERSION
        assert store.counts()["runs"] == 1  # pre-upgrade row survived
    # Second open: migration is idempotent, nothing re-applies.
    with ResultStore(path, fingerprint=FINGERPRINT, git_rev=None) as store:
        assert store.schema_version == SCHEMA_VERSION
        assert store.counts()["runs"] == 1


def test_newer_database_is_refused(tmp_path):
    path = tmp_path / "future.sqlite"
    conn = sqlite3.connect(path)
    conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
    conn.commit()
    conn.close()
    with pytest.raises(RuntimeError, match="newer"):
        ResultStore(path, fingerprint=FINGERPRINT, git_rev=None)


def test_bad_migration_target_rejected(tmp_path):
    conn = sqlite3.connect(tmp_path / "x.sqlite")
    with pytest.raises(ValueError, match="target version"):
        apply_migrations(conn, upto=SCHEMA_VERSION + 1)


def test_record_and_load_run(store):
    record = make_record()
    run_id = store.record_run(record, kind="run")
    row = store.run(run_id)
    assert row["kind"] == "run"
    assert row["source"] == "live"
    assert row["label"] == "flink/onnx/ffnn"
    assert row["seed"] == 0
    assert row["fingerprint"] == FINGERPRINT
    assert row["git_rev"] == GIT_REV
    assert row["recorded_at"] == 1.0  # first clock tick
    assert row["throughput"] == record["throughput"]
    assert store.load_record(run_id) == record


def test_series_round_trip(store):
    series = {
        "queue": {"last": 1.0, "peak": 9.0, "mean": 3.5, "samples": 40},
        "lag": {"last": 0.0, "peak": 2.0, "mean": 0.5, "samples": 40},
    }
    run_id = store.record_run(make_record(), series=series)
    assert store.series_of(run_id) == series
    assert store.series_of(run_id + 999) == {}


def test_load_record_unknown_id(store):
    with pytest.raises(KeyError):
        store.load_record(1234)


def test_sweep_grouping_and_meta_update(store):
    sweep_id = store.record_sweep("matrix", "smoke", {"jobs": 2})
    store.record_run(make_record(seed=0), kind="matrix", sweep_id=sweep_id)
    store.record_run(make_record(seed=1), kind="matrix", sweep_id=sweep_id)
    store.update_sweep_meta(sweep_id, {"jobs": 2, "cache": {"hits": 1}})
    row = store.conn.execute(
        "SELECT * FROM sweeps WHERE id = ?", (sweep_id,)
    ).fetchone()
    assert row["kind"] == "matrix"
    assert row["meta_json"] == '{"cache":{"hits":1},"jobs":2}'
    members = store.conn.execute(
        "SELECT COUNT(*) FROM runs WHERE sweep_id = ?", (sweep_id,)
    ).fetchone()[0]
    assert members == 2


def test_artifact_registration_is_idempotent(store):
    assert store.record_artifact("a.json", "digest1", "bench") is True
    assert store.record_artifact("a.json", "digest1", "bench") is False
    # Same path with new content imports again under the new digest.
    assert store.record_artifact("a.json", "digest2", "bench") is True
    assert store.counts()["artifacts"] == 2


def test_open_store_none_for_falsy_path(tmp_path):
    assert open_store(None) is None
    assert open_store("") is None
    with open_store(
        tmp_path / "s.sqlite", fingerprint=FINGERPRINT, git_rev=None
    ) as store:
        assert store.schema_version == SCHEMA_VERSION
