"""Backfilling the store from committed artifacts is complete & idempotent."""

import json
import pathlib

from repro.store import HistoryFilter, history
from repro.store.importers import (
    bench_slot,
    import_all,
    import_bench_metrics,
    import_scaleout_golden,
    record_bench_entries,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

BENCH_ENTRIES = {
    "flink/onnx/ffnn": {
        "throughput": 120.0,
        "latency_mean": 0.011,
        "latency_p95": 0.021,
        "completed": 60,
        "series": {
            "events_completed": {
                "last": 60.0, "peak": 60.0, "mean": 30.0, "samples": 12,
            },
        },
    },
    "ray/ray_serve/ffnn": {
        "throughput": 80.0,
        "latency_mean": 0.015,
        "latency_p95": 0.030,
        "completed": 40,
        "series": {},
    },
    "not a label": {"throughput": 1.0},
}


def test_bench_slot_is_stable_and_label_keyed():
    assert bench_slot("flink/onnx/ffnn") == bench_slot("flink/onnx/ffnn")
    assert bench_slot("flink/onnx/ffnn") != bench_slot("ray/ray_serve/ffnn")


def test_record_bench_entries_parses_labels(store):
    report = record_bench_entries(store, BENCH_ENTRIES)
    assert report.runs == 2
    assert report.series == 1
    assert report.skipped == ["not a label"]
    rows = history(store, HistoryFilter(kind="bench"))
    by_label = {row["label"]: row for row in rows}
    flink = by_label["flink/onnx/ffnn"]
    assert flink["slot_id"] == bench_slot("flink/onnx/ffnn")
    assert flink["sps"] == "flink"
    assert flink["serving"] == "onnx"
    assert flink["throughput"] == 120.0
    assert store.series_of(flink["id"]) == BENCH_ENTRIES[
        "flink/onnx/ffnn"
    ]["series"]


def test_live_bench_recordings_share_import_slots(store, tmp_path):
    path = tmp_path / "BENCH_metrics.json"
    path.write_text(json.dumps({k: v for k, v in BENCH_ENTRIES.items()
                                if k != "not a label"}))
    import_bench_metrics(store, path)
    record_bench_entries(
        store, {"flink/onnx/ffnn": BENCH_ENTRIES["flink/onnx/ffnn"]}
    )
    slot = bench_slot("flink/onnx/ffnn")
    rows = history(store, HistoryFilter(slot_id=slot))
    # Imported baseline and live recording form one longitudinal series.
    assert len(rows) == 2
    assert {row["source"] for row in rows} == {
        "import:bench_metrics", "bench",
    }


def test_scaleout_nodes_parsed_from_cluster_shorthand(store, tmp_path):
    path = tmp_path / "scaleout_golden.json"
    path.write_text(json.dumps({
        "base": {"sps": "flink", "serving": "tf_serving", "model": "ffnn",
                 "ir": 50.0, "duration": 0.5, "seed": 0},
        "points": [
            {"overrides": {"cluster": "3n"},
             "runs": [{"seed": 0, "throughput": 140.0,
                       "latency": {"mean": 0.01, "p95": 0.02},
                       "completed": 70}]},
        ],
    }))
    report = import_scaleout_golden(store, path)
    assert report.runs == 1
    (row,) = history(store)
    assert row["nodes"] == 3
    assert "cluster=3n" in row["label"]


def test_import_all_against_real_repo_is_idempotent(store):
    first = import_all(store, REPO_ROOT)
    assert first.runs > 0
    assert first.artifacts > 0
    counts = store.counts()

    steps = []
    second = import_all(store, REPO_ROOT, hook=lambda n, r: steps.append(n))
    assert second.runs == 0
    assert second.artifacts == 0
    assert len(second.skipped) == first.artifacts  # every file unchanged
    assert store.counts() == counts
    assert "BENCH_metrics.json" in steps


def test_import_missing_sources_is_quietly_empty(store, tmp_path):
    report = import_all(store, tmp_path)
    assert (report.runs, report.series, report.artifacts) == (0, 0, 0)
    assert report.skipped == []
