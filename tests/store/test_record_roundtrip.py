"""Property tests: store -> load is lossless, identities are stable."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.config
from repro.config import EMBEDDED_TOOLS, ExperimentConfig
from repro.matrix.cache import ResultCache
from repro.store.record import (
    cost_proxy,
    parse_label,
    record_from_row,
    run_row_from_record,
    slot_id_of,
)

from tests.store.conftest import make_record

configs = st.builds(
    ExperimentConfig,
    sps=st.sampled_from(repro.config.SPS_NAMES),
    serving=st.sampled_from(repro.config.SERVING_TOOLS),
    model=st.sampled_from(repro.config.MODEL_NAMES),
    ir=st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
    duration=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    mp=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**16),
    gpu=st.booleans(),
)

finite = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


@settings(max_examples=40, deadline=None)
@given(
    config=configs,
    seed=st.integers(min_value=0, max_value=2**16),
    throughput=finite,
    latency_mean=finite,
    latency_p95=finite,
    completed=st.integers(min_value=0, max_value=10_000),
)
def test_store_load_round_trip_is_canonical_equal(
    store_factory, config, seed, throughput, latency_mean, latency_p95, completed
):
    record = make_record(
        config=config,
        seed=seed,
        throughput=throughput,
        latency_mean=latency_mean,
        latency_p95=latency_p95,
        completed=completed,
    )
    with store_factory() as store:
        run_id = store.record_run(record)
        assert store.load_record(run_id) == record
        row = store.run(run_id)
        assert record_from_row(row) == record


@settings(max_examples=40, deadline=None)
@given(config=configs, seed=st.integers(min_value=0, max_value=2**16))
def test_slot_id_matches_result_cache_identity(tmp_path_factory, config, seed):
    cache = ResultCache(tmp_path_factory.mktemp("cache"), fingerprint="f")
    assert slot_id_of(config.canonical_dict(), seed) == cache.slot_id(
        config, seed
    )


@settings(max_examples=60, deadline=None)
@given(config=configs)
def test_parse_label_inverts_label(config):
    sps, serving, model, nodes = parse_label(config.label())
    assert (sps, serving, model) == (config.sps, config.serving, config.model)
    assert nodes == 1


@settings(max_examples=40, deadline=None)
@given(config=configs, completed=st.integers(min_value=1, max_value=10_000))
def test_cost_proxy_positive_for_completed_runs(config, completed):
    record = make_record(config=config, completed=completed)
    value = cost_proxy(config.canonical_dict(), record)
    assert value is not None and value > 0
    # Embedded tools bill no serving workers, so with equal engine
    # parallelism an embedded config can never cost more than an
    # external one on the same record.
    if config.serving in EMBEDDED_TOOLS:
        external = dict(config.canonical_dict(), serving="tf_serving")
        assert value <= cost_proxy(external, record)


def test_cost_proxy_none_without_completions():
    record = make_record(completed=0)
    assert cost_proxy(record["config"], record) is None


def test_nan_aggregates_become_null_columns(store):
    record = make_record()
    record["throughput"] = math.nan
    record["latency"]["p95"] = math.nan
    run_id = store.record_run(record)
    row = store.run(run_id)
    assert row["throughput"] is None
    assert row["latency_p95"] is None
    # The authoritative record is untouched: NaN survives the JSON
    # round-trip (Python's json emits/accepts the NaN token).
    loaded = store.load_record(run_id)
    assert math.isnan(loaded["throughput"])
    assert math.isnan(loaded["latency"]["p95"])


def test_run_row_derivation_is_deterministic():
    record = make_record()
    row_a = run_row_from_record(record, fingerprint="f", recorded_at=1.0)
    row_b = run_row_from_record(record, fingerprint="f", recorded_at=1.0)
    assert row_a == row_b
    assert row_a.label == "flink/onnx/ffnn"
    assert row_a.slot_id == slot_id_of(record["config"], record["seed"])
