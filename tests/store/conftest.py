"""Shared fixtures for the results-database suite.

Every store is opened with injected provenance (fingerprint, git rev)
and a deterministic counting clock, so recordings are reproducible and
tests never shell out to git or read the real source tree.
"""

import itertools

import pytest

from repro.config import ExperimentConfig
from repro.store import ResultStore

FINGERPRINT = "test-fingerprint-0000"
GIT_REV = "cafebabe0000"

TINY = ExperimentConfig(
    sps="flink", serving="onnx", model="ffnn", ir=50.0, duration=0.5
)


def make_record(
    config: ExperimentConfig = TINY,
    seed: int = 0,
    throughput: float = 100.0,
    latency_mean: float = 0.010,
    latency_p95: float = 0.020,
    completed: int = 50,
) -> dict:
    """A minimal full result record with the canonical config block."""
    return {
        "config": config.canonical_dict(),
        "seed": seed,
        "throughput": throughput,
        "latency": {
            "mean": latency_mean,
            "p50": latency_mean,
            "p95": latency_p95,
            "p99": latency_p95 * 1.5,
            "p999": latency_p95 * 2.0,
        },
        "completed": completed,
        "produced": completed,
        "duplicates": 0,
        "inference_requests": completed,
        "measure_start": 0.1,
        "measure_end": 0.5,
        "series": [[0.2, latency_mean], [0.3, latency_mean]],
        "backlog_series": [[0.2, 1]],
    }


@pytest.fixture
def store(tmp_path):
    """A fresh on-disk store with pinned provenance and a counting clock."""
    ticks = itertools.count(1)
    with ResultStore(
        tmp_path / "store.sqlite",
        fingerprint=FINGERPRINT,
        git_rev=GIT_REV,
        clock=lambda: float(next(ticks)),
    ) as result_store:
        yield result_store


@pytest.fixture(scope="session")
def store_factory():
    """Builds throwaway in-memory stores — one per hypothesis example.

    Session-scoped (a plain callable, no per-test state) so hypothesis
    tests can use it without tripping the function-scoped-fixture health
    check.
    """

    def build() -> ResultStore:
        ticks = itertools.count(1)
        return ResultStore(
            ":memory:",
            fingerprint=FINGERPRINT,
            git_rev=GIT_REV,
            clock=lambda: float(next(ticks)),
        )

    return build
