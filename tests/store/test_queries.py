"""History, trend, regression, and pareto queries over a seeded store."""

import dataclasses

import pytest

from repro.config import ExperimentConfig
from repro.errors import ConfigError
from repro.store import (
    DEFAULT_THRESHOLDS,
    HistoryFilter,
    baseline_for,
    compare_to_baseline,
    history,
    pareto_frontier,
    slot_id_of,
    trend,
)
from repro.store.queries import validate_metric

from tests.store.conftest import TINY, make_record

KAFKA = dataclasses.replace(TINY, sps="kafka_streams")


def test_history_newest_first_and_filters(store):
    store.record_run(make_record(seed=0, throughput=100.0))
    store.record_run(make_record(seed=0, throughput=110.0))
    store.record_run(make_record(config=KAFKA, seed=0), kind="matrix")

    rows = history(store)
    assert [row["sps"] for row in rows] == ["kafka_streams", "flink", "flink"]
    assert rows[0]["recorded_at"] > rows[-1]["recorded_at"]

    flink_only = history(store, HistoryFilter(sps="flink"))
    assert {row["sps"] for row in flink_only} == {"flink"}
    assert len(flink_only) == 2

    assert len(history(store, HistoryFilter(kind="matrix"))) == 1
    assert len(history(store, HistoryFilter(limit=1))) == 1
    assert history(store, HistoryFilter(serving="torchserve")) == []


def test_trend_groups_by_slot_and_orders_oldest_first(store):
    for throughput in (100.0, 105.0, 95.0):
        store.record_run(make_record(seed=0, throughput=throughput))
    store.record_run(make_record(seed=1, throughput=50.0))  # other slot

    series = trend(store, "throughput")
    assert len(series) == 2
    by_seed = {s.seed: s for s in series}
    assert by_seed[0].values == [100.0, 105.0, 95.0]
    assert by_seed[1].values == [50.0]

    # min_points drops singletons.
    assert [s.seed for s in trend(store, "throughput", min_points=2)] == [0]


def test_trend_rejects_unknown_metric(store):
    with pytest.raises(ConfigError, match="unknown metric"):
        trend(store, "vibes")
    with pytest.raises(ConfigError):
        validate_metric("record_json")  # SQL injection guard


def test_baseline_is_latest_recording(store):
    slot = slot_id_of(TINY.canonical_dict(), 0)
    assert baseline_for(store, slot) is None
    first = store.record_run(make_record(seed=0, throughput=100.0))
    assert baseline_for(store, slot)["id"] == first
    second = store.record_run(make_record(seed=0, throughput=90.0))
    assert baseline_for(store, slot)["id"] == second


def test_compare_without_baseline(store):
    verdict = compare_to_baseline(
        store, "missing-slot", "flink/onnx/ffnn", {"throughput": 100.0}
    )
    assert not verdict.has_baseline
    assert verdict.ok
    assert verdict.deltas == ()


def test_compare_passes_within_threshold(store):
    store.record_run(make_record(seed=0, throughput=100.0))
    slot = slot_id_of(TINY.canonical_dict(), 0)
    verdict = compare_to_baseline(
        store, slot, TINY.label(),
        {"throughput": 90.0, "latency_mean": 0.011, "latency_p95": 0.021,
         "latency_p99": 0.031},
    )
    assert verdict.has_baseline
    assert verdict.ok
    # -10% throughput is within the 15% default threshold but still
    # reported as a (negative-gain, non-regressed) delta.
    delta = next(d for d in verdict.deltas if d.metric == "throughput")
    assert delta.relative_gain == pytest.approx(-0.10)
    assert not delta.regressed


def test_compare_flags_regressions_in_both_directions(store):
    store.record_run(
        make_record(seed=0, throughput=100.0, latency_mean=0.010)
    )
    slot = slot_id_of(TINY.canonical_dict(), 0)
    verdict = compare_to_baseline(
        store, slot, TINY.label(),
        {"throughput": 50.0, "latency_mean": 0.020},
    )
    assert not verdict.ok
    regressed = {d.metric for d in verdict.regressed}
    # Throughput halved (drop beats 15%) and mean latency doubled
    # (rise beats 25%): both directions of "worse" are caught.
    assert regressed == {"throughput", "latency_mean"}


def test_compare_skips_missing_and_zero_baselines(store):
    record = make_record(seed=0, throughput=0.0)
    record["latency"]["mean"] = None
    store.record_run(record)
    slot = slot_id_of(TINY.canonical_dict(), 0)
    verdict = compare_to_baseline(
        store, slot, TINY.label(),
        {"throughput": 100.0, "latency_mean": 0.010, "latency_p95": None},
    )
    # Zero baseline throughput, None baseline mean, None current p95:
    # none of them produce a delta, and p99 only compares when both
    # sides have a value.
    assert {d.metric for d in verdict.deltas} <= {"latency_p99"}
    assert verdict.ok


def test_compare_honours_custom_thresholds(store):
    store.record_run(make_record(seed=0, throughput=100.0))
    slot = slot_id_of(TINY.canonical_dict(), 0)
    strict = compare_to_baseline(
        store, slot, TINY.label(), {"throughput": 95.0},
        thresholds={"throughput": 0.01},
    )
    assert not strict.ok
    assert DEFAULT_THRESHOLDS["throughput"] == 0.15  # docs depend on it


def _point_record(config, seed, throughput, latency_p95, completed=100):
    return make_record(
        config=config,
        seed=seed,
        throughput=throughput,
        latency_mean=latency_p95 / 2,
        latency_p95=latency_p95,
        completed=completed,
    )


def test_pareto_frontier_domination(store):
    # Same engine parallelism everywhere -> cost scales with 1/completed.
    good = dataclasses.replace(TINY, serving="onnx")
    dominated = dataclasses.replace(TINY, serving="dl4j")
    tradeoff = dataclasses.replace(TINY, serving="savedmodel")
    store.record_run(_point_record(good, 0, 200.0, 0.010, completed=100))
    # Strictly worse than `good` on all three axes.
    store.record_run(_point_record(dominated, 0, 100.0, 0.020, completed=50))
    # Worse latency but higher throughput: stays on the frontier.
    store.record_run(_point_record(tradeoff, 0, 300.0, 0.040, completed=100))

    points = pareto_frontier(store)
    verdicts = {p.label: p.on_frontier for p in points}
    assert verdicts["flink/onnx/ffnn"] is True
    assert verdicts["flink/dl4j/ffnn"] is False
    assert verdicts["flink/savedmodel/ffnn"] is True
    # Frontier points sort first.
    assert [p.on_frontier for p in points] == [True, True, False]


def test_pareto_uses_latest_recording_per_slot(store):
    store.record_run(_point_record(TINY, 0, 500.0, 0.001))
    store.record_run(_point_record(TINY, 0, 100.0, 0.050))  # newer, worse
    points = pareto_frontier(store)
    assert len(points) == 1
    assert points[0].throughput == 100.0


def test_pareto_excludes_incomplete_axes(store):
    store.record_run(_point_record(TINY, 0, 100.0, 0.010, completed=0))
    assert pareto_frontier(store) == []  # no completions -> no cost axis
