"""Recording must never perturb results: store-on == store-off, bytewise."""

import pytest

from repro.config import SPS_NAMES
from repro.cli import main


@pytest.fixture(autouse=True)
def _no_ambient_store(monkeypatch):
    monkeypatch.delenv("CRAYFISH_STORE", raising=False)


@pytest.mark.parametrize("sps", SPS_NAMES)
def test_run_export_identical_with_recording_on_and_off(
    sps, tmp_path, capsys
):
    base = ["run", "--sps", sps, "--ir", "50", "--duration", "0.5"]
    off = tmp_path / "off.json"
    on = tmp_path / "on.json"
    assert main(base + ["--json", str(off)]) == 0
    assert main(base + [
        "--json", str(on), "--store", str(tmp_path / "db.sqlite"),
    ]) == 0
    capsys.readouterr()
    assert off.read_bytes() == on.read_bytes()


def test_matrix_jsonl_identical_with_recording_on_and_off(tmp_path, capsys):
    base = [
        "matrix", "--preset", "smoke", "--duration", "0.25", "--seeds", "0",
        "--no-cache",
    ]
    off = tmp_path / "off.jsonl"
    on = tmp_path / "on.jsonl"
    assert main(base + ["--jsonl", str(off)]) == 0
    assert main(base + [
        "--jsonl", str(on), "--store", str(tmp_path / "db.sqlite"),
    ]) == 0
    capsys.readouterr()
    # The record lines are byte-identical; execution metadata lives in
    # the .meta.json sidecar, never in the JSONL itself.
    assert off.read_bytes() == on.read_bytes()
