"""End-to-end CLI coverage: recording flags, query commands, the CI gate."""

import json

import pytest

from repro.core.results_io import load_run_meta, meta_sidecar_path
from repro.cli import main


@pytest.fixture(autouse=True)
def _no_ambient_store(monkeypatch):
    monkeypatch.delenv("CRAYFISH_STORE", raising=False)


def test_run_store_flag_records_and_history_reads(tmp_path, capsys):
    db = tmp_path / "store.sqlite"
    code = main([
        "run", "--ir", "50", "--duration", "0.5", "--store", str(db),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert f"recorded 1 run into {db}" in out

    assert main(["history", "--db", str(db), "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert len(rows) == 1
    assert rows[0]["label"] == "flink/onnx/ffnn"
    assert rows[0]["kind"] == "run"

    assert main(["store", "info", "--db", str(db)]) == 0
    info = capsys.readouterr().out
    assert "schema version" in info
    assert "results store" in info


def test_run_without_store_prints_no_recording_line(capsys):
    assert main(["run", "--ir", "50", "--duration", "0.5"]) == 0
    assert "recorded" not in capsys.readouterr().out


def test_store_env_var_enables_recording(tmp_path, monkeypatch, capsys):
    db = tmp_path / "env.sqlite"
    monkeypatch.setenv("CRAYFISH_STORE", str(db))
    assert main(["run", "--ir", "50", "--duration", "0.5"]) == 0
    assert "recorded 1 run into" in capsys.readouterr().out
    assert db.exists()


def test_query_commands_require_an_existing_db(tmp_path, capsys):
    missing = tmp_path / "absent.sqlite"
    for argv in (
        ["history", "--db", str(missing)],
        ["trend", "--db", str(missing)],
        ["pareto", "--db", str(missing)],
        ["store", "info", "--db", str(missing)],
    ):
        assert main(argv) == 2
        assert "no results database" in capsys.readouterr().err


def test_regress_gate_passes_then_catches_seeded_slowdown(tmp_path, capsys):
    db = tmp_path / "gate.sqlite"
    argv = [
        "regress", "--ir", "50", "--duration", "0.5",
        "--seed", "3", "--db", str(db),
    ]
    # First run: no baseline yet -> recorded, gate passes.
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "no stored baseline" in out

    # Identical re-run: compares equal, re-records as the new baseline.
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "baseline" in out
    assert "ok" in out

    # Seeded slowdown: every gated metric regresses, exit nonzero, and
    # the degraded run must NOT poison the baseline.
    assert main(argv + ["--self-test-slowdown", "2.0"]) == 1
    captured = capsys.readouterr()
    assert "REGRESSED" in captured.out
    assert "run not recorded" in captured.err

    # The baseline survived the failed gate: an honest run still passes.
    assert main(argv) == 0


def test_regress_threshold_override_and_validation(tmp_path, capsys):
    db = tmp_path / "thresh.sqlite"
    argv = [
        "regress", "--ir", "50", "--duration", "0.5", "--db", str(db),
    ]
    assert main(argv) == 0
    capsys.readouterr()
    # An absurdly loose threshold lets even a halved throughput pass.
    assert main(
        argv + ["--self-test-slowdown", "2.0",
                "--threshold", "throughput=10.0",
                "--threshold", "latency_mean=10.0",
                "--threshold", "latency_p95=10.0",
                "--threshold", "latency_p99=10.0"]
    ) == 0
    capsys.readouterr()
    assert main(argv + ["--threshold", "vibes=0.1"]) == 2
    assert "unknown metric" in capsys.readouterr().err


def test_trend_and_pareto_render_after_two_recordings(tmp_path, capsys):
    db = tmp_path / "trend.sqlite"
    argv = ["run", "--ir", "50", "--duration", "0.5", "--store", str(db)]
    assert main(argv) == 0
    assert main(argv) == 0
    capsys.readouterr()

    assert main(["trend", "--db", str(db), "--json"]) == 0
    series = json.loads(capsys.readouterr().out)
    assert len(series) == 1
    assert series[0]["metric"] == "throughput"
    assert len(series[0]["points"]) == 2

    assert main(["trend", "--db", str(db), "--metric", "nope"]) == 2
    capsys.readouterr()

    assert main(["pareto", "--db", str(db), "--json"]) == 0
    points = json.loads(capsys.readouterr().out)
    assert len(points) == 1  # latest-per-slot: two recordings, one point
    assert points[0]["on_frontier"] is True


def test_store_import_cli(tmp_path, capsys):
    db = tmp_path / "imported.sqlite"
    root = tmp_path / "repo"
    root.mkdir()
    (root / "BENCH_metrics.json").write_text(json.dumps({
        "flink/onnx/ffnn": {
            "throughput": 100.0, "latency_mean": 0.01,
            "latency_p95": 0.02, "completed": 50, "series": {},
        },
    }))
    assert main([
        "store", "import", "--db", str(db), "--root", str(root),
    ]) == 0
    out = capsys.readouterr().out
    assert "1 run(s)" in out

    assert main(["history", "--db", str(db), "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert rows[0]["source"] == "import:bench_metrics"


def test_matrix_store_records_sweep_and_writes_cache_sidecar(
    tmp_path, capsys
):
    db = tmp_path / "matrix.sqlite"
    jsonl = tmp_path / "matrix.jsonl"
    assert main([
        "matrix", "--preset", "smoke", "--duration", "0.25", "--seeds", "0",
        "--cache-dir", str(tmp_path / "cache"),
        "--store", str(db), "--jsonl", str(jsonl),
    ]) == 0
    out = capsys.readouterr().out
    assert f"recorded matrix into {db}" in out

    # Cache statistics live in the sidecar, never in the JSONL itself.
    meta = load_run_meta(str(jsonl))
    assert meta["cache"] is not None
    assert set(meta["cache"]) == {
        "hits", "misses", "invalidations", "stores", "lookups",
    }
    first_line = jsonl.read_text().splitlines()[0]
    assert "cache" not in json.loads(first_line)
    assert str(meta_sidecar_path(str(jsonl))).endswith("matrix.meta.json")

    assert main(["history", "--db", str(db), "--kind", "matrix"]) == 0
    assert "matrix" in capsys.readouterr().out
