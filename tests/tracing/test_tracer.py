"""Unit tests for the span tracer (repro.tracing.spans)."""

import pytest

from repro.core.batch import CrayfishDataBatch
from repro.errors import ConfigError
from repro.simul import Environment
from repro.tracing.spans import (
    NO_TRACE,
    NullTracer,
    TraceContext,
    TraceOptions,
    Tracer,
    make_tracer,
)


def advance(env, delay):
    def ticker():
        yield env.timeout(delay)

    env.process(ticker())
    env.run()


def make_batch(tracer, batch_id=0, created_at=0.0):
    return CrayfishDataBatch(
        batch_id=batch_id,
        created_at=created_at,
        points=1,
        point_shape=(4,),
        trace=tracer.make_context(batch_id, created_at),
    )


def test_root_span_opens_at_creation_time():
    env = Environment()
    tracer = Tracer(env)
    ctx = tracer.make_context(0, created_at=1.5)
    assert ctx == TraceContext(trace_id=0)
    root = tracer.root(0)
    assert root.name == "record"
    assert root.start == 1.5
    assert not root.finished


def test_begin_end_records_current_time():
    env = Environment()
    tracer = Tracer(env)
    batch = make_batch(tracer)
    span = tracer.begin(batch, "stage", color="x")
    advance(env, 2.0)
    tracer.end(span, items=3)
    assert span.start == 0.0
    assert span.end == 2.0
    assert span.duration == 2.0
    assert span.attrs == {"color": "x", "items": 3}
    assert span.parent_id == tracer.root(0).span_id


def test_sampling_skips_unsampled_batches():
    env = Environment()
    tracer = Tracer(env, sample_every=3)
    contexts = [tracer.make_context(i, 0.0) for i in range(9)]
    sampled = [c for c in contexts if c is not None]
    assert len(sampled) == 3  # ids 0, 3, 6
    assert tracer.trace_ids() == (0, 3, 6)


def test_max_traces_cap_counts_drops():
    env = Environment()
    tracer = Tracer(env, max_traces=2)
    for i in range(5):
        tracer.make_context(i, 0.0)
    assert tracer.trace_ids() == (0, 1)
    assert tracer.dropped == 3


def test_unsampled_subjects_are_noops():
    env = Environment()
    tracer = Tracer(env, sample_every=2)
    batch = make_batch(tracer, batch_id=1)  # unsampled
    assert batch.trace is None
    assert tracer.begin(batch, "stage") is None
    tracer.end(None)  # None-safe
    assert tracer.record(batch, "stage", start=0.0) is None
    tracer.mark(batch, "key")
    assert tracer.lapse(batch, "wait", "key") is None
    assert tracer.span_count == 0


def test_record_rejects_negative_duration():
    env = Environment()
    tracer = Tracer(env)
    batch = make_batch(tracer)
    with pytest.raises(ValueError, match="before start"):
        tracer.record(batch, "stage", start=5.0, end=1.0)


def test_mark_lapse_measures_queue_wait():
    env = Environment()
    tracer = Tracer(env)
    batch = make_batch(tracer)
    tracer.mark(batch, "enqueue")
    advance(env, 0.75)
    span = tracer.lapse(batch, "queue_wait", "enqueue")
    assert span.start == 0.0
    assert span.end == 0.75
    # The mark is consumed: a second lapse finds nothing.
    assert tracer.lapse(batch, "queue_wait", "enqueue") is None


def test_close_root_is_idempotent():
    env = Environment()
    tracer = Tracer(env)
    batch = make_batch(tracer)
    tracer.close_root(batch, end_time=3.0)
    tracer.close_root(batch, end_time=9.0)  # at-least-once replay
    assert tracer.root(0).end == 3.0
    assert tracer.finished_trace_ids() == (0,)


def test_context_of_resolves_batch_context_and_none():
    env = Environment()
    tracer = Tracer(env)
    batch = make_batch(tracer)
    assert tracer.context_of(batch) == batch.trace
    assert tracer.context_of(batch.trace) == batch.trace
    assert tracer.context_of(None) is None
    # Contexts from another tracer are unknown here.
    assert tracer.context_of(TraceContext(trace_id=99)) is None


def test_explicit_parent_nesting():
    env = Environment()
    tracer = Tracer(env)
    batch = make_batch(tracer)
    outer = tracer.begin(batch, "outer")
    inner = tracer.begin(batch, "inner", parent=outer)
    assert inner.parent_id == outer.span_id


def test_trace_options_validation():
    with pytest.raises(ConfigError):
        TraceOptions(sample_every=0)
    with pytest.raises(ConfigError):
        TraceOptions(max_traces=0)


def test_null_tracer_is_fully_inert():
    tracer = NO_TRACE
    assert isinstance(tracer, NullTracer)
    assert not tracer.enabled
    assert tracer.make_context(0, 0.0) is None
    assert tracer.begin(object(), "x") is None
    assert tracer.record(object(), "x", start=0.0) is None
    assert tracer.lapse(object(), "x", "k") is None
    assert tracer.trace_ids() == ()


def test_make_tracer_resolution():
    env = Environment()
    assert make_tracer(env, None) is NO_TRACE
    assert make_tracer(env, False) is NO_TRACE
    assert isinstance(make_tracer(env, True), Tracer)
    custom = make_tracer(env, TraceOptions(sample_every=5, max_traces=7))
    assert custom.sample_every == 5
    assert custom.max_traces == 7
    ready = Tracer(env)
    assert make_tracer(env, ready) is ready
    with pytest.raises(ConfigError):
        make_tracer(env, "yes")
