"""Tests for the attribution sweep, breakdown tables, and exporters."""

import pytest

from repro.simul import Environment
from repro.tracing.analysis import (
    UNTRACED,
    bottleneck,
    bottleneck_ranking,
    breakdown_table,
    critical_path,
    record_breakdown,
)
from repro.tracing.export import (
    chrome_trace,
    load_chrome_trace,
    save_chrome_trace,
    save_spans_csv,
    span_rows,
)
from repro.tracing.spans import Tracer


def hand_built_trace(env=None):
    """One record [0, 10] with stages:

    - a [0, 4], b [4, 7]: flat stages under the root
    - b_inner [5, 6]: nested inside b (deeper => owns its window)
    - [7, 10]: uncovered => (untraced)
    """
    env = env or Environment()
    tracer = Tracer(env)
    ctx = tracer.make_context(0, created_at=0.0)
    tracer.record(ctx, "a", start=0.0, end=4.0)
    b = tracer.record(ctx, "b", start=4.0, end=7.0)
    tracer.record(ctx, "b_inner", start=5.0, end=6.0, parent=b)
    tracer.close_root(ctx, end_time=10.0)
    return tracer


def test_breakdown_tiles_the_root_exactly():
    tracer = hand_built_trace()
    breakdown = record_breakdown(tracer, 0)
    assert breakdown == {
        "a": 4.0,
        "b": 2.0,  # [4,5] + [6,7]; [5,6] goes to the deeper b_inner
        "b_inner": 1.0,
        UNTRACED: 3.0,
    }
    assert sum(breakdown.values()) == pytest.approx(10.0)


def test_overlapping_same_depth_spans_tie_to_later_start():
    env = Environment()
    tracer = Tracer(env)
    ctx = tracer.make_context(0, created_at=0.0)
    tracer.record(ctx, "first", start=0.0, end=6.0)
    tracer.record(ctx, "second", start=2.0, end=4.0)
    tracer.close_root(ctx, end_time=6.0)
    breakdown = record_breakdown(tracer, 0)
    assert breakdown == {"first": 4.0, "second": 2.0}


def test_spans_clipped_to_root_window():
    env = Environment()
    tracer = Tracer(env)
    ctx = tracer.make_context(0, created_at=1.0)
    # Starts before the root and ends after it: only [1, 3] counts.
    tracer.record(ctx, "early", start=0.0, end=3.0)
    tracer.close_root(ctx, end_time=3.0)
    assert record_breakdown(tracer, 0) == {"early": 2.0}


def test_breakdown_requires_completed_record():
    env = Environment()
    tracer = Tracer(env)
    tracer.make_context(0, created_at=0.0)
    with pytest.raises(ValueError, match="not completed"):
        record_breakdown(tracer, 0)
    with pytest.raises(ValueError, match="not completed"):
        critical_path(tracer, 0)


def test_critical_path_orders_and_merges():
    tracer = hand_built_trace()
    path = critical_path(tracer, 0)
    assert [seg.stage for seg in path] == ["a", "b", "b_inner", "b", UNTRACED]
    assert path[0].duration == 4.0
    # Contiguous tiling: each hop starts where the previous ended.
    for prev, cur in zip(path, path[1:]):
        assert prev.end == cur.start
    assert path[0].start == 0.0
    assert path[-1].end == 10.0


def test_breakdown_table_aggregates_and_sorts():
    env = Environment()
    tracer = Tracer(env)
    for trace_id, (a_len, b_len) in enumerate([(3.0, 1.0), (5.0, 1.0)]):
        ctx = tracer.make_context(trace_id, created_at=0.0)
        tracer.record(ctx, "a", start=0.0, end=a_len)
        tracer.record(ctx, "b", start=a_len, end=a_len + b_len)
        tracer.close_root(ctx, end_time=a_len + b_len)
    table = breakdown_table(tracer)
    assert [s.stage for s in table] == ["a", "b"]
    a = table[0]
    assert a.total == 8.0
    assert a.mean == 4.0
    assert a.share == pytest.approx(0.8)
    assert a.records == 2
    assert sum(s.share for s in table) == pytest.approx(1.0)
    assert bottleneck(tracer) == "a"
    assert [s.stage for s in bottleneck_ranking(tracer, top=1)] == ["a"]


def test_breakdown_table_cutoff_discards_warmup():
    env = Environment()
    tracer = Tracer(env)
    ctx = tracer.make_context(0, created_at=0.0)
    tracer.record(ctx, "warm", start=0.0, end=1.0)
    tracer.close_root(ctx, end_time=1.0)
    ctx = tracer.make_context(1, created_at=5.0)
    tracer.record(ctx, "steady", start=5.0, end=6.0)
    tracer.close_root(ctx, end_time=6.0)
    table = breakdown_table(tracer, cutoff=2.0)
    assert [s.stage for s in table] == ["steady"]
    assert bottleneck(tracer, cutoff=100.0) is None
    assert breakdown_table(tracer, cutoff=100.0) == []


def test_chrome_trace_structure():
    tracer = hand_built_trace()
    data = chrome_trace(tracer)
    assert data["displayTimeUnit"] == "ms"
    events = data["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert any(e["name"] == "process_name" for e in meta)
    assert any(e["name"] == "thread_name" and e["tid"] == 0 for e in meta)
    # 4 finished spans: root + a + b + b_inner.
    assert len(complete) == 4
    root_event = next(e for e in complete if e["name"] == "record")
    assert root_event["ts"] == 0.0
    assert root_event["dur"] == pytest.approx(10.0 * 1e6)
    assert all(e["pid"] == 0 and e["tid"] == 0 for e in complete)


def test_chrome_trace_skips_open_spans():
    env = Environment()
    tracer = Tracer(env)
    ctx = tracer.make_context(0, created_at=0.0)
    tracer.begin(ctx, "never_finished")
    data = chrome_trace(tracer)
    assert [e for e in data["traceEvents"] if e["ph"] == "X"] == []


def test_export_round_trip(tmp_path):
    tracer = hand_built_trace()
    json_path = tmp_path / "trace.json"
    save_chrome_trace(tracer, str(json_path))
    data = load_chrome_trace(str(json_path))
    assert len(data["traceEvents"]) == len(chrome_trace(tracer)["traceEvents"])

    csv_path = tmp_path / "spans.csv"
    save_spans_csv(tracer, str(csv_path))
    lines = csv_path.read_text().strip().splitlines()
    assert lines[0] == "trace_id,span_id,parent_id,name,start,end,duration"
    assert len(lines) == 1 + len(span_rows(tracer))
    assert len(span_rows(tracer)) == 4


def test_load_chrome_trace_rejects_other_json(tmp_path):
    path = tmp_path / "not_trace.json"
    path.write_text('{"foo": 1}')
    with pytest.raises(ValueError, match="trace_event"):
        load_chrome_trace(str(path))
