"""Property-based tests (hypothesis) for span-tree well-formedness.

Two layers:

- Synthetic traces: arbitrary nested span layouts keep the attribution
  invariant (stage times tile the root duration exactly).
- End-to-end runs: for every sampled record of a real simulated
  experiment, the span tree is well-formed — children nested inside
  their parents, no negative durations — and the root span duration
  equals the measured end-to-end latency of that record.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.config import ExperimentConfig
from repro.core.runner import ExperimentRunner
from repro.simul import Environment
from repro.tracing.analysis import record_breakdown
from repro.tracing.spans import Tracer


# -- synthetic traces ------------------------------------------------------

segment_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        st.booleans(),  # nest under the previous span (when possible)?
    ),
    min_size=0,
    max_size=12,
)


@given(segment_lists, st.floats(min_value=1.0, max_value=200.0, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_breakdown_tiles_root_for_arbitrary_layouts(segments, root_length):
    env = Environment()
    tracer = Tracer(env)
    ctx = tracer.make_context(0, created_at=0.0)
    previous = None
    for offset, length, nest in segments:
        parent = previous if nest else None
        previous = tracer.record(
            ctx, "stage", start=offset, end=offset + length, parent=parent
        )
    tracer.close_root(ctx, end_time=root_length)
    breakdown = record_breakdown(tracer, 0)
    assert math.isclose(
        sum(breakdown.values()), root_length, rel_tol=1e-9, abs_tol=1e-9
    )
    assert all(value >= 0.0 for value in breakdown.values())


# -- real pipeline runs ----------------------------------------------------

CONFIG_POOL = [
    ("flink", "onnx"),
    ("kafka_streams", "dl4j"),
    ("spark_ss", "onnx"),
    ("ray", "tf_serving"),  # substitutes Ray Serve, crosses the proxy
    ("flink", "torchserve"),
]


def run_traced(sps, serving, ir, duration=3.0, mp=2):
    config = ExperimentConfig(
        sps=sps, serving=serving, model="ffnn", bsz=4, ir=ir, mp=mp,
        duration=duration,
    )
    result = ExperimentRunner(config).run(trace=True)
    assert result.trace is not None
    return result


@given(
    st.sampled_from(CONFIG_POOL),
    st.sampled_from([40.0, 90.0]),
)
@settings(max_examples=10, deadline=None)
def test_span_trees_well_formed_in_real_runs(sut, ir):
    sps, serving = sut
    result = run_traced(sps, serving, ir)
    tracer = result.trace
    finished = tracer.finished_trace_ids()
    assert finished, "no record completed"
    for trace_id in finished:
        spans = tracer.spans(trace_id)
        by_id = {span.span_id: span for span in spans}
        root = tracer.root(trace_id)
        for span in spans:
            # No negative durations; finished spans end after they start.
            if span.finished:
                assert span.duration >= 0.0
            # Children are nested inside their parents' windows.
            if span.parent_id is not None:
                parent = by_id[span.parent_id]
                assert parent.start <= span.start
                if span.finished and parent.finished:
                    assert span.end <= parent.end + 1e-9
        # Only one root per trace, and it is the recorded root.
        roots = [s for s in spans if s.parent_id is None]
        assert roots == [root]


@given(st.sampled_from(CONFIG_POOL))
@settings(max_examples=5, deadline=None)
def test_root_duration_equals_measured_latency(sut):
    sps, serving = sut
    result = run_traced(sps, serving, ir=60.0)
    tracer = result.trace
    # The metrics collector records (end_time, latency) per completion;
    # the root span closes at that same end_time, and latency is computed
    # from the identical floats — so equality here is exact, not approx.
    runner_latencies: dict[float, list[float]] = {}
    for end_time, latency in result.series:
        runner_latencies.setdefault(end_time, []).append(latency)
    finished = tracer.finished_trace_ids()
    assert finished
    for trace_id in finished:
        root = tracer.root(trace_id)
        matches = runner_latencies.get(root.end)
        assert matches, f"no completion recorded at root end {root.end}"
        assert root.duration in matches, (
            f"trace {trace_id}: root {root.duration} not among {matches}"
        )
    # And the tiling invariant holds on the real topology too.
    for trace_id in finished:
        breakdown = record_breakdown(tracer, trace_id)
        assert math.isclose(
            sum(breakdown.values()),
            tracer.root(trace_id).duration,
            rel_tol=1e-9,
            abs_tol=1e-9,
        )
