"""Tracing is observational: determinism and bottleneck acceptance tests."""

import dataclasses
import math

import pytest

from repro.config import ExperimentConfig
from repro.core.runner import ExperimentRunner
from repro.tracing.analysis import bottleneck_ranking, record_breakdown
from repro.tracing.spans import TraceOptions


def run_once(trace=None, **overrides):
    defaults = dict(
        sps="flink", serving="onnx", model="ffnn", bsz=4, ir=80.0, mp=2,
        duration=4.0,
    )
    defaults.update(overrides)
    config = ExperimentConfig(**defaults)
    return ExperimentRunner(config).run(trace=trace)


@pytest.mark.parametrize(
    "sps,serving",
    [("flink", "onnx"), ("kafka_streams", "dl4j"),
     ("spark_ss", "onnx"), ("ray", "tf_serving")],
)
def test_tracing_does_not_change_results(sps, serving):
    """Byte-identical LatencyStats with tracing on vs off, every engine."""
    untraced = run_once(sps=sps, serving=serving)
    traced = run_once(sps=sps, serving=serving, trace=True)
    assert dataclasses.asdict(untraced.latency) == dataclasses.asdict(
        traced.latency
    )
    assert untraced.throughput == traced.throughput
    assert untraced.completed == traced.completed
    assert untraced.produced == traced.produced
    assert untraced.series == traced.series
    assert untraced.trace is None
    assert traced.trace is not None


def test_sampling_does_not_change_results():
    full = run_once(trace=True)
    sampled = run_once(trace=TraceOptions(sample_every=7, max_traces=10))
    assert full.series == sampled.series
    assert len(sampled.trace.trace_ids()) <= 10
    assert all(t % 7 == 0 for t in sampled.trace.trace_ids())


def test_breakdown_sums_match_e2e_latency_for_every_record():
    """The acceptance invariant on a real run: stage sums tile latency."""
    result = run_once(trace=True)
    tracer = result.trace
    finished = tracer.finished_trace_ids()
    assert len(finished) > 50
    for trace_id in finished:
        breakdown = record_breakdown(tracer, trace_id)
        root = tracer.root(trace_id)
        assert math.isclose(
            sum(breakdown.values()), root.duration, rel_tol=1e-9, abs_tol=1e-9
        )


def test_ray_external_bottleneck_is_the_serve_proxy():
    """Fig. 11's mechanism, recovered from traces: Ray + an external tool
    routes through Ray Serve's single HTTP proxy (~2.2 ms per request),
    and near the proxy's saturation rate the queue wait in front of it
    dominates the post-warmup latency breakdown."""
    result = run_once(
        sps="ray", serving="tf_serving", ir=430.0, mp=32, duration=6.0,
        trace=True,
    )
    tracer = result.trace
    cutoff = result.config.duration * result.config.warmup_fraction
    ranked = bottleneck_ranking(tracer, cutoff=cutoff, top=3)
    assert ranked, "no post-warmup records traced"
    top = ranked[0]
    assert top.stage == "serving.proxy_wait", [s.stage for s in ranked]
    assert top.share > 0.3


def test_embedded_flink_bottleneck_is_not_the_proxy():
    """Control: embedded ONNX on Flink has no proxy stage at all."""
    result = run_once(trace=True)
    tracer = result.trace
    stages = {
        stage
        for trace_id in tracer.finished_trace_ids()
        for stage in record_breakdown(tracer, trace_id)
    }
    assert "serving.proxy_wait" not in stages
    assert "serving.inference" in stages
