"""Suite-wide pytest plumbing (golden-result refresh flag)."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/ expected-result files from the "
        "current code instead of diffing against them",
    )


@pytest.fixture
def update_golden(request):
    """True when the run should refresh golden files, not check them."""
    return request.config.getoption("--update-golden")
