"""Tests pinning each engine's distinctive execution semantics."""

import pytest

from repro.config import ExperimentConfig, WorkloadKind
from repro.core.runner import ExperimentRunner, run_experiment
from repro.serving import create_serving_tool
from repro.simul import Environment
from repro.sps.flink.engine import EXCHANGE_CAPACITY, FlinkProcessor
from repro.sps.gateways import DirectInput, DirectOutput
from repro.sps.spark.engine import SparkProcessor


def test_spark_fires_multiple_triggers():
    env = Environment()
    tool = create_serving_tool("onnx", env, "ffnn")
    direct = DirectInput(env)
    engine = SparkProcessor(env, tool, direct, DirectOutput(env))
    engine.start()

    def feed():
        from repro.core.batch import CrayfishDataBatch

        for i in range(50):
            direct.push(
                CrayfishDataBatch(
                    batch_id=i, created_at=env.now, points=1, point_shape=(28, 28)
                )
            )
            yield env.timeout(0.05)

    env.process(feed())
    env.run(until=4.0)
    assert engine.triggers_fired >= 5  # micro-batches, not one big run
    assert engine.batches_completed == 50


def test_flink_unchained_backpressure_bounds_queues():
    """With a slow scorer, the bounded exchange queues throttle the
    sources instead of buffering unboundedly."""
    env = Environment()
    tool = create_serving_tool("torchserve", env, "ffnn")  # slow external
    direct = DirectInput(env)
    engine = FlinkProcessor(
        env, tool, direct, DirectOutput(env), operator_parallelism=(2, 1, 2)
    )
    engine.start()
    from repro.core.batch import CrayfishDataBatch

    for i in range(2000):
        direct.push(
            CrayfishDataBatch(
                batch_id=i, created_at=0.0, points=1, point_shape=(28, 28)
            )
        )
    env.run(until=1.0)
    # ~1 s of TorchServe service (~4.4 ms each) drains only a few hundred:
    # the rest must still be sitting upstream — in the input stores or a
    # source task's current poll batch (<= 500 each) — never piling into
    # the bounded exchanges.
    assert engine.batches_completed < 400
    remaining_upstream = sum(s.level for s in direct._stores.values())
    in_flight_bound = 2 * 500 + 3 * EXCHANGE_CAPACITY
    assert remaining_upstream >= 2000 - engine.batches_completed - in_flight_bound
    assert remaining_upstream > 1000


def test_kafka_streams_event_at_a_time():
    """KS latency includes the poll-cycle floor even at trivial rates —
    the pull model's per-cycle bookkeeping."""
    result = run_experiment(
        ExperimentConfig(
            sps="kafka_streams",
            serving="onnx",
            model="ffnn",
            workload=WorkloadKind.CLOSED_LOOP,
            ir=2.0,
            duration=5.0,
        )
    )
    from repro import calibration as cal

    assert result.latency.minimum >= cal.KAFKA_STREAMS_POLL_INTERVAL


def test_ray_scoring_serialized_on_node():
    """Doubling Ray actors beyond the node scheduler's capacity buys
    nothing: mp=16 ~ mp=32."""
    def rate(mp):
        return run_experiment(
            ExperimentConfig(sps="ray", serving="onnx", model="ffnn", ir=None, mp=mp, duration=1.5)
        ).throughput

    assert rate(32) < 1.15 * rate(16)


def test_backlog_probe_through_runner():
    runner = ExperimentRunner(
        ExperimentConfig(sps="flink", serving="onnx", model="ffnn", ir=None, duration=1.0)
    )
    result = runner.run(backlog_probe_interval=0.1)
    assert len(result.backlog_series) >= 8
    # Saturated run: the probe sees the producer's standing backlog.
    assert max(b for __, b in result.backlog_series) > 100


def test_probe_skipped_in_direct_mode():
    runner = ExperimentRunner(
        ExperimentConfig(
            sps="flink", serving="onnx", model="ffnn", ir=50.0, duration=1.0,
            use_broker=False,
        )
    )
    result = runner.run(backlog_probe_interval=0.1)
    assert result.backlog_series == ()
