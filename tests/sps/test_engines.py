"""Unit tests for stream-processor engine behaviours.

The qualitative claims each engine is responsible for (who wins where)
live in the benchmarks; these tests pin the *mechanisms*.
"""

import pytest

from repro.config import ExperimentConfig, WorkloadKind
from repro.core.runner import run_experiment
from repro.errors import ConfigError
from repro.serving import create_serving_tool
from repro.simul import Environment
from repro.sps import create_data_processor
from repro.sps.flink.engine import FlinkProcessor
from repro.sps.gateways import DirectInput, DirectOutput


def build(sps="flink", tool_name="onnx", mp=1, **kwargs):
    env = Environment()
    tool = create_serving_tool(tool_name, env, "ffnn", mp=mp)
    engine = create_data_processor(
        sps, env, tool, DirectInput(env), DirectOutput(env), mp=mp, **kwargs
    )
    return env, engine


def test_registry_rejects_unknown_engine():
    env = Environment()
    tool = create_serving_tool("onnx", env, "ffnn")
    with pytest.raises(ConfigError):
        create_data_processor("storm", env, tool, DirectInput(env), DirectOutput(env))


def test_operator_parallelism_rejected_off_flink():
    env = Environment()
    tool = create_serving_tool("onnx", env, "ffnn")
    with pytest.raises(ConfigError):
        create_data_processor(
            "ray",
            env,
            tool,
            DirectInput(env),
            DirectOutput(env),
            operator_parallelism=(1, 1, 1),
        )


def test_flink_chained_vs_unchained_tasks():
    __, chained = build()
    assert isinstance(chained, FlinkProcessor)
    assert chained.operator_parallelism is None
    __, unchained = build(operator_parallelism=(4, 2, 4))
    assert unchained.operator_parallelism == (4, 2, 4)


def test_flink_buffer_penalty_only_for_large_records():
    __, engine = build()
    assert engine._buffer_penalty(1000) == 0.0
    assert engine._buffer_penalty(32 * 1024) == 0.0
    assert engine._buffer_penalty(64 * 1024) > 0.0
    assert engine._buffer_penalty(1_000_000) > engine._buffer_penalty(100_000)


def test_embedded_slowdown_grows_with_mp():
    __, small = build(mp=1)
    __, big = build(mp=16)
    assert small.slowdown == 1.0
    assert big.slowdown > 1.2


def test_external_serving_has_no_sps_slowdown():
    __, engine = build(tool_name="tf_serving", mp=16)
    assert engine.slowdown == 1.0


def test_kafka_streams_contends_less_than_flink():
    """§5.3.3: the pull model scales embedded serving better."""
    __, flink = build(sps="flink", mp=16)
    __, ks = build(sps="kafka_streams", mp=16)
    assert ks.slowdown < flink.slowdown


def test_spark_fires_triggers():
    config = ExperimentConfig(
        sps="spark_ss", serving="onnx", model="ffnn", ir=200.0, duration=3.0
    )
    result = run_experiment(config)
    assert result.completed > 0


def test_spark_latency_includes_trigger_overhead():
    """Fig. 10: micro-batching puts a ~100 ms floor under Spark latency."""
    config = ExperimentConfig(
        sps="spark_ss",
        serving="onnx",
        model="ffnn",
        workload=WorkloadKind.CLOSED_LOOP,
        ir=2.0,
        duration=5.0,
    )
    result = run_experiment(config)
    assert result.latency.mean > 0.09


def test_flink_latency_no_trigger_floor():
    config = ExperimentConfig(
        sps="flink",
        serving="onnx",
        model="ffnn",
        workload=WorkloadKind.CLOSED_LOOP,
        ir=2.0,
        duration=5.0,
    )
    result = run_experiment(config)
    assert result.latency.mean < 0.02


def test_kafka_streams_latency_floor_from_poll_interval():
    """Fig. 10 small batches: KS pays a fixed poll-cycle cost."""
    flink = run_experiment(
        ExperimentConfig(
            sps="flink", serving="onnx", model="ffnn",
            workload=WorkloadKind.CLOSED_LOOP, ir=2.0, duration=5.0,
        )
    )
    ks = run_experiment(
        ExperimentConfig(
            sps="kafka_streams", serving="onnx", model="ffnn",
            workload=WorkloadKind.CLOSED_LOOP, ir=2.0, duration=5.0,
        )
    )
    assert ks.latency.mean > flink.latency.mean


def test_flink_loses_to_kafka_streams_at_large_batches():
    """Fig. 10 bsz=512: buffer fragmentation costs Flink its edge."""
    def latency(sps, bsz):
        return run_experiment(
            ExperimentConfig(
                sps=sps, serving="onnx", model="ffnn",
                workload=WorkloadKind.CLOSED_LOOP, ir=1.0, bsz=bsz, duration=6.0,
            )
        ).latency.mean

    assert latency("flink", 32) < latency("kafka_streams", 32)
    assert latency("flink", 512) > latency("kafka_streams", 512)


def test_ray_throughput_capped_by_node_scheduler():
    """Fig. 11: Ray plateaus near 1.2k events/s however many actors."""
    result = run_experiment(
        ExperimentConfig(sps="ray", serving="onnx", model="ffnn", ir=None, mp=16, duration=2.0)
    )
    assert 1000 < result.throughput < 1500


def test_completion_counting():
    config = ExperimentConfig(sps="flink", serving="onnx", model="ffnn", ir=50.0, duration=2.0)
    result = run_experiment(config)
    assert result.completed <= result.produced
    assert result.completed == pytest.approx(100, rel=0.1)
