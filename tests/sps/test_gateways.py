"""Unit tests for the input/output gateways."""

import pytest

from repro.broker import BrokerCluster, Producer
from repro.core.batch import CrayfishDataBatch
from repro.errors import ConfigError
from repro.simul import Environment
from repro.sps.gateways import (
    BrokerInput,
    BrokerOutput,
    DirectInput,
    DirectOutput,
    InputEvent,
)


def batch(i=0, created_at=0.0):
    return CrayfishDataBatch(
        batch_id=i, created_at=created_at, points=1, point_shape=(4,)
    )


def test_broker_input_round_trip():
    env = Environment()
    cluster = BrokerCluster(env)
    cluster.create_topic("in", 2)
    producer = Producer(env, cluster)
    gateway = BrokerInput(env, cluster, "in")
    source = gateway.make_source(0, 1)
    received = []

    def produce():
        for i in range(3):
            yield from producer.send("in", batch(i), nbytes=100)

    def consume():
        events = yield from source.poll()
        received.extend(events)

    env.process(produce())
    env.process(consume())
    env.run()
    assert all(isinstance(e, InputEvent) for e in received)
    assert received[0].nbytes == 100
    assert gateway.charges_serde


def test_broker_source_position_and_seek():
    env = Environment()
    cluster = BrokerCluster(env)
    cluster.create_topic("in", 1)
    producer = Producer(env, cluster)
    gateway = BrokerInput(env, cluster, "in")
    source = gateway.make_source(0, 1)

    def produce_and_read():
        for i in range(4):
            yield from producer.send("in", batch(i), nbytes=50)
        yield from source.poll()

    env.process(produce_and_read())
    env.run()
    position = source.position()
    assert position == {0: 4}
    source.seek({0: 2})
    assert source.lag() == 2
    with pytest.raises(ConfigError):
        source.seek({5: 0})
    with pytest.raises(ConfigError):
        source.seek({0: -1})


def test_broker_output_returns_log_append_time():
    env = Environment()
    cluster = BrokerCluster(env)
    cluster.create_topic("out", 1)
    gateway = BrokerOutput(env, cluster, "out")
    ends = []

    def emit():
        end = yield from gateway.emit(batch(0, created_at=0.0), nbytes=100)
        ends.append(end)

    env.process(emit())
    env.run()
    assert ends[0] > 0
    assert cluster.topic("out").total_records() == 1


def test_direct_input_round_robin_over_members():
    env = Environment()
    gateway = DirectInput(env)
    s0 = gateway.make_source(0, 2)
    s1 = gateway.make_source(1, 2)
    for i in range(4):
        gateway.push(batch(i))
    assert s0.lag() == 2
    assert s1.lag() == 2
    assert not gateway.charges_serde


def test_direct_input_events_have_no_bytes():
    env = Environment()
    gateway = DirectInput(env)
    source = gateway.make_source(0, 1)
    gateway.push(batch(0))
    got = []

    def consume():
        events = yield from source.poll()
        got.extend(events)

    env.process(consume())
    env.run()
    assert got[0].nbytes == 0.0


def test_direct_source_default_checkpoint_hooks():
    env = Environment()
    gateway = DirectInput(env)
    source = gateway.make_source(0, 1)
    assert source.position() == {}
    source.seek({0: 5})  # no-op, must not raise


def test_direct_output_is_immediate():
    env = Environment()
    gateway = DirectOutput(env)
    ends = []

    def emit():
        yield env.timeout(2.5)
        end = yield from gateway.emit(batch(0), nbytes=0)
        ends.append(end)

    env.process(emit())
    env.run()
    assert ends == [2.5]
