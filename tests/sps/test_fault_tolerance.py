"""Unit/integration tests for checkpointing and failure recovery."""

import pytest

from repro.config import ExperimentConfig, WorkloadKind
from repro.core.runner import run_experiment
from repro.errors import ConfigError
from repro.sps.flink.fault_tolerance import FaultToleranceConfig


def config(**kw):
    kw.setdefault("sps", "flink")
    kw.setdefault("serving", "onnx")
    kw.setdefault("model", "ffnn")
    kw.setdefault("ir", 200.0)
    kw.setdefault("duration", 6.0)
    kw.setdefault("checkpoint_interval", 1.0)
    return ExperimentConfig(**kw)


def test_ft_config_validation():
    with pytest.raises(ConfigError):
        FaultToleranceConfig(checkpoint_interval=0)
    with pytest.raises(ConfigError):
        FaultToleranceConfig(guarantee="maybe_once")
    with pytest.raises(ConfigError):
        FaultToleranceConfig(recovery_time=-1)
    with pytest.raises(ConfigError):
        FaultToleranceConfig(failure_times=(0.0,))


def test_experiment_config_ft_validation():
    # Checkpointing is valid on every engine now; exactly-once stays
    # Flink-only (transactional sinks are not modelled elsewhere).
    config(sps="kafka_streams")
    with pytest.raises(ConfigError):
        config(sps="kafka_streams", delivery_guarantee="exactly_once")
    with pytest.raises(ConfigError):
        config(operator_parallelism=(32, 1, 32))
    with pytest.raises(ConfigError):
        config(checkpoint_interval=-1.0)
    with pytest.raises(ConfigError):
        ExperimentConfig(failure_times=(1.0,))  # no checkpointing
    with pytest.raises(ConfigError):
        config(delivery_guarantee="exactly_twice")


def test_checkpointing_overhead_is_small():
    plain = run_experiment(config(checkpoint_interval=None))
    checkpointed = run_experiment(config())
    assert checkpointed.throughput > 0.95 * plain.throughput
    assert checkpointed.duplicates == 0


def test_failure_free_run_has_no_duplicates():
    result = run_experiment(config())
    assert result.duplicates == 0
    assert result.completed > 0


def test_at_least_once_replays_after_failure():
    result = run_experiment(config(failure_times=(3.0,)))
    assert result.duplicates > 0
    # Replays are bounded by what arrived since the last checkpoint.
    assert result.duplicates <= 1.2 * 200.0 * 1.0
    # Every distinct batch is still delivered (no loss). ``completed``
    # counts distinct batches only; replays land in ``duplicates``.
    assert result.completed > 0.9 * 200.0 * (6.0 - 0.5)  # minus recovery downtime


def test_exactly_once_no_duplicates_after_failure():
    result = run_experiment(
        config(failure_times=(3.0,), delivery_guarantee="exactly_once")
    )
    assert result.duplicates == 0


def test_exactly_once_still_replays_inference():
    """§7.2: external side effects are not covered by the sink's
    transaction — the serving tool sees replayed requests either way."""
    result = run_experiment(
        config(failure_times=(3.0,), delivery_guarantee="exactly_once")
    )
    assert result.inference_requests > result.completed


def test_exactly_once_latency_quantized_by_checkpoints():
    """Transactional sinks hold output until the checkpoint commits."""
    exo = run_experiment(
        config(
            workload=WorkloadKind.CLOSED_LOOP,
            ir=20.0,
            delivery_guarantee="exactly_once",
        )
    )
    alo = run_experiment(config(workload=WorkloadKind.CLOSED_LOOP, ir=20.0))
    assert exo.latency.mean > 0.25 * 1.0  # ~half the checkpoint interval
    assert alo.latency.mean < 0.05


def test_multiple_failures():
    result = run_experiment(config(failure_times=(2.0, 4.0)))
    assert result.duplicates > 0
    assert result.completed > 0


def test_recovery_downtime_reduces_throughput():
    plain = run_experiment(config())
    failed = run_experiment(config(failure_times=(3.0,), recovery_time=1.5))
    # A 1.5 s outage in a 6 s run costs visible throughput even though
    # replays partially backfill.
    assert failed.throughput < plain.throughput * 1.3


def test_external_serving_survives_failures():
    result = run_experiment(config(serving="tf_serving", failure_times=(3.0,)))
    assert result.completed > 0
    assert result.duplicates > 0
