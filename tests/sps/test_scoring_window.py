"""Unit tests for Flink's scoring count-window (§7.1 recommendation)."""

import pytest

from repro.config import ExperimentConfig, WorkloadKind
from repro.core.runner import run_experiment
from repro.errors import ConfigError


def test_config_validation():
    ExperimentConfig(sps="flink", serving="tf_serving", scoring_window=8)
    with pytest.raises(ConfigError):
        ExperimentConfig(sps="kafka_streams", serving="tf_serving", scoring_window=8)
    with pytest.raises(ConfigError):
        ExperimentConfig(
            sps="flink", serving="tf_serving", scoring_window=8, async_io=4
        )


def test_window_of_one_is_default_path():
    """scoring_window=1 is semantically the paper's event-at-a-time."""
    from repro.serving import create_serving_tool
    from repro.simul import Environment
    from repro.sps.flink.engine import FlinkProcessor
    from repro.sps.gateways import DirectInput, DirectOutput

    env = Environment()
    tool = create_serving_tool("tf_serving", env, "ffnn")
    engine = FlinkProcessor(
        env, tool, DirectInput(env), DirectOutput(env), scoring_window=1
    )
    assert engine.scoring_window == 0


def test_window_improves_external_throughput():
    base = ExperimentConfig(
        sps="flink", serving="tf_serving", model="ffnn", ir=None, duration=2.0
    )
    plain = run_experiment(base)
    windowed = run_experiment(base.replace(scoring_window=16))
    assert windowed.throughput > 1.5 * plain.throughput


def test_window_flushes_on_idle_stream():
    """At 2 ev/s a 16-event window must not hold events back."""
    config = ExperimentConfig(
        sps="flink",
        serving="tf_serving",
        model="ffnn",
        workload=WorkloadKind.CLOSED_LOOP,
        ir=2.0,
        duration=5.0,
        scoring_window=16,
    )
    result = run_experiment(config)
    assert result.completed >= 8
    assert result.latency.mean < 0.02  # no multi-second window waits


def test_all_events_complete_exactly_once():
    config = ExperimentConfig(
        sps="flink",
        serving="tf_serving",
        model="ffnn",
        ir=300.0,
        duration=3.0,
        scoring_window=8,
    )
    result = run_experiment(config)
    assert result.duplicates == 0
    assert result.completed == pytest.approx(300 * 3, rel=0.1)


def test_window_works_with_embedded_too():
    """Grouping embedded calls amortizes the FFI boundary as well."""
    base = ExperimentConfig(
        sps="flink", serving="dl4j", model="ffnn", ir=None, duration=2.0
    )
    plain = run_experiment(base)
    windowed = run_experiment(base.replace(scoring_window=16))
    assert windowed.throughput > plain.throughput
