"""Unit tests for the external-server autoscaler."""

import pytest

from repro.config import ExperimentConfig
from repro.errors import ConfigError
from repro.serving import create_serving_tool
from repro.serving.external.autoscaler import AutoscalePolicy, Autoscaler
from repro.simul import Environment


def test_policy_validation():
    with pytest.raises(ConfigError):
        AutoscalePolicy(min_workers=0)
    with pytest.raises(ConfigError):
        AutoscalePolicy(min_workers=4, max_workers=2)
    with pytest.raises(ConfigError):
        AutoscalePolicy(check_interval=0)
    with pytest.raises(ConfigError):
        AutoscalePolicy(step=0)
    with pytest.raises(ConfigError):
        AutoscalePolicy(
            scale_up_queue_per_worker=1.0, scale_down_queue_per_worker=2.0
        )


def test_config_validation():
    with pytest.raises(ConfigError):
        ExperimentConfig(serving="onnx", autoscale=(1, 4))
    with pytest.raises(ConfigError):
        ExperimentConfig(serving="tf_serving", autoscale=(4, 2))
    with pytest.raises(ConfigError):
        ExperimentConfig(
            serving="tf_serving", autoscale=(1, 4), server_workers=2
        )


def build(policy, horizon=30.0):
    env = Environment()
    tool = create_serving_tool("torchserve", env, "ffnn", mp=policy.min_workers)
    scaler = Autoscaler(env, tool, policy, horizon=horizon)
    return env, tool, scaler


def drive(env, tool, n_clients, requests_each, interval=0.0):
    done = []

    def client():
        for __ in range(requests_each):
            result = yield from tool.score(1)
            done.append(result)
            if interval:
                yield env.timeout(interval)

    def driver():
        yield from tool.load()
        clients = [env.process(client()) for __ in range(n_clients)]
        yield env.all_of(clients)

    env.process(driver())
    env.run()
    return done


def test_scales_up_under_load():
    policy = AutoscalePolicy(min_workers=1, max_workers=8, worker_start_delay=0.05)
    env, tool, scaler = build(policy)
    done = drive(env, tool, n_clients=32, requests_each=30)
    assert len(done) == 32 * 30
    assert scaler.scale_ups > 0
    assert scaler.peak_desired > 1


def test_scales_back_down_when_idle():
    policy = AutoscalePolicy(
        min_workers=1, max_workers=8, worker_start_delay=0.05, check_interval=0.05
    )
    env, tool, scaler = build(policy)

    def phase_driver():
        yield from tool.load()
        # Burst phase: flood with concurrent requests.
        burst = [env.process(one()) for __ in range(64)]

        def wrap():
            yield env.all_of(burst)

        yield from wrap()
        # Idle phase: let the control loop observe the empty queue.
        yield env.timeout(3.0)

    def one():
        yield from tool.score(1)

    env.process(phase_driver())
    env.run(until=6.0)
    assert scaler.scale_ups > 0
    assert scaler.scale_downs > 0
    assert scaler.desired == policy.min_workers


def test_never_exceeds_max_workers():
    policy = AutoscalePolicy(min_workers=1, max_workers=3, worker_start_delay=0.01)
    env, tool, scaler = build(policy)
    drive(env, tool, n_clients=64, requests_each=10)
    assert scaler.peak_desired <= 3


def test_all_requests_served_across_scaling():
    policy = AutoscalePolicy(min_workers=2, max_workers=6, worker_start_delay=0.02)
    env, tool, scaler = build(policy)
    done = drive(env, tool, n_clients=16, requests_each=20, interval=0.001)
    assert len(done) == 16 * 20
    assert tool.requests_served == 16 * 20


# -- decision thresholds and cadence ----------------------------------------
#
# These tests drive the control loop directly: requests are parked in the
# service queue with no worker consuming them (worker_start_delay far
# beyond the test horizon), so the queue depth at each check is exact.


def _controlled(policy, queued, until):
    env, tool, scaler = build(policy, horizon=until)
    for __ in range(queued):
        tool._queue.try_put(object())
    env.process(scaler._control_loop())
    env.run(until=until)
    return scaler


def test_scale_up_threshold_is_strict():
    """queued == threshold * desired does not trigger; one more does."""
    policy = AutoscalePolicy(
        min_workers=1, max_workers=8,
        scale_up_queue_per_worker=4.0,
        check_interval=0.25, worker_start_delay=100.0,
    )
    at_threshold = _controlled(policy, queued=4, until=0.3)
    assert at_threshold.scale_ups == 0
    assert at_threshold.desired == 1
    over_threshold = _controlled(policy, queued=5, until=0.3)
    assert over_threshold.scale_ups == 1
    assert over_threshold.desired == 2


def test_check_interval_limits_decision_rate():
    """One scaling decision per check interval — the cooldown that keeps
    a deep backlog from spawning the whole pool at once."""
    policy = AutoscalePolicy(
        min_workers=1, max_workers=8,
        check_interval=0.25, worker_start_delay=100.0,
    )
    scaler = _controlled(policy, queued=100, until=1.05)
    assert scaler.scale_ups == 4  # checks at 0.25, 0.5, 0.75, 1.0
    assert scaler.desired == 5


def test_step_workers_added_per_decision():
    policy = AutoscalePolicy(
        min_workers=1, max_workers=8, step=3,
        check_interval=0.25, worker_start_delay=100.0,
    )
    scaler = _controlled(policy, queued=100, until=0.3)
    assert scaler.scale_ups == 1
    assert scaler.desired == 4
    # The 3 scaled-up workers spawn immediately (serving only after the
    # provisioning delay); the min worker would come from _bootstrap,
    # which this direct-drive harness skips.
    assert scaler.live == 3


def test_never_scales_below_min_workers():
    policy = AutoscalePolicy(
        min_workers=2, max_workers=8,
        check_interval=0.1, worker_start_delay=100.0,
    )
    scaler = _controlled(policy, queued=0, until=1.0)
    assert scaler.scale_downs == 0
    assert scaler.desired == policy.min_workers


def test_autoscaler_registers_metrics():
    from repro.metrics import MetricsRegistry
    from repro.simul import Environment as Env

    env = Env()
    registry = MetricsRegistry(env)
    tool = create_serving_tool("torchserve", env, "ffnn", mp=1)
    tool.install_metrics(registry)
    policy = AutoscalePolicy(min_workers=1, max_workers=4)
    scaler = Autoscaler(env, tool, policy, horizon=1.0)
    live = registry.get("autoscaler_replicas", labels={"state": "live"})
    desired = registry.get("autoscaler_replicas", labels={"state": "desired"})
    ups = registry.get("autoscaler_scale_events", labels={"direction": "up"})
    assert live.value() == 0  # nothing spawned before load()
    assert desired.value() == policy.min_workers
    assert ups.value() == 0
    scaler._bootstrap()
    assert live.value() == policy.min_workers
