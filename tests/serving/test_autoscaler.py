"""Unit tests for the external-server autoscaler."""

import pytest

from repro.config import ExperimentConfig
from repro.errors import ConfigError
from repro.serving import create_serving_tool
from repro.serving.external.autoscaler import AutoscalePolicy, Autoscaler
from repro.simul import Environment


def test_policy_validation():
    with pytest.raises(ConfigError):
        AutoscalePolicy(min_workers=0)
    with pytest.raises(ConfigError):
        AutoscalePolicy(min_workers=4, max_workers=2)
    with pytest.raises(ConfigError):
        AutoscalePolicy(check_interval=0)
    with pytest.raises(ConfigError):
        AutoscalePolicy(step=0)
    with pytest.raises(ConfigError):
        AutoscalePolicy(
            scale_up_queue_per_worker=1.0, scale_down_queue_per_worker=2.0
        )


def test_config_validation():
    with pytest.raises(ConfigError):
        ExperimentConfig(serving="onnx", autoscale=(1, 4))
    with pytest.raises(ConfigError):
        ExperimentConfig(serving="tf_serving", autoscale=(4, 2))
    with pytest.raises(ConfigError):
        ExperimentConfig(
            serving="tf_serving", autoscale=(1, 4), server_workers=2
        )


def build(policy, horizon=30.0):
    env = Environment()
    tool = create_serving_tool("torchserve", env, "ffnn", mp=policy.min_workers)
    scaler = Autoscaler(env, tool, policy, horizon=horizon)
    return env, tool, scaler


def drive(env, tool, n_clients, requests_each, interval=0.0):
    done = []

    def client():
        for __ in range(requests_each):
            result = yield from tool.score(1)
            done.append(result)
            if interval:
                yield env.timeout(interval)

    def driver():
        yield from tool.load()
        clients = [env.process(client()) for __ in range(n_clients)]
        yield env.all_of(clients)

    env.process(driver())
    env.run()
    return done


def test_scales_up_under_load():
    policy = AutoscalePolicy(min_workers=1, max_workers=8, worker_start_delay=0.05)
    env, tool, scaler = build(policy)
    done = drive(env, tool, n_clients=32, requests_each=30)
    assert len(done) == 32 * 30
    assert scaler.scale_ups > 0
    assert scaler.peak_desired > 1


def test_scales_back_down_when_idle():
    policy = AutoscalePolicy(
        min_workers=1, max_workers=8, worker_start_delay=0.05, check_interval=0.05
    )
    env, tool, scaler = build(policy)

    def phase_driver():
        yield from tool.load()
        # Burst phase: flood with concurrent requests.
        burst = [env.process(one()) for __ in range(64)]

        def wrap():
            yield env.all_of(burst)

        yield from wrap()
        # Idle phase: let the control loop observe the empty queue.
        yield env.timeout(3.0)

    def one():
        yield from tool.score(1)

    env.process(phase_driver())
    env.run(until=6.0)
    assert scaler.scale_ups > 0
    assert scaler.scale_downs > 0
    assert scaler.desired == policy.min_workers


def test_never_exceeds_max_workers():
    policy = AutoscalePolicy(min_workers=1, max_workers=3, worker_start_delay=0.01)
    env, tool, scaler = build(policy)
    drive(env, tool, n_clients=64, requests_each=10)
    assert scaler.peak_desired <= 3


def test_all_requests_served_across_scaling():
    policy = AutoscalePolicy(min_workers=2, max_workers=6, worker_start_delay=0.02)
    env, tool, scaler = build(policy)
    done = drive(env, tool, n_clients=16, requests_each=20, interval=0.001)
    assert len(done) == 16 * 20
    assert tool.requests_served == 16 * 20
