"""Unit tests for embedded and external serving tools."""

import pytest

from repro.errors import ConfigError, ServingError
from repro.serving import create_serving_tool
from repro.simul import Environment, RandomStreams


def make_tool(name, model="ffnn", mp=1, gpu=False, seed=None):
    env = Environment()
    rng = RandomStreams(seed) if seed is not None else None
    tool = create_serving_tool(name, env, model, mp=mp, gpu=gpu, rng=rng)
    return env, tool


def run_scores(env, tool, count, bsz=1, concurrency=1):
    """Load the tool, then run ``count`` scoring calls across
    ``concurrency`` client processes; returns (results, elapsed)."""
    results = []

    def client(n):
        for __ in range(n):
            result = yield from tool.score(bsz)
            results.append(result)

    def driver():
        yield from tool.load()
        start = env.now
        clients = [
            env.process(client(count // concurrency)) for __ in range(concurrency)
        ]
        yield env.all_of(clients)
        return env.now - start

    done = env.process(driver())
    elapsed = env.run(until=done)
    return results, elapsed


def test_unknown_tool_rejected():
    env = Environment()
    with pytest.raises(ConfigError):
        create_serving_tool("mxnet", env, "ffnn")


def test_score_before_load_rejected():
    env, tool = make_tool("onnx")

    def proc():
        yield from tool.score(1)

    event = env.process(proc())
    with pytest.raises(ServingError):
        env.run(until=event)


@pytest.mark.parametrize(
    "name,kind",
    [
        ("onnx", "embedded"),
        ("dl4j", "embedded"),
        ("savedmodel", "embedded"),
        ("tf_serving", "external"),
        ("torchserve", "external"),
        ("ray_serve", "external"),
    ],
)
def test_all_tools_score(name, kind):
    env, tool = make_tool(name)
    assert tool.kind == kind
    results, __ = run_scores(env, tool, count=5)
    assert len(results) == 5
    assert all(r.points == 1 for r in results)
    assert all(r.output_values == 10 for r in results)
    assert all(r.service_time > 0 for r in results)
    assert tool.requests_served == 5


def test_embedded_faster_than_external_for_ffnn():
    """Table 4: embedded ONNX beats external TF-Serving per request."""
    env_e, onnx = make_tool("onnx")
    results_e, elapsed_e = run_scores(env_e, onnx, count=20)
    env_x, tfs = make_tool("tf_serving")
    results_x, elapsed_x = run_scores(env_x, tfs, count=20)
    assert elapsed_e < elapsed_x


def test_external_latency_includes_network():
    """A single external call costs at least the LAN round trip."""
    env, tool = make_tool("tf_serving")
    results, __ = run_scores(env, tool, count=1)
    assert results[0].service_time > 0.9e-3  # ~1 ms RTT floor


def test_dl4j_concurrency_capped():
    """16 concurrent scorers only get 8 engine slots (Fig. 6)."""
    env, tool = make_tool("dl4j", mp=16)
    __, elapsed_16 = run_scores(env, tool, count=64, concurrency=16)
    env2, tool2 = make_tool("dl4j", mp=8)
    __, elapsed_8 = run_scores(env2, tool2, count=64, concurrency=8)
    # Extra workers beyond 8 buy (almost) nothing but contention.
    assert elapsed_16 >= elapsed_8 * 0.9


def test_tf_serving_resnet_does_not_scale():
    """Fig. 7: TF-Serving executes ResNet50 in one session."""
    env1, tool1 = make_tool("tf_serving", model="resnet50", mp=1)
    __, elapsed_1 = run_scores(env1, tool1, count=8, concurrency=1)
    env8, tool8 = make_tool("tf_serving", model="resnet50", mp=8)
    __, elapsed_8 = run_scores(env8, tool8, count=8, concurrency=8)
    assert elapsed_8 > elapsed_1 * 0.8  # no speedup from 8 workers


def test_torchserve_resnet_scales():
    """Fig. 7: TorchServe keeps scaling for ResNet50 (with friction)."""
    env1, tool1 = make_tool("torchserve", model="resnet50", mp=1)
    __, elapsed_1 = run_scores(env1, tool1, count=8, concurrency=1)
    env8, tool8 = make_tool("torchserve", model="resnet50", mp=8)
    __, elapsed_8 = run_scores(env8, tool8, count=8, concurrency=8)
    assert elapsed_8 < elapsed_1 / 2


def test_ray_serve_proxy_serializes_requests():
    """Fig. 11: one HTTP proxy caps Ray Serve's scaling."""
    env, tool = make_tool("ray_serve", mp=8)
    results, elapsed = run_scores(env, tool, count=80, concurrency=8)
    throughput = len(results) / elapsed
    assert throughput < 500  # proxy-bound ceiling (paper: ~455 ev/s)


def test_gpu_reduces_resnet_latency():
    """Fig. 9: GPU inference is faster end to end for ResNet50."""
    env_c, cpu = make_tool("tf_serving", model="resnet50", gpu=False)
    results_c, __ = run_scores(env_c, cpu, count=2, bsz=8)
    env_g, gpu = make_tool("tf_serving", model="resnet50", gpu=True)
    results_g, __ = run_scores(env_g, gpu, count=2, bsz=8)
    assert results_g[-1].service_time < results_c[-1].service_time


def test_seeded_tools_are_reproducible():
    env_a, tool_a = make_tool("tf_serving", seed=5)
    results_a, elapsed_a = run_scores(env_a, tool_a, count=10)
    env_b, tool_b = make_tool("tf_serving", seed=5)
    results_b, elapsed_b = run_scores(env_b, tool_b, count=10)
    assert elapsed_a == elapsed_b
    assert [r.service_time for r in results_a] == [
        r.service_time for r in results_b
    ]
