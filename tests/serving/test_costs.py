"""Unit tests for the serving cost model."""

import pytest

from repro import calibration as cal
from repro.nn.zoo import model_info
from repro.serving.costs import ServingCostModel
from repro.simul import RandomStreams


def costs(tool="onnx", model="ffnn", mp=1, gpu=False, rng=None):
    return ServingCostModel(
        cal.SERVING_PROFILES[tool], model_info(model), mp=mp, gpu=gpu, rng=rng
    )


def test_apply_time_scales_with_batch():
    model = costs()
    assert model.base_apply_time(64) > model.base_apply_time(1)
    # Marginal cost amortizes the fixed call overhead.
    assert model.base_apply_time(64) < 64 * model.base_apply_time(1)


def test_invalid_batch_rejected():
    with pytest.raises(ValueError):
        costs().base_apply_time(0)
    with pytest.raises(ValueError):
        costs(mp=0)


def test_resnet_much_slower_than_ffnn():
    ffnn = costs(model="ffnn").base_apply_time(1)
    resnet = costs(model="resnet50").base_apply_time(1)
    assert resnet > 100 * ffnn


def test_large_model_detection():
    assert not costs(model="ffnn").is_large_model
    assert costs(model="resnet50").is_large_model


def test_contention_grows_with_mp():
    assert costs(mp=1).contention_factor == 1.0
    assert costs(mp=16).contention_factor > costs(mp=4).contention_factor


def test_tf_serving_no_contention_small_model():
    assert costs("tf_serving", mp=16).contention_factor == 1.0


def test_tf_serving_large_model_concurrency_is_one():
    model = costs("tf_serving", model="resnet50", mp=16)
    assert model.engine_concurrency == 1


def test_dl4j_parallelism_capped_at_8():
    assert costs("dl4j", mp=16).engine_concurrency == 8
    assert costs("dl4j", mp=4).engine_concurrency == 4


def test_gpu_speeds_up_compute_but_adds_transfer():
    cpu = costs(model="resnet50", gpu=False)
    gpu = costs(model="resnet50", gpu=True)
    assert gpu.compute_time_per_point() < cpu.compute_time_per_point()
    assert gpu.gpu_transfer_time(8) > 0
    assert cpu.gpu_transfer_time(8) == 0
    # Net effect for ResNet50: the GPU still wins end to end (Fig. 9).
    assert gpu.base_apply_time(8) < cpu.base_apply_time(8)


def test_noise_is_multiplicative_and_seeded():
    a = costs(rng=RandomStreams(1))
    b = costs(rng=RandomStreams(1))
    assert a.apply_time(1) == b.apply_time(1)
    assert a.base_apply_time(1) != a.apply_time(1)  # sigma > 0 for onnx


def test_tf_serving_noisier_than_onnx():
    """Fig. 8: TF-Serving shows higher run-to-run variation."""
    assert (
        cal.SERVING_PROFILES["tf_serving"].noise_sigma
        > cal.SERVING_PROFILES["onnx"].noise_sigma
    )


def test_load_time_scales_with_model_size():
    assert costs(model="resnet50").load_time() > costs(model="ffnn").load_time()


def test_table4_calibration_service_times():
    """The mp=1 FFNN service times implied by Table 4 (1/throughput minus
    Flink's ~0.53 ms src+sink share) should be reproduced by the cost
    model within ~15%."""
    targets_ms = {"onnx": 0.19, "savedmodel": 0.25, "dl4j": 0.74}
    for tool, expected in targets_ms.items():
        measured = costs(tool).base_apply_time(1) * 1e3
        assert measured == pytest.approx(expected, rel=0.15), tool
