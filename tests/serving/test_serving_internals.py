"""Additional serving-layer internals: load idempotence, GPU transfer,
server queue behaviour, ScoringResult invariants."""

import pytest

from repro.serving import create_serving_tool
from repro.simul import Environment


def run_until_done(env, coro):
    return env.run(until=env.process(coro))


def test_load_is_idempotent_for_workers():
    """Reloading an external service (e.g. after recovery) must not
    double its worker pool."""
    env = Environment()
    tool = create_serving_tool("tf_serving", env, "ffnn", mp=2)

    def driver():
        yield from tool.load()
        yield from tool.load()  # again, like a restart path

    env.process(driver())
    env.run()
    # Each worker parks exactly one getter on the queue when idle.
    assert len(tool._queue._getters) == 2


def test_scoring_result_fields_consistent():
    env = Environment()
    tool = create_serving_tool("onnx", env, "resnet50")
    results = []

    def driver():
        yield from tool.load()
        result = yield from tool.score(4)
        results.append(result)

    env.process(driver())
    env.run()
    result = results[0]
    assert result.points == 4
    assert result.output_values == 4 * 1000
    assert result.service_time > 4 * 0.3  # >= compute time alone


def test_external_requests_queue_fifo_per_worker():
    """With one worker, completion order matches request order."""
    env = Environment()
    tool = create_serving_tool("tf_serving", env, "ffnn", mp=1)
    order = []

    def client(tag, delay):
        yield env.timeout(delay)
        yield from tool.score(1)
        order.append(tag)

    def driver():
        yield from tool.load()
        clients = [env.process(client(i, i * 1e-5)) for i in range(5)]
        yield env.all_of(clients)

    env.process(driver())
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_gpu_transfer_scales_with_batch():
    env = Environment()
    tool = create_serving_tool("onnx", env, "resnet50", gpu=True)
    assert tool.costs.gpu_transfer_time(16) == pytest.approx(
        2 * tool.costs.gpu_transfer_time(8)
    )


def test_embedded_requests_served_counter():
    env = Environment()
    tool = create_serving_tool("savedmodel", env, "ffnn")

    def driver():
        yield from tool.load()
        for __ in range(7):
            yield from tool.score(1)

    env.process(driver())
    env.run()
    assert tool.requests_served == 7
    assert tool.loaded


def test_large_batch_service_time_superlinear_floor():
    """service(2n) >= service(n): no accidental sublinearity."""
    env = Environment()
    tool = create_serving_tool("onnx", env, "ffnn")
    times = {}

    def driver():
        yield from tool.load()
        for bsz in (8, 16, 64):
            result = yield from tool.score(bsz)
            times[bsz] = result.service_time

    env.process(driver())
    env.run()
    assert times[8] < times[16] < times[64]
