"""Unit tests for the state store and GNN serving tool (§9 extension)."""

import pytest

from repro import calibration as cal
from repro.nn.gnn import build_gcn
from repro.nn.zoo import ModelInfo
from repro.serving.costs import ServingCostModel
from repro.serving.embedded.gnn import GnnEmbeddedTool
from repro.serving.state import StateStore
from repro.simul import Environment, RandomStreams


def run_coro(env, coro):
    return env.run(until=env.process(coro))


def test_state_store_validation():
    env = Environment()
    with pytest.raises(ValueError):
        StateStore(env, hit_ratio=1.5)
    with pytest.raises(ValueError):
        StateStore(env, io_lanes=0)
    store = StateStore(env)

    def bad():
        yield from store.read_many(-1)

    event = env.process(bad())
    with pytest.raises(ValueError):
        env.run(until=event)


def test_state_store_zero_keys_is_free():
    env = Environment()
    store = StateStore(env)
    misses = run_coro(env, store.read_many(0))
    assert misses == 0
    assert env.now == 0.0


def test_state_store_misses_cost_more():
    def total_time(hit_ratio):
        env = Environment()
        store = StateStore(env, hit_ratio=hit_ratio)
        run_coro(env, store.read_many(1000))
        return env.now

    assert total_time(0.0) > 5 * total_time(1.0)


def test_state_store_deterministic_misses_without_rng():
    env = Environment()
    store = StateStore(env, hit_ratio=0.8)
    misses = run_coro(env, store.read_many(100))
    assert misses == 20
    assert store.keys_read == 100
    assert store.keys_missed == 20


def test_state_store_random_misses_with_rng():
    env = Environment()
    store = StateStore(env, hit_ratio=0.8, rng=RandomStreams(1))
    misses = run_coro(env, store.read_many(1000))
    assert 150 <= misses <= 250  # around the 20% expectation


def test_state_store_io_lanes_shared():
    """Concurrent big reads queue on the bounded I/O lanes."""
    env = Environment()
    store = StateStore(env, hit_ratio=0.0, io_lanes=1)

    def reader():
        yield from store.read_many(1000)

    env.process(reader())
    env.process(reader())
    env.run()
    # Two 1000-miss reads serialized on one lane: 2 * 1000 * miss_cost.
    assert env.now == pytest.approx(2 * 1000 * store.miss_cost, rel=0.01)


def make_gnn_tool(env, hops=2, hit_ratio=0.8):
    gcn = build_gcn(hops=hops)
    info = ModelInfo(
        name=gcn.name,
        input_shape=gcn.input_shape,
        output_shape=gcn.output_shape,
        param_count=gcn.param_count,
        flops_per_point=gcn.flops_per_point,
    )
    costs = ServingCostModel(cal.SERVING_PROFILES["onnx"], info)
    store = StateStore(env, hit_ratio=hit_ratio)
    return GnnEmbeddedTool(env, costs, gcn, store)


def test_gnn_tool_scores_with_state_reads():
    env = Environment()
    tool = make_gnn_tool(env)
    results = []

    def driver():
        yield from tool.load()
        result = yield from tool.score(4)
        results.append(result)

    env.process(driver())
    env.run()
    assert results[0].points == 4
    assert tool.store.keys_read == 4 * tool.gcn.neighborhood_size


def test_gnn_latency_grows_with_hops():
    """The k-hop neighborhood dominates serving latency as k grows —
    exactly why the paper flags GNNs as an open serving challenge."""

    def service_time(hops):
        env = Environment()
        tool = make_gnn_tool(env, hops=hops)
        results = []

        def driver():
            yield from tool.load()
            result = yield from tool.score(1)
            results.append(result)

        env.process(driver())
        env.run()
        return results[0].service_time

    assert service_time(3) > 10 * service_time(1)


def test_gnn_cache_hit_ratio_matters():
    def service_time(hit_ratio):
        env = Environment()
        tool = make_gnn_tool(env, hops=3, hit_ratio=hit_ratio)
        results = []

        def driver():
            yield from tool.load()
            result = yield from tool.score(1)
            results.append(result)

        env.process(driver())
        env.run()
        return results[0].service_time

    assert service_time(0.0) > 2 * service_time(0.99)
