"""Unit tests for multi-model serving and version rollouts."""

import pytest

from repro import calibration as cal
from repro.errors import ServingError
from repro.nn.zoo import model_info
from repro.serving import create_serving_tool
from repro.serving.costs import ServingCostModel
from repro.serving.external.multi_model import MultiModelServer
from repro.simul import Environment


def costs(model="ffnn", tool="tf_serving"):
    return ServingCostModel(cal.SERVING_PROFILES[tool], model_info(model))


def test_server_validates_workers():
    env = Environment()
    with pytest.raises(ServingError):
        MultiModelServer(env, workers=0)


def test_deploy_and_score():
    env = Environment()
    server = MultiModelServer(env)
    outcomes = []

    def driver():
        yield from server.deploy("classifier", "v1", costs())
        result, version = yield from server.score("classifier", bsz=2)
        outcomes.append((result, version))

    env.process(driver())
    env.run()
    result, version = outcomes[0]
    assert version == "v1"
    assert result.points == 2
    assert server.models() == {"classifier": "v1"}


def test_unknown_model_rejected():
    env = Environment()
    server = MultiModelServer(env)
    server.start()

    def driver():
        yield from server.score("nope", 1)

    event = env.process(driver())
    with pytest.raises(ServingError):
        env.run(until=event)
    with pytest.raises(ServingError):
        server.undeploy("nope")


def test_multiple_models_route_independently():
    env = Environment()
    server = MultiModelServer(env)
    served = []

    def driver():
        yield from server.deploy("small", "v1", costs("ffnn"))
        yield from server.deploy("large", "v1", costs("resnet50"))
        small, __ = yield from server.score("small", 1)
        large, __ = yield from server.score("large", 1)
        served.append((small.service_time, large.service_time))

    env.process(driver())
    env.run()
    small_time, large_time = served[0]
    assert large_time > 50 * small_time  # ResNet50 vs FFNN


def test_rollout_is_zero_downtime():
    """Requests during a deploy are served by the old version; requests
    after it by the new one — nobody waits for the load."""
    env = Environment()
    server = MultiModelServer(env)
    versions = []

    def client():
        while env.now < 4.0:
            __, version = yield from server.score("m", 1)
            versions.append((env.now, version))
            yield env.timeout(0.05)

    def driver():
        yield from server.deploy("m", "v1", costs())
        env.process(client())
        yield env.timeout(1.0)
        yield from server.deploy("m", "v2", costs())

    env.process(driver())
    env.run()
    v1_times = [t for t, v in versions if v == "v1"]
    v2_times = [t for t, v in versions if v == "v2"]
    assert v1_times and v2_times
    assert max(v1_times) < min(v2_times)
    # Zero downtime: the stream of replies has no gap near the rollout.
    gaps = [b - a for a, b in zip(sorted(t for t, _ in versions), sorted(t for t, _ in versions)[1:])]
    assert max(gaps) < 0.1


def test_embedded_swap_stalls_scoring():
    """The embedded counterpart: swapping weights quiesces the engine."""
    env = Environment()
    tool = create_serving_tool("onnx", env, "ffnn")
    latencies = []

    def client():
        while env.now < 3.0:
            result = yield from tool.score(1)
            latencies.append((env.now, result.service_time))
            yield env.timeout(0.02)

    def driver():
        yield from tool.load()
        env.process(client())
        yield env.timeout(1.0)
        yield from tool.swap_model(costs(tool="onnx"))

    env.process(driver())
    env.run()
    worst = max(service for __, service in latencies)
    typical = min(service for __, service in latencies)
    # At least one request stalled for roughly the model-load time.
    assert worst > 0.5 * costs(tool="onnx").load_time()
    assert worst > 20 * typical
    assert tool.model_swaps == 1
