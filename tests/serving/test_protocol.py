"""Unit tests for the gRPC/REST protocol selection (§3.4.3)."""

import pytest

from repro.config import ExperimentConfig
from repro.errors import ConfigError
from repro.netsim import GrpcChannel, HttpChannel
from repro.serving import create_serving_tool
from repro.simul import Environment


def test_config_validation():
    ExperimentConfig(serving="tf_serving", protocol="rest")
    ExperimentConfig(serving="torchserve", protocol="grpc")
    with pytest.raises(ConfigError):
        ExperimentConfig(serving="tf_serving", protocol="soap")
    with pytest.raises(ConfigError):
        ExperimentConfig(serving="onnx", protocol="rest")
    with pytest.raises(ConfigError):
        ExperimentConfig(serving="ray_serve", protocol="grpc")


def test_factory_builds_requested_channel():
    env = Environment()
    grpc = create_serving_tool("tf_serving", env, "ffnn", protocol="grpc")
    rest = create_serving_tool("tf_serving", env, "ffnn", protocol="rest")
    default = create_serving_tool("tf_serving", env, "ffnn")
    assert isinstance(grpc.channel, GrpcChannel)
    assert isinstance(rest.channel, HttpChannel)
    assert isinstance(default.channel, GrpcChannel)  # the paper's choice


def test_factory_rejects_protocol_for_wrong_tools():
    env = Environment()
    with pytest.raises(ConfigError):
        create_serving_tool("onnx", env, "ffnn", protocol="rest")
    with pytest.raises(ConfigError):
        create_serving_tool("ray_serve", env, "ffnn", protocol="grpc")
    with pytest.raises(ConfigError):
        create_serving_tool("tf_serving", env, "ffnn", protocol="thrift")


def test_rest_requests_cost_more():
    """JSON payloads make the same call slower over REST."""

    def one_call_time(protocol):
        env = Environment()
        tool = create_serving_tool("tf_serving", env, "ffnn", protocol=protocol)
        done = []

        def driver():
            yield from tool.load()
            result = yield from tool.score(64)
            done.append(result.service_time)

        env.process(driver())
        env.run()
        return done[0]

    assert one_call_time("rest") > 1.1 * one_call_time("grpc")


def test_ray_substitution_ignores_protocol():
    """sps=ray + external + protocol must not crash: Ray Serve is
    HTTP-only and replaces the requested tool entirely."""
    from repro.core.runner import run_experiment

    result = run_experiment(
        ExperimentConfig(
            sps="ray", serving="tf_serving", protocol="grpc", ir=None, duration=1.0
        )
    )
    assert result.completed > 0
