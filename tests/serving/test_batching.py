"""Unit tests for server-side adaptive batching."""

import pytest

from repro.config import ExperimentConfig
from repro.errors import ConfigError
from repro.serving import create_serving_tool
from repro.serving.external.batching import (
    BatchingPolicy,
    install_adaptive_batching,
)
from repro.simul import Environment


def make_batched_tool(max_size=4, max_delay=0.002, mp=1):
    env = Environment()
    tool = create_serving_tool("torchserve", env, "ffnn", mp=mp)
    install_adaptive_batching(
        tool, BatchingPolicy(max_size=max_size, max_delay=max_delay)
    )
    return env, tool


def test_policy_validation():
    with pytest.raises(ConfigError):
        BatchingPolicy(max_size=1)
    with pytest.raises(ConfigError):
        BatchingPolicy(max_delay=0)


def test_config_validation():
    with pytest.raises(ConfigError):
        ExperimentConfig(serving="onnx", adaptive_batching=(8, 0.005))
    with pytest.raises(ConfigError):
        ExperimentConfig(serving="tf_serving", adaptive_batching=(1, 0.005))
    ExperimentConfig(serving="tf_serving", adaptive_batching=(8, 0.005))


def test_install_after_start_rejected():
    env = Environment()
    tool = create_serving_tool("torchserve", env, "ffnn")

    def load():
        yield from tool.load()

    env.process(load())
    env.run()
    with pytest.raises(ConfigError):
        install_adaptive_batching(tool, BatchingPolicy())


def test_all_requests_answered():
    env, tool = make_batched_tool()
    results = []

    def client(n):
        for __ in range(n):
            result = yield from tool.score(1)
            results.append(result)

    def driver():
        yield from tool.load()
        clients = [env.process(client(5)) for __ in range(4)]
        yield env.all_of(clients)

    env.process(driver())
    env.run()
    assert len(results) == 20
    assert tool.requests_served == 20


def test_coalescing_amortizes_overhead():
    """N concurrent requests finish much faster batched than serial."""

    def total_time(batched):
        env = Environment()
        tool = create_serving_tool("torchserve", env, "ffnn", mp=1)
        if batched:
            install_adaptive_batching(
                tool, BatchingPolicy(max_size=16, max_delay=0.001)
            )
        done = []

        def client():
            yield from tool.score(1)
            done.append(env.now)

        def driver():
            yield from tool.load()
            clients = [env.process(client()) for __ in range(16)]
            yield env.all_of(clients)

        env.process(driver())
        env.run()
        return max(done) - min(done) if len(done) > 1 else 0.0

    assert total_time(batched=True) < 0.5 * total_time(batched=False)


def test_timeout_flushes_partial_batch():
    """A lone request is not held past max_delay."""
    env, tool = make_batched_tool(max_size=64, max_delay=0.002)
    finished = []

    def driver():
        yield from tool.load()
        result = yield from tool.score(1)
        finished.append((env.now, result))

    env.process(driver())
    env.run()
    assert len(finished) == 1
    # Served shortly after the 2 ms coalescing window, not never.
    load_time = tool.costs.load_time()
    assert finished[0][0] < load_time + 0.015
