"""Integration tests: full experiments across every SPS x serving kind."""

import pytest

from repro.config import ExperimentConfig, WorkloadKind
from repro.core.consumer import OutputConsumer
from repro.core.runner import (
    INPUT_TOPIC,
    OUTPUT_TOPIC,
    ExperimentRunner,
    run_experiment,
    run_replicated,
)
from repro.errors import ConfigError


def short(sps="flink", serving="onnx", **kw):
    kw.setdefault("duration", 1.0)
    kw.setdefault("ir", None)
    return ExperimentConfig(sps=sps, serving=serving, model="ffnn", **kw)


@pytest.mark.parametrize("sps", ["flink", "kafka_streams", "spark_ss", "ray"])
@pytest.mark.parametrize("serving", ["onnx", "tf_serving"])
def test_every_engine_completes_batches(sps, serving):
    # Spark's first saturated micro-batch alone spans ~2 simulated seconds.
    duration = 4.0 if sps == "spark_ss" else 1.0
    result = run_experiment(short(sps=sps, serving=serving, duration=duration))
    assert result.completed > 10
    assert result.throughput > 0
    assert result.latency.count > 0
    assert result.latency.mean > 0


def test_latencies_are_end_minus_start():
    result = run_experiment(short())
    for end_time, latency in result.series:
        assert latency > 0
        assert end_time <= result.config.duration + 1e-9


def test_closed_loop_latency_low_and_stable():
    config = short(workload=WorkloadKind.CLOSED_LOOP, ir=5.0, duration=4.0)
    result = run_experiment(config)
    # At 5 ev/s the pipeline (service ~0.7 ms) is idle: latency is a few ms.
    assert result.latency.mean < 0.05
    assert result.completed == pytest.approx(5.0 * 4.0, rel=0.15)


def test_throughput_does_not_exceed_offered_rate():
    config = short(workload=WorkloadKind.OPEN_LOOP, ir=200.0, duration=3.0)
    result = run_experiment(config)
    assert result.throughput <= 200.0 * 1.05
    assert result.throughput == pytest.approx(200.0, rel=0.1)


def test_replicated_runs_differ_only_by_noise():
    results = run_replicated(short(duration=1.0), seeds=(0, 1))
    assert len(results) == 2
    a, b = results
    assert a.throughput != b.throughput  # noise differs
    assert a.throughput == pytest.approx(b.throughput, rel=0.2)


def test_same_seed_is_deterministic():
    a = run_experiment(short(), seed=3)
    b = run_experiment(short(), seed=3)
    assert a.throughput == b.throughput
    assert a.series == b.series


def test_run_replicated_needs_seeds():
    with pytest.raises(ConfigError):
        run_replicated(short(), seeds=())


def test_standalone_mode_faster_than_kafka():
    """Fig. 13: removing the broker lowers latency, throughput ~equal."""
    kafka = run_experiment(
        short(workload=WorkloadKind.CLOSED_LOOP, ir=5.0, duration=4.0)
    )
    direct = run_experiment(
        short(workload=WorkloadKind.CLOSED_LOOP, ir=5.0, duration=4.0, use_broker=False)
    )
    assert direct.latency.mean < kafka.latency.mean


def test_operator_parallelism_outperforms_chained():
    """Fig. 12: flink[32-N-32] beats flink[N-N-N] at N=1."""
    chained = run_experiment(short(duration=2.0))
    unchained = run_experiment(
        short(duration=2.0, operator_parallelism=(32, 1, 32))
    )
    assert unchained.throughput > 2.0 * chained.throughput


def test_ray_external_is_ray_serve():
    """Footnote 2: external serving on Ray goes through Ray Serve's
    single HTTP proxy, capping throughput at ~455 ev/s."""
    result = run_experiment(short(sps="ray", serving="tf_serving", mp=8, duration=2.0))
    assert result.throughput < 500


def test_output_consumer_matches_callback_measurements():
    """The output-consumer component reads identical latencies to the
    sink-callback fast path (same LogAppendTime measurements)."""
    from repro.broker import BrokerCluster
    from repro.core.batch import CrayfishDataBatch
    from repro.core.metrics import MetricsCollector
    from repro.simul import Environment
    from repro.broker import Producer

    env = Environment()
    cluster = BrokerCluster(env)
    cluster.create_topic(OUTPUT_TOPIC, 2)
    producer = Producer(env, cluster)
    collector = MetricsCollector(env)
    consumer = OutputConsumer(env, cluster, OUTPUT_TOPIC)
    consumer.start()

    def emit():
        for i in range(5):
            batch = CrayfishDataBatch(
                batch_id=i, created_at=env.now, points=1, point_shape=(4,)
            )
            yield env.timeout(0.01)
            metadata = yield from producer.send(
                OUTPUT_TOPIC, batch, nbytes=100, timestamp=batch.created_at
            )
            collector.on_complete(batch, metadata.log_append_time)

    env.process(emit())
    env.run(until=1.0)
    assert len(consumer.completions) == 5
    callback_latencies = sorted(c.latency for c in collector.completions)
    consumer_latencies = sorted(consumer.latencies())
    assert callback_latencies == pytest.approx(consumer_latencies)


def test_warmup_fraction_discards_early_completions():
    config = short(duration=2.0, warmup_fraction=0.5)
    result = run_experiment(config)
    assert result.measure_start == 1.0
    assert all(end >= 0 for end, __ in result.series)
    assert result.latency.count < result.completed


def test_topics_created_with_configured_partitions():
    runner = ExperimentRunner(short(partitions=8))
    result = runner.run()
    assert result.config.partitions == 8
    assert INPUT_TOPIC != OUTPUT_TOPIC
