"""Unit tests for broker pre-flight checks, probes, and trace schedules."""

import pytest

from repro.broker import BrokerCluster, Producer
from repro.core.generator import TraceSchedule
from repro.core.probe import BacklogProbe
from repro.core.validation import verify_broker_headroom
from repro.errors import ConfigError
from repro.simul import Environment


def test_broker_headroom_ok_at_paper_rates():
    """§4.3: the cluster must sustain the study's maximum arrival rates
    with a no-op inference task."""
    report = verify_broker_headroom(target_rate=5000.0, duration=1.0)
    assert report.ok
    assert report.achieved_rate == pytest.approx(5000.0, rel=0.05)
    assert report.consumed_rate == pytest.approx(5000.0, rel=0.05)
    assert report.broker_utilization < 0.3


def test_broker_headroom_flags_saturation():
    """A hopeless rate must be reported, not hidden."""
    report = verify_broker_headroom(
        target_rate=80_000.0, bsz=8, duration=0.5
    )
    assert report.broker_utilization > 0.3 or not report.ok


def test_broker_headroom_validation():
    with pytest.raises(ConfigError):
        verify_broker_headroom(target_rate=0)


def test_trace_schedule_steps():
    trace = TraceSchedule(steps=((0.0, 100.0), (10.0, 500.0), (20.0, 50.0)))
    assert trace.rate_at(0) == 100.0
    assert trace.rate_at(9.99) == 100.0
    assert trace.rate_at(10.0) == 500.0
    assert trace.rate_at(25.0) == 50.0  # holds the last step
    assert trace.rate_at(1e9) == 50.0


def test_trace_schedule_loops():
    trace = TraceSchedule(steps=((0.0, 10.0), (5.0, 20.0)), loop=True)
    assert trace.rate_at(6.0) == pytest.approx(10.0)  # wrapped past span=5
    assert trace.rate_at(5.0) == 20.0


def test_trace_schedule_validation():
    with pytest.raises(ConfigError):
        TraceSchedule(steps=())
    with pytest.raises(ConfigError):
        TraceSchedule(steps=((1.0, 5.0),))  # must start at 0
    with pytest.raises(ConfigError):
        TraceSchedule(steps=((0.0, 5.0), (0.0, 6.0)))  # duplicate times
    with pytest.raises(ConfigError):
        TraceSchedule(steps=((0.0, 0.0),))  # non-positive rate


def test_trace_schedule_drives_producer():
    from repro.core.generator import BatchFactory
    from repro.core.producer import PacedProducer
    from repro.sps.gateways import DirectInput

    env = Environment()
    direct = DirectInput(env)
    producer = PacedProducer(
        env,
        BatchFactory(1, (4,)),
        direct=direct,
        schedule=TraceSchedule(steps=((0.0, 100.0), (1.0, 10.0))),
    )
    producer.start()
    env.run(until=2.0)
    # ~100 in the first second + ~10 in the second.
    assert 95 <= producer.batches_produced <= 120


def test_backlog_probe_tracks_queue():
    env = Environment()
    cluster = BrokerCluster(env)
    cluster.create_topic("t", 2)
    producer = Producer(env, cluster)
    done = {"count": 0}
    probe = BacklogProbe(
        env, cluster, "t", completed=lambda: done["count"], interval=0.1, horizon=2.0
    )

    def produce():
        for __ in range(50):
            yield from producer.send("t", "x", nbytes=100)
            yield env.timeout(0.01)

    def consume():
        yield env.timeout(1.0)
        done["count"] = 50  # drain everything at t=1

    probe.start()
    env.process(produce())
    env.process(consume())
    env.run(until=2.0)
    assert probe.peak() >= 40
    assert probe.samples[-1][1] == 0
    assert len(probe.series()) == len(probe.samples)


def test_backlog_probe_validation():
    env = Environment()
    cluster = BrokerCluster(env)
    cluster.create_topic("t", 1)
    with pytest.raises(ValueError):
        BacklogProbe(env, cluster, "t", completed=lambda: 0, interval=0)
