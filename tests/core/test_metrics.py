"""Unit tests for metrics collection and statistics."""

import math

import pytest

from repro.core.batch import CrayfishDataBatch
from repro.core.metrics import Completion, LatencyStats, MetricsCollector, percentile
from repro.simul import Environment


def batch(batch_id, created_at=0.0):
    return CrayfishDataBatch(
        batch_id=batch_id, created_at=created_at, points=1, point_shape=(4,)
    )


def test_percentile_interpolates():
    sample = [0.0, 10.0, 20.0, 30.0, 40.0]
    assert percentile(sample, 0.5) == 20.0
    assert percentile(sample, 0.0) == 0.0
    assert percentile(sample, 1.0) == 40.0
    assert percentile(sample, 0.25) == 10.0
    assert percentile(sample, 0.1) == pytest.approx(4.0)


def test_percentile_validation():
    # Empty samples yield NaN, matching LatencyStats.from_samples([]).
    assert math.isnan(percentile([], 0.5))
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


def test_latency_stats_basics():
    stats = LatencyStats.from_samples([1.0, 2.0, 3.0, 4.0])
    assert stats.count == 4
    assert stats.mean == 2.5
    assert stats.minimum == 1.0
    assert stats.maximum == 4.0
    assert stats.p50 == 2.5
    assert stats.p99 <= stats.p999 <= stats.maximum
    assert stats.std == pytest.approx(math.sqrt(1.25))


def test_latency_stats_empty():
    stats = LatencyStats.from_samples([])
    assert stats.count == 0
    assert math.isnan(stats.mean)
    assert math.isnan(stats.p999)


def test_latency_stats_to_dict():
    stats = LatencyStats.from_samples([1.0, 2.0])
    record = stats.to_dict()
    assert record["count"] == 2
    assert record["p999"] == stats.p999
    assert set(record) == {
        "count", "mean", "std", "minimum", "p50", "p95", "p99", "p999", "maximum",
    }


def test_collector_records_latency():
    env = Environment()
    collector = MetricsCollector(env)
    collector.on_complete(batch(0, created_at=1.0), end_time=3.5)
    assert collector.count == 1
    assert collector.completions[0].latency == 2.5


def test_collector_rejects_duplicates():
    env = Environment()
    collector = MetricsCollector(env)
    collector.on_complete(batch(0), end_time=1.0)
    with pytest.raises(ValueError, match="twice"):
        collector.on_complete(batch(0), end_time=2.0)


def test_collector_rejects_time_travel():
    env = Environment()
    collector = MetricsCollector(env)
    with pytest.raises(ValueError, match="before start"):
        collector.on_complete(batch(0, created_at=5.0), end_time=1.0)


def test_warmup_discard_uses_end_time():
    env = Environment()
    collector = MetricsCollector(env)
    for i in range(10):
        collector.on_complete(batch(i, created_at=float(i)), end_time=float(i) + 0.5)
    assert len(collector.after(5.0)) == 5
    stats = collector.latency_stats(cutoff=5.0)
    assert stats.count == 5


def test_throughput_window():
    env = Environment()
    collector = MetricsCollector(env)
    for i in range(20):
        collector.on_complete(batch(i, created_at=i * 0.1), end_time=i * 0.1 + 0.01)
    assert collector.throughput(0.0, 2.0) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        collector.throughput(2.0, 2.0)


def test_completion_latency():
    completion = Completion(batch_id=1, created_at=2.0, end_time=5.0)
    assert completion.latency == 3.0


def test_replayed_batch_not_double_counted():
    """Regression: under at-least-once recovery a replayed batch used to
    land in ``completions`` a second time, inflating throughput and
    skewing latency toward the replay tail."""
    env = Environment()
    collector = MetricsCollector(env, strict=False)
    collector.on_complete(batch(0, created_at=0.0), end_time=0.5)
    before = collector.latency_stats()
    collector.on_complete(batch(0, created_at=0.0), end_time=3.0)  # replay
    assert collector.duplicates == 1
    assert collector.count == 1  # the replay is not a second completion
    assert collector.latency_stats() == before
    assert collector.throughput(0.0, 4.0) == pytest.approx(0.25)


def test_throughput_and_latency_share_the_window():
    """Regression: throughput used to count ``start <= end_time < end``
    while latency stats took ``end_time >= cutoff`` unbounded — a
    completion landing exactly on the horizon was visible to one metric
    and not the other."""
    env = Environment()
    collector = MetricsCollector(env)
    collector.on_complete(batch(0, created_at=0.0), end_time=1.0)
    collector.on_complete(batch(1, created_at=0.0), end_time=2.0)  # == end
    collector.on_complete(batch(2, created_at=0.0), end_time=2.5)  # beyond
    assert collector.throughput(0.0, 2.0) == pytest.approx(1.0)  # 2 in [0, 2]
    stats = collector.latency_stats(cutoff=0.0, end=2.0)
    assert stats.count == 2  # the same two completions, nothing more
    assert stats.maximum == 2.0
