"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.core.ascii_chart import render_chart


def test_renders_title_axes_and_legend():
    chart = render_chart(
        {"onnx": [(1, 100), (2, 200)], "tf": [(1, 50), (2, 80)]},
        title="Scaling",
        x_label="mp",
    )
    assert chart.splitlines()[0] == "Scaling"
    assert "o=onnx" in chart
    assert "x=tf" in chart
    assert "200" in chart
    assert "50" in chart


def test_markers_plotted():
    chart = render_chart({"a": [(0, 0), (1, 1)]})
    assert "o" in chart


def test_log_scale():
    chart = render_chart({"a": [(1, 1), (2, 1000)]}, log_y=True)
    assert "1.0k" in chart
    with pytest.raises(ValueError):
        render_chart({"a": [(1, 0)]}, log_y=True)


def test_flat_series_does_not_divide_by_zero():
    chart = render_chart({"a": [(1, 5), (2, 5)]})
    assert "5" in chart


def test_empty_inputs_rejected():
    with pytest.raises(ValueError):
        render_chart({})
    with pytest.raises(ValueError):
        render_chart({"a": []})


def test_dimensions_respected():
    chart = render_chart({"a": [(0, 0), (10, 10)]}, width=30, height=8)
    body_lines = [line for line in chart.splitlines() if "|" in line]
    assert len(body_lines) == 8
    assert all(len(line.split("|", 1)[1]) == 30 for line in body_lines)
