"""Unit tests for the pre-configured workload scenarios."""

import pytest

from repro.config import ExperimentConfig
from repro.core.scenarios import (
    measure_closed_loop_latency,
    measure_sustainable_throughput,
    run_burst_scenario,
)


def config(**kw):
    kw.setdefault("duration", 1.5)
    return ExperimentConfig(sps="flink", serving="onnx", model="ffnn", **kw)


def test_sustainable_throughput_aggregate():
    aggregate = measure_sustainable_throughput(config(), seeds=(0, 1))
    assert aggregate.runs == 2
    assert 800 < aggregate.mean < 2000
    assert aggregate.std >= 0


def test_closed_loop_latency():
    aggregate, results = measure_closed_loop_latency(
        config(ir=5.0, duration=3.0), seeds=(0,)
    )
    assert len(results) == 1
    assert 0 < aggregate.mean < 0.05


def test_closed_loop_defaults_rate():
    aggregate, __ = measure_closed_loop_latency(config(duration=3.0), seeds=(0,))
    assert aggregate.mean > 0


def test_burst_scenario_recovers():
    # Scaled-down bursts: 1 s bursts every 4 s around a known ST.
    st = measure_sustainable_throughput(config(), seeds=(0,)).mean
    outcome = run_burst_scenario(
        config(bd=1.0, tbb=4.0), sustainable_throughput=st, bursts=2, seed=0
    )
    assert len(outcome.reports) == 2
    assert len(outcome.recovery_times) >= 1
    for recovery in outcome.recovery_times:
        # Recovery is counted from burst start, so it exceeds bd...
        assert recovery > 0.9
        # ...but the 30% drain headroom clears the backlog well within tbb.
        assert recovery < 1.0 + 4.0


def test_burst_peak_latency_exceeds_baseline():
    st = measure_sustainable_throughput(config(), seeds=(0,)).mean
    outcome = run_burst_scenario(
        config(bd=1.0, tbb=4.0), sustainable_throughput=st, bursts=1, seed=0
    )
    report = outcome.reports[0]
    assert report.peak_latency > report.threshold
