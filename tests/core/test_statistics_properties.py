"""Property-based tests pinning statistics against NumPy references."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generator import PeriodicBursts, TraceSchedule
from repro.core.metrics import LatencyStats, percentile
from repro.netsim import binary_payload, json_payload

finite_floats = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(
    sample=st.lists(finite_floats, min_size=1, max_size=200),
    q=st.floats(min_value=0.0, max_value=1.0),
)
def test_percentile_matches_numpy_linear(sample, q):
    ordered = sorted(sample)
    ours = percentile(ordered, q)
    numpy_val = float(np.percentile(sample, q * 100, method="linear"))
    assert ours == pytest_approx(numpy_val)


def pytest_approx(value, rel=1e-9, abs_tol=1e-9):
    import pytest

    return pytest.approx(value, rel=rel, abs=abs_tol)


@given(sample=st.lists(finite_floats, min_size=1, max_size=200))
def test_latency_stats_match_numpy(sample):
    stats = LatencyStats.from_samples(sample)
    assert stats.mean == pytest_approx(float(np.mean(sample)), rel=1e-6)
    assert stats.std == pytest_approx(float(np.std(sample)), rel=1e-6, abs_tol=1e-6)
    assert stats.minimum == min(sample)
    assert stats.maximum == max(sample)
    assert stats.minimum <= stats.p50 <= stats.p95 <= stats.p99 <= stats.maximum


@given(values=st.integers(min_value=0, max_value=10**7))
def test_payload_sizes_monotone_and_consistent(values):
    json = json_payload(values)
    binary = binary_payload(values)
    assert json.nbytes >= binary.nbytes - 200  # json >= binary modulo envelopes
    assert json.decode_cost >= json.encode_cost * 0.99
    bigger = json_payload(values + 1)
    assert bigger.nbytes > json.nbytes


@given(
    low=st.floats(min_value=1, max_value=1e4),
    factor=st.floats(min_value=1.01, max_value=10),
    bd=st.floats(min_value=0.1, max_value=100),
    tbb=st.floats(min_value=0.1, max_value=100),
    cycles=st.floats(min_value=0, max_value=10),
)
@settings(deadline=None)
def test_bursts_rate_is_always_one_of_two_levels(low, factor, bd, tbb, cycles):
    from hypothesis import assume

    schedule = PeriodicBursts(low, low * factor, bd, tbb)
    t = cycles * schedule.cycle
    assert schedule.rate_at(t) in (low, low * factor)
    # Away from float-boundary edges, the enumerated burst windows agree
    # with the modulo-based in_burst predicate.
    phase = t % schedule.cycle
    assume(min(abs(phase - tbb), phase, schedule.cycle - phase) > 1e-6 * max(t, 1))
    in_any_window = any(
        start <= t < end for start, end in schedule.burst_windows(t + schedule.cycle)
    )
    assert in_any_window == schedule.in_burst(t)


@given(
    n_steps=st.integers(min_value=1, max_value=10),
    data=st.data(),
)
@settings(max_examples=50)
def test_trace_schedule_returns_a_defined_step(n_steps, data):
    times = sorted(
        data.draw(
            st.lists(
                st.floats(min_value=0.1, max_value=1000),
                min_size=n_steps,
                max_size=n_steps,
                unique=True,
            )
        )
    )
    steps = tuple(
        (0.0 if i == 0 else times[i - 1], data.draw(finite_floats))
        for i in range(n_steps)
    )
    trace = TraceSchedule(steps=steps)
    t = data.draw(st.floats(min_value=0, max_value=2000))
    assert trace.rate_at(t) in {rate for __, rate in steps}
