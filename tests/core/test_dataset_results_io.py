"""Unit tests for dataset replay and results persistence."""

import numpy as np
import pytest

from repro.config import ExperimentConfig
from repro.core.dataset import Dataset
from repro.core.results_io import (
    load_results,
    result_to_dict,
    save_results,
    save_results_csv,
)
from repro.core.runner import run_experiment
from repro.errors import ConfigError


def test_synthetic_dataset_shapes():
    dataset = Dataset.synthetic(points=100, point_shape=(28, 28), seed=1)
    assert len(dataset) == 100
    assert dataset.point_shape == (28, 28)
    assert dataset.labels is not None
    assert dataset.data.dtype == np.float32


def test_synthetic_is_seeded():
    a = Dataset.synthetic(10, (4,), seed=3)
    b = Dataset.synthetic(10, (4,), seed=3)
    np.testing.assert_array_equal(a.data, b.data)


def test_dataset_validation():
    with pytest.raises(ConfigError):
        Dataset(np.zeros(5))  # 1-D: no point shape
    with pytest.raises(ConfigError):
        Dataset(np.zeros((5, 2)), labels=np.zeros(3))
    with pytest.raises(ConfigError):
        Dataset.synthetic(points=0, point_shape=(4,))


def test_dataset_save_load_round_trip(tmp_path):
    dataset = Dataset.synthetic(20, (8,), seed=0)
    path = str(tmp_path / "data.npz")
    dataset.save(path)
    restored = Dataset.load(path)
    np.testing.assert_array_equal(restored.data, dataset.data)
    np.testing.assert_array_equal(restored.labels, dataset.labels)


def test_dataset_load_rejects_wrong_archive(tmp_path):
    path = str(tmp_path / "bad.npz")
    np.savez(path, other=np.zeros(3))
    with pytest.raises(ConfigError):
        Dataset.load(path)


def test_batches_cycle_through_data():
    dataset = Dataset(np.arange(12, dtype=np.float32).reshape(6, 2))
    batches = dataset.take_batches(count=4, bsz=4)
    assert all(b.shape == (4, 2) for b in batches)
    # 4 batches x 4 points = 16 reads over 6 points: wraps around.
    flat = np.concatenate(batches)[:, 0]
    assert flat[0] == flat[12]  # cycled back to the start


def test_batches_validation():
    dataset = Dataset.synthetic(5, (2,))
    with pytest.raises(ConfigError):
        next(dataset.batches(0))


def small_result():
    return run_experiment(
        ExperimentConfig(sps="flink", serving="onnx", model="ffnn", ir=100.0, duration=1.0)
    )


def test_result_to_dict_round_trips_json(tmp_path):
    result = small_result()
    record = result_to_dict(result)
    assert record["config"]["sps"] == "flink"
    assert record["config"]["workload"] == "open_loop"
    assert record["throughput"] == result.throughput
    path = str(tmp_path / "results.json")
    save_results([result, result], path)
    loaded = load_results(path)
    assert len(loaded) == 2
    assert loaded[0]["completed"] == result.completed


def test_load_results_rejects_non_list(tmp_path):
    path = str(tmp_path / "bad.json")
    with open(path, "w") as handle:
        handle.write("{}")
    with pytest.raises(ValueError):
        load_results(path)


def test_save_results_csv(tmp_path):
    result = small_result()
    path = str(tmp_path / "results.csv")
    save_results_csv([result], path)
    with open(path) as handle:
        lines = handle.read().splitlines()
    assert len(lines) == 2
    assert "config.sps" in lines[0]
    assert "throughput" in lines[0]
    with pytest.raises(ValueError):
        save_results_csv([], str(tmp_path / "empty.csv"))
