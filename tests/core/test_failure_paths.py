"""Failure-injection tests: oversized messages, drained runs, bad input."""

import pytest

from repro.broker import BrokerCluster, Producer
from repro.config import ExperimentConfig, WorkloadKind
from repro.core.runner import run_experiment
from repro.errors import MessageTooLargeError
from repro.simul import Environment


def test_oversized_batch_rejected_by_broker():
    """ResNet50 inputs at a large bsz exceed the 50 MB max.request.size
    (the paper had to raise the limit for its latency experiments; our
    broker enforces the configured ceiling)."""
    config = ExperimentConfig(
        sps="flink",
        serving="onnx",
        model="resnet50",
        workload=WorkloadKind.CLOSED_LOOP,
        ir=0.5,
        bsz=128,  # 128 x 224x224x3 x 4 B ~ 77 MB JSON > 50 MB
        duration=5.0,
    )
    with pytest.raises(MessageTooLargeError):
        run_experiment(config)


def test_oversized_batch_fits_standalone():
    """The standalone (no-kafka) pipeline has no broker limit to hit:
    the same model/batch shape that trips max.request.size is accepted
    (only a smaller batch finishes within a sane window, so we score
    bsz=8 here; the 77 MB payload case is covered by the broker test)."""
    config = ExperimentConfig(
        sps="flink",
        serving="onnx",
        model="resnet50",
        workload=WorkloadKind.CLOSED_LOOP,
        ir=0.2,
        bsz=8,
        duration=20.0,
        use_broker=False,
    )
    result = run_experiment(config)
    assert result.completed > 0


def test_custom_broker_limit():
    env = Environment()
    cluster = BrokerCluster(env, max_request_bytes=1000)
    cluster.create_topic("t", 1)
    producer = Producer(env, cluster)

    def send():
        yield from producer.send("t", "x", nbytes=2000)

    event = env.process(send())
    with pytest.raises(MessageTooLargeError):
        env.run(until=event)


def test_zero_completions_yield_nan_latency_not_crash():
    """A run too short for anything to finish reports cleanly."""
    config = ExperimentConfig(
        sps="flink",
        serving="onnx",
        model="resnet50",  # ~400 ms per event; nothing finishes in 0.2 s
        ir=1.0,
        duration=0.2,
    )
    result = run_experiment(config)
    assert result.completed == 0
    assert result.throughput == 0.0
    assert result.latency.count == 0


def test_rate_far_above_capacity_is_stable():
    """Extreme overload: the pipeline backlogs in the broker but the
    simulation stays consistent (no loss, throughput = capacity)."""
    config = ExperimentConfig(
        sps="flink", serving="onnx", model="ffnn", ir=None, duration=2.0
    )
    result = run_experiment(config)
    assert result.completed <= result.produced
    assert 900 < result.throughput < 1600
