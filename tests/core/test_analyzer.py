"""Unit tests for the metrics analyzer (recovery time, aggregates)."""

import pytest

from repro.core.analyzer import (
    Aggregate,
    aggregate_latency,
    baseline_latency,
    recovery_time,
)
from repro.core.metrics import LatencyStats


def make_series(spike_at=10.0, spike_len=5.0, base=0.01, spike=0.5, step=0.1):
    """A flat latency series with one rectangular spike."""
    series = []
    t = 0.0
    while t < 40.0:
        lat = spike if spike_at <= t < spike_at + spike_len else base
        series.append((t, lat))
        t += step
    return series


def test_baseline_latency_window():
    series = make_series()
    assert baseline_latency(series, until=10.0) == pytest.approx(0.01)
    # Full-history baseline after the spike is polluted...
    assert baseline_latency(series, until=20.0) > 0.02
    # ...a windowed baseline is not.
    assert baseline_latency(series, until=20.0, window=3.0) == pytest.approx(0.01)


def test_baseline_requires_samples():
    with pytest.raises(ValueError):
        baseline_latency([], until=5.0)


def test_recovery_detected_after_spike():
    series = make_series(spike_at=10.0, spike_len=5.0)
    report = recovery_time(series, burst_start=10.0, burst_end=15.0, horizon=30.0)
    assert report.recovery_time == pytest.approx(5.0, abs=0.2)
    assert report.peak_latency == 0.5


def test_no_recovery_reported_when_latency_stays_high():
    series = make_series(spike_at=10.0, spike_len=25.0)
    report = recovery_time(series, burst_start=10.0, burst_end=15.0, horizon=30.0)
    assert report.recovery_time is None


def test_recovery_ignores_transient_dips():
    """A single low sample inside the spike must not count as recovered."""
    series = make_series(spike_at=10.0, spike_len=8.0)
    # Inject one low sample mid-spike.
    series = [
        (t, 0.01 if abs(t - 13.0) < 0.01 else lat) for t, lat in series
    ]
    report = recovery_time(
        series, burst_start=10.0, burst_end=18.0, horizon=35.0, dwell=1.0
    )
    assert report.recovery_time == pytest.approx(8.0, abs=0.3)


def test_recovery_validation():
    with pytest.raises(ValueError):
        recovery_time(make_series(), burst_start=5.0, burst_end=5.0, horizon=10.0)


def test_aggregate():
    aggregate = Aggregate.of([1.0, 3.0])
    assert aggregate.mean == 2.0
    assert aggregate.std == 1.0
    assert aggregate.runs == 2
    with pytest.raises(ValueError):
        Aggregate.of([])


def test_aggregate_latency_skips_empty():
    full = LatencyStats.from_samples([1.0, 2.0])
    empty = LatencyStats.from_samples([])
    aggregate = aggregate_latency([full, empty])
    assert aggregate.runs == 1
    assert aggregate.mean == 1.5
