"""Unit tests for rate schedules, batch factory, and input producers."""

import pytest

from repro.broker import BrokerCluster, Consumer
from repro.core.generator import BatchFactory, ConstantRate, PeriodicBursts
from repro.core.producer import PacedProducer, SaturatingProducer
from repro.errors import ConfigError
from repro.simul import Environment
from repro.sps.gateways import DirectInput


def test_constant_rate():
    schedule = ConstantRate(100.0)
    assert schedule.rate_at(0) == 100.0
    assert schedule.rate_at(1e6) == 100.0
    with pytest.raises(ConfigError):
        ConstantRate(0)


def test_periodic_bursts_schedule():
    schedule = PeriodicBursts(low_rate=70, high_rate=110, burst_duration=30, time_between_bursts=120)
    assert schedule.cycle == 150
    assert schedule.rate_at(0) == 70
    assert not schedule.in_burst(119)
    assert schedule.in_burst(120)
    assert schedule.in_burst(149)
    assert not schedule.in_burst(150)
    assert schedule.rate_at(130) == 110


def test_burst_windows():
    schedule = PeriodicBursts(70, 110, burst_duration=30, time_between_bursts=120)
    assert schedule.burst_windows(400) == [(120, 150), (270, 300)]


def test_burst_validation():
    with pytest.raises(ConfigError):
        PeriodicBursts(0, 1, 1, 1)
    with pytest.raises(ConfigError):
        PeriodicBursts(1, 1, 0, 1)


def test_batch_factory_ids_and_shape():
    factory = BatchFactory(points=4, point_shape=(28, 28))
    a = factory.make(created_at=1.0)
    b = factory.make(created_at=2.0)
    assert (a.batch_id, b.batch_id) == (0, 1)
    assert a.points == 4
    assert a.values_per_point == 784
    assert a.input_values == 4 * 784
    with pytest.raises(ConfigError):
        BatchFactory(points=0, point_shape=(4,))
    with pytest.raises(ConfigError):
        BatchFactory(points=1, point_shape=())


def test_paced_producer_hits_rate():
    env = Environment()
    cluster = BrokerCluster(env)
    cluster.create_topic("in", 4)
    factory = BatchFactory(1, (28, 28))
    producer = PacedProducer(
        env, factory, cluster=cluster, topic="in", schedule=ConstantRate(100.0)
    )
    producer.start()
    env.run(until=2.0)
    # ~100 events/s for 2 s; allow delivery tail slack.
    assert 190 <= producer.batches_produced <= 201
    assert cluster.topic("in").total_records() == producer.batches_produced


def test_paced_producer_start_timestamp_before_append():
    env = Environment()
    cluster = BrokerCluster(env)
    cluster.create_topic("in", 1)
    factory = BatchFactory(1, (28, 28))
    producer = PacedProducer(
        env, factory, cluster=cluster, topic="in", schedule=ConstantRate(10.0)
    )
    producer.start()
    env.run(until=0.5)
    consumer = Consumer(env, cluster, "in")

    def drain(out):
        records = yield from consumer.poll()
        out.extend(records)

    out = []
    env.process(drain(out))
    env.run(until=1.0)
    for record in out:
        assert record.timestamp < record.log_append_time


def test_saturating_producer_keeps_backlog():
    env = Environment()
    cluster = BrokerCluster(env)
    cluster.create_topic("in", 4)
    factory = BatchFactory(1, (28, 28))
    done = {"count": 0}
    producer = SaturatingProducer(
        env,
        factory,
        cluster=cluster,
        topic="in",
        completed=lambda: done["count"],
        backlog_target=50,
    )
    producer.start()
    env.run(until=0.5)
    assert producer.batches_spawned == 50  # filled once, nothing completed
    done["count"] = 30
    env.run(until=1.0)
    assert producer.batches_spawned == 80  # topped back up


def test_saturating_producer_validation():
    env = Environment()
    factory = BatchFactory(1, (4,))
    with pytest.raises(ValueError):
        SaturatingProducer(
            env, factory, direct=DirectInput(env), completed=lambda: 0, backlog_target=0
        )


def test_producer_requires_exactly_one_target():
    env = Environment()
    factory = BatchFactory(1, (4,))
    with pytest.raises(ValueError):
        PacedProducer(env, factory, schedule=ConstantRate(1.0))  # neither


def test_direct_mode_producer():
    env = Environment()
    direct = DirectInput(env)
    source = direct.make_source(0, 1)
    factory = BatchFactory(1, (4,))
    producer = PacedProducer(
        env, factory, direct=direct, schedule=ConstantRate(100.0)
    )
    producer.start()
    env.run(until=0.1)
    assert producer.batches_produced >= 9
    assert source.lag() == producer.batches_produced
