"""Unit tests for reporting helpers and parameter sweeps."""

import pytest

from repro.config import ExperimentConfig
from repro.core.report import format_ms, format_rate, format_table, ratio_note
from repro.core.sweep import sweep, validate_override_fields
from repro.errors import ConfigError


def test_format_table_alignment():
    text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_format_rate():
    assert format_rate(1373.07) == "1,373"
    assert format_rate(2.85) == "2.85"


def test_format_ms():
    assert format_ms(0.19165) == "191.65"


def test_ratio_note():
    assert ratio_note(2.0, 1.0) == "2.00x"
    assert ratio_note(1.0, 0.0) == "n/a"


def test_sweep_runs_grid():
    base = ExperimentConfig(sps="flink", serving="onnx", model="ffnn", ir=None, duration=1.0)
    seen = []
    points = sweep(
        base,
        grid={"mp": [1, 2]},
        seeds=(0,),
        hook=lambda overrides, results: seen.append(overrides["mp"]),
    )
    assert seen == [1, 2]
    assert len(points) == 2
    assert points[1].throughput.mean > points[0].throughput.mean
    assert points[0].overrides == {"mp": 1}
    assert points[0].mean_latency.mean > 0


def test_sweep_empty_grid_rejected():
    base = ExperimentConfig()
    with pytest.raises(ValueError):
        sweep(base, grid={})


def test_sweep_unknown_field_rejected_up_front():
    """A typo'd grid key fails immediately with a helpful message, not
    deep inside dataclasses.replace on the first grid point."""
    base = ExperimentConfig()
    with pytest.raises(ConfigError) as excinfo:
        sweep(base, grid={"batch_size": [1, 2]})
    message = str(excinfo.value)
    assert "unknown sweep field(s) 'batch_size'" in message
    # The message names the valid fields so the fix is obvious.
    assert "bsz" in message and "mp" in message


def test_validate_override_fields_lists_every_offender():
    with pytest.raises(ConfigError, match="'nope'.*'typo'"):
        validate_override_fields(["typo", "mp", "nope"])
    validate_override_fields(["mp", "bsz"])  # valid names pass silently


def test_sweep_parallel_and_cached_match_serial(tmp_path):
    from repro.matrix import ResultCache

    base = ExperimentConfig(
        sps="flink", serving="onnx", model="ffnn", ir=50.0, duration=0.5
    )
    grid = {"mp": [1, 2]}
    serial = sweep(base, grid, seeds=(0,))
    parallel = sweep(base, grid, seeds=(0,), jobs=2)
    cached = sweep(
        base, grid, seeds=(0,), cache=ResultCache(tmp_path / "cache")
    )
    replayed = sweep(
        base, grid, seeds=(0,), cache=ResultCache(tmp_path / "cache")
    )
    for other in (parallel, cached, replayed):
        assert [p.overrides for p in other] == [p.overrides for p in serial]
        assert [p.results for p in other] == [p.results for p in serial]
