"""Golden-result regression suite for the paper-facing numbers.

Runs a small representative grid — all four stream processors crossed
with an embedded and an external serving backend, fixed seed — through
the matrix engine and diffs every aggregate *exactly* against the
committed expectations in ``tests/golden/matrix_golden.json``. Any
change to the simulator that moves a paper-facing number fails here
first; a deliberate change refreshes the file with::

    PYTHONPATH=src python -m pytest tests/matrix/test_golden.py --update-golden
"""

import json
import pathlib

import pytest

from repro.config import SPS_NAMES, ExperimentConfig
from repro.matrix import run_matrix

GOLDEN_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "golden"
    / "matrix_golden.json"
)

#: The golden grid: every engine x embedded (onnx) + external
#: (tf_serving; substituted by Ray Serve on Ray, as in the paper).
BASE = ExperimentConfig(
    sps="flink", serving="onnx", model="ffnn", ir=20.0, duration=4.0
)
GRID = {"sps": list(SPS_NAMES), "serving": ["onnx", "tf_serving"]}
SEEDS = (0,)


def _run_record(record: dict, seed: int) -> dict:
    """The golden subset of one run's record: every scalar aggregate."""
    return {
        "seed": seed,
        "throughput": record["throughput"],
        "latency": record["latency"],
        "completed": record["completed"],
        "produced": record["produced"],
        "duplicates": record["duplicates"],
        "inference_requests": record["inference_requests"],
    }


def measure() -> dict:
    report = run_matrix(BASE, GRID, seeds=SEEDS, jobs=1, cache=None)
    points = []
    for index, point in enumerate(report.points):
        runs = [
            _run_record(report.records[index * len(SEEDS) + offset], seed)
            for offset, seed in enumerate(SEEDS)
        ]
        points.append({"overrides": point.overrides, "runs": runs})
    return {
        "base": BASE.canonical_dict(),
        "grid": {key: list(GRID[key]) for key in sorted(GRID)},
        "seeds": list(SEEDS),
        "points": points,
    }


def canonical_text(doc: dict) -> str:
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def test_golden_matrix(update_golden):
    current = measure()
    if update_golden:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(canonical_text(current))
        pytest.skip(f"golden results refreshed at {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        f"missing {GOLDEN_PATH}; generate it with pytest --update-golden"
    )
    stored = json.loads(GOLDEN_PATH.read_text())
    assert stored["base"] == current["base"], (
        "golden base config drifted; refresh with --update-golden"
    )
    assert stored["grid"] == current["grid"]
    assert stored["seeds"] == current["seeds"]
    for expected, actual in zip(stored["points"], current["points"]):
        label = expected["overrides"]
        assert actual["overrides"] == expected["overrides"]
        assert actual["runs"] == expected["runs"], (
            f"aggregates changed for {label}: expected {expected['runs']}, "
            f"got {actual['runs']} — if intentional, re-bless with "
            "--update-golden"
        )
    # Belt and braces: the whole documents must match byte for byte.
    assert canonical_text(stored) == canonical_text(current)
