"""Property tests for the content-addressed cache key.

The key must collide exactly when it should: canonically-equal
(config, seed) pairs share a key; any single field change, seed change,
or code-fingerprint change produces a different key (and a fingerprint
change invalidates stored entries rather than serving them).
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ExperimentConfig, config_from_dict
from repro.errors import ConfigError
from repro.matrix.cache import ResultCache

FINGERPRINT = "test-fingerprint"


def key_of(config, seed, fingerprint=FINGERPRINT):
    # The cache never touches disk for keying, so a dummy root is fine.
    return ResultCache("unused-cache-root", fingerprint).key(config, seed)


#: Field menu for single-field mutations: always-valid distinct values.
MUTATIONS = {
    "sps": ("flink", "kafka_streams", "spark_ss", "ray"),
    "serving": ("onnx", "dl4j", "savedmodel"),
    "model": ("ffnn", "mobilenet", "resnet50"),
    "bsz": (1, 2, 16, 64),
    "mp": (1, 2, 4, 8),
    "ir": (None, 10.0, 50.0, 200.0),
    "duration": (1.0, 2.5, 10.0),
    "warmup_fraction": (0.0, 0.25, 0.5),
    "partitions": (1, 8, 32),
    "gpu": (False, True),
    "use_broker": (True, False),
}

config_strategy = st.builds(
    ExperimentConfig,
    bsz=st.sampled_from(MUTATIONS["bsz"]),
    mp=st.sampled_from(MUTATIONS["mp"]),
    ir=st.sampled_from(MUTATIONS["ir"]),
    duration=st.sampled_from(MUTATIONS["duration"]),
    serving=st.sampled_from(MUTATIONS["serving"]),
    sps=st.sampled_from(MUTATIONS["sps"]),
    partitions=st.sampled_from(MUTATIONS["partitions"]),
)


@settings(max_examples=40, deadline=None)
@given(config=config_strategy, seed=st.integers(0, 1000))
def test_equal_configs_collide(config, seed):
    clone = config.replace()
    assert clone == config
    assert key_of(clone, seed) == key_of(config, seed)


@settings(max_examples=40, deadline=None)
@given(
    config=config_strategy,
    seed=st.integers(0, 1000),
    config_seed=st.integers(0, 1000),
)
def test_config_seed_field_is_normalized_away(config, seed, config_seed):
    """The run seed overrides config.seed, so only the run seed keys."""
    assert key_of(config.replace(seed=config_seed), seed) == key_of(
        config, seed
    )


@settings(max_examples=60, deadline=None)
@given(
    field=st.sampled_from(sorted(MUTATIONS)),
    data=st.data(),
    seed=st.integers(0, 1000),
)
def test_any_single_field_change_changes_key(field, data, seed):
    values = data.draw(
        st.lists(
            st.sampled_from(MUTATIONS[field]),
            min_size=2,
            max_size=2,
            unique=True,
        )
    )
    base = ExperimentConfig()
    first = base.replace(**{field: values[0]})
    second = base.replace(**{field: values[1]})
    assert key_of(first, seed) != key_of(second, seed)


@settings(max_examples=40, deadline=None)
@given(
    config=config_strategy,
    seeds=st.lists(
        st.integers(0, 10_000), min_size=2, max_size=2, unique=True
    ),
)
def test_seed_change_changes_key(config, seeds):
    assert key_of(config, seeds[0]) != key_of(config, seeds[1])


@settings(max_examples=40, deadline=None)
@given(config=config_strategy, seed=st.integers(0, 1000))
def test_fingerprint_change_changes_key(config, seed):
    assert key_of(config, seed, "fp-a") != key_of(config, seed, "fp-b")


@settings(max_examples=30, deadline=None)
@given(config=config_strategy, seed=st.integers(0, 1000))
def test_canonical_round_trip_preserves_key(config, seed):
    rebuilt = config_from_dict(config.canonical_dict())
    assert rebuilt.canonical_json() == config.canonical_json()
    assert key_of(rebuilt, seed) == key_of(config, seed)


def test_sequence_type_is_canonicalized():
    """isz as list vs tuple is the same experiment — same slot."""
    as_tuple = ExperimentConfig(isz=(4,))
    as_list = ExperimentConfig(isz=[4])
    assert key_of(as_tuple, 0) == key_of(as_list, 0)


def test_fingerprint_change_invalidates_stored_entries(tmp_path):
    config = ExperimentConfig()
    record = {"throughput": 1.0}
    before = ResultCache(tmp_path, fingerprint="fp-a")
    before.put(config, 0, record)
    assert before.get(config, 0) == record
    assert before.stats.hits == 1

    after = ResultCache(tmp_path, fingerprint="fp-b")
    assert after.get(config, 0) is None
    assert after.stats.invalidations == 1
    assert after.stats.misses == 0

    # Re-running under the new fingerprint overwrites the stale slot.
    after.put(config, 0, record)
    assert after.get(config, 0) == record
    assert len(after) == 1


def test_corrupt_slot_counts_as_invalidation(tmp_path):
    config = ExperimentConfig()
    cache = ResultCache(tmp_path, fingerprint="fp")
    cache.put(config, 0, {"throughput": 1.0})
    [slot] = cache.entries()
    slot.write_text("{truncated")
    fresh = ResultCache(tmp_path, fingerprint="fp")
    assert fresh.get(config, 0) is None
    assert fresh.stats.invalidations == 1


def test_config_from_dict_rejects_unknown_fields():
    record = ExperimentConfig().canonical_dict()
    record["not_a_field"] = 1
    with pytest.raises(ConfigError, match="not_a_field"):
        config_from_dict(record)


def test_canonical_dict_is_complete():
    """Every config field participates in the cache key."""
    canonical = ExperimentConfig().canonical_dict()
    fields = {field.name for field in dataclasses.fields(ExperimentConfig)}
    assert set(canonical) == fields
