"""Unit tests for the matrix engine and its presets."""

import dataclasses

import pytest

from repro.config import ExperimentConfig
from repro.core.results_io import result_from_record, result_record
from repro.core.runner import run_experiment, run_replicated
from repro.errors import ConfigError
from repro.matrix import (
    ResultCache,
    grid_points,
    preset,
    preset_names,
    run_matrix,
    run_replicated_cached,
)

TINY = ExperimentConfig(
    sps="flink", serving="onnx", model="ffnn", ir=50.0, duration=0.5
)


def test_grid_points_order_is_sorted_cartesian():
    points = grid_points({"mp": (1, 2), "bsz": (4, 8)})
    assert points == [
        {"bsz": 4, "mp": 1},
        {"bsz": 4, "mp": 2},
        {"bsz": 8, "mp": 1},
        {"bsz": 8, "mp": 2},
    ]
    assert grid_points({}) == [{}]


def test_unknown_grid_field_rejected_up_front():
    with pytest.raises(ConfigError, match="'batch_size'"):
        run_matrix(TINY, {"batch_size": (1, 2)})


def test_empty_seeds_rejected():
    with pytest.raises(ConfigError, match="seed"):
        run_matrix(TINY, {"mp": (1,)}, seeds=())


def test_bad_jobs_rejected():
    with pytest.raises(ConfigError, match="jobs"):
        run_matrix(TINY, {"mp": (1,)}, jobs=0)


def test_empty_grid_is_single_point():
    report = run_matrix(TINY, {}, seeds=(0,))
    assert len(report.points) == 1
    assert report.points[0].overrides == {}
    assert report.tasks == 1
    assert report.executed == 1


def test_run_replicated_cached_matches_plain_runner():
    plain = run_replicated(TINY, seeds=(0, 1))
    engine = run_replicated_cached(TINY, seeds=(0, 1))
    assert engine == plain


def test_run_replicated_with_cache_delegates(tmp_path):
    cache = ResultCache(tmp_path)
    first = run_replicated(TINY, seeds=(0,), cache=cache)
    again = run_replicated(TINY, seeds=(0,), cache=ResultCache(tmp_path))
    assert first == again
    assert cache.stats.stores == 1


def test_result_record_round_trip_is_lossless():
    result = run_experiment(TINY)
    record = result_record(result, seed=0)
    assert record["seed"] == 0
    rebuilt = result_from_record(record)
    assert rebuilt == result


def test_record_seed_reflects_run_seed():
    report = run_matrix(TINY, {}, seeds=(7,))
    assert report.records[0]["seed"] == 7
    # The config block keeps the base seed, exactly like the serial
    # sweep's JSON export always did.
    assert report.records[0]["config"]["seed"] == TINY.seed


def test_report_results_flatten_in_task_order():
    report = run_matrix(TINY, {"mp": (1, 2)}, seeds=(0, 1))
    assert len(report.results) == 4
    assert [r.config.mp for r in report.results] == [1, 1, 2, 2]


def test_presets_build_valid_configs():
    assert preset_names() == (
        "burst-recovery", "capacity-search", "latency", "scalability",
        "scaleout", "smoke", "throughput",
    )
    for name in preset_names():
        spec = preset(name)
        configs = spec.configs()  # every grid point validates on build
        assert configs, name
        assert spec.task_count == len(configs) * len(spec.seeds)
        assert spec.description


def test_unknown_preset_rejected():
    with pytest.raises(ConfigError, match="unknown matrix preset"):
        preset("nope")


def test_smoke_preset_runs_quickly():
    spec = preset("smoke")
    report = run_matrix(spec.base, spec.grid, seeds=spec.seeds)
    assert report.executed == spec.task_count
    for point in report.points:
        assert point.results[0].completed > 0


def test_cache_roundtrip_survives_fault_config(tmp_path):
    """Configs with nested fault/resilience dataclasses cache cleanly."""
    from repro.faults import FaultPlan, ResiliencePolicy, ServerCrash

    config = TINY.replace(
        serving="tf_serving",
        duration=2.0,
        fault_plan=FaultPlan(
            server_crashes=(ServerCrash(at=1.0, downtime=0.2),)
        ),
        resilience=ResiliencePolicy(retries=2),
    )
    cold = run_matrix(config, {}, seeds=(0,), cache=ResultCache(tmp_path))
    warm = run_matrix(
        config, {}, seeds=(0,), cache=ResultCache(tmp_path)
    )
    assert warm.executed == 0
    assert warm.records == cold.records
    replayed = warm.points[0].results[0]
    assert replayed.config == config
    assert dataclasses.asdict(replayed.faults) == dataclasses.asdict(
        cold.points[0].results[0].faults
    )
