"""Equivalence guarantees of the matrix engine.

``jobs=1`` and ``jobs=4`` must produce byte-identical exports for the
same grid, and a cache-hit replay must be indistinguishable from a cold
run — these are the engine's core contracts (deterministic merge plus a
lossless serialization round-trip).
"""

from repro.config import ExperimentConfig
from repro.core.results_io import (
    save_records_jsonl,
    save_results,
    save_results_csv,
)
from repro.matrix import ResultCache, run_matrix

BASE = ExperimentConfig(
    sps="flink", serving="onnx", model="ffnn", ir=50.0, duration=1.0
)
GRID = {"mp": (1, 2)}
SEEDS = (0, 1)


def _export_bytes(report, directory, tag):
    jsonl = directory / f"{tag}.jsonl"
    full = directory / f"{tag}.json"
    csv = directory / f"{tag}.csv"
    save_records_jsonl(report.records, str(jsonl))
    save_results(report.results, str(full))
    save_results_csv(report.results, str(csv))
    return jsonl.read_bytes(), full.read_bytes(), csv.read_bytes()


def test_parallel_matches_serial_byte_for_byte(tmp_path):
    serial = run_matrix(BASE, GRID, seeds=SEEDS, jobs=1)
    parallel = run_matrix(BASE, GRID, seeds=SEEDS, jobs=4)
    assert serial.records == parallel.records
    assert [p.overrides for p in serial.points] == [
        p.overrides for p in parallel.points
    ]
    assert [p.results for p in serial.points] == [
        p.results for p in parallel.points
    ]
    assert _export_bytes(serial, tmp_path, "serial") == _export_bytes(
        parallel, tmp_path, "parallel"
    )


def test_parallel_hook_order_is_grid_order():
    orders = []
    for jobs in (1, 4):
        seen = []
        run_matrix(
            BASE,
            GRID,
            seeds=(0,),
            jobs=jobs,
            hook=lambda overrides, results: seen.append(overrides["mp"]),
        )
        orders.append(seen)
    assert orders[0] == orders[1] == [1, 2]


def test_cache_replay_identical_to_cold_run(tmp_path):
    cache_dir = tmp_path / "cache"
    cold = run_matrix(
        BASE, GRID, seeds=SEEDS, jobs=1, cache=ResultCache(cache_dir)
    )
    assert cold.executed == len(SEEDS) * 2

    warm_cache = ResultCache(cache_dir)
    warm = run_matrix(BASE, GRID, seeds=SEEDS, jobs=1, cache=warm_cache)
    assert warm.executed == 0
    assert warm_cache.stats.hits == len(SEEDS) * 2
    assert warm_cache.stats.misses == 0
    assert warm.records == cold.records
    assert [p.results for p in warm.points] == [p.results for p in cold.points]
    assert _export_bytes(cold, tmp_path, "cold") == _export_bytes(
        warm, tmp_path, "warm"
    )


def test_interrupted_sweep_resumes_incrementally(tmp_path):
    """Growing the grid re-executes only the new points (resumability)."""
    cache_dir = tmp_path / "cache"
    first = run_matrix(
        BASE, {"mp": (1,)}, seeds=SEEDS, jobs=1, cache=ResultCache(cache_dir)
    )
    assert first.executed == len(SEEDS)

    resumed_cache = ResultCache(cache_dir)
    resumed = run_matrix(
        BASE, GRID, seeds=SEEDS, jobs=1, cache=resumed_cache
    )
    assert resumed.executed == len(SEEDS)  # only the mp=2 point ran
    assert resumed_cache.stats.hits == len(SEEDS)
    assert resumed_cache.stats.misses == len(SEEDS)

    # And the merged outcome equals a never-interrupted cold run.
    reference = run_matrix(BASE, GRID, seeds=SEEDS, jobs=1)
    assert resumed.records == reference.records
