"""Public-API surface checks: imports, __all__, and version metadata."""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.calibration",
    "repro.config",
    "repro.errors",
    "repro.simul",
    "repro.netsim",
    "repro.broker",
    "repro.nn",
    "repro.nn.zoo",
    "repro.nn.formats",
    "repro.nn.gnn",
    "repro.serving",
    "repro.serving.state",
    "repro.serving.embedded",
    "repro.serving.external",
    "repro.serving.external.autoscaler",
    "repro.serving.external.batching",
    "repro.serving.external.multi_model",
    "repro.sps",
    "repro.sps.gateways",
    "repro.sps.flink.fault_tolerance",
    "repro.faults",
    "repro.faults.plan",
    "repro.faults.summary",
    "repro.faults.resilience",
    "repro.faults.injectors",
    "repro.faults.recovery",
    "repro.faults.report",
    "repro.core",
    "repro.core.runner",
    "repro.core.sweep",
    "repro.matrix",
    "repro.matrix.engine",
    "repro.matrix.cache",
    "repro.matrix.fingerprint",
    "repro.matrix.presets",
    "repro.store",
    "repro.store.db",
    "repro.store.migrations",
    "repro.store.record",
    "repro.store.queries",
    "repro.store.report",
    "repro.store.importers",
    "repro.core.scenarios",
    "repro.core.analyzer",
    "repro.core.dataset",
    "repro.core.results_io",
    "repro.core.validation",
    "repro.core.probe",
    "repro.core.ascii_chart",
    "repro.analysis",
    "repro.analysis.core",
    "repro.analysis.pragmas",
    "repro.analysis.rules",
    "repro.analysis.report",
    "repro.analysis.sanitizer",
    "repro.analysis.determinism",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports_cleanly(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} has no module docstring"


@pytest.mark.parametrize(
    "module_name",
    ["repro", "repro.simul", "repro.netsim", "repro.broker", "repro.nn",
     "repro.nn.zoo", "repro.nn.formats", "repro.serving", "repro.sps",
     "repro.core", "repro.store"],
)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in module.__all__:
        assert getattr(module, name) is not None, f"{module_name}.{name}"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_import_order_is_cycle_free():
    """Importing the engine layer before the framework layer must work
    (regression for the repro.sps <-> repro.core import cycle)."""
    import subprocess
    import sys

    code = "import repro.sps; import repro.core; import repro.nn; print('ok')"
    result = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "ok"


def test_top_level_lazy_exports():
    import repro

    assert repro.ExperimentConfig is not None
    assert repro.run_experiment is not None
    with pytest.raises(AttributeError):
        __ = repro.not_a_thing
    with pytest.raises(AttributeError):
        __ = importlib.import_module("repro.core").not_a_thing
