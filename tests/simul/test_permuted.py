"""PermutedScheduler, kernel_overrides scoping, and abandoned conditions."""

import pytest

from repro.simul.core import Environment, kernel_overrides
from repro.simul.events import NORMAL, URGENT
from repro.simul.process import Interrupt
from repro.simul.scheduler import (
    CalendarScheduler,
    HeapScheduler,
    PermutedScheduler,
    SCHEDULERS,
)


def _tie_entries(n, time=1.0, priority=NORMAL):
    return [(time, priority, seq, f"e{seq}") for seq in range(n)]


def _pop_all(scheduler):
    out = []
    while len(scheduler):
        out.append(scheduler.pop())
    return out


# -- permutation mechanics ---------------------------------------------------


def test_permuted_preserves_cross_class_order():
    sched = PermutedScheduler(CalendarScheduler(), seed=1)
    entries = (
        _tie_entries(4, time=1.0, priority=URGENT)
        + _tie_entries(4, time=1.0, priority=NORMAL)
        + _tie_entries(3, time=2.0)
    )
    for entry in entries:
        sched.push(entry, 0.0)
    popped = _pop_all(sched)
    keys = [(e[0], e[1]) for e in popped]
    assert keys == sorted(keys)  # (time, priority) order is inviolable


def test_permuted_shuffles_within_tie_class():
    """Across a handful of seeds, at least one must deviate from
    insertion order — otherwise the harness proves nothing."""
    orders = set()
    for seed in range(1, 6):
        sched = PermutedScheduler(CalendarScheduler(), seed=seed)
        for entry in _tie_entries(8):
            sched.push(entry, 0.0)
        orders.add(tuple(e[2] for e in _pop_all(sched)))
    assert any(order != tuple(range(8)) for order in orders)


def test_permuted_deterministic_for_fixed_seed():
    def run():
        sched = PermutedScheduler(CalendarScheduler(), seed=7)
        for entry in _tie_entries(10):
            sched.push(entry, 0.0)
        return [e[2] for e in _pop_all(sched)]

    assert run() == run()


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_permuted_identical_across_backends(seed):
    """The perturbed pop sequence is a pure function of (push trace,
    seed) — the wrapped backend must not leak through."""

    def run(base_cls):
        sched = PermutedScheduler(base_cls(), seed=seed)
        entries = _tie_entries(6, 1.0) + _tie_entries(6, 2.0) + [
            (1.0, URGENT, 100, "u")
        ]
        for entry in entries:
            sched.push(entry, 0.0)
        return [e[2] for e in _pop_all(sched)]

    assert run(CalendarScheduler) == run(HeapScheduler)


def test_permuted_mid_tick_push_joins_live_pool():
    """An entry pushed at the draining timestamp is poppable this tick
    (causality allows it: the base scheduler would surface it too)."""
    sched = PermutedScheduler(HeapScheduler(), seed=1)
    for entry in _tie_entries(3, time=1.0):
        sched.push(entry, 0.0)
    first = sched.pop()  # drains the t=1 tick into pools
    sched.push((1.0, NORMAL, 50, "late"), 1.0)
    rest = _pop_all(sched)
    assert first[0] == 1.0
    assert {e[2] for e in rest} == ({0, 1, 2, 50} - {first[2]})
    assert all(e[0] == 1.0 for e in rest)


def test_permuted_empty_pop_raises():
    sched = PermutedScheduler(CalendarScheduler(), seed=1)
    with pytest.raises(IndexError):
        sched.pop()


def test_permuted_len_counts_pooled_entries():
    sched = PermutedScheduler(CalendarScheduler(), seed=1)
    for entry in _tie_entries(4):
        sched.push(entry, 0.0)
    assert len(sched) == 4
    sched.pop()
    assert len(sched) == 3  # 3 pooled, 0 in base


# -- kernel_overrides --------------------------------------------------------


def test_kernel_overrides_forces_backend_and_restores():
    with kernel_overrides(scheduler="heap"):
        assert Environment().scheduler == "heap"
    assert Environment().scheduler == "calendar"


def test_kernel_overrides_nesting_restores_outer():
    with kernel_overrides(scheduler="heap"):
        with kernel_overrides(scheduler="calendar"):
            assert Environment().scheduler == "calendar"
        assert Environment().scheduler == "heap"


def test_kernel_overrides_perturbed_run_preserves_order_free_results():
    """An order-free workload must land on identical state under any
    permutation seed — the harness's soundness direction."""

    def run(seed=None):
        with kernel_overrides(perturb_seed=seed):
            env = Environment()
            done = []

            def worker(k):
                yield env.timeout(1.0)
                yield env.timeout(0.5)
                done.append((env.now, k))

            for k in range(5):
                env.process(worker(k))
            env.run(until=3.0)
        return sorted(done)

    baseline = run(None)
    assert baseline and all(run(seed) == baseline for seed in (1, 2, 3))


def test_kernel_overrides_tracker_receives_hooks():
    calls = []

    class Probe:
        def attach(self, env):
            calls.append("attach")

        def on_schedule(self, seq, time, priority):
            calls.append("schedule")

        def on_pop(self, entry):
            calls.append("pop")

        def on_state(self, obj, kind, mode):
            calls.append("state")

    with kernel_overrides(tracker=Probe()):
        env = Environment()

        def proc():
            yield env.timeout(1.0)

        env.process(proc())
        env.run(until=2.0)
    assert "attach" in calls
    assert "schedule" in calls
    assert "pop" in calls


# -- abandoned-condition regression -----------------------------------------


def test_interrupted_condition_detaches_from_shared_event():
    """An any_of waiter interrupted mid-wait must remove its _check from
    the still-pending shared event — the callback-leak class the
    tie-race work closed for abandoned (not just decided) conditions."""
    env = Environment()
    shared = env.event()

    def waiter():
        try:
            yield env.any_of([shared, env.timeout(10.0)])
        except Interrupt:
            yield env.timeout(0.1)

    def killer(victim):
        yield env.timeout(1.0)
        victim.interrupt("stop waiting")

    victim = env.process(waiter())
    env.process(killer(victim))
    env.run(until=5.0)
    assert shared.callbacks == []  # no dead _check left behind
