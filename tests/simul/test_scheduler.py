"""Scheduler backends: calendar/heap equivalence and kernel edge semantics."""

import pytest

from repro.errors import SimulationError
from repro.simul import Environment
from repro.simul.events import NORMAL, URGENT
from repro.simul.scheduler import CalendarScheduler, HeapScheduler, SCHEDULERS


def _lcg(seed):
    state = seed % 2147483647 or 1
    while True:
        state = (state * 1103515245 + 12345) % 2147483647
        yield state


def _drive(scheduler, seed, ops=2000):
    """Feed a seeded mixed push/pop trace; return the pop order.

    The trace mimics kernel traffic: zero-delay entries at both
    priorities (now-lane candidates), short delays (epoch candidates),
    and occasional far-future delays (heap candidates), with pops
    interleaved so `now` advances mid-stream.
    """
    rand = _lcg(seed)
    now = 0.0
    seq = 0
    popped = []
    for __ in range(ops):
        roll = next(rand) % 10
        if roll < 6 or not len(scheduler):
            seq += 1
            shape = next(rand) % 10
            if shape < 3:
                delay = 0.0
                priority = URGENT if shape == 0 else NORMAL
            elif shape < 8:
                delay = (next(rand) % 1000) / 1.0e4
                priority = NORMAL
            else:
                delay = 10.0 + (next(rand) % 1000)
                priority = NORMAL
            scheduler.push((now + delay, priority, seq, f"e{seq}"), now)
        else:
            entry = scheduler.pop()
            assert entry[0] >= now
            now = entry[0]
            popped.append(entry)
    while len(scheduler):
        entry = scheduler.pop()
        assert entry[0] >= now
        now = entry[0]
        popped.append(entry)
    return popped


@pytest.mark.parametrize("seed", [1, 7, 42, 1234, 99991])
def test_calendar_matches_heap_on_mixed_traffic(seed):
    assert _drive(CalendarScheduler(), seed) == _drive(HeapScheduler(), seed)


@pytest.mark.parametrize("seed", [3, 17, 2026])
def test_calendar_matches_heap_with_tiny_epoch(seed):
    # target/max_epoch small enough that every refill path (cap trip,
    # width halving/doubling, single-entry fallback) is exercised.
    tiny = CalendarScheduler(target=4, max_epoch=8)
    assert _drive(tiny, seed) == _drive(HeapScheduler(), seed)


def test_push_batch_matches_individual_pushes():
    batch_sched = CalendarScheduler()
    loose_sched = CalendarScheduler()
    # A live epoch tail first, so the batch merges with existing entries.
    for scheduler in (batch_sched, loose_sched):
        scheduler.push((5.0, NORMAL, 1, "tail-a"), 0.0)
        scheduler.push((9.0, NORMAL, 2, "tail-b"), 0.0)
    entries = [(1.0 + k, NORMAL, 3 + k, f"b{k}") for k in range(6)]
    batch_sched.push_batch(entries, 0.0)
    for entry in entries:
        loose_sched.push(entry, 0.0)
    order_batch = [batch_sched.pop() for __ in range(len(batch_sched))]
    order_loose = [loose_sched.pop() for __ in range(len(loose_sched))]
    assert order_batch == order_loose
    assert [e[3] for e in order_batch][:2] == ["b0", "b1"]


def test_push_batch_empty_is_noop():
    scheduler = CalendarScheduler()
    scheduler.push_batch([], 0.0)
    assert len(scheduler) == 0
    assert scheduler.peek() == float("inf")


@pytest.mark.parametrize("kind", sorted(SCHEDULERS))
def test_peek_tracks_minimum(kind):
    scheduler = SCHEDULERS[kind]()
    assert scheduler.peek() == float("inf")
    scheduler.push((7.0, NORMAL, 1, "late"), 0.0)
    scheduler.push((2.0, NORMAL, 2, "early"), 0.0)
    scheduler.push((0.0, URGENT, 3, "now"), 0.0)
    assert scheduler.peek() == 0.0
    assert scheduler.pop()[3] == "now"
    assert scheduler.peek() == 2.0


def test_pop_empty_raises_index_error():
    for kind in sorted(SCHEDULERS):
        with pytest.raises(IndexError):
            SCHEDULERS[kind]().pop()


def test_epoch_prefix_compaction_bounds_memory():
    scheduler = CalendarScheduler()
    # Alternate push/pop at ever-increasing times: without prefix
    # shedding the epoch list would retain every consumed entry.
    now = 0.0
    for seq in range(1, 20001):
        scheduler.push((now + 0.5, NORMAL, seq, None), now)
        now = scheduler.pop()[0]
    assert len(scheduler._epoch) - scheduler._epoch_i <= 1
    assert len(scheduler._epoch) < 8192


def test_environment_rejects_unknown_scheduler():
    with pytest.raises(SimulationError):
        Environment(scheduler="fifo")


# -- kernel edge semantics, identical across backends -----------------


@pytest.mark.parametrize("kind", sorted(SCHEDULERS))
def test_same_time_events_fire_in_priority_then_insertion_order(kind):
    env = Environment(scheduler=kind)
    order = []
    first = env.event()
    second = env.event()
    urgent = env.event()
    first.callbacks.append(lambda e: order.append("first"))
    second.callbacks.append(lambda e: order.append("second"))
    urgent.callbacks.append(lambda e: order.append("urgent"))
    first.succeed()
    second.succeed()
    urgent.succeed(priority=URGENT)
    env.run()
    assert order == ["urgent", "first", "second"]


@pytest.mark.parametrize("kind", sorted(SCHEDULERS))
def test_same_time_timeouts_fire_in_creation_order(kind):
    env = Environment(scheduler=kind)
    fired = []

    def proc(tag):
        yield env.timeout(3.0)
        fired.append(tag)

    for tag in ("a", "b", "c", "d"):
        env.process(proc(tag))
    env.run()
    assert fired == ["a", "b", "c", "d"]


@pytest.mark.parametrize("kind", sorted(SCHEDULERS))
def test_run_until_already_processed_event_returns_immediately(kind):
    env = Environment(scheduler=kind)
    timeout = env.timeout(1.0, value="tick")
    env.run(until=10)
    assert timeout.processed
    # No pending events are consumed and the clock does not move.
    sentinel = env.timeout(100.0)
    assert env.run(until=timeout) == "tick"
    assert env.now == 10.0
    assert not sentinel.processed


@pytest.mark.parametrize("kind", sorted(SCHEDULERS))
def test_failed_event_without_watcher_escalates_from_step(kind):
    env = Environment(scheduler=kind)

    def crasher():
        yield env.timeout(1.0)
        raise ValueError("unwatched crash")

    env.process(crasher())
    with pytest.raises(ValueError, match="unwatched crash"):
        env.run()


@pytest.mark.parametrize("kind", sorted(SCHEDULERS))
def test_run_until_deadline_advances_clock_past_empty_queue(kind):
    env = Environment(scheduler=kind)

    def proc():
        yield env.timeout(2.0)

    env.process(proc())
    env.run(until=50)
    # The queue drained at t=2 but the clock still lands on the deadline.
    assert env.now == 50.0
    assert env.peek() == float("inf")


@pytest.mark.parametrize("kind", sorted(SCHEDULERS))
def test_run_until_event_never_fired_raises(kind):
    env = Environment(scheduler=kind)
    with pytest.raises(SimulationError, match="drained"):
        env.run(until=env.event())
