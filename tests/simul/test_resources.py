"""Unit tests for Resource and Store."""

import pytest

from repro.errors import SimulationError
from repro.simul import Environment, Resource, Store


def test_resource_capacity_enforced():
    env = Environment()
    resource = Resource(env, capacity=2)
    finish_times = {}

    def worker(name):
        with resource.request() as req:
            yield req
            yield env.timeout(10)
        finish_times[name] = env.now

    for name in ["a", "b", "c"]:
        env.process(worker(name))
    env.run()
    # Two run concurrently, the third waits for a slot.
    assert finish_times == {"a": 10.0, "b": 10.0, "c": 20.0}


def test_resource_fifo_order():
    env = Environment()
    resource = Resource(env, capacity=1)
    order = []

    def worker(name):
        with resource.request() as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    for name in "abcd":
        env.process(worker(name))
    env.run()
    assert order == list("abcd")


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resource_count_tracks_usage():
    env = Environment()
    resource = Resource(env, capacity=3)
    observed = []

    def worker(start):
        yield env.timeout(start)
        with resource.request() as req:
            yield req
            observed.append(resource.count)
            yield env.timeout(5)

    for start in range(3):
        env.process(worker(start))
    env.run()
    assert observed == [1, 2, 3]
    assert resource.count == 0


def test_store_fifo():
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1)

    def consumer():
        for __ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == [0, 1, 2]


def test_store_get_blocks_until_item():
    env = Environment()
    store = Store(env)
    arrival = []

    def consumer():
        item = yield store.get()
        arrival.append((env.now, item))

    def producer():
        yield env.timeout(7)
        yield store.put("x")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert arrival == [(7.0, "x")]


def test_bounded_store_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    put_times = []

    def producer():
        for i in range(3):
            yield store.put(i)
            put_times.append(env.now)

    def consumer():
        for __ in range(3):
            yield env.timeout(10)
            yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    # First put is immediate; each later one waits for a get.
    assert put_times == [0.0, 10.0, 20.0]


def test_store_try_put_and_try_get():
    env = Environment()
    store = Store(env, capacity=1)
    assert store.try_put("a") is True
    assert store.try_put("b") is False
    ok, item = store.try_get()
    assert (ok, item) == (True, "a")
    ok, item = store.try_get()
    assert ok is False


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Store(env, capacity=0)


def test_store_level():
    env = Environment()
    store = Store(env)
    store.try_put(1)
    store.try_put(2)
    assert store.level == 2
    assert len(store) == 2
