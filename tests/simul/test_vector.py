"""Vectorized event batches: equivalence with scalar scheduling."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simul import Environment, VectorTimeout, bulk_timeouts, homogeneous_service


def _fire_log(env, events):
    log = []
    for k, event in enumerate(events):
        event.callbacks.append(
            lambda e, k=k: log.append((round(env.now, 12), k, e.value))
        )
    return log


def test_bulk_timeouts_matches_individual_timeouts():
    delays = [3.0, 0.5, 3.0, 1.25, 0.0, 7.5, 0.5]
    values = [f"v{k}" for k in range(len(delays))]

    env_a = Environment()
    log_a = _fire_log(env_a, bulk_timeouts(env_a, delays, values))
    env_a.run()

    env_b = Environment()
    log_b = _fire_log(
        env_b, [env_b.timeout(d, v) for d, v in zip(delays, values)]
    )
    env_b.run()

    assert log_a == log_b
    # Equal delays fire in creation order (indices 1 then 6, 0 then 2).
    ks = [entry[1] for entry in log_a]
    assert ks.index(1) < ks.index(6)
    assert ks.index(0) < ks.index(2)


def test_bulk_timeouts_interleaves_with_scalar_events():
    env = Environment()
    order = []

    def scalar(tag, delay):
        yield env.timeout(delay)
        order.append(tag)

    env.process(scalar("before", 0.5))
    batch = bulk_timeouts(env, [0.25, 1.0])
    for k, event in enumerate(batch):
        event.callbacks.append(lambda e, k=k: order.append(f"bulk{k}"))
    env.process(scalar("after", 2.0))
    env.run()
    assert order == ["bulk0", "before", "bulk1", "after"]


def test_bulk_timeouts_validation():
    env = Environment()
    assert bulk_timeouts(env, []) == []
    with pytest.raises(SimulationError):
        bulk_timeouts(env, [[1.0, 2.0]])
    with pytest.raises(SimulationError):
        bulk_timeouts(env, [1.0, -0.5])
    with pytest.raises(SimulationError):
        bulk_timeouts(env, [1.0, 2.0], values=["only-one"])


def test_bulk_timeouts_accepts_numpy_delays():
    env = Environment()
    events = bulk_timeouts(env, np.asarray([2.0, 1.0]))
    log = _fire_log(env, events)
    env.run()
    assert [entry[:2] for entry in log] == [(1.0, 1), (2.0, 0)]


def test_homogeneous_service_clock_matches_scalar_loop():
    def final_time(fast):
        env = Environment()

        def worker():
            for __ in range(5):
                if fast:
                    yield homogeneous_service(env, 16, 0.125)
                else:
                    for __k in range(16):
                        yield env.timeout(0.125)

        env.process(worker())
        env.run()
        return env.now

    assert final_time(True) == final_time(False) == 5 * 16 * 0.125


def test_homogeneous_service_value_is_completion_times():
    env = Environment()
    seen = []

    def worker():
        times = yield homogeneous_service(env, 4, 0.5)
        seen.append(np.asarray(times).tolist())

    env.process(worker())
    env.run()
    assert seen == [[0.5, 1.0, 1.5, 2.0]]
    assert env.now == 2.0


def test_homogeneous_service_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        homogeneous_service(env, 0, 1.0)
    with pytest.raises(SimulationError):
        homogeneous_service(env, 4, -1.0)


def test_vector_timeout_rejects_bad_fire_times():
    env = Environment()
    env.run(until=env.timeout(5.0))
    with pytest.raises(SimulationError):
        VectorTimeout(env, np.asarray([]))
    with pytest.raises(SimulationError):
        VectorTimeout(env, np.asarray([[6.0]]))
    with pytest.raises(SimulationError):
        VectorTimeout(env, np.asarray([1.0]))  # in the past (now == 5)
    with pytest.raises(SimulationError):
        VectorTimeout(env, np.asarray([8.0, 7.0]))  # descending


def test_vector_timeout_zero_count_of_one():
    env = Environment()
    vt = VectorTimeout(env, np.asarray([0.0]))
    assert vt.count == 1
    env.run()
    assert env.now == 0.0
