"""Kernel edge cases: conditions, cancellation, failure propagation."""

import pytest

from repro.errors import SimulationError
from repro.simul import Environment, Interrupt, Store
from repro.simul.events import AllOf, AnyOf


def test_any_of_empty_fires_immediately():
    env = Environment()
    seen = []

    def proc():
        result = yield env.any_of([])
        seen.append((env.now, result))

    env.process(proc())
    env.run()
    assert seen == [(0.0, {})]


def test_all_of_propagates_failure():
    env = Environment()
    caught = []

    def failer():
        yield env.timeout(1)
        raise RuntimeError("inner")

    def waiter():
        try:
            yield env.all_of([env.process(failer()), env.timeout(10)])
        except RuntimeError as error:
            caught.append(str(error))

    env.process(waiter())
    env.run()
    assert caught == ["inner"]


def test_any_of_with_already_processed_event():
    env = Environment()
    seen = []

    def proc():
        fast = env.timeout(1)
        yield fast  # fully processed now
        result = yield env.any_of([fast, env.timeout(100)])
        seen.append(env.now)
        assert fast in result

    env.process(proc())
    env.run(until=5)
    assert seen == [1.0]


def test_condition_rejects_cross_environment_events():
    env_a, env_b = Environment(), Environment()
    with pytest.raises(SimulationError):
        AnyOf(env_a, [env_b.timeout(1)])
    with pytest.raises(SimulationError):
        AllOf(env_a, [env_b.timeout(1)])


def test_interrupt_while_waiting_on_store():
    env = Environment()
    store = Store(env)
    log = []

    def consumer():
        try:
            yield store.get()
            log.append("got")
        except Interrupt:
            log.append(("interrupted", env.now))

    def interrupter(proc):
        yield env.timeout(3)
        proc.interrupt()

    proc = env.process(consumer())
    env.process(interrupter(proc))
    env.run()
    assert log == [("interrupted", 3.0)]
    # The store must not hand a later item to the dead getter.
    store.try_put("x")
    assert store.level == 1


def test_cancelled_store_getter_skipped_on_dispatch():
    env = Environment()
    store = Store(env)
    getter = store.get()  # parked
    getter.succeed("cancelled")  # neutralize (the batching/autoscaler idiom)
    received = []

    def consumer():
        item = yield store.get()
        received.append(item)

    env.process(consumer())

    def producer():
        yield store.put("real")

    env.process(producer())
    env.run()
    assert received == ["real"]


def test_env_event_factory_and_peek():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(5)
    assert env.peek() == 5.0


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_run_until_event_that_needs_no_steps():
    env = Environment()

    def proc():
        yield env.timeout(2)
        return "ok"

    event = env.process(proc())
    assert env.run(until=event) == "ok"
    # Running until an already-finished process returns immediately.
    assert env.run(until=event) == "ok"
