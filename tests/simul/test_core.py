"""Unit tests for the DES environment, events, and processes."""

import pytest

from repro.errors import SimulationError
from repro.simul import Environment, Interrupt


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    times = []

    def proc():
        yield env.timeout(5)
        times.append(env.now)
        yield env.timeout(2.5)
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [5.0, 7.5]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(10)

    env.process(proc())
    env.run(until=25)
    assert env.now == 25.0


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(3)
        return "done"

    result = env.run(until=env.process(proc()))
    assert result == "done"
    assert env.now == 3.0


def test_run_backwards_rejected():
    env = Environment()
    env.run(until=10)
    with pytest.raises(SimulationError):
        env.run(until=5)


def test_same_time_events_fire_in_creation_order():
    env = Environment()
    order = []

    def proc(name):
        yield env.timeout(1)
        order.append(name)

    for name in "abc":
        env.process(proc(name))
    env.run()
    assert order == ["a", "b", "c"]


def test_process_return_value():
    env = Environment()

    def child():
        yield env.timeout(1)
        return 42

    def parent(results):
        value = yield env.process(child())
        results.append(value)

    results = []
    env.process(parent(results))
    env.run()
    assert results == [42]


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def child():
        yield env.timeout(1)
        raise ValueError("boom")

    def parent(caught):
        try:
            yield env.process(child())
        except ValueError as error:
            caught.append(str(error))

    caught = []
    env.process(parent(caught))
    env.run()
    assert caught == ["boom"]


def test_unwatched_process_crash_surfaces():
    env = Environment()

    def child():
        yield env.timeout(1)
        raise ValueError("boom")

    env.process(child())
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_yield_non_event_fails():
    env = Environment()

    def bad():
        yield 17

    env.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_interrupt_wakes_sleeping_process():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
            log.append("slept through")
        except Interrupt as interrupt:
            log.append(("interrupted", env.now, interrupt.cause))

    def interrupter(proc):
        yield env.timeout(5)
        proc.interrupt("wake up")

    proc = env.process(sleeper())
    env.process(interrupter(proc))
    env.run()
    assert log == [("interrupted", 5.0, "wake up")]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_any_of_fires_on_first():
    env = Environment()
    seen = []

    def proc():
        t1 = env.timeout(5, "slow")
        t2 = env.timeout(2, "fast")
        result = yield env.any_of([t1, t2])
        seen.append((env.now, list(result.values())))

    env.process(proc())
    env.run()
    assert seen == [(2.0, ["fast"])]


def test_all_of_waits_for_all():
    env = Environment()
    seen = []

    def proc():
        t1 = env.timeout(5, "slow")
        t2 = env.timeout(2, "fast")
        result = yield env.all_of([t1, t2])
        seen.append((env.now, sorted(result.values())))

    env.process(proc())
    env.run()
    assert seen == [(5.0, ["fast", "slow"])]


def test_event_succeed_twice_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_value_before_trigger_rejected():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        __ = event.value


def test_event_repr_is_stable_and_address_free():
    # Regression: the repr used to embed hex(id(self)), which differs
    # between otherwise identical runs and polluted logs and trace diffs.
    env = Environment()
    first, second = env.event(), env.event()
    assert repr(first) == repr(second) == "<Event pending>"
    assert "0x" not in repr(first)

    first.succeed("payload")
    assert repr(first) == "<Event triggered ok>"
    env.run()
    assert repr(first) == "<Event processed ok>"

    failed = env.event()
    failed.fail(ValueError("boom"))
    assert repr(failed) == "<Event triggered failed>"
    with pytest.raises(ValueError):
        env.run()


def test_process_repr_uses_subclass_name():
    env = Environment()

    def proc():
        yield env.timeout(1)

    process = env.process(proc())
    assert repr(process) == "<Process pending>"
    env.run()
    assert repr(process) == "<Process processed ok>"
