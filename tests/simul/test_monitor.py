"""Unit tests for simulation monitors and random streams."""

import pytest

from repro.simul import Counter, Environment, RandomStreams, TimeSeries


def _env_at(times, fn):
    """Run ``fn(env)`` after advancing the clock to each time in order."""
    env = Environment()

    def proc():
        last = 0.0
        for t in times:
            yield env.timeout(t - last)
            fn(env)
            last = t

    env.process(proc())
    env.run()
    return env


def test_counter_rates():
    env = Environment()
    counter = Counter(env, "requests")

    def proc():
        for __ in range(10):
            counter.increment()
            yield env.timeout(1)

    env.process(proc())
    env.run()
    assert counter.total == 10
    assert counter.count_between(0, 5) == 5
    assert counter.rate_between(0, 10) == pytest.approx(1.0)


def test_counter_rejects_negative():
    env = Environment()
    counter = Counter(env)
    with pytest.raises(ValueError):
        counter.increment(-1)


def test_counter_empty_window_rejected():
    env = Environment()
    counter = Counter(env)
    with pytest.raises(ValueError):
        counter.rate_between(5, 5)


def test_timeseries_window():
    env = Environment()
    series = TimeSeries(env, "latency")

    def proc():
        for i in range(5):
            series.record(float(i * 10))
            yield env.timeout(2)

    env.process(proc())
    env.run()
    assert len(series) == 5
    assert series.window(2, 6) == [(2.0, 10.0), (4.0, 20.0)]
    assert series.values_after(6) == [30.0, 40.0]


def test_random_streams_reproducible():
    a = RandomStreams(seed=7)
    b = RandomStreams(seed=7)
    assert a.stream("x").random() == b.stream("x").random()


def test_random_streams_independent_names():
    streams = RandomStreams(seed=7)
    assert streams.stream("x").random() != streams.stream("y").random()


def test_lognormal_factor_zero_sigma_is_identity():
    streams = RandomStreams(seed=7)
    assert streams.lognormal_factor("noise", sigma=0.0) == 1.0


def test_lognormal_factor_positive():
    streams = RandomStreams(seed=7)
    factor = streams.lognormal_factor("noise", sigma=0.3)
    assert factor > 0
