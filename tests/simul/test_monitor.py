"""Unit tests for simulation monitors and random streams."""

import pytest

from repro.simul import Counter, Environment, RandomStreams, TimeSeries


def _env_at(times, fn):
    """Run ``fn(env)`` after advancing the clock to each time in order."""
    env = Environment()

    def proc():
        last = 0.0
        for t in times:
            yield env.timeout(t - last)
            fn(env)
            last = t

    env.process(proc())
    env.run()
    return env


def test_counter_rates():
    env = Environment()
    counter = Counter(env, "requests")

    def proc():
        for __ in range(10):
            counter.increment()
            yield env.timeout(1)

    env.process(proc())
    env.run()
    assert counter.total == 10
    assert counter.count_between(0, 5) == 5
    assert counter.rate_between(0, 10) == pytest.approx(1.0)


def test_counter_rejects_negative():
    env = Environment()
    counter = Counter(env)
    with pytest.raises(ValueError):
        counter.increment(-1)


def test_counter_empty_window_rejected():
    env = Environment()
    counter = Counter(env)
    with pytest.raises(ValueError):
        counter.rate_between(5, 5)


def test_counter_bulk_increment_is_compact():
    """increment(n) stores one (time, cumulative) pair, not n entries."""
    env = Environment()
    counter = Counter(env)
    counter.increment(1_000_000)
    counter.increment(500_000)  # same timestamp: merged in place
    assert counter.total == 1_500_000
    assert len(counter._times) == 1
    assert counter.count_between(0.0, 1.0) == 1_500_000


def test_counter_zero_increment_stores_nothing():
    env = Environment()
    counter = Counter(env)
    counter.increment(0)
    assert counter.total == 0
    assert counter._times == []
    assert counter.count_between(0.0, 1.0) == 0


def test_counter_window_boundaries():
    """count_between is inclusive of start, exclusive of end."""
    env = Environment()
    counter = Counter(env)

    def proc():
        for amount in (2, 3, 5):
            counter.increment(amount)
            yield env.timeout(1)

    env.process(proc())
    env.run()
    # Increments at t=0 (2), t=1 (3), t=2 (5).
    assert counter.count_between(0.0, 1.0) == 2
    assert counter.count_between(1.0, 2.0) == 3
    assert counter.count_between(0.0, 2.0) == 5
    assert counter.count_between(2.0, 10.0) == 5
    assert counter.count_between(0.0, 10.0) == 10
    assert counter.count_between(5.0, 10.0) == 0
    assert counter.rate_between(0.0, 2.0) == pytest.approx(2.5)


def test_timeseries_window():
    env = Environment()
    series = TimeSeries(env, "latency")

    def proc():
        for i in range(5):
            series.record(float(i * 10))
            yield env.timeout(2)

    env.process(proc())
    env.run()
    assert len(series) == 5
    assert series.window(2, 6) == [(2.0, 10.0), (4.0, 20.0)]
    assert series.values_after(6) == [30.0, 40.0]


def _recorded_series():
    env = Environment()
    series = TimeSeries(env, "depth")

    def proc():
        for i in range(5):
            series.record(float(i * 10))
            yield env.timeout(2)

    env.process(proc())
    env.run()
    return series  # samples: (0,0) (2,10) (4,20) (6,30) (8,40)


def test_timeseries_last_before():
    series = _recorded_series()
    assert series.last_before(0.0) is None  # strictly before: t=0 excluded
    assert series.last_before(0.1) == 0.0
    assert series.last_before(2.0) == 0.0
    assert series.last_before(2.1) == 10.0
    assert series.last_before(100.0) == 40.0


def test_timeseries_last_before_empty():
    env = Environment()
    series = TimeSeries(env, "empty")
    assert series.last_before(10.0) is None


def test_timeseries_mean_between():
    series = _recorded_series()
    # [2, 6) covers the samples at t=2 and t=4.
    assert series.mean_between(2.0, 6.0) == pytest.approx(15.0)
    assert series.mean_between(0.0, 100.0) == pytest.approx(20.0)
    # Start-inclusive, end-exclusive.
    assert series.mean_between(4.0, 6.0) == pytest.approx(20.0)


def test_timeseries_mean_between_empty_window_is_nan():
    import math

    series = _recorded_series()
    assert math.isnan(series.mean_between(2.5, 3.5))


def test_timeseries_mean_between_rejects_inverted_window():
    series = _recorded_series()
    with pytest.raises(ValueError):
        series.mean_between(5.0, 5.0)


def test_random_streams_reproducible():
    a = RandomStreams(seed=7)
    b = RandomStreams(seed=7)
    assert a.stream("x").random() == b.stream("x").random()


def test_random_streams_independent_names():
    streams = RandomStreams(seed=7)
    assert streams.stream("x").random() != streams.stream("y").random()


def test_lognormal_factor_zero_sigma_is_identity():
    streams = RandomStreams(seed=7)
    assert streams.lognormal_factor("noise", sigma=0.0) == 1.0


def test_lognormal_factor_positive():
    streams = RandomStreams(seed=7)
    factor = streams.lognormal_factor("noise", sigma=0.3)
    assert factor > 0
