"""Property-based tests for kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simul import Environment, Resource, Store


@given(delays=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
def test_events_fire_in_nondecreasing_time(delays):
    env = Environment()
    fired = []

    def proc(delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(proc(delay))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    delays=st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=30),
    seedless=st.booleans(),
)
def test_simulation_is_deterministic(delays, seedless):
    def trace():
        env = Environment()
        log = []

        def proc(i, delay):
            yield env.timeout(delay)
            log.append((env.now, i))

        for i, delay in enumerate(delays):
            env.process(proc(i, delay))
        env.run()
        return log

    assert trace() == trace()


@given(
    capacity=st.integers(min_value=1, max_value=5),
    n_workers=st.integers(min_value=1, max_value=20),
    service=st.floats(min_value=0.1, max_value=10),
)
@settings(max_examples=50)
def test_resource_never_exceeds_capacity(capacity, n_workers, service):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    max_seen = 0

    def worker():
        nonlocal max_seen
        with resource.request() as req:
            yield req
            max_seen = max(max_seen, resource.count)
            yield env.timeout(service)

    for __ in range(n_workers):
        env.process(worker())
    env.run()
    assert max_seen <= capacity
    assert resource.count == 0


@given(items=st.lists(st.integers(), max_size=50))
def test_store_preserves_order_and_content(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for __ in range(len(items)):
            value = yield store.get()
            received.append(value)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == items


@given(
    items=st.lists(st.integers(), min_size=1, max_size=30),
    capacity=st.integers(min_value=1, max_value=5),
)
def test_bounded_store_never_overflows(items, capacity):
    env = Environment()
    store = Store(env, capacity=capacity)
    max_level = 0

    def producer():
        nonlocal max_level
        for item in items:
            yield store.put(item)
            max_level = max(max_level, store.level)

    def consumer():
        for __ in range(len(items)):
            yield env.timeout(1)
            yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert max_level <= capacity
