"""Regression tests for the kernel correctness fixes.

Covers the condition-callback leak, the Store capacity validation gap,
cancelled-waiter buildup in resource/store wait queues, the Timeout
slab contract, and the defused semantics of abandoned processes.
"""

import pytest

from repro.errors import SimulationError
from repro.simul import Environment, Interrupt, Resource, Store


# -- AnyOf/AllOf condition-callback leak ------------------------------


def test_any_of_detaches_from_losing_event():
    env = Environment()
    winner = env.timeout(1.0)
    loser = env.timeout(100.0)

    def proc():
        yield env.any_of([winner, loser])

    env.process(proc())
    env.run(until=2)
    # The decided condition must not linger on the still-pending loser.
    assert loser.callbacks == []


def test_all_of_detaches_on_failure():
    env = Environment()
    pending = env.timeout(100.0)

    def failer():
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    def waiter():
        with pytest.raises(RuntimeError):
            yield env.all_of([env.process(failer()), pending])

    env.process(waiter())
    env.run(until=2)
    assert pending.callbacks == []


def test_repeated_races_do_not_accumulate_callbacks():
    # The resilience-client idiom: a long-lived deadline raced against a
    # stream of short calls. Pre-fix, every decided AnyOf left its
    # _check on the pending child forever.
    env = Environment()
    slow = env.timeout(1000.0)

    def client():
        for __ in range(50):
            yield env.any_of([env.timeout(1.0), slow])

    env.process(client())
    env.run(until=100)
    assert len(slow.callbacks) == 0


def test_any_of_still_delivers_first_result_after_detach():
    env = Environment()
    seen = []

    def proc():
        fast = env.timeout(2.0, value="fast")
        slow = env.timeout(9.0, value="slow")
        result = yield env.any_of([fast, slow])
        seen.append((env.now, list(result.values())))
        # The loser still fires normally for a direct waiter.
        value = yield slow
        seen.append((env.now, value))

    env.process(proc())
    env.run()
    assert seen == [(2.0, ["fast"]), (9.0, "slow")]


# -- Store capacity validation ----------------------------------------


@pytest.mark.parametrize("capacity", [0.5, 0, -1, 2.5, True, "big", float("nan")])
def test_store_rejects_invalid_capacity(capacity):
    env = Environment()
    with pytest.raises(SimulationError, match="store capacity"):
        Store(env, capacity=capacity)


@pytest.mark.parametrize("capacity", [1, 7, 16.0, float("inf")])
def test_store_accepts_integral_or_unbounded_capacity(capacity):
    env = Environment()
    store = Store(env, capacity=capacity)
    assert store.try_put("x")
    assert store.level == 1


def test_resource_rejects_zero_capacity():
    with pytest.raises(SimulationError, match="resource capacity"):
        Resource(Environment(), capacity=0)


# -- cancelled-waiter buildup -----------------------------------------


def _interrupt_later(env, proc, at):
    def body():
        yield env.timeout(at)
        proc.interrupt("cancelled")

    env.process(body())


def test_interrupted_requests_do_not_pile_up_in_resource_queue():
    env = Environment()
    resource = Resource(env, capacity=1)

    def holder():
        with resource.request() as req:
            yield req
            yield env.timeout(1000.0)

    def waiter():
        with pytest.raises(Interrupt):
            with resource.request() as req:
                yield req

    env.process(holder())
    for k in range(200):
        proc = env.process(waiter())
        _interrupt_later(env, proc, 1.0 + k * 0.01)
    env.run(until=500)
    # All 200 waiters were cancelled; eager compaction keeps the queue
    # from retaining them until the holder finally releases.
    assert len(resource.queue) <= 1


def test_interrupted_getters_do_not_pile_up_in_store():
    env = Environment()
    store = Store(env)

    def getter():
        with pytest.raises(Interrupt):
            yield store.get()

    for k in range(200):
        proc = env.process(getter())
        _interrupt_later(env, proc, 1.0 + k * 0.01)
    env.run(until=500)
    assert len(store._getters) <= 1


def test_interrupted_putters_do_not_pile_up_in_store():
    env = Environment()
    store = Store(env, capacity=1)
    assert store.try_put("occupant")

    def putter(k):
        with pytest.raises(Interrupt):
            yield store.put(k)

    for k in range(200):
        proc = env.process(putter(k))
        _interrupt_later(env, proc, 1.0 + k * 0.01)
    env.run(until=500)
    assert len(store._putters) <= 1
    # The buffered item is untouched by the cancelled putters.
    assert list(store.items) == ["occupant"]


def test_compaction_preserves_live_waiter_order():
    env = Environment()
    store = Store(env)
    received = []

    def live_getter(tag):
        item = yield store.get()
        received.append((tag, item))

    def doomed_getter():
        with pytest.raises(Interrupt):
            yield store.get()

    env.process(live_getter("first"))
    doomed = [env.process(doomed_getter()) for __ in range(8)]
    env.process(live_getter("second"))
    for k, proc in enumerate(doomed):
        _interrupt_later(env, proc, 1.0 + k * 0.01)

    def producer():
        yield env.timeout(10.0)
        yield store.put("a")
        yield store.put("b")

    env.process(producer())
    env.run()
    assert received == [("first", "a"), ("second", "b")]


# -- Timeout slab -----------------------------------------------------


def test_service_timeout_values_and_clock_match_timeout():
    env = Environment()
    seen = []

    def proc():
        value = yield env.service_timeout(2.0, value="first")
        seen.append((env.now, value))
        value = yield env.service_timeout(3.0, value="second")
        seen.append((env.now, value))

    env.process(proc())
    env.run()
    assert seen == [(2.0, "first"), (5.0, "second")]


def test_service_timeout_recycles_objects():
    env = Environment()
    identities = []

    def proc():
        for __ in range(4):
            timeout = env.service_timeout(1.0)
            identities.append(id(timeout))
            yield timeout

    env.process(proc())
    env.run()
    # After the first fires and is recycled, the pool hands the same
    # object back out.
    assert len(set(identities)) < len(identities)
    assert len(env._timeout_pool) >= 1


def test_service_timeout_rejects_negative_delay():
    env = Environment()

    def prime():
        yield env.service_timeout(1.0)

    env.process(prime())
    env.run()
    assert env._timeout_pool  # warm-pool path
    with pytest.raises(SimulationError):
        env.service_timeout(-1.0)
    with pytest.raises(SimulationError):
        Environment().service_timeout(-1.0)  # cold-pool path too


def test_slab_determinism_against_plain_timeouts():
    def trace(fast):
        env = Environment()
        log = []

        def worker(k):
            make = env.service_timeout if fast else env.timeout
            state = k + 1
            for __ in range(50):
                state = (state * 48271) % 2147483647
                yield make((state % 97) / 10.0)
                log.append((round(env.now, 9), k))

        for k in range(8):
            env.process(worker(k))
        env.run()
        return log

    assert trace(True) == trace(False)


# -- defused semantics ------------------------------------------------


def test_interrupted_unwatched_process_does_not_escalate():
    env = Environment()

    def sleeper():
        yield env.timeout(1000.0)

    def canceller(proc):
        yield env.timeout(1.0)
        proc.interrupt("shutdown")

    proc = env.process(sleeper())
    env.process(canceller(proc))
    env.run()  # must not raise Interrupt
    assert not proc.is_alive
    assert isinstance(proc._value, Interrupt)


def test_crash_after_handling_interrupt_still_escalates():
    env = Environment()

    def stubborn():
        try:
            yield env.timeout(1000.0)
        except Interrupt:
            pass
        raise RuntimeError("real failure")

    def canceller(proc):
        yield env.timeout(1.0)
        proc.interrupt()

    proc = env.process(stubborn())
    env.process(canceller(proc))
    with pytest.raises(RuntimeError, match="real failure"):
        env.run()
