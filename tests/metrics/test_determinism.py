"""Telemetry must be strictly observational.

Mirrors ``tests/tracing/test_determinism.py``: a metrics-on run must
produce byte-identical results to a metrics-off run — the scraper only
reads state, and the few always-on counters the instrumentation adds are
maintained whether or not a registry is installed.
"""

import dataclasses

import pytest

from repro.config import ExperimentConfig
from repro.core.runner import ExperimentRunner
from repro.metrics import MetricsOptions

COMBOS = [
    ("flink", "onnx"),
    ("kafka_streams", "dl4j"),
    ("spark_ss", "onnx"),
    ("ray", "tf_serving"),
]


@pytest.mark.parametrize("sps,serving", COMBOS)
def test_metrics_do_not_perturb_results(sps, serving):
    config = ExperimentConfig(
        sps=sps, serving=serving, model="ffnn", duration=2.0
    )
    plain = ExperimentRunner(config).run(seed=0)
    observed = ExperimentRunner(config).run(
        seed=0, metrics=MetricsOptions(scrape_interval=0.05)
    )
    assert dataclasses.asdict(plain.latency) == dataclasses.asdict(
        observed.latency
    )
    assert plain.throughput == observed.throughput
    assert plain.completed == observed.completed
    assert plain.produced == observed.produced
    assert plain.series == observed.series
    assert plain.telemetry is None
    assert observed.telemetry is not None


def test_every_layer_exports_a_gauge():
    """ISSUE acceptance: broker lag, engine queue occupancy, serving
    queue depth, and autoscaler replica count all surface as series."""
    config = ExperimentConfig(
        sps="flink",
        serving="tf_serving",
        model="ffnn",
        duration=2.0,
        autoscale=(1, 4),
    )
    result = ExperimentRunner(config).run(seed=0, metrics=True)
    names = set(result.telemetry.series())
    assert 'crayfish_broker_consumer_lag{topic="crayfish-input"}' in names
    assert 'crayfish_engine_input_queue{engine="flink"}' in names
    assert "crayfish_serving_queue_depth" in names
    assert 'crayfish_autoscaler_replicas{state="live"}' in names
    assert 'crayfish_autoscaler_replicas{state="desired"}' in names


def test_scrape_interval_reaches_the_scraper():
    config = ExperimentConfig(sps="flink", serving="onnx", duration=1.0)
    result = ExperimentRunner(config).run(
        seed=0, metrics=MetricsOptions(scrape_interval=0.25)
    )
    scraper = result.telemetry.scraper
    assert scraper.interval == 0.25
    assert scraper.scrapes == 4  # ticks at 0.25 .. 1.0 (horizon inclusive)


def test_adaptive_batching_metrics_observed():
    config = ExperimentConfig(
        sps="flink",
        serving="tf_serving",
        model="ffnn",
        duration=2.0,
        mp=4,
        adaptive_batching=(8, 0.002),
    )
    result = ExperimentRunner(config).run(seed=0, metrics=True)
    hist = result.telemetry.registry.get("serving_batch_size")
    assert hist.count > 0
    assert "crayfish_serving_batch_queue_depth" in result.telemetry.series()
