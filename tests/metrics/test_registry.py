"""Unit tests for the metrics registry and its typed instruments."""

import math

import pytest

from repro.errors import ConfigError
from repro.metrics import (
    NO_METRICS,
    MetricsOptions,
    MetricsRegistry,
    log_buckets,
    make_registry,
)
from repro.metrics.registry import DEFAULT_BUCKETS, Counter, Gauge, Histogram
from repro.simul import Environment


def test_counter_counts_upward():
    registry = MetricsRegistry(Environment())
    counter = registry.counter("requests", help="requests served")
    counter.inc()
    counter.inc(4)
    assert counter.value() == 5


def test_counter_rejects_negative_increment():
    registry = MetricsRegistry(Environment())
    counter = registry.counter("requests")
    with pytest.raises(ConfigError):
        counter.inc(-1)


def test_callback_counter_reads_component_state():
    state = {"done": 0}
    registry = MetricsRegistry(Environment())
    counter = registry.counter("done", fn=lambda: state["done"])
    state["done"] = 42
    assert counter.value() == 42
    with pytest.raises(ConfigError):
        counter.inc()


def test_gauge_set_and_callback():
    registry = MetricsRegistry(Environment())
    gauge = registry.gauge("depth")
    gauge.set(3)
    assert gauge.value() == 3.0
    backed = registry.gauge("lag", fn=lambda: 7)
    assert backed.value() == 7.0
    with pytest.raises(ConfigError):
        backed.set(1)


def test_histogram_buckets_observations():
    registry = MetricsRegistry(Environment())
    hist = registry.histogram("latency", buckets=[0.1, 1.0, 10.0])
    for value in (0.05, 0.5, 5.0, 50.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.bucket_counts == [1, 1, 1, 1]
    assert hist.cumulative_buckets() == [
        (0.1, 1),
        (1.0, 2),
        (10.0, 3),
        (math.inf, 4),
    ]
    assert hist.mean == pytest.approx((0.05 + 0.5 + 5.0 + 50.0) / 4)


def test_histogram_rejects_nan_and_bad_bounds():
    registry = MetricsRegistry(Environment())
    hist = registry.histogram("latency")
    with pytest.raises(ConfigError):
        hist.observe(math.nan)
    with pytest.raises(ConfigError):
        registry.histogram("bad", buckets=[1.0, 1.0, 2.0])
    with pytest.raises(ConfigError):
        registry.histogram("worse", buckets=[2.0, 1.0])


def test_log_buckets_are_geometric():
    bounds = log_buckets(0.001, 1.0, 4)
    assert len(bounds) == 4
    assert bounds[0] == pytest.approx(0.001)
    assert bounds[-1] == pytest.approx(1.0)
    ratios = [b / a for a, b in zip(bounds, bounds[1:])]
    assert all(r == pytest.approx(ratios[0]) for r in ratios)
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
    with pytest.raises(ConfigError):
        log_buckets(0.0, 1.0)
    with pytest.raises(ConfigError):
        log_buckets(1.0, 2.0, count=1)


def test_registration_is_idempotent():
    registry = MetricsRegistry(Environment())
    first = registry.gauge("depth", labels={"topic": "in"})
    again = registry.gauge("depth", labels={"topic": "in"})
    assert first is again
    other = registry.gauge("depth", labels={"topic": "out"})
    assert other is not first
    assert len(registry) == 2


def test_type_conflict_rejected():
    registry = MetricsRegistry(Environment())
    registry.counter("events")
    with pytest.raises(ConfigError):
        registry.gauge("events")


def test_namespace_prefix_and_series_name():
    registry = MetricsRegistry(Environment(), namespace="crayfish")
    gauge = registry.gauge("lag", labels={"topic": "in", "a": "b"})
    assert gauge.name == "crayfish_lag"
    # Labels are sorted, so series identity is order-independent.
    assert gauge.series_name == 'crayfish_lag{a="b",topic="in"}'
    assert registry.get("lag", labels={"a": "b", "topic": "in"}) is gauge
    with pytest.raises(ConfigError):
        registry.get("missing")


def test_null_registry_is_inert():
    assert not NO_METRICS.enabled
    counter = NO_METRICS.counter("anything")
    counter.inc()
    NO_METRICS.gauge("depth", fn=lambda: 1 / 0).set(3)
    NO_METRICS.histogram("latency").observe(0.5)
    assert NO_METRICS.instruments() == ()


def test_make_registry_resolution():
    env = Environment()
    assert make_registry(env, None) is NO_METRICS
    assert make_registry(env, False) is NO_METRICS
    assert isinstance(make_registry(env, True), MetricsRegistry)
    assert isinstance(make_registry(env, MetricsOptions()), MetricsRegistry)
    ready = MetricsRegistry(env)
    assert make_registry(env, ready) is ready
    with pytest.raises(ConfigError):
        make_registry(env, "yes")


def test_metrics_options_validation():
    with pytest.raises(ConfigError):
        MetricsOptions(scrape_interval=0.0)


def test_instrument_types():
    registry = MetricsRegistry(Environment())
    assert isinstance(registry.counter("a"), Counter)
    assert isinstance(registry.gauge("b"), Gauge)
    assert isinstance(registry.histogram("c"), Histogram)
