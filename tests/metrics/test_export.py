"""Unit tests for the OpenMetrics and JSONL exporters."""

import pytest

from repro.metrics import MetricsRegistry, Scraper
from repro.metrics.export import (
    load_metrics_jsonl,
    openmetrics_text,
    parse_openmetrics,
    save_metrics_jsonl,
    save_openmetrics,
    timeline_rows,
)
from repro.simul import Environment


def _populated_registry(env=None):
    registry = MetricsRegistry(env or Environment())
    counter = registry.counter("requests", help="requests served")
    counter.inc(12)
    registry.gauge("depth", labels={"topic": "in"}, fn=lambda: 4)
    registry.gauge("depth", labels={"topic": "out"}, fn=lambda: 2)
    hist = registry.histogram("latency", buckets=[0.1, 1.0])
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(5.0)
    return registry


def test_openmetrics_round_trip():
    text = openmetrics_text(_populated_registry())
    families = parse_openmetrics(text)
    assert families["crayfish_requests"]["type"] == "counter"
    assert families["crayfish_requests"]["samples"]["crayfish_requests_total"] == 12
    depth = families["crayfish_depth"]["samples"]
    assert depth['crayfish_depth{topic="in"}'] == 4
    assert depth['crayfish_depth{topic="out"}'] == 2
    latency = families["crayfish_latency"]["samples"]
    assert latency['crayfish_latency_bucket{le="0.1"}'] == 1
    assert latency['crayfish_latency_bucket{le="1.0"}'] == 2
    assert latency['crayfish_latency_bucket{le="+Inf"}'] == 3
    assert latency["crayfish_latency_count"] == 3
    assert latency["crayfish_latency_sum"] == pytest.approx(5.55)


def test_openmetrics_terminates_and_declares_types():
    text = openmetrics_text(_populated_registry())
    assert text.endswith("# EOF\n")
    # One TYPE line per family, even with several labeled series.
    assert text.count("# TYPE crayfish_depth gauge") == 1


def test_save_openmetrics(tmp_path):
    path = tmp_path / "metrics.txt"
    save_openmetrics(_populated_registry(), str(path))
    parse_openmetrics(path.read_text())


def test_parse_rejects_missing_eof():
    with pytest.raises(ValueError, match="EOF"):
        parse_openmetrics("# TYPE a gauge\na 1\n")


def test_parse_rejects_untyped_sample():
    with pytest.raises(ValueError, match="no TYPE"):
        parse_openmetrics("orphan 1\n# EOF\n")


def test_parse_rejects_duplicate_series():
    text = "# TYPE a gauge\na 1\na 2\n# EOF\n"
    with pytest.raises(ValueError, match="duplicate series"):
        parse_openmetrics(text)


def test_parse_rejects_duplicate_type():
    text = "# TYPE a gauge\n# TYPE a counter\n# EOF\n"
    with pytest.raises(ValueError, match="duplicate TYPE"):
        parse_openmetrics(text)


def test_parse_rejects_malformed_lines():
    with pytest.raises(ValueError, match="non-numeric"):
        parse_openmetrics("# TYPE a gauge\na one\n# EOF\n")
    with pytest.raises(ValueError, match="malformed label"):
        parse_openmetrics('# TYPE a gauge\na{b=unquoted} 1\n# EOF\n')
    with pytest.raises(ValueError, match="blank"):
        parse_openmetrics("# TYPE a gauge\n\na 1\n# EOF\n")


def test_jsonl_round_trip(tmp_path):
    env = Environment()
    registry = _populated_registry(env)
    scraper = Scraper(env, registry, interval=0.1, horizon=0.3)
    scraper.start()
    env.run(until=0.3)
    rows = timeline_rows(scraper)
    assert rows, "expected scraped samples"
    assert rows == sorted(rows, key=lambda r: r["t"])
    path = tmp_path / "timeline.jsonl"
    save_metrics_jsonl(scraper, str(path))
    assert load_metrics_jsonl(str(path)) == rows
    sample = rows[0]
    assert set(sample) == {"t", "metric", "labels", "value"}
