"""Unit tests for the terminal dashboard."""

import math

from repro.metrics import MetricsRegistry, Scraper
from repro.metrics.dashboard import (
    backpressure_summary,
    render_dashboard,
    sparkline,
)
from repro.simul import Environment


def test_sparkline_shape_and_extremes():
    line = sparkline([0.0, 1.0, 2.0, 3.0], width=4)
    assert len(line) == 4
    assert line[0] == "▁"
    assert line[-1] == "█"


def test_sparkline_flat_and_empty():
    assert sparkline([], width=5) == " " * 5
    assert sparkline([math.nan], width=3) == " " * 3
    flat = sparkline([2.0, 2.0, 2.0], width=3)
    assert flat == "▁▁▁"


def test_sparkline_downsamples_long_series():
    line = sparkline(list(range(1000)), width=10)
    assert len(line) == 10


def _scraped_system():
    env = Environment()
    registry = MetricsRegistry(env)
    depth = {"value": 0}
    registry.gauge("broker_consumer_lag", fn=lambda: depth["value"])
    registry.gauge("engine_input_queue", fn=lambda: 0)
    registry.gauge("serving_queue_depth", fn=lambda: 3)
    registry.counter("pipeline_batches_completed", fn=lambda: 9)

    def load():
        for i in range(5):
            depth["value"] = i * 10
            yield env.timeout(0.1)

    env.process(load())
    scraper = Scraper(env, registry, interval=0.1, horizon=0.5)
    scraper.start()
    env.run(until=0.5)
    return scraper


def test_dashboard_groups_layers():
    text = render_dashboard(_scraped_system(), title="demo")
    assert text.startswith("demo")
    for group in ("-- broker", "-- engine", "-- serving", "-- pipeline"):
        assert group in text
    assert "broker_consumer_lag" in text
    assert "backpressure & lag summary:" in text


def test_dashboard_empty_scraper():
    env = Environment()
    scraper = Scraper(env, MetricsRegistry(env), interval=0.1)
    assert render_dashboard(scraper) == "(no metrics scraped)"


def test_backpressure_summary_ranks_by_peak():
    lines = backpressure_summary(_scraped_system())
    # Lag (peak 40) outranks serving queue depth (peak 3); the idle
    # engine queue ranks last.
    assert lines[0].startswith("broker_consumer_lag: peak 40")
    assert "(queued)" in lines[1]
    assert lines[-1].startswith("engine_input_queue: peak 0")
    assert "(idle)" in lines[-1]
    # Non-pressure series (the completed counter) are excluded.
    assert not any("batches_completed" in line for line in lines)
