"""Unit tests for the periodic scraper."""

import pytest

from repro.metrics import MetricsRegistry, Scraper, Telemetry
from repro.simul import Environment


def test_scraper_samples_at_interval():
    env = Environment()
    registry = MetricsRegistry(env)
    depth = {"value": 0}
    registry.gauge("queue_depth", fn=lambda: depth["value"])

    def producer():
        for i in range(10):
            depth["value"] = i
            yield env.timeout(0.1)

    env.process(producer())
    scraper = Scraper(env, registry, interval=0.1, horizon=1.0)
    scraper.start()
    env.run(until=1.0)
    assert scraper.scrapes == 10  # ticks at 0.1 .. 1.0 (horizon inclusive)
    series = scraper.series()["crayfish_queue_depth"]
    assert series.times == pytest.approx([0.1 * (i + 1) for i in range(10)])
    # The gauge is read at scrape time: value set at t=i/10 is seen at
    # t=(i+1)/10; the producer's last write (9) is read twice.
    assert series.values == pytest.approx(
        [float(i + 1) for i in range(9)] + [9.0]
    )


def test_scraper_picks_up_late_instruments():
    env = Environment()
    registry = MetricsRegistry(env)
    registry.gauge("early", fn=lambda: 1)

    def late_registration():
        yield env.timeout(0.55)
        registry.gauge("late", fn=lambda: 2)

    env.process(late_registration())
    scraper = Scraper(env, registry, interval=0.1, horizon=1.0)
    scraper.start()
    env.run(until=1.0)
    series = scraper.series()
    assert len(series["crayfish_early"]) == 10
    assert len(series["crayfish_late"]) == 5  # first sampled at t=0.6


def test_scraper_horizon_bounds_loop():
    env = Environment()
    registry = MetricsRegistry(env)
    registry.gauge("g", fn=lambda: 0)
    scraper = Scraper(env, registry, interval=0.1, horizon=0.5)
    scraper.start()
    env.run(until=5.0)
    assert scraper.scrapes == 5


def test_scraper_rejects_bad_interval():
    env = Environment()
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        Scraper(env, MetricsRegistry(env), interval=0.0)


def test_timeline_carries_labels():
    env = Environment()
    registry = MetricsRegistry(env)
    registry.gauge("lag", labels={"topic": "in"}, fn=lambda: 3)
    scraper = Scraper(env, registry, interval=0.1, horizon=0.3)
    scraper.start()
    env.run(until=0.3)
    [(name, labels, series)] = scraper.timeline()
    assert name == "crayfish_lag"
    assert labels == {"topic": "in"}
    assert series.values == [3.0, 3.0]


def test_telemetry_last_values():
    env = Environment()
    registry = MetricsRegistry(env)
    counter = registry.counter("done")
    counter.inc(5)
    scraper = Scraper(env, registry, interval=0.1)
    telemetry = Telemetry(registry, scraper)
    assert telemetry.last_values() == {"crayfish_done": 5.0}
    assert telemetry.series() == {}
