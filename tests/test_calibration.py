"""Sanity tests for the calibration constants.

These pin the *relationships* the paper's findings depend on, so a
future retune cannot silently invert a conclusion.
"""

import dataclasses

import pytest

from repro import calibration as cal


def test_all_profiles_registered():
    assert set(cal.SERVING_PROFILES) == {
        "onnx", "dl4j", "savedmodel", "tf_serving", "torchserve", "ray_serve",
    }
    for name, profile in cal.SERVING_PROFILES.items():
        assert profile.name == name


def test_profiles_are_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        cal.ONNX_PROFILE.call_overhead = 0.0  # type: ignore[misc]


def test_positive_costs_everywhere():
    for profile in cal.SERVING_PROFILES.values():
        assert profile.call_overhead >= 0
        assert profile.convert_per_value > 0
        assert profile.flops_per_sec > 0
        assert profile.contention_alpha >= 0
        assert profile.noise_sigma >= 0
        assert profile.gpu_speedup >= 1.0


def test_onnx_is_the_fastest_embedded_engine():
    """Table 4's ordering starts here."""
    onnx, saved, dl4j = (
        cal.ONNX_PROFILE, cal.SAVEDMODEL_PROFILE, cal.DL4J_PROFILE
    )
    marginal = lambda p: p.convert_per_value * 784 + 55_000 / p.flops_per_sec
    assert marginal(onnx) < marginal(saved) < marginal(dl4j)


def test_torchserve_has_highest_request_overhead():
    others = [p.call_overhead for n, p in cal.SERVING_PROFILES.items() if n != "torchserve"]
    assert cal.TORCHSERVE_PROFILE.call_overhead > max(others)


def test_tf_serving_large_model_serialized():
    assert cal.TF_SERVING_PROFILE.large_model_concurrency == 1
    assert cal.TORCHSERVE_PROFILE.large_model_concurrency is None


def test_dl4j_parallelism_cap():
    assert cal.DL4J_PROFILE.max_parallelism == 8


def test_sps_fixed_overheads_ordering():
    """Table 5's engine ordering for embedded serving comes from the
    per-event fixed costs: Spark < Kafka Streams < Flink."""
    def fixed(profile):
        return (
            profile.source_overhead
            + profile.score_overhead
            + profile.sink_overhead
        )

    assert fixed(cal.SPARK_PROFILE) < fixed(cal.KAFKA_STREAMS_PROFILE)
    assert fixed(cal.KAFKA_STREAMS_PROFILE) < fixed(cal.FLINK_PROFILE)


def test_ray_overheads_dominate_everything():
    assert cal.RAY_ACTOR_OVERHEAD > 10 * (
        cal.FLINK_PROFILE.source_overhead
        + cal.FLINK_PROFILE.score_overhead
        + cal.FLINK_PROFILE.sink_overhead
    )


def test_ray_serve_proxy_matches_fig11_ceiling():
    """1 / proxy cost ~ the paper's 455 ev/s external ceiling on Ray."""
    assert 1.0 / cal.RAY_SERVE_PROXY_COST == pytest.approx(455, rel=0.05)


def test_network_matches_paper_pings():
    """§4.2: RTT(3 KB) ~ 0.945 ms, RTT(64 KB) ~ 1.565 ms."""
    def rtt(nbytes):
        return 2 * cal.NET_BASE_LATENCY + nbytes / cal.NET_BANDWIDTH

    assert rtt(3 * 1024) == pytest.approx(0.945e-3, rel=0.1)
    assert rtt(64 * 1024) == pytest.approx(1.565e-3, rel=0.15)


def test_json_point_size_matches_paper():
    """§4.2 sizes one FFNN data point at ~3 KB."""
    nbytes = 784 * cal.JSON_BYTES_PER_VALUE + cal.JSON_ENVELOPE_BYTES
    assert 2.5 * 1024 <= nbytes <= 3.6 * 1024


def test_noise_hierarchy_for_fig8():
    """TF-Serving must be the volatile engine, ONNX the stable one."""
    assert cal.TF_SERVING_PROFILE.slow_sigma > 3 * cal.ONNX_PROFILE.slow_sigma
    assert cal.TF_SERVING_PROFILE.noise_sigma > cal.ONNX_PROFILE.noise_sigma


def test_gpu_speedups_match_fig9_ordering():
    """TF-Serving gains more from the GPU than ONNX (Fig. 9)."""
    assert cal.TF_SERVING_PROFILE.gpu_speedup > cal.ONNX_PROFILE.gpu_speedup
