"""Dynamic tie tracker: planted-race detection, causality, pragmas."""

import pathlib

from repro.analysis.tierace import TIE_RACE_RULE, TieTracker
from repro.simul.core import Environment, kernel_overrides
from repro.simul.resources import Store

from tests.analysis.fixtures import planted_race

FIXTURE = str(
    pathlib.Path(planted_race.__file__).resolve()
)


def _track(scenario):
    tracker = TieTracker()
    with kernel_overrides(tracker=tracker):
        scenario()
    return tracker


# -- planted race ------------------------------------------------------------


def test_planted_race_detected():
    tracker = _track(planted_race.run_tie_race)
    kept, suppressed = tracker.apply_pragmas()
    assert suppressed == []
    assert len(kept) == 1
    conflict = kept[0]
    assert conflict.time == 1.0
    assert "w" in (conflict.mode_a, conflict.mode_b)
    assert conflict.state.startswith("store#")
    assert conflict.site_a.path == FIXTURE
    assert conflict.site_b.path == FIXTURE
    assert {conflict.site_a.function, conflict.site_b.function} == {"_racer"}


def test_conflict_reports_both_stack_contexts():
    tracker = _track(planted_race.run_tie_race)
    kept, __ = tracker.apply_pragmas()
    text = kept[0].describe()
    assert "pop order decides" in text
    assert f"{FIXTURE}:{kept[0].site_a.line}" in text
    assert f"{FIXTURE}:{kept[0].site_b.line}" in text


def test_conflict_findings_flow_through_rule_machinery():
    tracker = _track(planted_race.run_tie_race)
    kept, __ = tracker.apply_pragmas()
    findings = kept[0].findings()
    assert all(f.rule == TIE_RACE_RULE for f in findings)
    assert {f.line for f in findings} == {
        kept[0].site_a.line, kept[0].site_b.line
    }


# -- causality pruning -------------------------------------------------------


def test_causal_chain_is_silent():
    tracker = _track(planted_race.run_clean)
    kept, __ = tracker.apply_pragmas()
    assert kept == []
    assert tracker.accesses_recorded > 0  # it did watch, it just found order


def test_same_tick_spawn_edge_prunes_conflict():
    """A process spawned mid-tick inherits its creator's root: writes by
    parent and child in the same tie class are ordered, not racing."""

    def scenario():
        env = Environment()
        store = Store(env)

        def child(k):
            store.try_put(k)
            yield env.timeout(0.1)

        def parent():
            yield env.timeout(1.0)
            store.try_put("p")
            env.process(child("c"))  # same tick, caused by parent

        env.process(parent())
        env.run(until=3.0)

    tracker = _track(scenario)
    kept, __ = tracker.apply_pragmas()
    assert kept == []
    assert tracker.accesses_recorded >= 2


def test_cross_root_same_tick_writes_conflict():
    def scenario():
        env = Environment()
        store = Store(env)

        def writer(k):
            yield env.timeout(1.0)
            store.try_put(k)

        env.process(writer("a"))
        env.process(writer("b"))
        env.run(until=2.0)

    tracker = _track(scenario)
    kept, __ = tracker.apply_pragmas()
    assert len(kept) == 1


def test_different_ticks_never_conflict():
    def scenario():
        env = Environment()
        store = Store(env)

        def writer(k, delay):
            yield env.timeout(delay)
            store.try_put(k)

        env.process(writer("a", 1.0))
        env.process(writer("b", 2.0))
        env.run(until=3.0)

    tracker = _track(scenario)
    kept, __ = tracker.apply_pragmas()
    assert kept == []


def test_conflicts_deduplicated_across_ticks():
    """The same source-site pair racing every tick reports once."""

    def scenario():
        env = Environment()
        store = Store(env, capacity=1)

        def racer(k):
            for __ in range(5):
                yield env.timeout(1.0)
                store.try_put(k)
                store.try_get()

        env.process(racer("a"))
        env.process(racer("b"))
        env.run(until=10.0)

    tracker = _track(scenario)
    kept, __ = tracker.apply_pragmas()
    sites = {
        (c.site_a.path, c.site_a.line, c.site_b.path, c.site_b.line)
        for c in kept
    }
    assert len(sites) == len(kept)  # no duplicate site pairs survive


# -- pragma suppression ------------------------------------------------------


def test_pragma_at_access_site_suppresses(tmp_path):
    module = tmp_path / "racy_module.py"
    module.write_text(
        "def writer(env, store, k):\n"
        "    yield env.timeout(1.0)\n"
        "    store.try_put(k)  # crayfish: allow[tie-race]: last write is load-shedding, both orders valid\n"
    )
    namespace = {}
    exec(compile(module.read_text(), str(module), "exec"), namespace)

    def scenario():
        env = Environment()
        store = Store(env, capacity=1)
        env.process(namespace["writer"](env, store, "a"))
        env.process(namespace["writer"](env, store, "b"))
        env.run(until=2.0)

    tracker = _track(scenario)
    kept, suppressed = tracker.apply_pragmas()
    assert kept == []
    assert len(suppressed) == 1
    assert suppressed[0].site_a.path == str(module)


def test_tracker_only_active_inside_override_scope():
    tracker = TieTracker()
    with kernel_overrides(tracker=tracker):
        pass  # no run inside the scope
    planted_race.run_tie_race()  # outside: must not be observed
    kept, __ = tracker.apply_pragmas()
    assert kept == []
    assert tracker.accesses_recorded == 0
