"""Runtime sanitizer: forbidden entry points raise, cleanly restored."""

import random
import time

import numpy as np
import pytest

from repro.analysis.sanitizer import DeterminismViolation, determinism_sanitizer
from repro.config import ExperimentConfig
from repro.core.runner import ExperimentRunner


def test_wall_clock_raises_inside():
    with determinism_sanitizer():
        with pytest.raises(DeterminismViolation, match="time.time"):
            time.time()
        with pytest.raises(DeterminismViolation, match="perf_counter"):
            time.perf_counter()
        with pytest.raises(DeterminismViolation, match="sleep"):
            time.sleep(0.001)


def test_global_random_raises_inside():
    with determinism_sanitizer():
        with pytest.raises(DeterminismViolation, match="random.random"):
            random.random()
        with pytest.raises(DeterminismViolation, match="random.seed"):
            random.seed(1)
        with pytest.raises(DeterminismViolation, match="np.random.seed"):
            np.random.seed(1)
        with pytest.raises(DeterminismViolation, match="np.random.uniform"):
            np.random.uniform()


def test_unseeded_default_rng_raises_seeded_passes():
    with determinism_sanitizer():
        with pytest.raises(DeterminismViolation, match="OS entropy"):
            np.random.default_rng()
        generator = np.random.default_rng(7)
        assert 0.0 <= generator.random() < 1.0


def test_everything_restored_after_exit():
    before = (time.time, time.sleep, random.random, np.random.default_rng)
    with determinism_sanitizer():
        pass
    after = (time.time, time.sleep, random.random, np.random.default_rng)
    assert before == after
    assert time.time() > 0  # callable again


def test_restored_even_when_body_raises():
    with pytest.raises(RuntimeError, match="boom"):
        with determinism_sanitizer():
            raise RuntimeError("boom")
    assert time.time() > 0


def test_violation_message_names_the_remedies():
    with determinism_sanitizer():
        with pytest.raises(DeterminismViolation) as info:
            time.monotonic()
    assert "Environment.now" in str(info.value)
    assert "RandomStreams" in str(info.value)


def test_injected_wall_clock_call_fails_a_sanitized_run():
    """The acceptance case: a time.time() smuggled into the hot path of a
    real experiment raises under the sanitizer instead of silently
    corrupting reproducibility."""
    config = ExperimentConfig(
        sps="flink", serving="onnx", model="ffnn", ir=50.0, duration=1.0
    )
    runner = ExperimentRunner(config)
    original = runner._schedule

    def schedule_with_wall_clock(seed):
        time.time()  # the injected nondeterminism
        return original(seed)

    runner._schedule = schedule_with_wall_clock
    with determinism_sanitizer():
        with pytest.raises(DeterminismViolation, match="time.time"):
            runner.run()
    # An untampered runner completes under the sanitizer.
    result = ExperimentRunner(config).run()
    assert result.completed > 0


def test_sanitized_run_matches_unsanitized_run():
    """The sanitizer is pure guard rails: it never changes results."""
    config = ExperimentConfig(
        sps="kafka_streams", serving="onnx", model="ffnn", ir=50.0, duration=1.0
    )
    plain = ExperimentRunner(config).run()
    with determinism_sanitizer():
        guarded = ExperimentRunner(config).run()
    assert guarded.throughput == plain.throughput
    assert guarded.latency == plain.latency
    assert guarded.series == plain.series
