"""Per-rule fixtures: one true positive and one true negative each.

Every snippet is linted with the full rule set, so a fixture meant to
trip exactly one rule also proves the other seven stay quiet on it.
"""

import textwrap

import pytest

from repro.analysis.core import lint_source, rule_names


def findings_for(source: str):
    report = lint_source(textwrap.dedent(source), path="fixture.py")
    return report.findings


def rules_hit(source: str) -> set[str]:
    return {f.rule for f in findings_for(source)}


# -- wall-clock -------------------------------------------------------------

WALL_CLOCK_TP = """
    import time

    def measure():
        start = time.perf_counter()
        return time.time() - start
"""

WALL_CLOCK_TN = """
    def measure(env):
        start = env.now
        yield env.timeout(1.0)
        return env.now - start
"""


def test_wall_clock_true_positive():
    findings = [f for f in findings_for(WALL_CLOCK_TP) if f.rule == "wall-clock"]
    assert len(findings) == 2
    assert "time.perf_counter" in findings[0].message
    assert "Environment.now" in findings[0].message


def test_wall_clock_true_negative():
    assert "wall-clock" not in rules_hit(WALL_CLOCK_TN)


def test_wall_clock_from_import_and_datetime():
    source = """
        from time import sleep
        from datetime import datetime

        def nap():
            sleep(1)
            return datetime.now()
    """
    findings = [f for f in findings_for(source) if f.rule == "wall-clock"]
    assert {f.message.split("'")[1] for f in findings} == {
        "time.sleep",
        "datetime.datetime.now",
    }


def test_wall_clock_ignores_unrelated_attributes():
    # A local object with a .time attribute is not the time module.
    source = """
        def f(record):
            return record.time.time
    """
    assert "wall-clock" not in rules_hit(source)


# -- global-random ----------------------------------------------------------

GLOBAL_RANDOM_TP = """
    import random
    import numpy as np

    def jitter():
        np.random.seed(0)
        return random.random() + np.random.uniform()
"""

GLOBAL_RANDOM_TN = """
    def jitter(rng):
        return rng.stream("jitter").uniform()
"""


def test_global_random_true_positive():
    findings = [
        f for f in findings_for(GLOBAL_RANDOM_TP) if f.rule == "global-random"
    ]
    assert len(findings) == 3
    assert all("RandomStreams" in f.message for f in findings)


def test_global_random_true_negative():
    assert "global-random" not in rules_hit(GLOBAL_RANDOM_TN)


def test_global_random_flags_adhoc_default_rng():
    source = """
        import numpy as np

        def build(seed):
            return np.random.default_rng(seed)
    """
    assert "global-random" in rules_hit(source)


def test_global_random_ignores_generator_methods():
    # Draws on an explicit Generator object are the sanctioned pattern.
    source = """
        def draw(generator):
            return generator.uniform(0, 1)
    """
    assert "global-random" not in rules_hit(source)


# -- hash-randomization -----------------------------------------------------

HASH_TP = """
    def stream_seed(name):
        return hash(name) % 2**32
"""

HASH_TN = """
    import zlib

    def stream_seed(name):
        return zlib.crc32(name.encode("utf-8"))
"""


def test_hash_true_positive():
    findings = [
        f for f in findings_for(HASH_TP) if f.rule == "hash-randomization"
    ]
    assert len(findings) == 1
    assert "zlib.crc32" in findings[0].message


def test_hash_true_negative():
    assert "hash-randomization" not in rules_hit(HASH_TN)


def test_dunder_hash_definition_not_flagged():
    source = """
        class Key:
            def __hash__(self):
                return 7
    """
    assert "hash-randomization" not in rules_hit(source)


# -- unsorted-iteration -----------------------------------------------------

UNSORTED_TP = """
    def export(results):
        pending = {r.name for r in results}
        for name in pending:
            print(name)
"""

UNSORTED_TN = """
    def export(results):
        pending = {r.name for r in results}
        for name in sorted(pending):
            print(name)
"""


def test_unsorted_iteration_true_positive():
    findings = [
        f for f in findings_for(UNSORTED_TP) if f.rule == "unsorted-iteration"
    ]
    assert len(findings) == 1
    assert "sorted" in findings[0].message


def test_unsorted_iteration_true_negative():
    assert "unsorted-iteration" not in rules_hit(UNSORTED_TN)


def test_unsorted_iteration_values_feeding_scheduling():
    """The .values() blind spot: insertion-ordered views are fine in
    general, but not when the loop body enqueues simulation work."""
    assert "unsorted-iteration" in rules_hit(
        "def spawn_all(env, workers):\n"
        "    for w in workers.values():\n"
        "        env.process(w.run())\n"
    )
    assert "unsorted-iteration" in rules_hit(
        "def spawn_all(engine, lanes):\n"
        "    for lane in lanes.values():\n"
        "        engine.push_batch(lane)\n"
    )
    assert "unsorted-iteration" in rules_hit(
        "def spawn_all(env, workers):\n"
        "    return [env.process(w.run()) for w in workers.values()]\n"
    )


def test_unsorted_iteration_values_without_scheduling_clean():
    assert "unsorted-iteration" not in rules_hit(
        "def names(workers):\n"
        "    return [w.name for w in workers.values()]\n"
    )
    assert "unsorted-iteration" not in rules_hit(
        "def total(queues):\n"
        "    return sum(len(q) for q in queues.values())\n"
    )


def test_unsorted_iteration_set_literal_and_calls():
    assert "unsorted-iteration" in rules_hit(
        "rows = list(set(xs))\n"
    )
    assert "unsorted-iteration" in rules_hit(
        "text = ','.join({'a', 'b'})\n"
    )
    assert "unsorted-iteration" in rules_hit(
        "def f(d):\n    for k in d.keys():\n        yield k\n"
    )


def test_unsorted_iteration_annotated_attribute():
    source = """
        class Tracker:
            def __init__(self):
                self._seen: set[int] = set()

            def dump(self):
                return [x for x in self._seen]
    """
    assert "unsorted-iteration" in rules_hit(source)


def test_unsorted_iteration_order_insensitive_consumers_ok():
    source = """
        def stats(xs):
            seen = set(xs)
            total = sum(x for x in seen)
            return total, len(seen), sorted(seen), max(seen)
    """
    assert "unsorted-iteration" not in rules_hit(source)


def test_unsorted_iteration_membership_ok():
    source = """
        def dedup(xs):
            seen = set()
            for x in xs:
                if x in seen:
                    continue
                seen.add(x)
                yield x
    """
    assert "unsorted-iteration" not in rules_hit(source)


# -- id-ordering ------------------------------------------------------------

ID_TP = """
    def tiebreak(events):
        return sorted(events, key=lambda e: id(e))
"""

ID_TN = """
    def tiebreak(events):
        return sorted(events, key=lambda e: e.seq)
"""


def test_id_ordering_true_positive():
    findings = [f for f in findings_for(ID_TP) if f.rule == "id-ordering"]
    assert len(findings) == 1
    assert "address" in findings[0].message


def test_id_ordering_true_negative():
    assert "id-ordering" not in rules_hit(ID_TN)


# -- blocking-io ------------------------------------------------------------

BLOCKING_TP = """
    def worker(env):
        with open("data.bin") as handle:
            payload = handle.read()
        yield env.timeout(1.0)
        return payload
"""

BLOCKING_TN = """
    def load():
        with open("data.bin") as handle:
            return handle.read()

    def worker(env, payload):
        yield env.timeout(1.0)
        return payload
"""


def test_blocking_io_true_positive():
    findings = [f for f in findings_for(BLOCKING_TP) if f.rule == "blocking-io"]
    assert len(findings) == 1
    assert "worker" in findings[0].message


def test_blocking_io_true_negative():
    # open() outside a generator is boundary I/O: allowed.
    assert "blocking-io" not in rules_hit(BLOCKING_TN)


def test_blocking_io_socket_and_sleep_in_generator():
    source = """
        import socket
        import time

        def proc(env):
            sock = socket.create_connection(("host", 80))
            time.sleep(0.1)
            yield env.timeout(1.0)
    """
    hit = [f.rule for f in findings_for(source)]
    assert hit.count("blocking-io") == 2
    # time.sleep is independently a wall-clock violation.
    assert "wall-clock" in hit


def test_blocking_io_nested_function_yield_not_a_generator():
    source = """
        def outer():
            def inner(env):
                yield env.timeout(1)
            return open("x").read()
    """
    assert "blocking-io" not in rules_hit(source)


# -- mutable-default --------------------------------------------------------

MUTABLE_TP = """
    def collect(item, bucket=[]):
        bucket.append(item)
        return bucket
"""

MUTABLE_TN = """
    def collect(item, bucket=None):
        if bucket is None:
            bucket = []
        bucket.append(item)
        return bucket
"""


def test_mutable_default_true_positive():
    findings = [
        f for f in findings_for(MUTABLE_TP) if f.rule == "mutable-default"
    ]
    assert len(findings) == 1
    assert "collect" in findings[0].message


def test_mutable_default_true_negative():
    assert "mutable-default" not in rules_hit(MUTABLE_TN)


def test_mutable_default_kwonly_and_calls():
    source = """
        def f(*, table={}, members=set(), order=dict()):
            return table, members, order
    """
    findings = [f for f in findings_for(source) if f.rule == "mutable-default"]
    assert len(findings) == 3


# -- silent-except ----------------------------------------------------------

SILENT_TP = """
    def hot_path(batch):
        try:
            batch.score()
        except Exception:
            pass
"""

SILENT_TN = """
    def hot_path(batch, log):
        try:
            batch.score()
        except ValueError:
            pass
        except Exception as error:
            log.append(error)
            raise
"""


def test_silent_except_true_positive():
    findings = [f for f in findings_for(SILENT_TP) if f.rule == "silent-except"]
    assert len(findings) == 1


def test_silent_except_true_negative():
    # Narrow except-pass and broad-but-handled are both legitimate.
    assert "silent-except" not in rules_hit(SILENT_TN)


def test_silent_except_bare():
    source = """
        def f():
            try:
                return 1
            except:
                return 2
    """
    findings = [f for f in findings_for(source) if f.rule == "silent-except"]
    assert len(findings) == 1
    assert "bare" in findings[0].message


# -- framework --------------------------------------------------------------


def test_all_rules_registered():
    assert set(rule_names()) == {
        "wall-clock",
        "global-random",
        "hash-randomization",
        "unsorted-iteration",
        "id-ordering",
        "blocking-io",
        "mutable-default",
        "silent-except",
        # concurrency-race catalogue (repro.analysis.races)
        "race-request-leak",
        "race-shared-condition",
        "race-shared-state",
        "race-zero-timeout",
        "tie-race",
    }


def test_unknown_rule_rejected():
    from repro.analysis.core import make_rules

    with pytest.raises(ValueError, match="unknown lint rule"):
        make_rules(["wall-clock", "no-such-rule"])


def test_syntax_error_reported_not_raised():
    report = lint_source("def broken(:\n", path="bad.py")
    assert len(report.findings) == 1
    assert report.findings[0].rule == "pragma"
    assert "does not parse" in report.findings[0].message


def test_findings_carry_location():
    report = lint_source("import time\nt = time.time()\n", path="mod.py")
    finding = report.findings[0]
    assert finding.path == "mod.py"
    assert finding.line == 2
    assert finding.location() == "mod.py:2:4"
