"""Dual-run verification harness and the linter's clean-tree gate."""

import dataclasses
import pathlib

from repro.analysis.core import lint_paths
from repro.analysis.determinism import (
    ARTIFACTS,
    run_fingerprints,
    verify_determinism,
    verify_engine,
)
from repro.config import SPS_NAMES, ExperimentConfig

REPO = pathlib.Path(__file__).resolve().parents[2]

SMALL = ExperimentConfig(
    sps="flink", serving="onnx", model="ffnn", ir=60.0, duration=1.0
)


def test_verify_engine_all_artifacts_identical():
    verdict = verify_engine(SMALL)
    assert verdict.identical
    assert verdict.mismatched == ()
    assert tuple(name for name, *_ in verdict.digests) == ARTIFACTS


def test_verify_determinism_all_four_engines():
    verdicts = verify_determinism(
        dataclasses.replace(SMALL, duration=1.0), engines=SPS_NAMES
    )
    assert [v.sps for v in verdicts] == list(SPS_NAMES)
    failed = [v.sps for v in verdicts if not v.identical]
    assert failed == [], f"nondeterministic engines: {failed}"


def test_fingerprints_differ_across_seeds():
    """The byte-diff is sensitive: a different seed must change bytes —
    otherwise 'identical' would be vacuously true."""
    first = run_fingerprints(SMALL, sanitize=False)
    second = run_fingerprints(
        dataclasses.replace(SMALL, seed=1), sanitize=False
    )
    assert first["results.json"] != second["results.json"]


def test_fingerprints_cover_every_surface():
    artifacts = run_fingerprints(SMALL, sanitize=False)
    assert set(artifacts) == set(ARTIFACTS)
    assert all(isinstance(v, bytes) and v for v in artifacts.values())


def test_source_tree_lints_clean():
    """The CI gate, enforced from inside tier-1 as well: `src/` must
    carry zero unsuppressed findings."""
    reports = lint_paths([str(REPO / "src")])
    dirty = [
        f"{finding.location()}: {finding.rule}: {finding.message}"
        for report in reports
        for finding in report.findings
    ]
    assert dirty == [], "\n".join(dirty)


def test_source_tree_suppressions_all_have_reasons():
    reports = lint_paths([str(REPO / "src")])
    for report in reports:
        for item in report.suppressed:
            assert item.pragma.reason, (
                f"{report.path}:{item.pragma.line} pragma lacks a reason"
            )
