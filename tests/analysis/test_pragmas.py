"""Pragma parsing, suppression scoping, and pragma hygiene."""

import textwrap

from repro.analysis.core import lint_source
from repro.analysis.pragmas import parse_pragmas


def lint(source: str):
    return lint_source(textwrap.dedent(source), path="fixture.py")


def test_trailing_pragma_suppresses_same_line():
    report = lint("""
        import time

        def boundary():
            return time.time()  # crayfish: allow[wall-clock]: CLI boundary timestamp, never enters simulated results
    """)
    assert report.findings == ()
    assert len(report.suppressed) == 1
    assert report.suppressed[0].finding.rule == "wall-clock"
    assert "CLI boundary" in report.suppressed[0].pragma.reason


def test_standalone_pragma_suppresses_next_line():
    report = lint("""
        import time

        def boundary():
            # crayfish: allow[wall-clock]: wall time for the progress spinner only
            return time.time()
    """)
    assert report.findings == ()
    assert len(report.suppressed) == 1


def test_standalone_pragma_does_not_leak_past_next_line():
    report = lint("""
        import time

        def boundary():
            # crayfish: allow[wall-clock]: covers only the next line
            a = time.time()
            b = time.time()
            return a - b
    """)
    assert len(report.suppressed) == 1
    assert len(report.findings) == 1
    assert report.findings[0].line == 7


def test_file_pragma_suppresses_everywhere():
    report = lint("""
        # crayfish: allow-file[wall-clock]: dashboard module, renders real wall time by design
        import time

        def a():
            return time.time()

        def b():
            return time.perf_counter()
    """)
    assert report.findings == ()
    assert len(report.suppressed) == 2


def test_pragma_covers_multiple_rules():
    report = lint("""
        import time, random

        def boundary():
            return time.time() + random.random()  # crayfish: allow[wall-clock, global-random]: interactive demo path outside any measured run
    """)
    assert report.findings == ()
    assert {s.finding.rule for s in report.suppressed} == {
        "wall-clock",
        "global-random",
    }


def test_pragma_without_reason_is_a_finding():
    report = lint("""
        import time

        t = time.time()  # crayfish: allow[wall-clock]
    """)
    # The suppression still applies, but the missing reason is an error.
    assert len(report.suppressed) == 1
    assert len(report.findings) == 1
    assert report.findings[0].rule == "pragma"
    assert "no reason" in report.findings[0].message


def test_unused_pragma_is_a_finding():
    report = lint("""
        x = 1  # crayfish: allow[wall-clock]: nothing here actually needs this
    """)
    assert len(report.findings) == 1
    assert "suppresses nothing" in report.findings[0].message


def test_unused_pragma_for_unselected_rule_is_left_alone():
    # Under --select the unselected rules never run, so their pragmas
    # cannot be proven dead and must not be reported as suppressing
    # nothing (the CI race-gate lints src/ with only the race rules).
    from repro.analysis.core import make_rules

    report = lint_source(
        textwrap.dedent("""
            import time

            t = time.time()  # crayfish: allow[wall-clock]: CLI boundary timestamp
        """),
        path="fixture.py",
        rules=make_rules(["race-zero-timeout", "unsorted-iteration"]),
    )
    assert report.findings == ()


def test_pragma_naming_unknown_rule_is_a_finding():
    report = lint("""
        x = 1  # crayfish: allow[no-such-rule]: typo'd rule name
    """)
    assert len(report.findings) == 1
    assert "unknown rule" in report.findings[0].message


def test_pragma_does_not_suppress_other_rules():
    report = lint("""
        import time

        t = time.time()  # crayfish: allow[mutable-default]: wrong rule on purpose
    """)
    rules = {f.rule for f in report.findings}
    # The wall-clock finding survives AND the pragma is flagged as unused.
    assert "wall-clock" in rules
    assert "pragma" in rules


def test_pragma_inside_string_literal_ignored():
    pragmas = parse_pragmas(
        'text = "# crayfish: allow[wall-clock]: not a real pragma"\n'
    )
    assert pragmas == []


def test_parse_pragma_fields():
    source = (
        "# crayfish: allow-file[wall-clock]: whole file\n"
        "x = 1  # crayfish: allow[id-ordering, silent-except]: two rules\n"
    )
    file_pragma, line_pragma = parse_pragmas(source)
    assert file_pragma.kind == "allow-file"
    assert file_pragma.rules == ("wall-clock",)
    assert line_pragma.kind == "allow"
    assert line_pragma.rules == ("id-ordering", "silent-except")
    assert line_pragma.reason == "two rules"
    assert line_pragma.standalone is False
    assert line_pragma.target_line == 2
