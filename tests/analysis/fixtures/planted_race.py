"""Planted concurrency hazards — the race detector's self-test target.

Every construct in this file violates one race rule ON PURPOSE; the
analysis test suite and the CI ``race-gate`` job assert that the static
pass and the dynamic tie tracker both flag it. DO NOT "fix" anything
here and DO NOT add suppression pragmas — a clean lint of this file
means the detector is broken, not the fixture.

The dynamic half (:func:`run_tie_race`) is executable: two processes
with no happens-before edge hit a capacity-1 store in the same
``(time, priority)`` tie class, so which one lands its item is decided
by pop order alone.
"""

from repro.simul.core import Environment
from repro.simul.resources import Resource, Store


# -- race-request-leak: slot never released ---------------------------------


def leaky_never(env, gpu):
    slot = gpu.request()
    yield slot
    yield env.timeout(1.0)
    # process ends still holding the slot: capacity leaks forever


# -- race-request-leak: released on the happy path only ---------------------


def leaky_happy_path(env, gpu):
    slot = gpu.request()
    yield slot
    yield env.timeout(1.0)  # an interrupt here leaks the slot
    gpu.release(slot)


# -- race-shared-condition: waiting on a shared long-lived event ------------


def impatient_waiter(hub, env):
    # hub.ready outlives this wait; the condition callback stays attached
    yield env.any_of([hub.ready, env.timeout(0.5)])


# -- race-shared-state: two concurrent writers, different values ------------


class PlantedStateRace:
    def __init__(self, env):
        self.env = env
        self.mode = "idle"

    def start(self):
        self.env.process(self._writer_a())
        self.env.process(self._writer_b())

    def _writer_a(self):
        yield self.env.timeout(1.0)
        self.mode = "a"

    def _writer_b(self):
        yield self.env.timeout(1.0)
        self.mode = "b"  # survivor decided by tie pop order


# -- race-zero-timeout: insertion-order handoff -----------------------------


def zero_yielder(env):
    yield env.timeout(0)  # "let others run" — really "let seq order pick"
    return env.now


# -- unsorted-iteration (.values() blind spot): spawn order from a dict -----


def spawn_fleet(env, workers):
    for worker in workers.values():
        env.process(worker)


# -- dynamic planted race: same-tick cross-root store conflict --------------


def _racer(env, store, item):
    yield env.timeout(1.0)
    store.try_put(item)


def run_tie_race():
    """Two independent processes race for one store slot at t=1.0.

    Returns the store; its single surviving item is whichever racer the
    scheduler popped first — the canonical CONFIRMED tie-class conflict
    the tracker must report (write vs full-store probe, distinct roots).
    """
    env = Environment()
    store = Store(env, capacity=1)
    env.process(_racer(env, store, "a"))
    env.process(_racer(env, store, "b"))
    env.run(until=2.0)
    return store


def run_clean(n=3):
    """Control scenario: same shape, but a causality chain not a race.

    Each worker schedules the next one mid-tick, so every access shares
    one same-tick scheduling root and the tracker must stay silent.
    """
    env = Environment()
    store = Store(env)
    gpu = Resource(env, capacity=1)

    def chain(k):
        yield env.timeout(1.0)
        with gpu.request() as slot:
            yield slot
            store.try_put(k)
        if k + 1 < n:
            env.process(chain(k + 1))

    env.process(chain(0))
    env.run(until=5.0)
    return store
