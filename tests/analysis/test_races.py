"""Static race rules: the process graph and the four hazard patterns."""

import pathlib

from repro.analysis.core import lint_file, lint_source, make_rules
from repro.analysis.races import ProcessGraph

FIXTURE = (
    pathlib.Path(__file__).resolve().parent / "fixtures" / "planted_race.py"
)

RACE_RULES = (
    "race-request-leak",
    "race-shared-condition",
    "race-shared-state",
    "race-zero-timeout",
)


def _lint(source, rules=RACE_RULES):
    return lint_source(source, "sample.py", rules=make_rules(rules))


def _rules_found(report):
    return {finding.rule for finding in report.findings}


# -- planted fixture ---------------------------------------------------------


def test_planted_fixture_trips_every_static_rule():
    report = lint_file(FIXTURE, rules=make_rules(RACE_RULES))
    assert _rules_found(report) == set(RACE_RULES)


def test_planted_fixture_findings_name_the_planted_functions():
    report = lint_file(FIXTURE, rules=make_rules(RACE_RULES))
    text = " ".join(f.message for f in report.findings)
    for marker in ("leaky_never", "leaky_happy_path", "_writer_a", "hub.ready"):
        assert marker in text


def test_planted_fixture_values_blind_spot():
    report = lint_file(FIXTURE, rules=make_rules(["unsorted-iteration"]))
    assert any(".values() view into event scheduling" in f.message
               for f in report.findings)


# -- process graph -----------------------------------------------------------


GRAPH_SRC = '''
def driver(env):
    env.process(worker(env))
    yield env.timeout(1.0)

def worker(env):
    yield from helper(env)

def helper(env):
    yield env.timeout(1.0)

def plain(env):
    return 42
'''


def test_process_graph_spawns_and_delegates():
    import ast

    from repro.analysis.core import ModuleContext

    tree = ast.parse(GRAPH_SRC)
    graph = ProcessGraph(ModuleContext(GRAPH_SRC, "g.py", tree))
    assert set(graph.processes) == {"driver", "worker", "helper"}
    assert "worker" in graph.spawned
    concurrent = {info.node.name for info in graph.concurrent_processes()}
    # helper is a pure yield-from subroutine of worker, never spawned
    assert "helper" not in concurrent
    assert {"driver", "worker"} <= concurrent


# -- race-request-leak -------------------------------------------------------


def test_request_leak_never_released():
    report = _lint('''
def proc(env, res):
    slot = res.request()
    yield slot
    yield env.timeout(1.0)
''')
    assert _rules_found(report) == {"race-request-leak"}
    assert "never releases" in report.findings[0].message


def test_request_leak_happy_path_release():
    report = _lint('''
def proc(env, res):
    slot = res.request()
    yield slot
    yield env.timeout(1.0)
    res.release(slot)
''')
    assert _rules_found(report) == {"race-request-leak"}
    assert "happy path" in report.findings[0].message


def test_request_leak_finally_is_clean():
    report = _lint('''
def proc(env, res):
    slot = res.request()
    try:
        yield slot
        yield env.timeout(1.0)
    finally:
        res.release(slot)
''')
    assert report.clean


def test_request_leak_with_statement_is_clean():
    report = _lint('''
def proc(env, res):
    with res.request() as slot:
        yield slot
        yield env.timeout(1.0)
''')
    assert report.clean


def test_request_leak_escaped_slot_is_clean():
    """Handing the slot to another function moves ownership, not leaks."""
    report = _lint('''
def proc(env, res):
    slot = res.request()
    yield slot
    env.process(cleanup(env, res, slot))
    yield env.timeout(1.0)
''')
    assert report.clean


# -- race-shared-condition ---------------------------------------------------


def test_shared_condition_attribute_child_flagged():
    report = _lint('''
def proc(self, env):
    yield env.any_of([self.ready, env.timeout(0.5)])
''')
    assert _rules_found(report) == {"race-shared-condition"}
    assert "self.ready" in report.findings[0].message


def test_shared_condition_local_events_clean():
    report = _lint('''
def proc(env, res):
    done = env.timeout(1.0)
    gone = env.timeout(2.0)
    yield env.any_of([done, gone])
''')
    assert report.clean


# -- race-shared-state -------------------------------------------------------


SHARED_TEMPLATE = '''
class Thing:
    def start(self):
        self.env.process(self.a())
        self.env.process(self.b())

    def a(self):
        yield self.env.timeout(1.0)
        {write_a}

    def b(self):
        yield self.env.timeout(1.0)
        {write_b}
'''


def test_shared_state_different_constants_flagged():
    report = _lint(SHARED_TEMPLATE.format(
        write_a='self.mode = "a"', write_b='self.mode = "b"'
    ))
    assert _rules_found(report) == {"race-shared-state"}
    assert len(report.findings) == 2  # one per write site


def test_shared_state_counters_commute():
    report = _lint(SHARED_TEMPLATE.format(
        write_a="self.done += 1", write_b="self.done += 1"
    ))
    assert report.clean


def test_shared_state_identical_constants_converge():
    report = _lint(SHARED_TEMPLATE.format(
        write_a="self.closed = True", write_b="self.closed = True"
    ))
    assert report.clean


def test_shared_state_single_owner_clean():
    report = _lint(SHARED_TEMPLATE.format(
        write_a='self.mode = "a"', write_b="pass"
    ))
    assert report.clean


# -- race-zero-timeout -------------------------------------------------------


def test_zero_timeout_flagged():
    report = _lint('''
def proc(env):
    yield env.timeout(0)
''')
    assert _rules_found(report) == {"race-zero-timeout"}


def test_zero_timeout_with_priority_clean():
    report = _lint('''
def proc(env):
    yield env.timeout(0, priority=0)
''')
    assert report.clean


def test_nonzero_timeout_clean():
    report = _lint('''
def proc(env):
    yield env.timeout(0.5)
''')
    assert report.clean


# -- tie-race pseudo-rule ----------------------------------------------------


def test_tie_race_pragma_not_flagged_as_dead():
    """tie-race is dynamic: its pragmas legitimately suppress nothing
    during a static lint and must not trip dead-pragma hygiene."""
    report = lint_source(
        "x = 1  # crayfish: allow[tie-race]: known benign tick overlap\n",
        "sample.py",
    )
    assert report.clean


def test_static_pragma_still_flagged_as_dead():
    report = lint_source(
        "x = 1  # crayfish: allow[wall-clock]: stale excuse\n",
        "sample.py",
    )
    assert [f.rule for f in report.findings] == ["pragma"]
    assert "suppresses nothing" in report.findings[0].message
