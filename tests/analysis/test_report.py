"""Reporter output: text, JSON, and the suppression inventory."""

import json
import textwrap

from repro.analysis.core import lint_source
from repro.analysis.report import (
    render_json,
    render_suppressions,
    render_text,
    summarize,
)

DIRTY = textwrap.dedent("""
    import time

    def f():
        return time.time()

    def g():
        return hash("name")  # crayfish: allow[hash-randomization]: legacy key kept for artifact compatibility
""")


def reports():
    return [lint_source(DIRTY, path="pkg/mod.py")]


def test_render_text_lists_findings_and_summary():
    text = render_text(reports())
    assert "pkg/mod.py:5:11: wall-clock:" in text
    assert "1 file(s): 1 finding(s), 1 suppressed" in text
    # Suppressed findings stay hidden unless asked for.
    assert "hash-randomization" not in text


def test_render_text_show_suppressed():
    text = render_text(reports(), show_suppressed=True)
    assert "suppressed (legacy key kept for artifact compatibility)" in text


def test_render_json_round_trips():
    payload = json.loads(render_json(reports()))
    assert payload["summary"] == {"files": 1, "findings": 1, "suppressed": 1}
    finding = payload["findings"][0]
    assert finding["rule"] == "wall-clock"
    assert finding["path"] == "pkg/mod.py"
    assert finding["line"] == 5
    suppressed = payload["suppressed"][0]
    assert suppressed["rule"] == "hash-randomization"
    assert suppressed["reason"] == (
        "legacy key kept for artifact compatibility"
    )
    assert suppressed["scope"] == "line"


def test_render_suppressions_inventory():
    text = render_suppressions(reports())
    assert "## pkg/mod.py" in text
    assert "`hash-randomization` (line 8)" in text
    assert "legacy key kept for artifact compatibility" in text
    assert "1 suppression(s) total." in text


def test_summarize_counts_multiple_files():
    clean = lint_source("x = 1\n", path="clean.py")
    stats = summarize([clean] + reports())
    assert stats == {"files": 2, "findings": 1, "suppressed": 1}
