"""Schedule-perturbation proof harness: per-backend tie-order equivalence."""

import dataclasses

import pytest

from repro.analysis.order import verify_engine_order, verify_order
from repro.cluster.spec import ClusterSpec
from repro.config import SPS_NAMES, ExperimentConfig

SMALL = ExperimentConfig(
    sps="flink", serving="onnx", model="ffnn", ir=30.0, duration=0.6
)


@pytest.mark.parametrize("sps", SPS_NAMES)
def test_engine_order_independent_on_both_backends(sps):
    """Heap and calendar backends must pop tie classes equivalently, and
    seeded permutations of pop order must not move a single export byte."""
    verdict = verify_engine_order(
        dataclasses.replace(SMALL, sps=sps),
        permutations=2,
        sanitize=False,
    )
    assert verdict.backends_agree
    assert verdict.identical, f"{sps} order-dependent: {verdict.mismatched}"
    assert len(verdict.permutations) == 4  # 2 backends x 2 seeds
    assert {p.scheduler for p in verdict.permutations} == {"calendar", "heap"}


def test_clustered_two_nodes_order_independent():
    config = dataclasses.replace(
        SMALL,
        sps="kafka_streams",
        duration=0.5,
        cluster=ClusterSpec(nodes=2),
        use_broker=True,
        partitions=32,
    )
    verdict = verify_engine_order(config, permutations=2, sanitize=False)
    assert verdict.identical, f"clustered mismatch: {verdict.mismatched}"


def test_verify_order_covers_requested_engines():
    verdicts = verify_order(
        dataclasses.replace(SMALL, duration=0.4),
        engines=("flink", "ray"),
        permutations=1,
        sanitize=False,
    )
    assert [v.sps for v in verdicts] == ["flink", "ray"]
    assert all(v.identical for v in verdicts)


def test_verdict_reports_baseline_digests():
    verdict = verify_engine_order(
        dataclasses.replace(SMALL, duration=0.4),
        permutations=1,
        sanitize=False,
    )
    names = [name for name, __ in verdict.baseline]
    assert "results.json" in names
    assert all(len(digest) == 64 for __, digest in verdict.baseline)


def test_permutation_seed_zero_rejected():
    with pytest.raises(ValueError):
        verify_engine_order(SMALL, permutations=0)


def test_mismatch_is_detectable():
    """The proof must be falsifiable: comparing against a different-seed
    run's artifacts must NOT come out identical."""
    from repro.analysis.determinism import run_fingerprints

    first = run_fingerprints(
        dataclasses.replace(SMALL, duration=0.4), sanitize=False
    )
    second = run_fingerprints(
        dataclasses.replace(SMALL, duration=0.4, seed=3), sanitize=False
    )
    assert first["results.json"] != second["results.json"]
