"""Unit tests for experiment configuration validation."""

import pytest

from repro.config import ExperimentConfig, WorkloadKind, is_embedded
from repro.errors import ConfigError


def test_defaults_are_valid():
    config = ExperimentConfig()
    assert config.sps == "flink"
    assert config.embedded
    assert config.label() == "flink/onnx/ffnn"


def test_gpu_label():
    assert ExperimentConfig(gpu=True).label() == "flink/onnx-gpu/ffnn"


def test_is_embedded():
    assert is_embedded("onnx")
    assert is_embedded("dl4j")
    assert not is_embedded("tf_serving")
    with pytest.raises(ConfigError):
        is_embedded("mxnet")


@pytest.mark.parametrize(
    "field,value",
    [
        ("sps", "storm"),
        ("serving", "mxnet"),
        ("model", "bert"),
        ("bsz", 0),
        ("mp", 0),
        ("ir", 0.0),
        ("ir", -3.0),
        ("duration", 0.0),
        ("warmup_fraction", 1.0),
        ("warmup_fraction", -0.1),
        ("bd", 0.0),
        ("tbb", -1.0),
        ("partitions", 0),
    ],
)
def test_invalid_fields_rejected(field, value):
    with pytest.raises(ConfigError):
        ExperimentConfig(**{field: value})


def test_operator_parallelism_flink_only():
    ExperimentConfig(sps="flink", operator_parallelism=(32, 1, 32))
    with pytest.raises(ConfigError):
        ExperimentConfig(sps="kafka_streams", operator_parallelism=(32, 1, 32))
    with pytest.raises(ConfigError):
        ExperimentConfig(sps="flink", operator_parallelism=(32, 0, 32))


def test_bursty_requires_rate():
    with pytest.raises(ConfigError):
        ExperimentConfig(workload=WorkloadKind.PERIODIC_BURSTS, ir=None)


def test_replace_revalidates():
    config = ExperimentConfig()
    with pytest.raises(ConfigError):
        config.replace(mp=-1)
    assert config.replace(mp=8).mp == 8


def test_config_is_hashable_and_frozen():
    config = ExperimentConfig()
    assert hash(config)
    with pytest.raises(Exception):
        config.mp = 2  # type: ignore[misc]
