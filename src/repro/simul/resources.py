"""Shared resources and queues for simulation processes.

:class:`Resource` models a fixed number of identical servers (CPU slots,
serving workers). :class:`Store` is a FIFO buffer with optional capacity,
used for operator mailboxes, request queues, and broker fetch responses.
"""

from __future__ import annotations

import collections
import typing

from repro.errors import SimulationError
from repro.simul.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simul.core import Environment

_INF = float("inf")


def _compact(
    waiters: collections.deque,
) -> collections.deque:
    """Drop triggered (cancelled/abandoned) waiters from a wait queue."""
    return collections.deque(w for w in waiters if not w.triggered)


class Request(Event):
    """Pending acquisition of one resource slot. Usable as a context
    manager so the slot is always released::

        with resource.request() as req:
            yield req
            yield env.timeout(service_time)
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._enqueue(self)

    def _abandon(self) -> None:
        self.resource._mark_stale()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.resource.release(self)


class Resource:
    """``capacity`` identical slots with a FIFO wait queue."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: collections.deque[Request] = collections.deque()
        self._stale = 0

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        tracker = getattr(self.env, "_tracker", None)
        if tracker is not None:
            tracker.on_state(self, "resource", "w")
        return Request(self)

    def _enqueue(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)

    def _mark_stale(self) -> None:
        # A queued waiter was cancelled. Compact once cancelled entries
        # dominate, so long chaos runs can't grow the queue unboundedly.
        self._stale += 1
        if self._stale * 2 > len(self.queue):
            self.queue = _compact(self.queue)
            self._stale = 0

    def release(self, request: Request) -> None:
        """Return a slot; hands it to the longest-waiting request."""
        tracker = getattr(self.env, "_tracker", None)
        if tracker is not None:
            tracker.on_state(self, "resource", "w")
        try:
            self.users.remove(request)
        except ValueError:
            # Request never got a slot (e.g. released while still queued).
            try:
                self.queue.remove(request)
            except ValueError:
                pass
            return
        while self.queue:
            waiter = self.queue.popleft()
            if waiter.triggered:
                # cancelled/interrupted waiter (possibly cancelled from
                # outside interrupt(), which bypasses _mark_stale)
                if self._stale:
                    self._stale -= 1
                continue
            self.users.append(waiter)
            waiter.succeed()
            break


class StorePut(Event):
    __slots__ = ("store", "item")

    def __init__(self, store: "Store", item: object) -> None:
        super().__init__(store.env)
        self.store = store
        self.item = item

    def _abandon(self) -> None:
        self.store._mark_stale_putter()


class StoreGet(Event):
    __slots__ = ("store",)

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        self.store = store

    def _abandon(self) -> None:
        self.store._mark_stale_getter()


class Store:
    """FIFO item buffer.

    ``capacity`` bounds the number of buffered items; a bounded store is
    how backpressure is modelled — upstream ``put`` calls block until a
    downstream ``get`` frees a slot.
    """

    def __init__(self, env: "Environment", capacity: float = _INF) -> None:
        if capacity != _INF:
            try:
                valid = (
                    not isinstance(capacity, bool)
                    and float(capacity).is_integer()
                    and capacity >= 1
                )
            except (TypeError, ValueError):
                valid = False
            if not valid:
                # Fractional capacities such as 0.5 would pass a plain
                # positivity check yet behave as a zero-capacity store
                # (len(items) < 0.5 never admits an item).
                raise SimulationError(
                    f"store capacity must be an integer >= 1 or inf, got {capacity!r}"
                )
        self.env = env
        self.capacity = capacity
        self.items: collections.deque[object] = collections.deque()
        self._putters: collections.deque[StorePut] = collections.deque()
        self._getters: collections.deque[StoreGet] = collections.deque()
        self._stale_putters = 0
        self._stale_getters = 0

    def __len__(self) -> int:
        return len(self.items)

    @property
    def level(self) -> int:
        """Current number of buffered items."""
        return len(self.items)

    def put(self, item: object) -> StorePut:
        """Insert ``item``; the returned event fires once it is buffered."""
        tracker = getattr(self.env, "_tracker", None)
        if tracker is not None:
            tracker.on_state(self, "store", "w")
        event = StorePut(self, item)
        if len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
            self._dispatch_getters()
        else:
            self._putters.append(event)
        return event

    def try_put(self, item: object) -> bool:
        """Non-blocking insert; returns False when the store is full."""
        tracker = getattr(self.env, "_tracker", None)
        if tracker is not None:
            tracker.on_state(self, "store", "w" if len(self.items) < self.capacity else "r")
        if len(self.items) >= self.capacity:
            return False
        self.items.append(item)
        self._dispatch_getters()
        return True

    def get(self) -> StoreGet:
        """Remove the oldest item; the event's value is the item."""
        tracker = getattr(self.env, "_tracker", None)
        if tracker is not None:
            tracker.on_state(self, "store", "w")
        event = StoreGet(self)
        if self.items:
            event.succeed(self.items.popleft())
            self._dispatch_putters()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, object]:
        """Non-blocking remove; returns ``(ok, item_or_None)``."""
        tracker = getattr(self.env, "_tracker", None)
        if tracker is not None:
            tracker.on_state(self, "store", "w" if self.items else "r")
        if not self.items:
            return False, None
        item = self.items.popleft()
        self._dispatch_putters()
        return True, item

    def _mark_stale_getter(self) -> None:
        self._stale_getters += 1
        if self._stale_getters * 2 > len(self._getters):
            self._getters = _compact(self._getters)
            self._stale_getters = 0

    def _mark_stale_putter(self) -> None:
        self._stale_putters += 1
        if self._stale_putters * 2 > len(self._putters):
            self._putters = _compact(self._putters)
            self._stale_putters = 0

    def _dispatch_getters(self) -> None:
        while self._getters and self.items:
            getter = self._getters.popleft()
            if getter.triggered:
                if self._stale_getters:
                    self._stale_getters -= 1
                continue
            getter.succeed(self.items.popleft())

    def _dispatch_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            putter = self._putters.popleft()
            if putter.triggered:
                if self._stale_putters:
                    self._stale_putters -= 1
                continue
            self.items.append(putter.item)
            putter.succeed()
            self._dispatch_getters()
