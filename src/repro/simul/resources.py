"""Shared resources and queues for simulation processes.

:class:`Resource` models a fixed number of identical servers (CPU slots,
serving workers). :class:`Store` is a FIFO buffer with optional capacity,
used for operator mailboxes, request queues, and broker fetch responses.
"""

from __future__ import annotations

import collections
import typing

from repro.errors import SimulationError
from repro.simul.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simul.core import Environment


class Request(Event):
    """Pending acquisition of one resource slot. Usable as a context
    manager so the slot is always released::

        with resource.request() as req:
            yield req
            yield env.timeout(service_time)
    """

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._enqueue(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.resource.release(self)


class Resource:
    """``capacity`` identical slots with a FIFO wait queue."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: collections.deque[Request] = collections.deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        return Request(self)

    def _enqueue(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)

    def release(self, request: Request) -> None:
        """Return a slot; hands it to the longest-waiting request."""
        try:
            self.users.remove(request)
        except ValueError:
            # Request never got a slot (e.g. released while still queued).
            try:
                self.queue.remove(request)
            except ValueError:
                pass
            return
        while self.queue:
            waiter = self.queue.popleft()
            if waiter.triggered:
                continue  # cancelled/interrupted waiter
            self.users.append(waiter)
            waiter.succeed()
            break


class StorePut(Event):
    def __init__(self, store: "Store", item: object) -> None:
        super().__init__(store.env)
        self.item = item


class StoreGet(Event):
    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)


class Store:
    """FIFO item buffer.

    ``capacity`` bounds the number of buffered items; a bounded store is
    how backpressure is modelled — upstream ``put`` calls block until a
    downstream ``get`` frees a slot.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError(f"store capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: collections.deque[object] = collections.deque()
        self._putters: collections.deque[StorePut] = collections.deque()
        self._getters: collections.deque[StoreGet] = collections.deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def level(self) -> int:
        """Current number of buffered items."""
        return len(self.items)

    def put(self, item: object) -> StorePut:
        """Insert ``item``; the returned event fires once it is buffered."""
        event = StorePut(self, item)
        if len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
            self._dispatch_getters()
        else:
            self._putters.append(event)
        return event

    def try_put(self, item: object) -> bool:
        """Non-blocking insert; returns False when the store is full."""
        if len(self.items) >= self.capacity:
            return False
        self.items.append(item)
        self._dispatch_getters()
        return True

    def get(self) -> StoreGet:
        """Remove the oldest item; the event's value is the item."""
        event = StoreGet(self)
        if self.items:
            event.succeed(self.items.popleft())
            self._dispatch_putters()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, object]:
        """Non-blocking remove; returns ``(ok, item_or_None)``."""
        if not self.items:
            return False, None
        item = self.items.popleft()
        self._dispatch_putters()
        return True, item

    def _dispatch_getters(self) -> None:
        while self._getters and self.items:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(self.items.popleft())

    def _dispatch_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            putter = self._putters.popleft()
            if putter.triggered:
                continue
            self.items.append(putter.item)
            putter.succeed()
            self._dispatch_getters()
