"""Instrumentation probes recorded in simulated time."""

from __future__ import annotations

import bisect
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simul.core import Environment


class Counter:
    """A monotonically increasing event counter with rate queries."""

    def __init__(self, env: "Environment", name: str = "") -> None:
        self.env = env
        self.name = name
        self.total = 0
        self._times: list[float] = []

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("Counter only counts upward")
        self.total += amount
        self._times.extend([self.env.now] * amount)

    def count_between(self, start: float, end: float) -> int:
        """Number of increments with ``start <= t < end``."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        return hi - lo

    def rate_between(self, start: float, end: float) -> float:
        """Average increments per time unit over ``[start, end)``."""
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        return self.count_between(start, end) / (end - start)


class TimeSeries:
    """Append-only ``(time, value)`` samples, e.g. per-batch latencies."""

    def __init__(self, env: "Environment", name: str = "") -> None:
        self.env = env
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def __len__(self) -> int:
        return len(self.times)

    def record(self, value: float) -> None:
        self.times.append(self.env.now)
        self.values.append(value)

    def window(self, start: float, end: float) -> "list[tuple[float, float]]":
        """Samples with ``start <= t < end``."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        return list(zip(self.times[lo:hi], self.values[lo:hi]))

    def values_after(self, start: float) -> list[float]:
        lo = bisect.bisect_left(self.times, start)
        return self.values[lo:]
