"""Instrumentation probes recorded in simulated time."""

from __future__ import annotations

import bisect
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simul.core import Environment


class Counter:
    """A monotonically increasing event counter with rate queries.

    Storage is one ``(time, cumulative_total)`` pair per distinct
    timestamp — not one entry per counted event — so a bulk
    ``increment(n)`` costs O(1) memory and window queries stay O(log n)
    regardless of how many events each tick counts.
    """

    def __init__(self, env: "Environment", name: str = "") -> None:
        self.env = env
        self.name = name
        self.total = 0
        self._times: list[float] = []
        self._cumulative: list[int] = []

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("Counter only counts upward")
        if amount == 0:
            return
        self.total += amount
        now = self.env.now
        if self._times and self._times[-1] == now:
            self._cumulative[-1] = self.total
        else:
            self._times.append(now)
            self._cumulative.append(self.total)

    def _count_before(self, time: float) -> int:
        """Cumulative count of increments with ``t < time``."""
        index = bisect.bisect_left(self._times, time)
        return self._cumulative[index - 1] if index else 0

    def count_between(self, start: float, end: float) -> int:
        """Number of increments with ``start <= t < end``."""
        return self._count_before(end) - self._count_before(start)

    def rate_between(self, start: float, end: float) -> float:
        """Average increments per time unit over ``[start, end)``."""
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        return self.count_between(start, end) / (end - start)


class TimeSeries:
    """Append-only ``(time, value)`` samples, e.g. per-batch latencies."""

    def __init__(self, env: "Environment", name: str = "") -> None:
        self.env = env
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def __len__(self) -> int:
        return len(self.times)

    def record(self, value: float) -> None:
        self.times.append(self.env.now)
        self.values.append(value)

    def window(self, start: float, end: float) -> "list[tuple[float, float]]":
        """Samples with ``start <= t < end``."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        return list(zip(self.times[lo:hi], self.values[lo:hi]))

    def values_after(self, start: float) -> list[float]:
        lo = bisect.bisect_left(self.times, start)
        return self.values[lo:]

    def last_before(self, time: float) -> float | None:
        """The most recent value recorded strictly before ``time``.

        Returns None when nothing was recorded yet — a scraper asking
        "what was this gauge at t" before the first sample.
        """
        index = bisect.bisect_left(self.times, time)
        return self.values[index - 1] if index else None

    def mean_between(self, start: float, end: float) -> float:
        """Arithmetic mean of samples with ``start <= t < end``.

        NaN when the window holds no samples (matching the empty-window
        convention of :class:`~repro.core.metrics.LatencyStats`).
        """
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        if hi == lo:
            return float("nan")
        window = self.values[lo:hi]
        return sum(window) / len(window)
