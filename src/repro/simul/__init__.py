"""Deterministic discrete-event simulation kernel.

A small, SimPy-flavoured kernel: an :class:`~repro.simul.core.Environment`
owns a time-ordered event scheduler (a calendar queue with a heap
fallback — see :mod:`repro.simul.scheduler`); *processes* are Python
generators that yield events (timeouts, resource requests, store
gets...) and are resumed when those events fire. Ties in time are broken
by a monotonically increasing sequence number, which makes every
simulation fully deterministic regardless of the scheduler backend.

Batches of homogeneous service-time events can be evaluated in one
NumPy pass (:mod:`repro.simul.vector`), and fire-and-forget service
waits can reuse pooled Timeout objects
(:meth:`~repro.simul.core.Environment.service_timeout`).

The kernel is the substrate for every simulated system in this repository:
the message broker, the stream processors, and the serving services.
"""

from repro.simul.core import Environment
from repro.simul.events import AllOf, AnyOf, Event, Timeout
from repro.simul.process import Interrupt, Process
from repro.simul.resources import Resource, Store
from repro.simul.scheduler import CalendarScheduler, HeapScheduler
from repro.simul.vector import VectorTimeout, bulk_timeouts, homogeneous_service
from repro.simul.monitor import Counter, TimeSeries
from repro.simul.rng import RandomStreams

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Process",
    "Interrupt",
    "Resource",
    "Store",
    "CalendarScheduler",
    "HeapScheduler",
    "VectorTimeout",
    "bulk_timeouts",
    "homogeneous_service",
    "Counter",
    "TimeSeries",
    "RandomStreams",
]
