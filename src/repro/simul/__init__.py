"""Deterministic discrete-event simulation kernel.

A small, SimPy-flavoured kernel: an :class:`~repro.simul.core.Environment`
owns a time-ordered event heap; *processes* are Python generators that yield
events (timeouts, resource requests, store gets...) and are resumed when
those events fire. Ties in time are broken by a monotonically increasing
sequence number, which makes every simulation fully deterministic.

The kernel is the substrate for every simulated system in this repository:
the message broker, the stream processors, and the serving services.
"""

from repro.simul.core import Environment
from repro.simul.events import AllOf, AnyOf, Event, Timeout
from repro.simul.process import Interrupt, Process
from repro.simul.resources import Resource, Store
from repro.simul.monitor import Counter, TimeSeries
from repro.simul.rng import RandomStreams

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Process",
    "Interrupt",
    "Resource",
    "Store",
    "Counter",
    "TimeSeries",
    "RandomStreams",
]
