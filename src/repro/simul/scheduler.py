"""Pending-event schedulers for the simulation kernel.

Two interchangeable backends order scheduled entries by the same total
key ``(time, priority, seq)``:

:class:`HeapScheduler`
    The original single binary heap.  Kept as the reference
    implementation and as the pre-calendar comparator for the kernel
    microbenchmark (``repro.simul.bench``).

:class:`CalendarScheduler`
    A calendar-queue-style scheduler tuned for the traffic mix a
    discrete-event simulation actually produces:

    * **now lanes** — two FIFO deques (one per priority) for entries
      scheduled at exactly the current time.  ``succeed()`` traffic
      (store handoffs, resource grants, process init events) is all
      zero-delay, and a deque append/popleft is far cheaper than heap
      sift operations.  The lanes stay key-sorted by construction:
      simulated time never decreases between pushes and ``seq`` is
      strictly increasing.
    * **epoch** — an ascending-sorted list covering a sliding window of
      near-future times, consumed by bumping an index (no memory
      movement) and fed by ``bisect.insort`` bounded below by that
      index.  The window width adapts so a refill captures a healthy
      run of entries.
    * **far heap** — a plain binary heap for everything beyond the
      epoch window.  When the epoch drains, the next window of entries
      is pulled out of the heap in one pass.

    ``pop`` is a four-way merge of the structure heads, so correctness
    only requires each structure to be internally key-sorted — the
    epoch window bounds are soft and never reorder events.

Determinism: both backends yield entries in exactly the same order for
the same push sequence; the kernel's (priority, insertion-order)
contract for same-time events is preserved bit-for-bit.
"""

from __future__ import annotations

import typing
from bisect import insort
from collections import deque
from heapq import heappop, heappush

#: A scheduled entry: ``(time, priority, seq, event)``.  ``seq`` is
#: unique, so tuple comparison never reaches the event object.
Entry = typing.Tuple[float, int, int, object]

INFINITY = float("inf")

#: Desired number of entries captured by one epoch refill.
_EPOCH_TARGET = 128

#: Hard cap on entries pulled into a single epoch.
_EPOCH_MAX = 4096

#: Floor for the adaptive window width.
_MIN_WIDTH = 1e-12


class HeapScheduler:
    """The original kernel scheduler: one binary heap."""

    __slots__ = ("_heap",)

    kind = "heap"

    def __init__(self) -> None:
        self._heap: list[Entry] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, entry: Entry, now: float) -> None:
        heappush(self._heap, entry)

    def push_batch(self, entries: typing.Sequence[Entry], now: float) -> None:
        heap = self._heap
        for entry in entries:
            heappush(heap, entry)

    def pop(self) -> Entry:
        return heappop(self._heap)

    def peek(self) -> float:
        heap = self._heap
        return heap[0][0] if heap else INFINITY


class CalendarScheduler:
    """Calendar-queue scheduler: now lanes + epoch window + far heap."""

    __slots__ = (
        "_now_urgent",
        "_now_normal",
        "_epoch",
        "_epoch_i",
        "_epoch_end",
        "_far",
        "_width",
        "_target",
        "_max_epoch",
        "_len",
    )

    kind = "calendar"

    def __init__(self, target: int = _EPOCH_TARGET, max_epoch: int = _EPOCH_MAX) -> None:
        self._now_urgent: deque[Entry] = deque()
        self._now_normal: deque[Entry] = deque()
        self._epoch: list[Entry] = []
        self._epoch_i = 0
        # Times strictly below this bound route into the epoch list.
        self._epoch_end = -INFINITY
        self._far: list[Entry] = []
        self._width = 1.0
        self._target = target
        self._max_epoch = max_epoch
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def push(self, entry: Entry, now: float) -> None:
        time = entry[0]
        priority = entry[1]
        if time == now and priority <= 1:
            # Zero-delay entry: lands at the tail of its priority lane.
            # The lane stays key-sorted because `now` never decreases
            # between pushes and `seq` is strictly increasing.
            if priority:
                self._now_normal.append(entry)
            else:
                self._now_urgent.append(entry)
        elif time < self._epoch_end:
            insort(self._epoch, entry, lo=self._epoch_i)
        else:
            heappush(self._far, entry)
        self._len += 1

    def push_batch(self, entries: typing.Sequence[Entry], now: float) -> None:
        """Bulk-insert pre-sorted ``entries`` (ascending by key).

        The live epoch tail and the batch are two sorted runs, so the
        rebuild is a single adaptive-mergesort pass at C speed — no
        per-entry heap sifts.
        """
        if not entries:
            return
        live = self._epoch[self._epoch_i :]
        if live:
            live.extend(entries)
            live.sort()
        else:
            live = list(entries)
        self._epoch = live
        self._epoch_i = 0
        last_time = live[-1][0]
        if last_time > self._epoch_end:
            self._epoch_end = last_time
        self._len += len(entries)

    def pop(self) -> Entry:
        epoch = self._epoch
        index = self._epoch_i
        # Fast path: all pending entries live in the epoch window (the
        # steady state of timeout-driven workloads) — no merging needed.
        if (
            index < len(epoch)
            and not self._now_urgent
            and not self._now_normal
            and not self._far
        ):
            entry = epoch[index]
            index += 1
            if index >= 4096:
                # Shed the consumed prefix so the list can't grow
                # unboundedly while the far heap stays empty.
                del epoch[:index]
                index = 0
            self._epoch_i = index
            self._len -= 1
            return entry
        best: Entry | None = None
        source = 0
        urgent = self._now_urgent
        if urgent:
            best = urgent[0]
            source = 1
        normal = self._now_normal
        if normal:
            head = normal[0]
            if best is None or head < best:
                best = head
                source = 2
        if index >= len(epoch) and self._far:
            self._refill()
            epoch = self._epoch
            index = self._epoch_i
        if index < len(epoch):
            head = epoch[index]
            if best is None or head < best:
                best = head
                source = 3
        far = self._far
        if far:
            head = far[0]
            if best is None or head < best:
                best = head
                source = 4
        if best is None:
            raise IndexError("pop from an empty scheduler")
        if source == 1:
            urgent.popleft()
        elif source == 2:
            normal.popleft()
        elif source == 3:
            index += 1
            if index >= 4096:
                del epoch[:index]
                index = 0
            self._epoch_i = index
        else:
            heappop(far)
        self._len -= 1
        return best

    def peek(self) -> float:
        best: Entry | None = None
        if self._now_urgent:
            best = self._now_urgent[0]
        if self._now_normal:
            head = self._now_normal[0]
            if best is None or head < best:
                best = head
        if self._epoch_i < len(self._epoch):
            head = self._epoch[self._epoch_i]
            if best is None or head < best:
                best = head
        if self._far:
            head = self._far[0]
            if best is None or head < best:
                best = head
        return best[0] if best is not None else INFINITY

    def _refill(self) -> None:
        """Pull the next window of far-heap entries into a fresh epoch.

        Heap pops come out ascending, so the new epoch is sorted for
        free.  The window width adapts toward ``target`` entries per
        refill; when the cap trips, remaining same-window entries stay
        in the far heap — the four-way merge in :meth:`pop` keeps
        ordering exact regardless of which side they live on.
        """
        far = self._far
        start = far[0][0]
        end = start + self._width
        out: list[Entry] = []
        append = out.append
        cap = self._max_epoch
        while far and far[0][0] < end and len(out) < cap:
            append(heappop(far))
        if not out:
            # Width underflowed (e.g. enormous magnitudes): take one.
            append(heappop(far))
            end = out[0][0]
        if len(out) >= cap:
            self._width = max(self._width * 0.5, _MIN_WIDTH)
            end = out[-1][0]
        elif far and len(out) < self._target // 2:
            self._width *= 2.0
        self._epoch = out
        self._epoch_i = 0
        self._epoch_end = end


class PermutedScheduler:
    """Schedule-perturbation wrapper: seeded shuffle inside tie classes.

    Wraps any backend from :data:`SCHEDULERS` and pops entries in a
    *seeded random order within each tie class* while preserving every
    cross-class ordering guarantee.  A tie class is the set of queued
    entries sharing one ``(time, priority)`` key — exactly the entries
    whose relative order the kernel resolves by insertion sequence, i.e.
    the only ordering freedom a real concurrent system would have.

    This is the mechanism behind ``crayfish verify-order`` (a DPOR-lite
    schedule fuzzer): if an experiment's exports are byte-identical for
    every permutation seed, no result can depend on same-timestamp pop
    order.  Causality is respected by construction — an entry scheduled
    while a tie class is draining only joins the pool *after* the entry
    that created it was popped, so a perturbed schedule is always one a
    legal scheduler could have produced.

    Determinism: for a fixed ``(base backend, seed)`` the perturbed pop
    sequence is itself a pure function of the push sequence, and it is
    identical across backends because every backend drains ties in the
    same (key-sorted) order.
    """

    __slots__ = ("_base", "_rng", "_pools", "_pool_time", "_pooled")

    kind = "permuted"

    def __init__(self, base: object, seed: int) -> None:
        from repro.simul.rng import RandomStreams

        self._base = base
        self._rng = RandomStreams(seed).stream("tie-permutation")
        #: (time, priority) -> queued entries of the active tie tick.
        self._pools: dict[tuple[float, int], list[Entry]] = {}
        self._pool_time: float = -INFINITY
        self._pooled = 0

    def __len__(self) -> int:
        return len(self._base) + self._pooled

    def push(self, entry: Entry, now: float) -> None:
        if self._pooled and entry[0] == self._pool_time:
            # Scheduled while its tick is draining: joins the live pool
            # (it is available for the very next pop, like any entry the
            # base scheduler would surface at this time).
            self._pools.setdefault((entry[0], entry[1]), []).append(entry)
            self._pooled += 1
        else:
            self._base.push(entry, now)

    def push_batch(self, entries: typing.Sequence[Entry], now: float) -> None:
        for entry in entries:
            self.push(entry, now)

    def _drain_tick(self) -> None:
        """Pull every base entry of the next timestamp into the pools."""
        base = self._base
        time = base.peek()
        if time == INFINITY:
            raise IndexError("pop from an empty scheduler")
        pools = self._pools
        while len(base) and base.peek() == time:
            entry = base.pop()
            pools.setdefault((entry[0], entry[1]), []).append(entry)
            self._pooled += 1
        self._pool_time = time

    def pop(self) -> Entry:
        if not self._pooled:
            self._pools.clear()
            self._drain_tick()
        key = min(k for k, pool in self._pools.items() if pool)
        pool = self._pools[key]
        index = int(self._rng.integers(len(pool))) if len(pool) > 1 else 0
        entry = pool.pop(index)
        self._pooled -= 1
        return entry

    def peek(self) -> float:
        if self._pooled:
            return self._pool_time
        return self._base.peek()


#: Registry used by :class:`repro.simul.core.Environment`.
SCHEDULERS: dict[str, type] = {
    HeapScheduler.kind: HeapScheduler,
    CalendarScheduler.kind: CalendarScheduler,
}
