"""Kernel events/sec microbenchmark.

Measures the discrete-event kernel itself — no broker, engines, or
serving stack — on three workload shapes:

``churn``
    Many processes each awaiting a long run of heterogeneous-delay
    timeouts: the scalar scheduler + Timeout-slab path.

``handoff``
    Bounded producer/consumer store chains: zero-delay ``succeed``
    traffic through the calendar scheduler's now lanes.

``scalability``
    The scalability-preset shape — workers draining batches of
    homogeneous service times.  The pre-PR baseline schedules one
    Timeout per event through the heap; the current path evaluates each
    batch analytically in one NumPy pass
    (:func:`repro.simul.vector.homogeneous_service`).

Every workload is measured twice on the same machine and process:
*baseline* (heap scheduler, per-event ``env.timeout`` — the pre-calendar
kernel) and *current* (calendar scheduler, slab/vectorized paths), so
the reported speedup is machine-relative and robust across hosts.

This module reads the host's wall clock to time the kernel; the numbers
feed ``BENCH_kernel.json`` and the results store, never a simulation.
"""

from __future__ import annotations

import gc
import time
import typing

from repro.errors import SimulationError
from repro.simul.core import Environment
from repro.simul.resources import Store
from repro.simul.vector import homogeneous_service

#: Workloads in reporting order.
WORKLOADS: tuple[str, ...] = ("churn", "handoff", "scalability")


def _clock() -> float:
    return time.perf_counter()  # crayfish: allow[wall-clock]: host-side benchmark timing of the kernel itself, never simulation input


def _scaled(value: int, scale: float, floor: int = 1) -> int:
    return max(floor, int(value * scale))


# -- workload bodies --------------------------------------------------
#
# Each body takes a fresh Environment plus a `fast` flag (False =
# pre-PR idiom, True = slab/vector idiom), runs to exhaustion, and
# returns the number of logical events simulated. Delays come from a
# tiny LCG so the schedule is varied but fully deterministic.


def _churn(env: Environment, fast: bool, scale: float) -> int:
    procs = _scaled(64, scale, floor=2)
    steps = _scaled(500, scale, floor=10)
    make = env.service_timeout if fast else env.timeout

    def worker(k: int) -> typing.Generator:
        state = (k * 2654435761 + 1) % 2147483647
        for __ in range(steps):
            state = (state * 1103515245 + 12345) % 2147483647
            yield make((state % 1000) / 1.0e6)

    for k in range(procs):
        env.process(worker(k))
    env.run()
    return procs * steps


def _handoff(env: Environment, fast: bool, scale: float) -> int:
    chains = _scaled(32, scale, floor=2)
    messages = _scaled(500, scale, floor=10)

    def producer(box: Store) -> typing.Generator:
        for i in range(messages):
            yield box.put(i)

    def consumer(box: Store) -> typing.Generator:
        for __ in range(messages):
            yield box.get()

    for __ in range(chains):
        box = Store(env, capacity=16)
        env.process(producer(box))
        env.process(consumer(box))
    env.run()
    return chains * messages


def _scalability(env: Environment, fast: bool, scale: float) -> int:
    workers = _scaled(16, scale, floor=2)
    batches = _scaled(50, scale, floor=2)
    per_batch = 64
    service = 2.5e-4

    def worker_scalar() -> typing.Generator:
        for __ in range(batches):
            for __k in range(per_batch):
                yield env.timeout(service)

    def worker_vector() -> typing.Generator:
        for __ in range(batches):
            yield homogeneous_service(env, per_batch, service)

    for __ in range(workers):
        env.process(worker_vector() if fast else worker_scalar())
    env.run()
    return workers * batches * per_batch


_BODIES: dict[str, typing.Callable[[Environment, bool, float], int]] = {
    "churn": _churn,
    "handoff": _handoff,
    "scalability": _scalability,
}


def _measure(
    workload: str, fast: bool, scale: float, repeats: int
) -> tuple[int, float]:
    """Best-of-``repeats`` (events, seconds) for one workload mode."""
    body = _BODIES[workload]
    scheduler = "calendar" if fast else "heap"
    best = float("inf")
    events = 0
    for __ in range(repeats):
        # Collect garbage left by the previous measurement (and park the
        # collector) so cross-mode allocation debt can't be billed to
        # whichever mode happens to trip the next collection.
        gc.collect()
        gc.disable()
        try:
            env = Environment(scheduler=scheduler)
            start = _clock()
            events = body(env, fast, scale)
            elapsed = _clock() - start
        finally:
            gc.enable()
        if elapsed < best:
            best = elapsed
    return events, max(best, 1e-9)


def run_kernel_bench(
    workloads: typing.Sequence[str] = WORKLOADS,
    scale: float = 1.0,
    repeats: int = 3,
) -> dict[str, dict]:
    """Run the kernel microbenchmark; one entry per workload.

    Entry shape (the ``BENCH_kernel.json`` schema)::

        {"events": N,
         "baseline": {"scheduler": "heap", "seconds": s, "events_per_sec": r},
         "current":  {"scheduler": "calendar", "seconds": s, "events_per_sec": r},
         "speedup": r_current / r_baseline}
    """
    if scale <= 0:
        raise SimulationError(f"scale must be positive, got {scale}")
    if repeats < 1:
        raise SimulationError(f"repeats must be >= 1, got {repeats}")
    entries: dict[str, dict] = {}
    for workload in workloads:
        if workload not in _BODIES:
            raise SimulationError(
                f"unknown kernel workload {workload!r}; "
                f"expected one of {sorted(_BODIES)}"
            )
        events, base_seconds = _measure(workload, False, scale, repeats)
        __, fast_seconds = _measure(workload, True, scale, repeats)
        base_rate = events / base_seconds
        fast_rate = events / fast_seconds
        entries[workload] = {
            "events": events,
            "baseline": {
                "scheduler": "heap",
                "seconds": round(base_seconds, 6),
                "events_per_sec": round(base_rate, 1),
            },
            "current": {
                "scheduler": "calendar",
                "seconds": round(fast_seconds, 6),
                "events_per_sec": round(fast_rate, 1),
            },
            "speedup": round(fast_rate / base_rate, 3),
        }
    return entries


def format_kernel_bench(entries: dict[str, dict]) -> str:
    """Terminal table for one benchmark pass."""
    from repro.core.report import format_table

    rows = []
    for workload in sorted(entries):
        entry = entries[workload]
        rows.append(
            [
                workload,
                f"{entry['events']:,}",
                f"{entry['baseline']['events_per_sec']:,.0f}",
                f"{entry['current']['events_per_sec']:,.0f}",
                f"{entry['speedup']:.2f}x",
            ]
        )
    return format_table(
        ["workload", "events", "heap ev/s", "calendar ev/s", "speedup"],
        rows,
        title="kernel microbenchmark",
    )
