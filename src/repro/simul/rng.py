"""Seeded, named random streams for reproducible simulations.

Each component draws from its own named stream so adding a new source of
randomness never perturbs the draws of existing components — a standard
variance-reduction discipline for simulation studies.
"""

from __future__ import annotations

# crayfish: allow-file[global-random]: this module IS the sanctioned randomness root every other component must route through

import zlib

import numpy as np


class RandomStreams:
    """A family of independent RNG streams derived from one root seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream called ``name``."""
        if name not in self._streams:
            root = np.random.SeedSequence(self.seed)
            # zlib.crc32 is stable across processes, unlike hash() which
            # is salted by PYTHONHASHSEED.
            child = np.random.SeedSequence(
                entropy=root.entropy,
                spawn_key=(zlib.crc32(name.encode("utf-8")),),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def lognormal_factor(self, name: str, sigma: float) -> float:
        """A multiplicative noise factor with median 1.0.

        Used to perturb service times; ``sigma=0`` returns exactly 1.0 so
        deterministic runs stay deterministic.
        """
        if sigma <= 0:
            return 1.0
        return float(self.stream(name).lognormal(mean=0.0, sigma=sigma))
