"""Seeded, named random streams for reproducible simulations.

Each component draws from its own named stream so adding a new source of
randomness never perturbs the draws of existing components — a standard
variance-reduction discipline for simulation studies.
"""

from __future__ import annotations

# crayfish: allow-file[global-random]: this module IS the sanctioned randomness root every other component must route through

import zlib

import numpy as np


class RandomStreams:
    """A family of independent RNG streams derived from one root seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream called ``name``."""
        if name not in self._streams:
            root = np.random.SeedSequence(self.seed)
            # zlib.crc32 is stable across processes, unlike hash() which
            # is salted by PYTHONHASHSEED.
            child = np.random.SeedSequence(
                entropy=root.entropy,
                spawn_key=(zlib.crc32(name.encode("utf-8")),),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def lognormal_factor(self, name: str, sigma: float) -> float:
        """A multiplicative noise factor with median 1.0.

        Used to perturb service times; ``sigma=0`` returns exactly 1.0 so
        deterministic runs stay deterministic.
        """
        if sigma <= 0:
            return 1.0
        return float(self.stream(name).lognormal(mean=0.0, sigma=sigma))

    def keyed_lognormal_factor(self, name: str, sigma: float, key: int) -> float:
        """Content-keyed variant of :meth:`lognormal_factor`.

        The factor is a pure function of ``(seed, name, key)`` instead of
        of how many draws preceded it on the stream. That matters when
        two simulation processes consume one named stream concurrently:
        a sequential stream assigns variates to requests in *pop order*,
        so any event-tie flip silently re-pairs requests with noise — the
        exact hazard class ``crayfish verify-order`` exists to catch.
        Keying by stable content identity (e.g. a batch id) makes the
        assignment schedule-independent.
        """
        if sigma <= 0:
            return 1.0
        # A fresh child sequence per key: ".keyed" separates the keyed
        # namespace from the sequential stream of the same name, and the
        # crc32 of the key text sidesteps spawn_key's uint32 bound.
        child = np.random.SeedSequence(
            entropy=np.random.SeedSequence(self.seed).entropy,
            spawn_key=(
                zlib.crc32(f"{name}.keyed".encode("utf-8")),
                zlib.crc32(str(int(key)).encode("utf-8")),
            ),
        )
        return float(
            np.random.default_rng(child).lognormal(mean=0.0, sigma=sigma)
        )
