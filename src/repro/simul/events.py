"""Event primitives for the simulation kernel."""

from __future__ import annotations

import typing

from repro.errors import SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simul.core import Environment

#: Sentinel for "event has not been given a value yet".
PENDING = object()

#: Scheduling priorities. Lower fires first at equal times.
URGENT = 0
NORMAL = 1


class Event:
    """A condition that may fire once at some simulated time.

    Callbacks receive the event itself. After the event has been
    processed, :attr:`value` holds the payload passed to :meth:`succeed`
    (or the exception passed to :meth:`fail`).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok")

    #: A defused failure does not escalate out of the event loop when it
    #: is processed without a watcher (set for deliberately interrupted
    #: processes). Class-level default; :class:`~repro.simul.process.
    #: Process` carries a writable slot.
    _defused = False

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list | None = []
        self._value: object = PENDING
        self._ok = True

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> object:
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._value

    def succeed(self, value: object = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception to be thrown into waiters."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority)
        return self

    def _abandon(self) -> None:
        """Hook: the waiter was cancelled while still queued.

        Resource/store waiter events override this to drop themselves
        from their wait queue eagerly instead of lingering until a
        dispatch walks over them.
        """

    def __repr__(self) -> str:
        # Address-free on purpose: reprs reach logs and trace diffs, and
        # id()-derived text differs between otherwise identical runs.
        if self._value is PENDING:
            state = "pending"
        elif self.callbacks is None:
            state = "processed ok" if self._ok else "processed failed"
        else:
            state = "triggered ok" if self._ok else "triggered failed"
        return f"<{type(self).__name__} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay", "_slab")

    def __init__(self, env: "Environment", delay: float, value: object = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._slab = False
        self._ok = True
        self._value = value
        env.schedule(self, NORMAL, delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class _Condition(Event):
    """Base for events that fire when some subset of child events fired."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: typing.Sequence[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._remaining = len(self._events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events from different environments")
        for event in self._events:
            if self.triggered:
                # An earlier (already-processed) child decided the
                # condition; don't attach to the remaining children.
                break
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _detach(self) -> None:
        """Remove ``_check`` from children that have not fired yet.

        Without this, every decided condition (e.g. a timeout-vs-result
        race) would leave a dead callback on its still-pending children
        for the rest of the run.
        """
        check = self._check
        for event in self._events:
            callbacks = event.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(check)
                except ValueError:
                    pass

    def _abandon(self) -> None:
        # The waiter was interrupted while the condition was still
        # undecided: drop our _check from every still-pending child.
        # Without this, a condition over a shared long-lived event (e.g.
        # a timeout-vs-result race against a fleet-wide signal) leaves a
        # dead callback on that event for the rest of the run — the
        # condition-callback leak class PR 8 fixed for *decided*
        # conditions, closed here for *abandoned* ones.
        self._detach()

    def _collect(self) -> dict:
        # Only events already *processed* count as "happened"; a Timeout
        # carries its value from creation, so `triggered` would wrongly
        # include the future.
        return {e: e.value for e in self._events if e.processed and e.ok}


class AnyOf(_Condition):
    """Fires when the first of the given events fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(typing.cast(BaseException, event._value))
        else:
            self.succeed(self._collect())
        self._detach()


class AllOf(_Condition):
    """Fires once all of the given events have fired."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(typing.cast(BaseException, event._value))
            self._detach()
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())
