"""Vectorized evaluation of homogeneous service-time event batches.

Two fast paths for workloads that schedule many structurally identical
events at once (the dominant pattern in service-time simulation):

``bulk_timeouts``
    Materializes K :class:`Timeout` events in one NumPy pass and hands
    the scheduler a pre-sorted entry batch, replacing K individual
    ``heappush``/``insort`` calls with a single adaptive-mergesort
    merge (see ``CalendarScheduler.push_batch``). Ordering is exactly
    what K successive ``env.timeout`` calls would produce: sequence
    numbers follow creation (input) order, and the sort is stable.

``homogeneous_service``
    The analytic-model pattern: a busy server draining K back-to-back
    service times of equal cost has completion times that are a closed
    form (``now + service * arange(1..K)``), so the whole batch is
    evaluated with one cumulative NumPy expression and delivered as a
    single aggregate :class:`VectorTimeout` — one scheduler entry and
    one callback instead of K of each.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.errors import SimulationError
from repro.simul.events import Event, NORMAL, Timeout

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simul.core import Environment


class VectorTimeout(Event):
    """Aggregate event standing in for ``count`` homogeneous completions.

    Fires once, at the last completion time; :attr:`fire_times` holds
    every absolute completion stamp (ascending) and is also the event's
    value, so a consumer can attribute per-completion metrics without
    the kernel ever scheduling the intermediate events.
    """

    __slots__ = ("fire_times", "count")

    def __init__(self, env: "Environment", fire_times: np.ndarray) -> None:
        super().__init__(env)
        times = np.asarray(fire_times, dtype=float)
        if times.ndim != 1 or times.size == 0:
            raise SimulationError("fire_times must be a non-empty 1-d array")
        if float(times[0]) < env.now or np.any(np.diff(times) < 0):
            raise SimulationError("fire_times must be ascending and not in the past")
        self.fire_times = times
        self.count = int(times.size)
        self._ok = True
        self._value = times
        env.schedule(self, NORMAL, float(times[-1]) - env.now)

    def __repr__(self) -> str:
        return f"<VectorTimeout count={self.count}>"


def bulk_timeouts(
    env: "Environment",
    delays: typing.Sequence[float] | np.ndarray,
    values: typing.Sequence[object] | None = None,
) -> list[Timeout]:
    """Create and schedule one :class:`Timeout` per delay in one pass.

    Equivalent — event for event, in firing order — to calling
    ``env.timeout(delay, value)`` for each element in input order, but
    the scheduler receives one pre-sorted batch instead of K pushes.
    """
    array = np.asarray(delays, dtype=float)
    if array.ndim != 1:
        raise SimulationError(f"delays must be 1-d, got shape {array.shape}")
    if array.size == 0:
        return []
    if np.any(array < 0):
        raise SimulationError("negative timeout delay in bulk_timeouts")
    if values is not None and len(values) != array.size:
        raise SimulationError(
            f"got {array.size} delays but {len(values)} values"
        )
    now = env._now
    times = now + array
    # Stable sort by time == sort by (time, seq) since seq follows
    # creation order; priority is NORMAL for every entry.
    order = np.argsort(times, kind="stable")

    seq_base = env._seq
    env._seq = seq_base + int(array.size)

    delay_list = array.tolist()
    timeouts: list[Timeout] = []
    append = timeouts.append
    for index, delay in enumerate(delay_list):
        timeout = Timeout.__new__(Timeout)
        timeout.env = env
        timeout.callbacks = []
        timeout._ok = True
        timeout._value = None if values is None else values[index]
        timeout.delay = delay
        timeout._slab = False
        append(timeout)

    time_list = times.tolist()
    entries = [
        (time_list[i], NORMAL, seq_base + 1 + i, timeouts[i])
        for i in order.tolist()
    ]
    env._sched.push_batch(entries, now)
    return timeouts


def homogeneous_service(
    env: "Environment", count: int, service_time: float
) -> VectorTimeout:
    """Evaluate ``count`` back-to-back service completions analytically.

    Models a busy server draining ``count`` requests that each cost
    ``service_time``: completion ``k`` lands at ``now + service_time *
    k``. The whole batch is computed in closed form and scheduled as a
    single :class:`VectorTimeout`.
    """
    if count < 1:
        raise SimulationError(f"count must be >= 1, got {count}")
    if service_time < 0:
        raise SimulationError(f"negative service time {service_time}")
    times = env.now + service_time * np.arange(1, count + 1, dtype=float)
    return VectorTimeout(env, times)
