"""The simulation environment: clock, event scheduler, run loop."""

from __future__ import annotations

import contextlib
import typing

from repro.errors import SimulationError
from repro.simul.events import AllOf, AnyOf, Event, NORMAL, PENDING, Timeout
from repro.simul.process import Process
from repro.simul.scheduler import PermutedScheduler, SCHEDULERS


INFINITY = float("inf")

#: Upper bound on Timeout objects kept in the slab pool.
_TIMEOUT_POOL_CAP = 1024

#: Analysis-mode construction overrides applied to every Environment
#: built while :func:`kernel_overrides` is active.  This is how the
#: concurrency analyzer instruments a run without threading knobs
#: through every layer that creates an Environment: ``scheduler``
#: forces a backend, ``perturb_seed`` wraps it in a seeded
#: :class:`~repro.simul.scheduler.PermutedScheduler`, and ``tracker``
#: attaches a tie-race tracker (duck-typed: ``attach``/``on_schedule``/
#: ``on_pop``/``on_state``).  All default to off; the hot path pays one
#: ``is not None`` check.
_OVERRIDES: dict[str, typing.Any] = {
    "scheduler": None,
    "perturb_seed": None,
    "tracker": None,
}


@contextlib.contextmanager
def kernel_overrides(
    scheduler: str | None = None,
    perturb_seed: int | None = None,
    tracker: typing.Any = None,
) -> typing.Iterator[None]:
    """Scope analysis-mode kernel instrumentation to a ``with`` block."""
    previous = dict(_OVERRIDES)
    _OVERRIDES["scheduler"] = scheduler
    _OVERRIDES["perturb_seed"] = perturb_seed
    _OVERRIDES["tracker"] = tracker
    try:
        yield
    finally:
        _OVERRIDES.update(previous)


class Environment:
    """Owns simulated time and the pending-event scheduler.

    Determinism: events scheduled for the same time fire in (priority,
    insertion order) regardless of the scheduler backend ("calendar" by
    default, "heap" as the reference fallback — see
    :mod:`repro.simul.scheduler`). There is no wall-clock anywhere in
    the kernel.
    """

    def __init__(self, initial_time: float = 0.0, scheduler: str = "calendar") -> None:
        if _OVERRIDES["scheduler"] is not None:
            scheduler = _OVERRIDES["scheduler"]
        try:
            factory = SCHEDULERS[scheduler]
        except KeyError:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; expected one of {sorted(SCHEDULERS)}"
            ) from None
        self._now = float(initial_time)
        sched = factory()
        if _OVERRIDES["perturb_seed"] is not None:
            sched = PermutedScheduler(sched, _OVERRIDES["perturb_seed"])
        self._sched = sched
        self._seq = 0
        self._active_process: Process | None = None
        self._timeout_pool: list[Timeout] = []
        self._tracker = _OVERRIDES["tracker"]
        if self._tracker is not None:
            self._tracker.attach(self)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    @property
    def scheduler(self) -> str:
        """Name of the scheduler backend in use."""
        return self._sched.kind

    # -- scheduling --------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Queue ``event`` to be processed ``delay`` time units from now."""
        self._seq += 1
        if self._tracker is not None:
            self._tracker.on_schedule(self._seq, self._now + delay, priority)
        self._sched.push((self._now + delay, priority, self._seq, event), self._now)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._sched.peek()

    def step(self) -> None:
        """Process the single next event."""
        try:
            entry = self._sched.pop()
        except IndexError:
            raise SimulationError("no more events") from None
        self._now = entry[0]
        event = entry[3]
        if self._tracker is not None:
            self._tracker.on_pop(entry)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not callbacks and not event._defused:
            # A failed event nobody was waiting on (e.g. a crashed process
            # without a watcher): surface the error rather than drop it.
            raise typing.cast(BaseException, event._value)
        if type(event) is Timeout and event._slab:
            # Slab-allocated service timeout: every callback has run, so
            # the object can be recycled by the next service_timeout().
            pool = self._timeout_pool
            if len(pool) < _TIMEOUT_POOL_CAP:
                event._ok = True
                event._value = PENDING
                pool.append(event)

    def run(self, until: float | Event | None = None) -> object:
        """Run until the given time, event, or event-queue exhaustion.

        Returns the event's value when ``until`` is an event.
        """
        sched = self._sched
        if until is None:
            while sched:
                self.step()
            return None

        if isinstance(until, Event):
            stop = until
            while not stop.triggered or stop.callbacks is not None:
                if not sched:
                    raise SimulationError(
                        "event queue drained before the awaited event fired"
                    )
                self.step()
            if not stop.ok:
                raise typing.cast(BaseException, stop._value)
            return stop.value

        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(
                f"cannot run backwards: until={deadline} < now={self._now}"
            )
        while sched and sched.peek() <= deadline:
            self.step()
        self._now = deadline
        return None

    # -- factories ----------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        return Timeout(self, delay, value)

    def service_timeout(self, delay: float, value: object = None) -> Timeout:
        """A slab-recycled :class:`Timeout` for fire-and-forget waits.

        Contract: the returned event must be yielded (awaited) directly
        and dropped afterwards — never stored across steps, shared
        between processes, or passed to :meth:`any_of`/:meth:`all_of`.
        Once it fires, the object goes back to a pool and a later call
        may hand out the very same instance.  Scheduling order and the
        observed value are identical to :meth:`timeout`; only the
        allocation is elided.
        """
        pool = self._timeout_pool
        if not pool:
            timeout = Timeout(self, delay, value)
            timeout._slab = True
            return timeout
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        timeout = pool.pop()
        timeout.callbacks = []
        timeout._value = value
        timeout.delay = delay
        self.schedule(timeout, NORMAL, delay)
        return timeout

    def process(self, generator: typing.Generator) -> Process:
        return Process(self, generator)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        return AllOf(self, events)
