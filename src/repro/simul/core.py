"""The simulation environment: clock, event heap, run loop."""

from __future__ import annotations

import heapq
import typing

from repro.errors import SimulationError
from repro.simul.events import AllOf, AnyOf, Event, NORMAL, Timeout
from repro.simul.process import Process


INFINITY = float("inf")


class Environment:
    """Owns simulated time and the pending-event heap.

    Determinism: events scheduled for the same time fire in (priority,
    insertion order). There is no wall-clock anywhere in the kernel.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Process | None = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    # -- scheduling --------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Queue ``event`` to be processed ``delay`` time units from now."""
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else INFINITY

    def step(self) -> None:
        """Process the single next event."""
        try:
            self._now, __, __, event = heapq.heappop(self._queue)
        except IndexError:
            raise SimulationError("no more events") from None
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not callbacks:
            # A failed event nobody was waiting on (e.g. a crashed process
            # without a watcher): surface the error rather than drop it.
            raise typing.cast(BaseException, event._value)

    def run(self, until: float | Event | None = None) -> object:
        """Run until the given time, event, or event-queue exhaustion.

        Returns the event's value when ``until`` is an event.
        """
        if until is None:
            while self._queue:
                self.step()
            return None

        if isinstance(until, Event):
            stop = until
            while not stop.triggered or stop.callbacks is not None:
                if not self._queue:
                    raise SimulationError(
                        "event queue drained before the awaited event fired"
                    )
                self.step()
            if not stop.ok:
                raise typing.cast(BaseException, stop._value)
            return stop.value

        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(
                f"cannot run backwards: until={deadline} < now={self._now}"
            )
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        self._now = deadline
        return None

    # -- factories ----------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: typing.Generator) -> Process:
        return Process(self, generator)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        return AllOf(self, events)
