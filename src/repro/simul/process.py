"""Generator-based simulation processes."""

from __future__ import annotations

import typing

from repro.errors import SimulationError
from repro.simul.events import Event, NORMAL, PENDING, URGENT

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simul.core import Environment


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """Wraps a generator so it can be driven by the event loop.

    The process itself is an event that fires when the generator returns
    (its value is the generator's return value) or raises.
    """

    __slots__ = ("_generator", "_target", "_defused")

    def __init__(self, env: "Environment", generator: typing.Generator) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        self._defused = False
        # Kick off the process at the current time via an initialisation
        # event so processes never run code during their own construction.
        init = Event(env)
        init._ok = True
        init._value = None
        env.schedule(init, URGENT)
        init.callbacks.append(self._resume)

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a dead process")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.callbacks.append(self._resume)
        # Detach from whatever we were waiting on so the original event
        # no longer resumes us when it fires.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            # Neutralize abandoned requests: stores and resources skip
            # already-triggered waiters, so a queued get/put/request left
            # behind by the interrupt can never consume an item or slot.
            if not self._target.triggered:
                self._target.succeed(Interrupt(cause))
                # ... and tell the owning resource/store eagerly, so
                # cancelled waiters don't pile up in its wait queue
                # until the next dispatch happens to walk past them.
                self._target._abandon()
        self._target = None
        self.env.schedule(event, URGENT)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        while True:
            try:
                if event.ok:
                    next_event = self._generator.send(event.value)
                else:
                    exc = typing.cast(BaseException, event._value)
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                self.env._active_process = None
                self.succeed(stop.value)
                return
            except Interrupt:
                # The generator chose not to handle the interrupt; treat it
                # as a normal termination failure.
                self.env._active_process = None
                if not event.ok:
                    # Death by an externally thrown interrupt means the
                    # interruptor deliberately abandoned this process;
                    # the failure must not escalate out of the loop.
                    self._defused = True
                self.fail(typing.cast(BaseException, event._value))
                return
            except BaseException as error:
                self.env._active_process = None
                self.fail(error)
                return

            if not isinstance(next_event, Event):
                self.env._active_process = None
                stop_error = SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
                self._generator.close()
                self.fail(stop_error)
                return

            if next_event.callbacks is not None:
                # Event not yet processed: park until it fires.
                self._target = next_event
                next_event.callbacks.append(self._resume)
                self.env._active_process = None
                return
            # Event already processed: loop and feed its value immediately.
            event = next_event
