"""Experiment configuration (the paper's Table 1 parameters).

An :class:`ExperimentConfig` fully describes one Crayfish benchmark run:
the workload (input shape ``isz``, batch size ``bsz``, input rate ``ir``,
burst parameters ``bd``/``tbb``), the system under test (stream processor,
serving tool, model), and the inference parallelism ``mp``.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import typing

from repro.cluster.spec import (
    ClusterSpec,
    PopulationSpec,
    cluster_spec_from_dict,
    population_spec_from_dict,
)
from repro.errors import ConfigError
from repro.faults import FaultPlan, ResiliencePolicy
from repro.faults.plan import (
    NetworkDegradation,
    PartitionOutage,
    ServerCrash,
    StragglerReplica,
)


class WorkloadKind(enum.Enum):
    """The paper's three pre-configured workload scenarios (§4.1)."""

    #: Fixed input rate; used to find sustainable throughput.
    OPEN_LOOP = "open_loop"
    #: Low input rate; end-to-end latency dominated by inference time.
    CLOSED_LOOP = "closed_loop"
    #: Periodic bursts above sustainable throughput (110%/70% of ST).
    PERIODIC_BURSTS = "periodic_bursts"


#: Registered stream-processor names (the `data processor` adapters).
SPS_NAMES = ("flink", "kafka_streams", "spark_ss", "ray")

#: Registered serving-tool names. ``(e)`` embedded, ``(x)`` external.
EMBEDDED_TOOLS = ("onnx", "dl4j", "savedmodel")
EXTERNAL_TOOLS = ("tf_serving", "torchserve", "ray_serve")
SERVING_TOOLS = EMBEDDED_TOOLS + EXTERNAL_TOOLS

#: Model names available in the zoo.
MODEL_NAMES = (
    "autoencoder",
    "efficientnet_b0",
    "ffnn",
    "gru",
    "mobilenet",
    "resnet50",
)


def is_embedded(tool: str) -> bool:
    """True when ``tool`` is an embedded interoperability library."""
    if tool not in SERVING_TOOLS:
        raise ConfigError(f"unknown serving tool {tool!r}")
    return tool in EMBEDDED_TOOLS


@dataclasses.dataclass(frozen=True)
class ExperimentConfig:
    """One benchmark configuration.

    Time units are seconds of *simulated* time; rates are events per
    simulated second. One event carries ``bsz`` data points (a
    CrayfishDataBatch).
    """

    sps: str = "flink"
    serving: str = "onnx"
    model: str = "ffnn"
    workload: WorkloadKind = WorkloadKind.OPEN_LOOP

    #: Shape of one generated data point (``isz``); None = model default.
    isz: tuple[int, ...] | None = None
    #: Data points per event (``bsz``).
    bsz: int = 1
    #: Constant input rate in events/s (``ir``). ``None`` means "as fast
    #: as the pipeline accepts" (used to measure sustainable throughput).
    ir: float | None = None
    #: Burst duration in seconds (``bd``); bursty workloads only.
    bd: float = 30.0
    #: Time between bursts in seconds (``tbb``); bursty workloads only.
    tbb: float = 120.0
    #: Number of workers used for inference (``mp``).
    mp: int = 1

    #: Simulated duration of the measured run.
    duration: float = 10.0
    #: Fraction of leading measurements discarded as warm-up (paper: 25%).
    warmup_fraction: float = 0.25
    #: Root RNG seed; the paper runs each experiment twice — use two seeds.
    seed: int = 0
    #: Enable the simulated GPU on the inference device.
    gpu: bool = False
    #: Flink only: operator-level parallelism ``[src, score, sink]``
    #: overriding default parallelism (paper's flink[32-N-32], Fig. 12).
    #: ``None`` uses default parallelism = ``mp`` with operator chaining.
    operator_parallelism: tuple[int, int, int] | None = None
    #: Bypass the Kafka broker and generate/collect in-process
    #: (the paper's standalone `no-kafka` pipeline, Fig. 13).
    use_broker: bool = True
    #: Kafka topic partition count (paper: 32 per topic).
    partitions: int = 32
    #: Flink only: in-flight window for asynchronous external calls. The
    #: paper disabled async I/O for fairness (§4.3); 0 reproduces that.
    #: Setting it > 0 enables the ablation of Flink's Async I/O operator.
    async_io: int = 0
    #: Flink only: count window in front of the scoring operator — §7.1's
    #: "Micro-batching Support for External Servers" recommendation,
    #: implemented. 0 scores event-at-a-time (the paper's configuration).
    scoring_window: int = 0
    #: External serving only: worker processes on the serving host. None
    #: follows the paper (= mp). Setting it explicitly enables the
    #: non-uniform resource-allocation study of §9 (future work).
    server_workers: int | None = None
    #: External serving only: autoscale the server's worker pool between
    #: ``(min_workers, max_workers)`` on queue depth (§1/§7.2 name
    #: autoscaling as a core external-serving capability). None keeps the
    #: paper's fixed worker counts.
    autoscale: tuple[int, int] | None = None
    #: External serving only: server-side adaptive batching as
    #: ``(max_size, max_delay_seconds)`` — the Clipper-style coalescing
    #: the related work contrasts with. None disables it (the paper's
    #: servers answer request-at-a-time).
    adaptive_batching: tuple[int, float] | None = None
    #: Flink only: enable checkpointing with this interval (seconds).
    #: ``None`` disables fault tolerance (the paper's configuration).
    checkpoint_interval: float | None = None
    #: Sink guarantee under failures: "at_least_once" or "exactly_once"
    #: (§7.2's processing-guarantee discussion, made measurable).
    delivery_guarantee: str = "at_least_once"
    #: Simulated times at which the whole job crashes (failure injection).
    failure_times: tuple[float, ...] = ()
    #: Downtime per failure: restart + state restore + model reload.
    recovery_time: float = 0.5
    #: TF-Serving/TorchServe wire API: None/"grpc" is the paper's choice;
    #: "rest" queries the JSON REST endpoint instead (§3.4.3).
    protocol: str | None = None
    #: Chaos plan: seeded fault injection into broker/network/serving
    #: (:mod:`repro.faults`). None — the default — injects nothing and
    #: leaves the run byte-identical to a build without the subsystem.
    fault_plan: FaultPlan | None = None
    #: Client-side resilience around external scoring calls: timeouts,
    #: backoff retries, circuit breaking, shed/fallback degradation.
    #: None leaves scoring calls unwrapped (the paper's configuration).
    resilience: ResiliencePolicy | None = None
    #: Multi-node scale-out (:mod:`repro.cluster`): place brokers, SPS
    #: task slots, and external-serving replicas on simulated machines so
    #: cross-node hops pay network cost. None — the default — keeps the
    #: paper's single shared-LAN deployment, byte-identically.
    cluster: ClusterSpec | None = None
    #: Population-scale workload (:mod:`repro.cluster.workload`): derive
    #: the offered rate from millions of heavy-tailed simulated users
    #: instead of a fixed ``ir``. None keeps the Table 1 generators.
    population: PopulationSpec | None = None

    def __post_init__(self) -> None:
        if self.sps not in SPS_NAMES:
            raise ConfigError(
                f"unknown stream processor {self.sps!r}; expected one of {SPS_NAMES}"
            )
        if self.serving not in SERVING_TOOLS:
            raise ConfigError(
                f"unknown serving tool {self.serving!r}; expected one of {SERVING_TOOLS}"
            )
        # Accept any zoo model: the built-ins plus user registrations
        # (§3.2: models are user-configurable). Imported lazily to keep
        # config a leaf module.
        from repro.nn.zoo.registry import available_models

        if self.model not in available_models():
            raise ConfigError(
                f"unknown model {self.model!r}; expected one of "
                f"{available_models()}"
            )
        if self.bsz < 1:
            raise ConfigError(f"bsz must be >= 1, got {self.bsz}")
        if self.mp < 1:
            raise ConfigError(f"mp must be >= 1, got {self.mp}")
        if self.ir is not None and self.ir <= 0:
            raise ConfigError(f"ir must be positive, got {self.ir}")
        if self.duration <= 0:
            raise ConfigError(f"duration must be positive, got {self.duration}")
        if not 0 <= self.warmup_fraction < 1:
            raise ConfigError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )
        if self.bd <= 0 or self.tbb <= 0:
            raise ConfigError("bd and tbb must be positive")
        if self.partitions < 1:
            raise ConfigError(f"partitions must be >= 1, got {self.partitions}")
        if self.operator_parallelism is not None:
            if self.sps != "flink":
                raise ConfigError("operator_parallelism is Flink-only")
            if len(self.operator_parallelism) != 3 or any(
                p < 1 for p in self.operator_parallelism
            ):
                raise ConfigError(
                    "operator_parallelism must be three positive integers"
                )
        if self.workload is WorkloadKind.PERIODIC_BURSTS and self.ir is None:
            raise ConfigError("periodic-burst workloads need a base input rate ir")
        if self.async_io:
            if self.async_io < 0:
                raise ConfigError(f"async_io must be >= 0, got {self.async_io}")
            if self.sps != "flink":
                raise ConfigError("async_io is Flink-only")
            if is_embedded(self.serving):
                raise ConfigError("async_io only applies to external serving")
        if self.scoring_window:
            if self.scoring_window < 0:
                raise ConfigError(
                    f"scoring_window must be >= 0, got {self.scoring_window}"
                )
            if self.sps != "flink":
                raise ConfigError("scoring_window is Flink-only")
            if self.async_io:
                raise ConfigError("scoring_window and async_io do not combine")
        if self.server_workers is not None:
            if self.server_workers < 1:
                raise ConfigError(
                    f"server_workers must be >= 1, got {self.server_workers}"
                )
            if is_embedded(self.serving):
                raise ConfigError("server_workers only applies to external serving")
        if self.autoscale is not None:
            if is_embedded(self.serving):
                raise ConfigError("autoscale only applies to external serving")
            low, high = self.autoscale
            if low < 1 or high < low:
                raise ConfigError(
                    f"autoscale needs 1 <= min <= max, got {self.autoscale}"
                )
            if self.server_workers is not None:
                raise ConfigError("autoscale and server_workers are exclusive")
        if self.adaptive_batching is not None:
            if is_embedded(self.serving):
                raise ConfigError("adaptive_batching only applies to external serving")
            size, delay = self.adaptive_batching
            if size < 2 or delay <= 0:
                raise ConfigError(
                    "adaptive_batching needs max_size >= 2 and max_delay > 0"
                )
        if self.protocol is not None:
            if self.protocol not in ("grpc", "rest"):
                raise ConfigError(f"unknown protocol {self.protocol!r}")
            if self.serving not in ("tf_serving", "torchserve"):
                raise ConfigError(
                    "protocol selection applies to tf_serving/torchserve only"
                )
        if self.delivery_guarantee not in ("at_least_once", "exactly_once"):
            raise ConfigError(
                f"unknown delivery guarantee {self.delivery_guarantee!r}"
            )
        if self.fault_tolerant:
            if self.delivery_guarantee == "exactly_once" and self.sps != "flink":
                raise ConfigError(
                    "exactly-once sinks are implemented for Flink only; "
                    "other engines recover at-least-once"
                )
            if self.operator_parallelism is not None or self.async_io:
                raise ConfigError(
                    "fault tolerance does not combine with operator_parallelism "
                    "or async_io"
                )
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ConfigError("checkpoint_interval must be positive")
        if self.failure_times and self.checkpoint_interval is None:
            raise ConfigError("failure injection requires checkpoint_interval")
        if self.recovery_time < 0:
            raise ConfigError("recovery_time must be non-negative")
        if self.fault_plan is not None and not self.fault_plan.empty:
            plan = self.fault_plan
            if plan.partition_outages and not self.use_broker:
                raise ConfigError("partition outages need the broker (use_broker)")
            if plan.touches_serving and is_embedded(self.serving):
                raise ConfigError(
                    "server/network/straggler faults target external serving"
                )
            if plan.server_crashes or plan.stragglers:
                if self.autoscale is not None or self.adaptive_batching is not None:
                    raise ConfigError(
                        "server crashes and stragglers do not combine with "
                        "autoscale or adaptive_batching (those replace the "
                        "plain worker pool the faults target)"
                    )
        if self.resilience is not None:
            if is_embedded(self.serving):
                raise ConfigError("resilience wraps external serving calls only")
            if (
                self.resilience.fallback is not None
                and self.resilience.fallback not in EMBEDDED_TOOLS
            ):
                raise ConfigError(
                    f"resilience fallback must be an embedded tool "
                    f"{EMBEDDED_TOOLS}, got {self.resilience.fallback!r}"
                )

        if self.cluster is not None:
            if not self.use_broker:
                raise ConfigError(
                    "cluster mode routes events through the broker; it does "
                    "not combine with use_broker=False (the standalone "
                    "pipeline has no network to place)"
                )
            incompatible = {
                "fault_plan": self.fault_plan is not None
                and not self.fault_plan.empty,
                "resilience": self.resilience is not None,
                "autoscale": self.autoscale is not None,
                "adaptive_batching": self.adaptive_batching is not None,
                "checkpoint_interval": self.checkpoint_interval is not None,
                "failure_times": bool(self.failure_times),
                "operator_parallelism": self.operator_parallelism is not None,
                "async_io": bool(self.async_io),
                "scoring_window": bool(self.scoring_window),
            }
            clashing = sorted(name for name, on in incompatible.items() if on)
            if clashing:
                raise ConfigError(
                    f"cluster mode does not combine with {', '.join(clashing)} "
                    "yet: those features assume the single-host deployment"
                )
            per_node = (
                self.cluster.tasks_per_node
                if self.cluster.tasks_per_node is not None
                else self.mp
            )
            total_tasks = per_node * self.cluster.nodes
            if self.partitions < total_tasks:
                raise ConfigError(
                    f"a {self.cluster.nodes}-node cluster deploys "
                    f"{total_tasks} source tasks but the input topic has "
                    f"only {self.partitions} partitions; raise partitions "
                    "(every source task needs at least one)"
                )
        if self.population is not None:
            if self.workload is not WorkloadKind.OPEN_LOOP:
                raise ConfigError(
                    "population workloads drive the open loop; drop the "
                    f"{self.workload.value!r} workload kind (the population "
                    "itself provides the diurnal/burst shape)"
                )
            if self.ir is not None:
                raise ConfigError(
                    "population and ir both set the offered rate; use "
                    "population.rate_scale to scale a population workload"
                )

    @property
    def embedded(self) -> bool:
        """True when the serving tool runs inside the stream processor."""
        return is_embedded(self.serving)

    @property
    def fault_tolerant(self) -> bool:
        """True when checkpointing (and hence crash recovery) is on."""
        return self.checkpoint_interval is not None

    def replace(self, **changes: typing.Any) -> "ExperimentConfig":
        """A copy with the given fields changed (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    def label(self) -> str:
        """Short human-readable identifier, e.g. ``flink/onnx/ffnn``
        (``flink/onnx/ffnn@3n`` on a 3-node cluster)."""
        suffix = "-gpu" if self.gpu else ""
        nodes = f"@{self.cluster.nodes}n" if self.cluster is not None else ""
        return f"{self.sps}/{self.serving}{suffix}/{self.model}{nodes}"

    def canonical_dict(self) -> dict:
        """A JSON-ready dict where canonically-equal configs are equal.

        Enums collapse to their values and every sequence becomes a
        plain list, so a config built with ``isz=[4]`` and one built
        with ``isz=(4,)`` canonicalize identically. This is the basis of
        the content-addressed result cache (:mod:`repro.matrix.cache`).
        """
        return _canonical_value(dataclasses.asdict(self))

    def canonical_json(self) -> str:
        """Deterministic serialization: sorted keys, no whitespace."""
        return json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )


def _canonical_value(value: typing.Any) -> typing.Any:
    """Normalize a config value tree for hashing/serialization."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {key: _canonical_value(v) for key, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    return value


#: Config fields whose values are tuples (JSON round-trips them as lists).
_TUPLE_FIELDS = (
    "isz",
    "operator_parallelism",
    "autoscale",
    "adaptive_batching",
    "failure_times",
)


def _fault_plan_from_dict(record: dict) -> FaultPlan:
    return FaultPlan(
        server_crashes=tuple(
            ServerCrash(**crash) for crash in record.get("server_crashes", ())
        ),
        partition_outages=tuple(
            PartitionOutage(**outage)
            for outage in record.get("partition_outages", ())
        ),
        network_degradations=tuple(
            NetworkDegradation(**degradation)
            for degradation in record.get("network_degradations", ())
        ),
        stragglers=tuple(
            StragglerReplica(**straggler)
            for straggler in record.get("stragglers", ())
        ),
    )


def config_from_dict(record: dict) -> ExperimentConfig:
    """Rebuild an :class:`ExperimentConfig` from its serialized dict.

    Inverse of :meth:`ExperimentConfig.canonical_dict` (and of the
    ``config`` block written by :mod:`repro.core.results_io`): restores
    the workload enum, tuple-valued fields, and nested fault-plan /
    resilience dataclasses. Validation re-runs on construction.
    """
    data = dict(record)
    unknown = sorted(
        set(data) - {field.name for field in dataclasses.fields(ExperimentConfig)}
    )
    if unknown:
        raise ConfigError(f"unknown config field(s) in record: {unknown}")
    data["workload"] = WorkloadKind(data["workload"])
    for name in _TUPLE_FIELDS:
        if data.get(name) is not None:
            data[name] = tuple(data[name])
    if data.get("fault_plan") is not None:
        data["fault_plan"] = _fault_plan_from_dict(data["fault_plan"])
    if data.get("resilience") is not None:
        data["resilience"] = ResiliencePolicy(**data["resilience"])
    if data.get("cluster") is not None:
        data["cluster"] = cluster_spec_from_dict(data["cluster"])
    if data.get("population") is not None:
        data["population"] = population_spec_from_dict(data["population"])
    return ExperimentConfig(**data)
