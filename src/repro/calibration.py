"""Calibrated cost-model constants, with provenance.

Every simulated duration in this repository is computed from a mechanistic
model (queueing, serialization sizes, FLOP counts, network transfers) whose
free constants are pinned here. Each constant records the paper evidence it
was fitted against. The *mechanisms* live in the component modules; this
file is only numbers.

Derivation sketch (all times in seconds unless suffixed):

* Network: §4.2 reports a 0.945 ms ping for a 3 KB payload and 1.565 ms for
  64 KB on a 1 Gbps LAN → round trip = ``0.9 ms + payload / 0.8 Gbps``
  (effective bandwidth below line rate, as usual for small messages).
* Embedded scoring times: Table 4 gives per-event sustainable service times
  on Flink at ``mp=1`` (1/throughput): ONNX 0.728 ms, SavedModel 0.776 ms,
  DL4J 1.270 ms for FFNN; ONNX 351 ms for ResNet50. With Flink's chained
  source+score+sink costing ~0.53 ms of that (fits Fig. 12's 5373 ev/s
  unchained scoring-only rate), the per-library FFNN scoring marginals are
  ONNX ≈ 0.19 ms, SavedModel ≈ 0.25 ms, DL4J ≈ 0.74 ms.
* Engine FLOP rates come from the FFNN→ResNet50 deltas (Δ ≈ 7.75 GFLOP, i.e. 3.87 GMAC at 2 FLOPs/MAC):
  ONNX ≈ 2.21e10 FLOP/s, TF engines ≈ 2.03e10, TorchServe ≈ 7.1e9.
* Embedded scaling contention (`alpha`): Fig. 6 peak throughputs (ONNX
  13.6k @ mp=16 → per-worker service inflated 1.63×; SavedModel 10.4k;
  DL4J flat past mp=8).
* External server behaviour: Fig. 6 (TF-Serving ~9.8k @16 ≈ linear),
  Fig. 7 (TF-Serving flat for ResNet50 → large-model concurrency 1;
  TorchServe overtakes after mp≈8 → contention alpha ≈ 0.25).
* SPS overheads: Table 5 service-time deltas between engines for the same
  tools; Spark's flat 23k ceiling (Fig. 11) → 0.0435 ms/event of
  serialized driver work; Ray's 157 ev/s → ~6 ms actor overhead; Ray
  Serve's 455 ev/s ceiling → 2.2 ms single-proxy cost.
* GPU: Fig. 9 latency reductions (ONNX −16.4%, TF-Serving −24.1% on
  ResNet50 with bsz=8).
"""

from __future__ import annotations

import dataclasses

MS = 1e-3
MB = 1e6

# ---------------------------------------------------------------------------
# Network (fit: §4.2 ping measurements; 1 Gbps LAN)
# ---------------------------------------------------------------------------

#: One-way base latency between two VMs in the cluster.
NET_BASE_LATENCY = 0.45 * MS
#: Effective LAN bandwidth in bytes/second (below the 1 Gbps line rate).
NET_BANDWIDTH = 0.8e9 / 8

# ---------------------------------------------------------------------------
# Serialization (Crayfish uses JSON end to end; gRPC payloads are binary)
# ---------------------------------------------------------------------------

#: Bytes per value once JSON-encoded. §4.2 sizes one FFNN data point
#: (784 values) at ~3 KB, i.e. ~4 bytes per value (small-int pixels).
JSON_BYTES_PER_VALUE = 4.0
#: Fixed JSON envelope per CrayfishDataBatch (keys, timestamps, ids).
JSON_ENVELOPE_BYTES = 200.0
#: JSON encode / decode CPU cost per byte.
JSON_ENCODE_PER_BYTE = 45.0 / 1e6 * MS  # 45 ms per MB
JSON_DECODE_PER_BYTE = 55.0 / 1e6 * MS  # 55 ms per MB
#: Binary (gRPC/protobuf) per-value size and per-byte cost.
BINARY_BYTES_PER_VALUE = 4.0
BINARY_CODEC_PER_BYTE = 8.0 / 1e6 * MS  # 8 ms per MB each direction

# ---------------------------------------------------------------------------
# Message broker (fit: "Kafka is not the bottleneck", §3.5/§4.3)
# ---------------------------------------------------------------------------

#: Broker-side fixed cost to append one record to a partition log.
BROKER_APPEND_OVERHEAD = 0.02 * MS
#: Broker-side throughput for appends/fetches (bytes/s per broker).
BROKER_IO_BANDWIDTH = 2.0e9 / 8
#: Consumer poll round-trip fixed cost.
BROKER_FETCH_OVERHEAD = 0.05 * MS
#: Paper §4.3: request size ceiling raised to 50 MB for latency runs.
BROKER_MAX_REQUEST_BYTES = 50 * 1024 * 1024
#: Number of brokers in the simulated cluster (paper: 4).
BROKER_COUNT = 4

# ---------------------------------------------------------------------------
# Serving-tool engine profiles
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ServingProfile:
    """Cost profile of one serving engine.

    ``apply`` time for a batch of ``n`` points of a model with ``F``
    FLOPs/point and ``v`` input values/point:

    embedded:  call_overhead + n * (convert_per_value*v + F/flops_per_sec)
    external:  server-side request_overhead + the same marginal term;
               transport (serialization + network) is charged by the
               protocol layer, not here.
    """

    name: str
    #: Fixed cost per apply()/request (FFI call or server request handling).
    call_overhead: float
    #: Input conversion cost per input value (tensor marshalling).
    convert_per_value: float
    #: Engine compute rate in FLOP/s on one CPU worker.
    flops_per_sec: float
    #: Service-time contention factor per extra worker sharing a process:
    #: effective time = base * (1 + alpha * (mp - 1)).
    contention_alpha: float
    #: Hard cap on useful internal parallelism (None = unbounded).
    max_parallelism: int | None = None
    #: Concurrency the engine allows for "large" models (>= 1 GFLOP/point).
    #: TF-Serving serialises large-model inference in one session (Fig. 7).
    large_model_concurrency: int | None = None
    #: Extra contention alpha applied only to large models.
    large_model_alpha: float = 0.0
    #: Lognormal sigma of multiplicative per-request service-time noise.
    noise_sigma: float = 0.03
    #: Lognormal sigma of *slow* service-rate modulation (GC pauses, load
    #: swings), resampled every MODULATION_BUCKET of simulated time. This
    #: is what makes TF-Serving's burst recoveries vary run to run
    #: (Fig. 8) while ONNX stays stable.
    slow_sigma: float = 0.0
    #: GPU speedup on compute (Fig. 9; includes kernel efficiency).
    gpu_speedup: float = 1.0
    #: Host->device transfer cost per byte when the GPU is enabled.
    gpu_transfer_per_byte: float = 1.2 * MS / MB


# -- Embedded interoperability libraries (fit: Table 4, Figs. 5/6/7) -------

ONNX_PROFILE = ServingProfile(
    name="onnx",
    call_overhead=0.020 * MS,
    convert_per_value=0.165 * MS / 784.0,  # 0.165 ms for one FFNN point
    flops_per_sec=2.21e10,
    contention_alpha=0.042,  # Fig. 6: 13.6k @ mp=16 from 1373 @ mp=1
    noise_sigma=0.05,  # Fig. 8: ONNX recovery is the stable one
    slow_sigma=0.02,
    gpu_speedup=1.28,  # Fig. 9: -16.4% end-to-end latency
)

SAVEDMODEL_PROFILE = ServingProfile(
    name="savedmodel",
    call_overhead=0.010 * MS,
    convert_per_value=0.240 * MS / 784.0,
    flops_per_sec=2.03e10,
    contention_alpha=0.065,  # Fig. 6: 10.4k @ mp=16 from 1290 @ mp=1
    noise_sigma=0.10,  # Fig. 6: large stddev at high parallelism
    slow_sigma=0.10,
    gpu_speedup=1.40,
)

DL4J_PROFILE = ServingProfile(
    name="dl4j",
    call_overhead=0.300 * MS,
    convert_per_value=0.430 * MS / 784.0,
    flops_per_sec=1.0e10,
    contention_alpha=0.18,  # Fig. 6: stops scaling at ~2.8k
    max_parallelism=8,  # Fig. 6: no gains past mp=8
    noise_sigma=0.06,
    gpu_speedup=1.15,
)

# -- External serving frameworks (fit: Table 4, Figs. 6/7/9) ----------------

TF_SERVING_PROFILE = ServingProfile(
    name="tf_serving",
    call_overhead=0.100 * MS,
    convert_per_value=0.090 * MS / 784.0,
    flops_per_sec=2.03e10,
    contention_alpha=0.0,  # Fig. 6: scales linearly to mp=16
    large_model_concurrency=1,  # Fig. 7: flat for ResNet50
    noise_sigma=0.30,  # Figs. 8/9: high run-to-run variation
    slow_sigma=0.25,
    gpu_speedup=1.46,  # Fig. 9: -24.1% end-to-end latency
)

TORCHSERVE_PROFILE = ServingProfile(
    name="torchserve",
    call_overhead=2.40 * MS,  # Python handler per request
    convert_per_value=0.200 * MS / 784.0,
    flops_per_sec=7.1e9,
    contention_alpha=0.03,
    large_model_alpha=0.25,  # Fig. 7: sublinear but keeps growing
    noise_sigma=0.12,
    slow_sigma=0.08,
    gpu_speedup=1.35,
)

RAY_SERVE_PROFILE = ServingProfile(
    name="ray_serve",
    call_overhead=1.20 * MS,  # Python replica handling
    convert_per_value=0.120 * MS / 784.0,
    flops_per_sec=1.6e10,
    contention_alpha=0.02,
    noise_sigma=0.15,
    slow_sigma=0.10,
    gpu_speedup=1.25,
)

SERVING_PROFILES = {
    profile.name: profile
    for profile in (
        ONNX_PROFILE,
        SAVEDMODEL_PROFILE,
        DL4J_PROFILE,
        TF_SERVING_PROFILE,
        TORCHSERVE_PROFILE,
        RAY_SERVE_PROFILE,
    )
}

#: Models at or above this many FLOPs/point get "large model" treatment
#: (ResNet-50-class; MobileNet's ~1.1 GFLOPs stays below the bar).
LARGE_MODEL_FLOPS = 3.0e9

#: Simulated seconds between redraws of the slow service-rate modulation.
#: Long enough that a capacity swing spans a whole burst-drain window,
#: which is what differentiates recoveries burst to burst (Fig. 8).
MODULATION_BUCKET = 2.0

# ---------------------------------------------------------------------------
# Stream processors
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SpsProfile:
    """Per-engine fixed operator costs (serde & serving charged separately)."""

    name: str
    #: Fixed per-event cost in the source operator (fetch bookkeeping).
    source_overhead: float
    #: Fixed per-event cost in the scoring operator (framework dispatch).
    score_overhead: float
    #: Fixed per-event cost in the sink operator (produce bookkeeping).
    sink_overhead: float


# Fit: Flink chained [1-1-1] pipeline serves FFNN/ONNX at 1373-1393 ev/s
# (Table 4 / §6.1) while the unchained scoring stage alone sustains
# 5373 ev/s (Fig. 12) → src+sink ≈ 0.53 ms of the 0.72 ms chain, with
# JSON decode of a 3 KB event (~0.165 ms) inside the source.
FLINK_PROFILE = SpsProfile(
    name="flink",
    source_overhead=0.200 * MS,
    score_overhead=0.040 * MS,
    sink_overhead=0.120 * MS,
)

#: Flink network-buffer size; records larger than this pay a per-buffer
#: handling cost (Fig. 10: Flink loses to Kafka Streams at bsz=512).
FLINK_BUFFER_BYTES = 32 * 1024
FLINK_PER_BUFFER_COST = 0.300 * MS

# Fit: Table 5 — Kafka Streams/ONNX 2054 ev/s → 0.487 ms per event, i.e.
# ~0.24 ms less fixed overhead than Flink (pull model, no network stack).
KAFKA_STREAMS_PROFILE = SpsProfile(
    name="kafka_streams",
    source_overhead=0.030 * MS,
    score_overhead=0.020 * MS,
    sink_overhead=0.040 * MS,
)
#: Kafka Streams poll interval: fixed latency floor per record at low rates
#: (Fig. 10: KS slower than Flink for small batches).
KAFKA_STREAMS_POLL_INTERVAL = 3.0 * MS
#: Contention for Kafka Streams stream threads (Fig. 11: ~23k @ mp=16).
KAFKA_STREAMS_ALPHA = 0.027

#: Flink embedded contention comes from the serving profile alpha.

# Fit: Table 5 Spark/ONNX 4045 @ mp=1, Fig. 11 flat ~23k ceiling.
SPARK_PROFILE = SpsProfile(
    name="spark_ss",
    source_overhead=0.004 * MS,  # vectorized reader, amortized
    score_overhead=0.004 * MS,
    sink_overhead=0.004 * MS,
)
#: Serialized driver-side work per event (offsets, progress, commit).
#: Together with the driver's serialized Kafka fetch transfer this caps
#: Spark at a flat high ceiling regardless of mp (Fig. 11).
SPARK_DRIVER_PER_EVENT = 0.010 * MS
#: Fixed overhead per micro-batch trigger (scheduling, planning, commit).
SPARK_TRIGGER_OVERHEAD = 100.0 * MS
#: Vectorized (whole-chunk) scoring hands the engine one contiguous
#: tensor, so per-point marshalling shrinks to a memcpy share. This is the
#: micro-batch advantage behind Spark's Table 5 numbers and its ability to
#: saturate external servers (§7.1 "Micro-batching Support").
VECTORIZED_CONVERT_DISCOUNT = 0.12
#: Upper bound on events drained into one micro-batch.
SPARK_MAX_BATCH_EVENTS = 5000
#: Micro-batches in flight: Spark overlaps planning/fetch of the next
#: trigger with execution of the current one.
SPARK_INFLIGHT_TRIGGERS = 2

# Fit: Table 5 Ray 157 ev/s (ONNX) / 122 ev/s (Ray Serve) at mp=1.
RAY_PROFILE = SpsProfile(
    name="ray",
    source_overhead=0.300 * MS,
    score_overhead=0.100 * MS,
    sink_overhead=0.100 * MS,
)
#: Per-message actor mailbox/scheduling overhead (Python).
RAY_ACTOR_OVERHEAD = 6.0 * MS
#: Node-wide serialized scheduling cost per message: caps the whole node
#: at ~1.28k msg/s through the scoring stage (Fig. 11: Ray peaks at 1.2k).
RAY_NODE_PER_MESSAGE = 0.78 * MS
#: Ray Serve deploys ONE HTTP proxy per node; every request pays this on
#: the proxy before reaching a replica (Fig. 11: external peak 455 ev/s).
RAY_SERVE_PROXY_COST = 2.2 * MS

# ---------------------------------------------------------------------------
# Hosts (paper §4.2)
# ---------------------------------------------------------------------------

#: vCPUs of the data-processor VM.
SPS_HOST_CORES = 60
#: vCPUs of the external-serving VM.
SERVING_HOST_CORES = 16
#: Producer-side cost to generate one data point's values.
GENERATOR_PER_VALUE = 0.00002 * MS
