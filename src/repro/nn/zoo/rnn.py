"""A GRU sequence classifier (§4.1's RNN workload class).

The paper's generator "can be configured to yield sequence-like random
data" for RNN benchmarking. This model makes that concrete: a GRU over
32 timesteps of 64 features (a sensor window, a token embedding stream),
followed by a dense classifier — a realistic streaming-inference shape
for IoT and log-analytics pipelines.
"""

from __future__ import annotations

from repro.nn.layers import Dense, Gru, ReLU, Softmax
from repro.nn.model import Sequential

TIMESTEPS = 32
FEATURES = 64
HIDDEN = 128
CLASSES = 8


def build_gru(initialize: bool = False, seed: int = 0) -> Sequential:
    """Construct the GRU classifier (input shape ``(32, 64)``)."""
    gru = Gru((TIMESTEPS, FEATURES), hidden=HIDDEN)
    layers = [
        gru,
        Dense(gru.output_shape, HIDDEN),
        ReLU((HIDDEN,)),
        Dense((HIDDEN,), CLASSES),
        Softmax((CLASSES,)),
    ]
    model = Sequential(layers, name="gru")
    if initialize:
        model.initialize(seed)
    return model
