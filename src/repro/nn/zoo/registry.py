"""Model registry: static characteristics without materializing weights.

Serving cost models need FLOPs, parameter counts, and tensor sizes; those
are pure shape algebra, so :class:`ModelInfo` computes them from the
architecture alone and caches the result per model name.
"""

from __future__ import annotations

import dataclasses
import functools
import math
import typing

from repro.errors import ConfigError
from repro.nn.model import Sequential
from repro.nn.zoo.autoencoder import build_autoencoder
from repro.nn.zoo.efficientnet import build_efficientnet
from repro.nn.zoo.ffnn import build_ffnn
from repro.nn.zoo.mobilenet import build_mobilenet
from repro.nn.zoo.resnet import build_resnet50
from repro.nn.zoo.rnn import build_gru

_BUILDERS: dict[str, typing.Callable[..., Sequential]] = {
    "autoencoder": build_autoencoder,
    "efficientnet_b0": build_efficientnet,
    "ffnn": build_ffnn,
    "gru": build_gru,
    "mobilenet": build_mobilenet,
    "resnet50": build_resnet50,
}


def available_models() -> list[str]:
    """Names of all registered models (built-in + user-registered)."""
    return sorted(_BUILDERS)


def register_model(name: str, builder: typing.Callable[..., Sequential]) -> None:
    """Register a user model (§3.2: Crayfish is model-extensible).

    ``builder`` must accept ``initialize: bool`` and ``seed: int`` keyword
    arguments and return a :class:`Sequential`. Built-in names cannot be
    overridden.
    """
    if name in _BUILDERS:
        raise ConfigError(f"model {name!r} is already registered")
    _BUILDERS[name] = builder
    model_info.cache_clear()


_BUILTIN_MODELS = frozenset(
    ("autoencoder", "efficientnet_b0", "ffnn", "gru", "mobilenet", "resnet50")
)


def unregister_model(name: str) -> None:
    """Remove a user-registered model; built-ins cannot be removed."""
    if name in _BUILTIN_MODELS:
        raise ConfigError(f"cannot unregister built-in model {name!r}")
    if name not in _BUILDERS:
        raise ConfigError(f"model {name!r} is not registered")
    del _BUILDERS[name]
    model_info.cache_clear()


@dataclasses.dataclass(frozen=True)
class ModelInfo:
    """Static facts about one zoo model."""

    name: str
    input_shape: tuple[int, ...]
    output_shape: tuple[int, ...]
    param_count: int
    flops_per_point: float

    @property
    def input_values(self) -> int:
        """Scalar values in one input point."""
        return int(math.prod(self.input_shape))

    @property
    def output_values(self) -> int:
        """Scalar values in one prediction."""
        return int(math.prod(self.output_shape))


@functools.lru_cache(maxsize=None)
def model_info(name: str) -> ModelInfo:
    """Characteristics of the named model (architecture only, no weights)."""
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ConfigError(f"unknown model {name!r}; have {sorted(_BUILDERS)}")
    model = builder(initialize=False)
    return ModelInfo(
        name=name,
        input_shape=model.input_shape,
        output_shape=model.output_shape,
        param_count=model.param_count,
        flops_per_point=model.flops_per_point,
    )


def get_model(name: str, initialize: bool = True, seed: int = 0) -> Sequential:
    """Build (and by default materialize) the named zoo model."""
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ConfigError(f"unknown model {name!r}; have {sorted(_BUILDERS)}")
    return builder(initialize=initialize, seed=seed)
