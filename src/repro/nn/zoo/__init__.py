"""The pre-trained model zoo (paper §4.1, Table 2)."""

from repro.nn.zoo.autoencoder import build_autoencoder
from repro.nn.zoo.efficientnet import build_efficientnet
from repro.nn.zoo.ffnn import build_ffnn
from repro.nn.zoo.rnn import build_gru
from repro.nn.zoo.mobilenet import build_mobilenet
from repro.nn.zoo.resnet import build_resnet50
from repro.nn.zoo.registry import (
    ModelInfo,
    available_models,
    get_model,
    model_info,
    register_model,
    unregister_model,
)

__all__ = [
    "build_autoencoder",
    "build_efficientnet",
    "build_ffnn",
    "build_gru",
    "build_mobilenet",
    "build_resnet50",
    "ModelInfo",
    "available_models",
    "get_model",
    "model_info",
    "register_model",
    "unregister_model",
]
