"""EfficientNet-B0 (Tan & Le, 2019).

The last of Figure 2's named candidate classifiers. Built from MBConv
blocks: a 1x1 expansion, a depthwise convolution, squeeze-and-excitation
channel gating, and a 1x1 projection, with residual connections where
geometry allows. Real architecture: ~5.3M parameters, ~0.8 GFLOPs per
224x224x3 image (0.39 GMACs), sitting between MobileNetV1 and ResNet-50
on the accuracy/latency frontier the paper's §2.2.2 motivates.
"""

from __future__ import annotations

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Dense,
    DepthwiseConv2d,
    GlobalAvgPool2d,
    Layer,
    Residual,
    Softmax,
    SqueezeExcite,
    Swish,
)
from repro.nn.model import Sequential

INPUT_SHAPE = (3, 224, 224)
CLASSES = 1000
#: (expansion, out channels, repeats, stride, depthwise kernel) per stage.
STAGES = (
    (1, 16, 1, 1, 3),
    (6, 24, 2, 2, 3),
    (6, 40, 2, 2, 5),
    (6, 80, 3, 2, 3),
    (6, 112, 3, 1, 5),
    (6, 192, 4, 2, 5),
    (6, 320, 1, 1, 3),
)


def _conv_bn_swish(shape, filters, kernel, stride=1, padding=0) -> list[Layer]:
    conv = Conv2d(shape, filters, kernel, stride=stride, padding=padding)
    return [conv, BatchNorm2d(conv.output_shape), Swish(conv.output_shape)]


def _mbconv(shape, expansion, out_channels, stride, kernel) -> Layer | list[Layer]:
    """One MBConv block; a Residual when input and output geometry match."""
    main: list[Layer] = []
    expanded = shape[0] * expansion
    if expansion != 1:
        main += _conv_bn_swish(shape, expanded, kernel=1)
    depthwise = DepthwiseConv2d(
        main[-1].output_shape if main else shape,
        kernel_size=kernel,
        stride=stride,
        padding=kernel // 2,
    )
    main += [
        depthwise,
        BatchNorm2d(depthwise.output_shape),
        Swish(depthwise.output_shape),
        SqueezeExcite(depthwise.output_shape, reduction=4 * expansion),
    ]
    project = Conv2d(depthwise.output_shape, out_channels, kernel_size=1)
    main += [project, BatchNorm2d(project.output_shape)]
    if stride == 1 and shape[0] == out_channels:
        return Residual(shape, main, final_relu=False)
    return main


def build_efficientnet(initialize: bool = False, seed: int = 0) -> Sequential:
    """Construct EfficientNet-B0."""
    layers: list[Layer] = _conv_bn_swish(INPUT_SHAPE, 32, kernel=3, stride=2, padding=1)
    shape = layers[-1].output_shape
    for expansion, out_channels, repeats, stride, kernel in STAGES:
        for repeat in range(repeats):
            block = _mbconv(
                shape,
                expansion,
                out_channels,
                stride if repeat == 0 else 1,
                kernel,
            )
            if isinstance(block, Residual):
                layers.append(block)
                shape = block.output_shape
            else:
                layers += block
                shape = block[-1].output_shape
    layers += _conv_bn_swish(shape, 1280, kernel=1)
    gap = GlobalAvgPool2d(layers[-1].output_shape)
    layers += [gap, Dense(gap.output_shape, CLASSES), Softmax((CLASSES,))]
    model = Sequential(layers, name="efficientnet_b0")
    if initialize:
        model.initialize(seed)
    return model
