"""The paper's FFNN: a Fashion-MNIST classifier (§4.1).

A fully connected network with three hidden layers of 32 ReLU neurons,
28x28 inputs, and 10 output classes — about 28K parameters (Table 2).
"""

from __future__ import annotations

from repro.nn.layers import Dense, Flatten, ReLU, Softmax
from repro.nn.model import Sequential

INPUT_SHAPE = (28, 28)
HIDDEN_UNITS = 32
HIDDEN_LAYERS = 3
CLASSES = 10


def build_ffnn(initialize: bool = False, seed: int = 0) -> Sequential:
    """Construct the FFNN; ``initialize=True`` materializes weights."""
    layers = [Flatten(INPUT_SHAPE)]
    width = INPUT_SHAPE[0] * INPUT_SHAPE[1]
    for __ in range(HIDDEN_LAYERS):
        layers.append(Dense((width,), HIDDEN_UNITS))
        layers.append(ReLU((HIDDEN_UNITS,)))
        width = HIDDEN_UNITS
    layers.append(Dense((width,), CLASSES))
    layers.append(Softmax((CLASSES,)))
    model = Sequential(layers, name="ffnn")
    if initialize:
        model.initialize(seed)
    return model
