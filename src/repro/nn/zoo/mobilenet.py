"""MobileNetV1 (Howard et al., 2017).

One of the candidate image classifiers in the paper's Figure 2 design
space (alongside ResNet-50, Inception-v3, EfficientNet-B0). Built from
depthwise-separable convolutions: a 3x3 depthwise filter per channel
followed by a 1x1 pointwise projection, cutting compute ~8-9x versus
standard convolutions. Real architecture: ~4.2M parameters, ~1.1 GFLOPs
per 224x224x3 image — the "middle" model between the paper's FFNN and
ResNet-50.
"""

from __future__ import annotations

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Dense,
    DepthwiseConv2d,
    GlobalAvgPool2d,
    Layer,
    ReLU,
    Softmax,
)
from repro.nn.model import Sequential

INPUT_SHAPE = (3, 224, 224)
CLASSES = 1000
#: (pointwise output channels, depthwise stride) per separable block.
BLOCKS = (
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
)


def _conv_bn_relu(shape, filters, kernel, stride=1, padding=0) -> list[Layer]:
    conv = Conv2d(shape, filters, kernel, stride=stride, padding=padding)
    return [conv, BatchNorm2d(conv.output_shape), ReLU(conv.output_shape)]


def _separable(shape, out_channels, stride) -> list[Layer]:
    """Depthwise 3x3 -> BN -> ReLU -> pointwise 1x1 -> BN -> ReLU."""
    depthwise = DepthwiseConv2d(shape, kernel_size=3, stride=stride, padding=1)
    layers: list[Layer] = [
        depthwise,
        BatchNorm2d(depthwise.output_shape),
        ReLU(depthwise.output_shape),
    ]
    layers += _conv_bn_relu(depthwise.output_shape, out_channels, kernel=1)
    return layers


def build_mobilenet(initialize: bool = False, seed: int = 0) -> Sequential:
    """Construct MobileNetV1 (width multiplier 1.0, 224x224 input)."""
    layers: list[Layer] = _conv_bn_relu(
        INPUT_SHAPE, 32, kernel=3, stride=2, padding=1
    )
    shape = layers[-1].output_shape
    for out_channels, stride in BLOCKS:
        block = _separable(shape, out_channels, stride)
        layers += block
        shape = block[-1].output_shape
    gap = GlobalAvgPool2d(shape)
    layers += [gap, Dense(gap.output_shape, CLASSES), Softmax((CLASSES,))]
    model = Sequential(layers, name="mobilenet")
    if initialize:
        model.initialize(seed)
    return model
