"""ResNet-50 (He et al., 2016), the paper's large model (§4.1).

The standard ImageNet architecture: a 7x7/2 stem, max-pool, four stages of
bottleneck residual blocks ([3, 4, 6, 3] repeats), global average pooling,
and a 1000-way classifier. Built with real shapes so parameter counts
(~25.6M; the paper rounds to 23M) and FLOPs (~3.9 GFLOP per 224x224x3
image) are genuine.
"""

from __future__ import annotations

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Dense,
    GlobalAvgPool2d,
    Layer,
    MaxPool2d,
    ReLU,
    Residual,
    Softmax,
)
from repro.nn.model import Sequential

INPUT_SHAPE = (3, 224, 224)
CLASSES = 1000
#: Bottleneck block repeats per stage.
STAGE_BLOCKS = (3, 4, 6, 3)
#: Bottleneck "narrow" widths per stage; output width is 4x.
STAGE_WIDTHS = (64, 128, 256, 512)
EXPANSION = 4


def _conv_bn(shape, filters, kernel, stride=1, padding=0, relu=True) -> list[Layer]:
    """conv -> batchnorm (-> relu), the ResNet building unit."""
    conv = Conv2d(shape, filters, kernel, stride=stride, padding=padding)
    layers: list[Layer] = [conv, BatchNorm2d(conv.output_shape)]
    if relu:
        layers.append(ReLU(conv.output_shape))
    return layers


def _bottleneck(shape, width, stride) -> Residual:
    """1x1 reduce -> 3x3 -> 1x1 expand, with a projection shortcut when
    the geometry changes."""
    out_channels = width * EXPANSION
    main: list[Layer] = []
    main += _conv_bn(shape, width, kernel=1, stride=stride)
    main += _conv_bn(main[-1].output_shape, width, kernel=3, padding=1)
    main += _conv_bn(main[-1].output_shape, out_channels, kernel=1, relu=False)
    needs_projection = stride != 1 or shape[0] != out_channels
    shortcut = (
        _conv_bn(shape, out_channels, kernel=1, stride=stride, relu=False)
        if needs_projection
        else None
    )
    return Residual(shape, main, shortcut)


def build_resnet50(initialize: bool = False, seed: int = 0) -> Sequential:
    """Construct ResNet-50; ``initialize=True`` allocates ~100 MB of
    weights, so cost models should leave it False."""
    layers: list[Layer] = []
    layers += _conv_bn(INPUT_SHAPE, 64, kernel=7, stride=2, padding=3)
    pool = MaxPool2d(layers[-1].output_shape, pool_size=3, stride=2, padding=1)
    layers.append(pool)
    shape = pool.output_shape
    for stage, (blocks, width) in enumerate(zip(STAGE_BLOCKS, STAGE_WIDTHS)):
        for block in range(blocks):
            stride = 2 if (stage > 0 and block == 0) else 1
            residual = _bottleneck(shape, width, stride)
            layers.append(residual)
            shape = residual.output_shape
    gap = GlobalAvgPool2d(shape)
    layers += [
        gap,
        Dense(gap.output_shape, CLASSES),
        Softmax((CLASSES,)),
    ]
    model = Sequential(layers, name="resnet50")
    if initialize:
        model.initialize(seed)
    return model
