"""A dense autoencoder (§4.1's compact-representation workload class).

"Autoencoders can also be benchmarked with Crayfish to test the
performance of producing compact representations." A symmetric
784 -> 256 -> 32 -> 256 -> 784 reconstruction network: the streaming use
case is anomaly detection by reconstruction error over event windows.
"""

from __future__ import annotations

from repro.nn.layers import Dense, Flatten, ReLU, Sigmoid
from repro.nn.model import Sequential

INPUT_SHAPE = (28, 28)
HIDDEN = 256
BOTTLENECK = 32


def build_autoencoder(initialize: bool = False, seed: int = 0) -> Sequential:
    """Construct the autoencoder (output = reconstructed input)."""
    width = INPUT_SHAPE[0] * INPUT_SHAPE[1]
    layers = [
        Flatten(INPUT_SHAPE),
        Dense((width,), HIDDEN),
        ReLU((HIDDEN,)),
        Dense((HIDDEN,), BOTTLENECK),
        ReLU((BOTTLENECK,)),
        Dense((BOTTLENECK,), HIDDEN),
        ReLU((HIDDEN,)),
        Dense((HIDDEN,), width),
        Sigmoid((width,)),
    ]
    model = Sequential(layers, name="autoencoder")
    if initialize:
        model.initialize(seed)
    return model
