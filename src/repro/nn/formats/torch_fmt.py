"""PyTorch-like format: per-tensor storage records with stride metadata."""

from __future__ import annotations

import json

import numpy as np

from repro.nn.formats import base
from repro.nn.model import Sequential

MAGIC = b"TORCHREPRO\x01"


def _storage_header(name: str, array: np.ndarray) -> bytes:
    """PyTorch persists per-tensor storage descriptors (device, strides,
    requires_grad, storage key); modelled as a small JSON header."""
    descriptor = {
        "storage": f"storage/{name}",
        "dtype": "float32",
        "device": "cpu",
        "strides": [int(s // array.itemsize) for s in np.ascontiguousarray(array).strides],
        "requires_grad": False,
    }
    return json.dumps(descriptor, separators=(",", ":")).encode("utf-8")


class TorchFormat(base.ModelFormat):
    """Single file, slightly larger than ONNX due to storage descriptors
    (Table 2: 115 KB vs 113 KB for the FFNN)."""

    name = "torch"

    def dumps(self, model: Sequential) -> bytes:
        header = base.pack_json(
            {
                "format": "torch.repro",
                "protocol": 2,
                "name": model.name,
                "architecture": model.architecture(),
            }
        )
        blobs = [
            base.pack_tensor(name, array, extra_header=_storage_header(name, array))
            for name, array in sorted(model.get_weights().items())
        ]
        return MAGIC + header + b"".join(blobs)

    def loads(self, data: bytes) -> Sequential:
        offset = base.check_magic(data, MAGIC, "Torch")
        header, offset = base.unpack_json(data, offset)
        weights = {}
        while offset < len(data):
            name, array, offset = base.unpack_tensor(data, offset)
            weights[name] = array
        return base.rebuild(
            header["architecture"], header.get("name", "model"), weights
        )

    def save(self, model: Sequential, path: str) -> None:
        base.write_file(path, self.dumps(model))

    def load(self, path: str) -> Sequential:
        return self.loads(base.read_file(path))
