"""Model serialization formats (the paper's Table 2 artifacts).

Four formats with genuinely different envelopes, mirroring the tools under
study:

- :mod:`onnx_fmt` -- compact single-file graph + raw tensors (ONNX).
- :mod:`torch_fmt` -- single file with per-tensor storage records (PyTorch).
- :mod:`h5` -- hierarchical groups with per-dataset headers (Keras H5,
  the artifact DL4J imports).
- :mod:`saved_model` -- a directory with a verbose graph program and a
  separate variables file (TensorFlow SavedModel).

Every format round-trips: ``load(save(model))`` reconstructs an equivalent
model with identical weights. Sizes on disk reproduce Table 2's ordering
(ONNX < Torch < H5 << SavedModel for the small model; all within a few
percent of raw weights for the large one).
"""

from repro.nn.formats.registry import (
    FORMATS,
    format_for_tool,
    load_model,
    save_model,
    serialized_size,
)

__all__ = [
    "FORMATS",
    "format_for_tool",
    "load_model",
    "save_model",
    "serialized_size",
]
