"""Shared binary plumbing for the model formats."""

from __future__ import annotations

import json
import struct
import typing

import numpy as np

from repro.errors import ModelFormatError
from repro.nn.model import Sequential


def pack_json(obj: object) -> bytes:
    """Length-prefixed compact JSON block."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    return struct.pack("<I", len(body)) + body


def unpack_json(buffer: bytes, offset: int) -> tuple[object, int]:
    """Read a :func:`pack_json` block; returns (object, next offset)."""
    if offset + 4 > len(buffer):
        raise ModelFormatError("truncated JSON block header")
    (length,) = struct.unpack_from("<I", buffer, offset)
    offset += 4
    if offset + length > len(buffer):
        raise ModelFormatError("truncated JSON block body")
    try:
        obj = json.loads(buffer[offset : offset + length].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ModelFormatError(f"corrupt JSON block: {error}") from error
    return obj, offset + length


def pack_tensor(name: str, array: np.ndarray, extra_header: bytes = b"") -> bytes:
    """One tensor record: name, shape, optional format-specific header,
    raw little-endian float32 data."""
    array = np.ascontiguousarray(array, dtype="<f4")
    header = pack_json({"name": name, "shape": list(array.shape)})
    data = array.tobytes()
    return (
        header
        + struct.pack("<I", len(extra_header))
        + extra_header
        + struct.pack("<Q", len(data))
        + data
    )


def unpack_tensor(buffer: bytes, offset: int) -> tuple[str, np.ndarray, int]:
    """Read one :func:`pack_tensor` record; returns (name, array, next)."""
    meta, offset = unpack_json(buffer, offset)
    if not isinstance(meta, dict) or "name" not in meta or "shape" not in meta:
        raise ModelFormatError(f"bad tensor header: {meta!r}")
    if offset + 4 > len(buffer):
        raise ModelFormatError("truncated tensor extra-header length")
    (extra_len,) = struct.unpack_from("<I", buffer, offset)
    offset += 4 + extra_len  # format-specific header is opaque on read
    if offset + 8 > len(buffer):
        raise ModelFormatError("truncated tensor data length")
    (data_len,) = struct.unpack_from("<Q", buffer, offset)
    offset += 8
    if offset + data_len > len(buffer):
        raise ModelFormatError(f"truncated tensor data for {meta['name']!r}")
    shape = tuple(int(d) for d in meta["shape"])
    count = int(np.prod(shape)) if shape else 1
    if data_len != count * 4:
        raise ModelFormatError(
            f"tensor {meta['name']!r}: {data_len} bytes != shape {shape}"
        )
    array = np.frombuffer(
        buffer, dtype="<f4", count=count, offset=offset
    ).reshape(shape)
    return str(meta["name"]), array.copy(), offset + data_len


def check_magic(buffer: bytes, magic: bytes, format_name: str) -> int:
    """Validate the leading magic bytes; returns the offset after them."""
    if not buffer.startswith(magic):
        raise ModelFormatError(
            f"not a {format_name} artifact (bad magic {buffer[:8]!r})"
        )
    return len(magic)


class ModelFormat:
    """Interface every model format implements."""

    #: Short name used in registries and file extensions.
    name: str = ""
    #: True when artifacts are directories rather than single files.
    is_directory: bool = False

    def save(self, model: Sequential, path: str) -> None:
        raise NotImplementedError

    def load(self, path: str) -> Sequential:
        raise NotImplementedError

    def dumps(self, model: Sequential) -> bytes:
        """Single-file formats: serialize to bytes."""
        raise NotImplementedError

    def loads(self, data: bytes) -> Sequential:
        raise NotImplementedError


def read_file(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def write_file(path: str, data: bytes) -> None:
    with open(path, "wb") as handle:
        handle.write(data)


def rebuild(architecture: typing.Sequence[dict], name: str, weights: dict) -> Sequential:
    model = Sequential.from_architecture(architecture, name=name)
    model.set_weights(weights)
    return model
