"""TensorFlow-SavedModel-like format: a directory artifact.

A SavedModel directory holds a serialized *program* (``saved_model.pb``:
graph functions for serving, training, initialization, and checkpointing,
plus the op schema library and Keras metadata) next to the raw variables.
The program section is large and mostly independent of model size, which
is why Table 2 shows the FFNN at 508 KB in SavedModel versus 113 KB in
ONNX, while ResNet50's artifacts differ by only a few percent.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.errors import ModelFormatError
from repro.nn.formats import base
from repro.nn.model import Sequential

PB_NAME = "saved_model.pb"
VARIABLES_DIR = "variables"
DATA_NAME = "variables.data-00000-of-00001"
INDEX_NAME = "variables.index"

#: Function graphs serialized per model (TF emits one ConcreteFunction per
#: signature): serving, training step, variable init, checkpoint restore.
_SIGNATURES = ("serving_default", "train_step", "init_variables", "restore")

#: Standard ops whose schemas TF embeds in every SavedModel's function
#: library. Repeating realistic schema records reproduces the ~350 KB
#: size floor observed for small Keras models.
_OP_LIBRARY_OPS = [
    "MatMul", "BiasAdd", "Conv2D", "FusedBatchNormV3", "Relu", "Softmax",
    "MaxPool", "Mean", "AddV2", "Identity", "Placeholder", "Const",
    "VarHandleOp", "ReadVariableOp", "AssignVariableOp", "NoOp", "Reshape",
    "Pad", "Transpose", "Cast", "Shape", "StridedSlice", "Pack", "Fill",
    "Range", "ExpandDims", "Squeeze", "ConcatV2", "Split", "Tile",
    "GatherV2", "Select", "Greater", "Less", "Equal", "LogicalAnd",
    "ArgMax", "TopKV2", "Exp", "Log", "Sqrt", "Rsqrt", "Square", "Sub",
    "Mul", "RealDiv", "Maximum", "Minimum", "Sum", "Prod", "Max", "Min",
    "All", "Any", "RandomUniform", "TruncatedNormal", "Assert", "PrintV2",
    "StringFormat", "PartitionedCall", "StatefulPartitionedCall",
    "FlatMapDataset", "BatchDatasetV2", "PrefetchDataset", "OptionalNone",
]


def _op_schema(op_name: str) -> dict:
    """One op schema record as embedded in a TF function library.

    TF serializes complete ``OpDef`` protos — argument docs, allowed
    types, deprecation info — for every op referenced by any function.
    """
    description = " ".join(
        f"{op_name} argument {i}: see the TensorFlow op registry entry for "
        f"the canonical semantics, shape function, and type constraints of "
        f"this operand as serialized into the SavedModel function library."
        for i in range(16)
    )
    return {
        "description": description,
        "deprecation": {"version": 0, "explanation": ""},
        "allows_uninitialized_input": False,
        "is_aggregate": False,
        "is_commutative": False,
        "is_distributed_communication": False,
        "name": op_name,
        "input_arg": [
            {"name": "input", "type_attr": "T"},
            {"name": "args", "type_list_attr": "Targs"},
        ],
        "output_arg": [{"name": "output", "type_attr": "T"}],
        "attr": [
            {"name": "T", "type": "type", "allowed_values": ["float32", "float64", "int32", "int64"]},
            {"name": "Targs", "type": "list(type)", "default": []},
            {"name": "data_format", "type": "string", "default": "NHWC"},
            {"name": "_output_shapes", "type": "list(shape)", "default": []},
            {"name": "_class", "type": "list(string)", "default": []},
            {"name": "device", "type": "string", "default": "/job:localhost/replica:0/task:0/device:CPU:0"},
        ],
        "summary": f"Registered schema for {op_name} as captured in the "
        f"SavedModel function library.",
        "is_stateful": op_name.startswith(("Var", "Assign", "Stateful")),
    }


def _function_graph(signature: str, architecture: list[dict]) -> dict:
    """One ConcreteFunction: every layer expands to node defs with full
    attribute payloads (this is what makes saved_model.pb verbose)."""
    nodes = []
    for index, layer in enumerate(architecture):
        nodes.append(
            {
                "name": f"{signature}/layer_{index}/{layer['type']}",
                "op": layer["type"],
                "input": [f"{signature}/layer_{index - 1}" if index else "inputs"],
                "attr": {
                    "config": layer["config"],
                    "T": "float32",
                    "_output_shapes": layer["config"].get("input_shape", []),
                    "_tpu_replicate": "",
                    "container": "",
                    "shared_name": f"{signature}_{index}",
                },
                "experimental_debug_info": {
                    "original_node_names": [f"model/layer_{index}"],
                    "original_func_names": [signature],
                    # TF records a stack trace per node in the object graph.
                    "stack_trace": [
                        f"File keras/engine/training.py, line {100 + k}, in "
                        f"{signature}: self.layers[{index}].__call__(inputs) "
                        f"-> tensorflow/python/framework/func_graph.py "
                        f"wrapped_fn(*args, **kwargs)"
                        for k in range(10)
                    ],
                },
            }
        )
        # Residual blocks expand their sub-paths into the graph too.
        for branch in ("main", "shortcut"):
            for j, sub in enumerate(layer["config"].get(branch) or []):
                nodes.append(
                    {
                        "name": f"{signature}/layer_{index}/{branch}_{j}/{sub['type']}",
                        "op": sub["type"],
                        "input": [f"{signature}/layer_{index}"],
                        "attr": {"config": sub["config"], "T": "float32"},
                    }
                )
    return {"signature": signature, "node_def": nodes}


class SavedModelFormat(base.ModelFormat):
    """Directory artifact with a verbose program and raw variables."""

    name = "savedmodel"
    is_directory = True

    def save(self, model: Sequential, path: str) -> None:
        os.makedirs(os.path.join(path, VARIABLES_DIR), exist_ok=True)
        architecture = model.architecture()
        program = {
            "saved_model_schema_version": 1,
            "meta_graphs": [
                {
                    "tags": ["serve"],
                    "name": model.name,
                    "op_library": [_op_schema(op) for op in _OP_LIBRARY_OPS],
                    # TF stores the program twice: once as a GraphDef and
                    # once as the SavedObjectGraph used by tf.function
                    # tracing — reproduce both sections.
                    "graph_def": [
                        _function_graph(sig, architecture) for sig in _SIGNATURES
                    ],
                    "object_graph_def": [
                        _function_graph(sig, architecture) for sig in _SIGNATURES
                    ],
                    "keras_metadata": {
                        "class_name": "Sequential",
                        "config": {"name": model.name, "layers": architecture},
                    },
                }
            ],
        }
        base.write_file(
            os.path.join(path, PB_NAME),
            json.dumps(program, separators=(",", ":")).encode("utf-8"),
        )
        # Variables: one contiguous data shard + an index of offsets.
        weights = sorted(model.get_weights().items())
        index = []
        offset = 0
        chunks = []
        for name, array in weights:
            data = np.ascontiguousarray(array, dtype="<f4").tobytes()
            index.append(
                {
                    "name": name,
                    "shape": list(array.shape),
                    "offset": offset,
                    "size": len(data),
                }
            )
            chunks.append(data)
            offset += len(data)
        base.write_file(
            os.path.join(path, VARIABLES_DIR, DATA_NAME), b"".join(chunks)
        )
        base.write_file(
            os.path.join(path, VARIABLES_DIR, INDEX_NAME),
            json.dumps(index, separators=(",", ":")).encode("utf-8"),
        )

    def load(self, path: str) -> Sequential:
        pb_path = os.path.join(path, PB_NAME)
        if not os.path.exists(pb_path):
            raise ModelFormatError(f"{path!r} is not a SavedModel directory")
        program = json.loads(base.read_file(pb_path).decode("utf-8"))
        meta = program["meta_graphs"][0]
        architecture = meta["keras_metadata"]["config"]["layers"]
        index = json.loads(
            base.read_file(os.path.join(path, VARIABLES_DIR, INDEX_NAME)).decode(
                "utf-8"
            )
        )
        blob = base.read_file(os.path.join(path, VARIABLES_DIR, DATA_NAME))
        weights = {}
        for entry in index:
            shape = tuple(int(d) for d in entry["shape"])
            count = int(np.prod(shape)) if shape else 1
            array = np.frombuffer(
                blob, dtype="<f4", count=count, offset=entry["offset"]
            ).reshape(shape)
            weights[entry["name"]] = array.copy()
        return base.rebuild(architecture, meta.get("name", "model"), weights)
