"""Format registry plus save/load/size convenience functions."""

from __future__ import annotations

import os

from repro.errors import ModelFormatError
from repro.nn.formats.base import ModelFormat
from repro.nn.formats.h5 import H5Format
from repro.nn.formats.onnx_fmt import OnnxFormat
from repro.nn.formats.saved_model import SavedModelFormat
from repro.nn.formats.torch_fmt import TorchFormat
from repro.nn.model import Sequential

FORMATS: dict[str, ModelFormat] = {
    fmt.name: fmt
    for fmt in (OnnxFormat(), TorchFormat(), H5Format(), SavedModelFormat())
}

#: Which artifact each serving tool consumes (§3.4.2-§3.4.3): DL4J imports
#: Keras H5; TF-Serving and the SavedModel library use SavedModel;
#: TorchServe uses native Torch; ONNX Runtime uses ONNX. Ray applies the
#: model natively (no artifact conversion) — mapped to Torch for storage.
TOOL_FORMATS = {
    "onnx": "onnx",
    "dl4j": "h5",
    "savedmodel": "savedmodel",
    "tf_serving": "savedmodel",
    "torchserve": "torch",
    "ray_serve": "torch",
}


def get_format(name: str) -> ModelFormat:
    try:
        return FORMATS[name]
    except KeyError:
        raise ModelFormatError(
            f"unknown format {name!r}; have {sorted(FORMATS)}"
        ) from None


def format_for_tool(tool: str) -> ModelFormat:
    """The model format the named serving tool loads."""
    try:
        return get_format(TOOL_FORMATS[tool])
    except KeyError:
        raise ModelFormatError(f"no format mapping for tool {tool!r}") from None


def save_model(model: Sequential, path: str, format_name: str) -> None:
    get_format(format_name).save(model, path)


def load_model(path: str, format_name: str) -> Sequential:
    return get_format(format_name).load(path)


def serialized_size(model: Sequential, format_name: str, workdir: str) -> int:
    """On-disk artifact size in bytes (Table 2's Model Size rows)."""
    fmt = get_format(format_name)
    path = os.path.join(workdir, f"{model.name}.{format_name}")
    fmt.save(model, path)
    if fmt.is_directory:
        total = 0
        for root, __, files in os.walk(path):
            total += sum(os.path.getsize(os.path.join(root, f)) for f in files)
        return total
    return os.path.getsize(path)
