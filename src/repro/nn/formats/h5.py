"""Keras-H5-like format: hierarchical groups with per-dataset headers.

HDF5 files carry a superblock, B-tree/group metadata, and per-dataset
object headers with chunking information; Keras additionally stores the
full model config and training metadata as root attributes. That envelope
is why the FFNN's H5 artifact (133 KB) is noticeably bigger than ONNX's
(113 KB) in Table 2 while the raw weights are identical.
"""

from __future__ import annotations

import json

import numpy as np

from repro.nn.formats import base
from repro.nn.model import Sequential

MAGIC = b"\x89HDFREPRO\r\n\x1a\n"

#: HDF5 superblock, root group B-tree, and local heap (HDF5 pre-allocates
#: sizeable metadata blocks even for small files).
_SUPERBLOCK_BYTES = 16384
#: Per-dataset object header (chunk B-tree, fill value, filters, attrs).
_DATASET_HEADER_BYTES = 1024


def _dataset_header(name: str, array: np.ndarray) -> bytes:
    """A realistic per-dataset object header of ~280 bytes."""
    meta = {
        "path": f"/model_weights/{name.replace('.', '/')}",
        "class": "H5D_CHUNKED",
        "chunk": list(array.shape) or [1],
        "fill_value": 0.0,
        "filters": [],
        "attrs": {"backend": "tensorflow", "keras_version": "2.13.0"},
    }
    body = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    return body.ljust(_DATASET_HEADER_BYTES, b"\x00")


class H5Format(base.ModelFormat):
    """Keras H5: the artifact DL4J's Keras import consumes (§3.4.2)."""

    name = "h5"

    def dumps(self, model: Sequential) -> bytes:
        keras_config = {
            "class_name": "Sequential",
            "config": {"name": model.name, "layers": model.architecture()},
            "keras_version": "2.13.0",
            "backend": "tensorflow",
            "training_config": {
                "loss": "categorical_crossentropy",
                "metrics": ["accuracy"],
                "optimizer_config": {
                    "class_name": "Adam",
                    "config": {"learning_rate": 0.001},
                },
            },
        }
        root_attrs = base.pack_json(keras_config)
        superblock = root_attrs.ljust(
            max(_SUPERBLOCK_BYTES, len(root_attrs)), b"\x00"
        )
        blobs = [
            base.pack_tensor(name, array, extra_header=_dataset_header(name, array))
            for name, array in sorted(model.get_weights().items())
        ]
        return MAGIC + superblock + b"".join(blobs)

    def loads(self, data: bytes) -> Sequential:
        offset = base.check_magic(data, MAGIC, "H5")
        config, end = base.unpack_json(data, offset)
        offset += max(_SUPERBLOCK_BYTES, end - offset)
        weights = {}
        while offset < len(data):
            name, array, offset = base.unpack_tensor(data, offset)
            weights[name] = array
        inner = config["config"]
        return base.rebuild(inner["layers"], inner.get("name", "model"), weights)

    def save(self, model: Sequential, path: str) -> None:
        base.write_file(path, self.dumps(model))

    def load(self, path: str) -> Sequential:
        return self.loads(base.read_file(path))
