"""ONNX-like format: one compact file, graph header + raw initializers."""

from __future__ import annotations

from repro.nn.formats import base
from repro.nn.model import Sequential

MAGIC = b"ONNXREPRO\x01"


class OnnxFormat(base.ModelFormat):
    """Single-file graph with minimal per-tensor overhead (Table 2: the
    smallest artifact for both models)."""

    name = "onnx"

    def dumps(self, model: Sequential) -> bytes:
        header = base.pack_json(
            {
                "ir_version": 8,
                "producer": "repro",
                "name": model.name,
                "graph": model.architecture(),
            }
        )
        blobs = [
            base.pack_tensor(name, array)
            for name, array in sorted(model.get_weights().items())
        ]
        return MAGIC + header + b"".join(blobs)

    def loads(self, data: bytes) -> Sequential:
        offset = base.check_magic(data, MAGIC, "ONNX")
        header, offset = base.unpack_json(data, offset)
        weights = {}
        while offset < len(data):
            name, array, offset = base.unpack_tensor(data, offset)
            weights[name] = array
        return base.rebuild(header["graph"], header.get("name", "model"), weights)

    def save(self, model: Sequential, path: str) -> None:
        base.write_file(path, self.dumps(model))

    def load(self, path: str) -> Sequential:
        return self.loads(base.read_file(path))
