"""A small, real neural-network inference library on NumPy.

This package provides the "pre-trained models" of the study: genuine
FFNN and ResNet-50 architectures whose parameter counts, FLOPs, and
serialized sizes are real (Table 2), and whose ``forward`` actually
computes. Layers are constructed with explicit shapes; weights are
materialized lazily so cost models can query FLOPs/params without
allocating hundreds of megabytes.
"""

from repro.nn.layers import (
    Add,
    BatchNorm2d,
    Conv2d,
    Dense,
    DepthwiseConv2d,
    Flatten,
    GlobalAvgPool2d,
    Gru,
    Layer,
    MaxPool2d,
    ReLU,
    Residual,
    Sigmoid,
    Softmax,
)
from repro.nn.model import Model, Sequential

__all__ = [
    "Layer",
    "Dense",
    "Conv2d",
    "DepthwiseConv2d",
    "BatchNorm2d",
    "ReLU",
    "Softmax",
    "Sigmoid",
    "Gru",
    "Flatten",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Add",
    "Residual",
    "Model",
    "Sequential",
]
