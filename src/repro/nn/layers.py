"""Layers: shape algebra, parameter/FLOP accounting, NumPy forward passes.

Shapes are per-point (no batch dimension); ``forward`` operates on arrays
with a leading batch axis. Convolutions use NCHW layout. FLOPs follow the
usual convention of 2 ops (multiply + add) per MAC.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

Shape = tuple[int, ...]


def _check_positive_shape(shape: Shape, who: str) -> None:
    if not shape or any(int(d) < 1 for d in shape):
        raise ShapeError(f"{who}: invalid shape {shape}")


class Layer:
    """Base layer: knows its shapes and costs before weights exist."""

    def __init__(self, input_shape: Shape) -> None:
        _check_positive_shape(tuple(input_shape), type(self).__name__)
        self.input_shape: Shape = tuple(int(d) for d in input_shape)
        self._params: dict[str, np.ndarray] = {}
        self._initialized = False

    # -- static accounting --------------------------------------------

    @property
    def output_shape(self) -> Shape:
        raise NotImplementedError

    def param_shapes(self) -> dict[str, Shape]:
        """Name -> shape of every trainable parameter tensor."""
        return {}

    @property
    def param_count(self) -> int:
        return sum(int(np.prod(s)) for s in self.param_shapes().values())

    @property
    def flops_per_point(self) -> float:
        """Floating-point operations to process one data point."""
        return 0.0

    def config(self) -> dict:
        """JSON-serializable constructor arguments (for model formats)."""
        return {"input_shape": list(self.input_shape)}

    # -- weights --------------------------------------------------------

    def initialize(self, rng: np.random.Generator) -> None:
        """Materialize weights (He-style init; these stand in for the
        paper's pre-trained weights, whose values are irrelevant to the
        performance study)."""
        self._params = {
            name: rng.standard_normal(shape, dtype=np.float32)
            * np.float32(np.sqrt(2.0 / max(int(np.prod(shape[1:])) or 1, 1)))
            for name, shape in self.param_shapes().items()
        }
        self._initialized = True

    @property
    def initialized(self) -> bool:
        return self._initialized

    def get_params(self) -> dict[str, np.ndarray]:
        self._require_init()
        return dict(self._params)

    def set_params(self, params: dict[str, np.ndarray]) -> None:
        expected = self.param_shapes()
        if set(params) != set(expected):
            raise ShapeError(
                f"{type(self).__name__}: parameter names {sorted(params)} "
                f"!= expected {sorted(expected)}"
            )
        for name, array in params.items():
            if tuple(array.shape) != tuple(expected[name]):
                raise ShapeError(
                    f"{type(self).__name__}.{name}: shape {array.shape} "
                    f"!= expected {expected[name]}"
                )
        self._params = {k: np.asarray(v, dtype=np.float32) for k, v in params.items()}
        self._initialized = True

    def _require_init(self) -> None:
        if not self._initialized and self.param_shapes():
            raise ShapeError(
                f"{type(self).__name__} has no weights; call initialize()"
            )

    # -- compute ----------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if tuple(x.shape[1:]) != self.input_shape:
            raise ShapeError(
                f"{type(self).__name__}: input {x.shape[1:]} != "
                f"expected {self.input_shape}"
            )
        return x


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(self, input_shape: Shape, units: int) -> None:
        super().__init__(input_shape)
        if len(self.input_shape) != 1:
            raise ShapeError(f"Dense expects a flat input, got {self.input_shape}")
        if units < 1:
            raise ShapeError(f"Dense units must be >= 1, got {units}")
        self.units = int(units)

    @property
    def output_shape(self) -> Shape:
        return (self.units,)

    def param_shapes(self) -> dict[str, Shape]:
        return {"weight": (self.input_shape[0], self.units), "bias": (self.units,)}

    @property
    def flops_per_point(self) -> float:
        return 2.0 * self.input_shape[0] * self.units

    def config(self) -> dict:
        return {**super().config(), "units": self.units}

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        self._require_init()
        return x @ self._params["weight"] + self._params["bias"]


class Conv2d(Layer):
    """2-D convolution over NCHW input, implemented with im2col."""

    def __init__(
        self,
        input_shape: Shape,
        filters: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
    ) -> None:
        super().__init__(input_shape)
        if len(self.input_shape) != 3:
            raise ShapeError(f"Conv2d expects (C, H, W), got {self.input_shape}")
        if filters < 1 or kernel_size < 1 or stride < 1 or padding < 0:
            raise ShapeError("Conv2d: invalid hyper-parameters")
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        c, h, w = self.input_shape
        out_h = (h + 2 * padding - kernel_size) // stride + 1
        out_w = (w + 2 * padding - kernel_size) // stride + 1
        if out_h < 1 or out_w < 1:
            raise ShapeError(
                f"Conv2d: kernel {kernel_size} does not fit input {self.input_shape}"
            )
        self._out_shape = (self.filters, out_h, out_w)

    @property
    def output_shape(self) -> Shape:
        return self._out_shape

    def param_shapes(self) -> dict[str, Shape]:
        c = self.input_shape[0]
        return {
            "weight": (self.filters, c, self.kernel_size, self.kernel_size),
            "bias": (self.filters,),
        }

    @property
    def flops_per_point(self) -> float:
        c = self.input_shape[0]
        __, out_h, out_w = self._out_shape
        macs = out_h * out_w * self.filters * c * self.kernel_size**2
        return 2.0 * macs

    def config(self) -> dict:
        return {
            **super().config(),
            "filters": self.filters,
            "kernel_size": self.kernel_size,
            "stride": self.stride,
            "padding": self.padding,
        }

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        self._require_init()
        n = x.shape[0]
        k, s, p = self.kernel_size, self.stride, self.padding
        c, __, __ = self.input_shape
        __, out_h, out_w = self._out_shape
        if p:
            x = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)))
        # im2col via stride tricks: (n, c, k, k, out_h, out_w)
        strides = (
            x.strides[0],
            x.strides[1],
            x.strides[2],
            x.strides[3],
            x.strides[2] * s,
            x.strides[3] * s,
        )
        windows = np.lib.stride_tricks.as_strided(
            x, shape=(n, c, k, k, out_h, out_w), strides=strides, writeable=False
        )
        cols = windows.reshape(n, c * k * k, out_h * out_w)
        weight = self._params["weight"].reshape(self.filters, c * k * k)
        out = np.einsum("fp,npq->nfq", weight, cols, optimize=True)
        out += self._params["bias"][None, :, None]
        return out.reshape(n, self.filters, out_h, out_w)


class DepthwiseConv2d(Layer):
    """Depthwise 2-D convolution: one kernel per input channel (the
    building block of MobileNet-style separable convolutions)."""

    def __init__(
        self,
        input_shape: Shape,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
    ) -> None:
        super().__init__(input_shape)
        if len(self.input_shape) != 3:
            raise ShapeError(f"DepthwiseConv2d expects (C, H, W), got {self.input_shape}")
        if kernel_size < 1 or stride < 1 or padding < 0:
            raise ShapeError("DepthwiseConv2d: invalid hyper-parameters")
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        c, h, w = self.input_shape
        out_h = (h + 2 * padding - kernel_size) // stride + 1
        out_w = (w + 2 * padding - kernel_size) // stride + 1
        if out_h < 1 or out_w < 1:
            raise ShapeError(
                f"DepthwiseConv2d: kernel {kernel_size} does not fit "
                f"{self.input_shape}"
            )
        self._out_shape = (c, out_h, out_w)

    @property
    def output_shape(self) -> Shape:
        return self._out_shape

    def param_shapes(self) -> dict[str, Shape]:
        c = self.input_shape[0]
        return {
            "weight": (c, self.kernel_size, self.kernel_size),
            "bias": (c,),
        }

    @property
    def flops_per_point(self) -> float:
        c, out_h, out_w = self._out_shape
        return 2.0 * c * out_h * out_w * self.kernel_size**2

    def config(self) -> dict:
        return {
            **super().config(),
            "kernel_size": self.kernel_size,
            "stride": self.stride,
            "padding": self.padding,
        }

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        self._require_init()
        n = x.shape[0]
        c = self.input_shape[0]
        k, s, p = self.kernel_size, self.stride, self.padding
        __, out_h, out_w = self._out_shape
        if p:
            x = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)))
        strides = (
            x.strides[0],
            x.strides[1],
            x.strides[2],
            x.strides[3],
            x.strides[2] * s,
            x.strides[3] * s,
        )
        windows = np.lib.stride_tricks.as_strided(
            x, shape=(n, c, k, k, out_h, out_w), strides=strides, writeable=False
        )
        # Per-channel kernels: contract the two kernel axes channel-wise.
        out = np.einsum("nckhpq,ckh->ncpq", windows, self._params["weight"], optimize=True)
        return out + self._params["bias"][None, :, None, None]


class BatchNorm2d(Layer):
    """Inference-mode batch normalization over the channel axis."""

    def __init__(self, input_shape: Shape, epsilon: float = 1e-5) -> None:
        super().__init__(input_shape)
        if len(self.input_shape) != 3:
            raise ShapeError(f"BatchNorm2d expects (C, H, W), got {self.input_shape}")
        self.epsilon = float(epsilon)

    @property
    def output_shape(self) -> Shape:
        return self.input_shape

    def param_shapes(self) -> dict[str, Shape]:
        c = self.input_shape[0]
        return {
            "gamma": (c,),
            "beta": (c,),
            "running_mean": (c,),
            "running_var": (c,),
        }

    @property
    def flops_per_point(self) -> float:
        return 2.0 * float(np.prod(self.input_shape))

    def config(self) -> dict:
        return {**super().config(), "epsilon": self.epsilon}

    def initialize(self, rng: np.random.Generator) -> None:
        c = self.input_shape[0]
        self._params = {
            "gamma": np.ones(c, dtype=np.float32),
            "beta": np.zeros(c, dtype=np.float32),
            "running_mean": rng.standard_normal(c).astype(np.float32) * 0.1,
            "running_var": np.abs(rng.standard_normal(c)).astype(np.float32) + 0.5,
        }
        self._initialized = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        self._require_init()
        p = self._params
        scale = p["gamma"] / np.sqrt(p["running_var"] + self.epsilon)
        shift = p["beta"] - p["running_mean"] * scale
        return x * scale[None, :, None, None] + shift[None, :, None, None]


class ReLU(Layer):
    @property
    def output_shape(self) -> Shape:
        return self.input_shape

    @property
    def flops_per_point(self) -> float:
        return float(np.prod(self.input_shape))

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(self._check_input(x), 0.0)


class Softmax(Layer):
    """Numerically stable softmax over the last axis."""

    def __init__(self, input_shape: Shape) -> None:
        super().__init__(input_shape)
        if len(self.input_shape) != 1:
            raise ShapeError(f"Softmax expects a flat input, got {self.input_shape}")

    @property
    def output_shape(self) -> Shape:
        return self.input_shape

    @property
    def flops_per_point(self) -> float:
        return 3.0 * self.input_shape[0]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)


class Flatten(Layer):
    @property
    def output_shape(self) -> Shape:
        return (int(np.prod(self.input_shape)),)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        return x.reshape(x.shape[0], -1)


class MaxPool2d(Layer):
    def __init__(self, input_shape: Shape, pool_size: int, stride: int | None = None, padding: int = 0) -> None:
        super().__init__(input_shape)
        if len(self.input_shape) != 3:
            raise ShapeError(f"MaxPool2d expects (C, H, W), got {self.input_shape}")
        self.pool_size = int(pool_size)
        self.stride = int(stride) if stride is not None else self.pool_size
        self.padding = int(padding)
        c, h, w = self.input_shape
        out_h = (h + 2 * self.padding - self.pool_size) // self.stride + 1
        out_w = (w + 2 * self.padding - self.pool_size) // self.stride + 1
        if out_h < 1 or out_w < 1:
            raise ShapeError("MaxPool2d: pool does not fit input")
        self._out_shape = (c, out_h, out_w)

    @property
    def output_shape(self) -> Shape:
        return self._out_shape

    @property
    def flops_per_point(self) -> float:
        return float(np.prod(self._out_shape)) * self.pool_size**2

    def config(self) -> dict:
        return {
            **super().config(),
            "pool_size": self.pool_size,
            "stride": self.stride,
            "padding": self.padding,
        }

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        n = x.shape[0]
        c, __, __ = self.input_shape
        k, s, p = self.pool_size, self.stride, self.padding
        __, out_h, out_w = self._out_shape
        if p:
            x = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)), constant_values=-np.inf)
        strides = (
            x.strides[0],
            x.strides[1],
            x.strides[2] * s,
            x.strides[3] * s,
            x.strides[2],
            x.strides[3],
        )
        windows = np.lib.stride_tricks.as_strided(
            x, shape=(n, c, out_h, out_w, k, k), strides=strides, writeable=False
        )
        return windows.max(axis=(4, 5))


class GlobalAvgPool2d(Layer):
    def __init__(self, input_shape: Shape) -> None:
        super().__init__(input_shape)
        if len(self.input_shape) != 3:
            raise ShapeError(
                f"GlobalAvgPool2d expects (C, H, W), got {self.input_shape}"
            )

    @property
    def output_shape(self) -> Shape:
        return (self.input_shape[0],)

    @property
    def flops_per_point(self) -> float:
        return float(np.prod(self.input_shape))

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self._check_input(x).mean(axis=(2, 3))


class Gru(Layer):
    """A GRU over a ``(timesteps, features)`` input, returning the final
    hidden state (the sequence-model class of §4.1's RNN workloads)."""

    def __init__(self, input_shape: Shape, hidden: int) -> None:
        super().__init__(input_shape)
        if len(self.input_shape) != 2:
            raise ShapeError(f"Gru expects (timesteps, features), got {self.input_shape}")
        if hidden < 1:
            raise ShapeError(f"Gru hidden size must be >= 1, got {hidden}")
        self.hidden = int(hidden)

    @property
    def timesteps(self) -> int:
        return self.input_shape[0]

    @property
    def features(self) -> int:
        return self.input_shape[1]

    @property
    def output_shape(self) -> Shape:
        return (self.hidden,)

    def param_shapes(self) -> dict[str, Shape]:
        # Update, reset, and candidate gates share the layout:
        # input kernel, recurrent kernel, bias.
        shapes: dict[str, Shape] = {}
        for gate in ("update", "reset", "candidate"):
            shapes[f"{gate}_kernel"] = (self.features, self.hidden)
            shapes[f"{gate}_recurrent"] = (self.hidden, self.hidden)
            shapes[f"{gate}_bias"] = (self.hidden,)
        return shapes

    @property
    def flops_per_point(self) -> float:
        per_gate = 2.0 * (self.features + self.hidden) * self.hidden
        elementwise = 6.0 * self.hidden
        return self.timesteps * (3.0 * per_gate + elementwise)

    def config(self) -> dict:
        return {**super().config(), "hidden": self.hidden}

    @staticmethod
    def _sigmoid(x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-x))

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        self._require_init()
        p = self._params
        h = np.zeros((x.shape[0], self.hidden), dtype=np.float32)
        for t in range(self.timesteps):
            step = x[:, t, :]
            z = self._sigmoid(
                step @ p["update_kernel"] + h @ p["update_recurrent"] + p["update_bias"]
            )
            r = self._sigmoid(
                step @ p["reset_kernel"] + h @ p["reset_recurrent"] + p["reset_bias"]
            )
            candidate = np.tanh(
                step @ p["candidate_kernel"]
                + (r * h) @ p["candidate_recurrent"]
                + p["candidate_bias"]
            )
            h = (1.0 - z) * h + z * candidate
        return h


class Sigmoid(Layer):
    """Elementwise logistic activation (autoencoder output layers)."""

    @property
    def output_shape(self) -> Shape:
        return self.input_shape

    @property
    def flops_per_point(self) -> float:
        return 4.0 * float(np.prod(self.input_shape))

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Numerically stable split: never exponentiate a large positive
        # argument (float32 overflows past ~88).
        x = self._check_input(x)
        out = np.empty_like(x)
        positive = x >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        exp_x = np.exp(x[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        return out


class Swish(Layer):
    """``x * sigmoid(x)`` (SiLU), EfficientNet's activation."""

    @property
    def output_shape(self) -> Shape:
        return self.input_shape

    @property
    def flops_per_point(self) -> float:
        return 5.0 * float(np.prod(self.input_shape))

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        gate = np.empty_like(x)
        positive = x >= 0
        gate[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        exp_x = np.exp(x[~positive])
        gate[~positive] = exp_x / (1.0 + exp_x)
        return x * gate


class SqueezeExcite(Layer):
    """Squeeze-and-excitation: global pooling -> bottleneck MLP ->
    per-channel sigmoid gates (EfficientNet's channel attention)."""

    def __init__(self, input_shape: Shape, reduction: int = 4) -> None:
        super().__init__(input_shape)
        if len(self.input_shape) != 3:
            raise ShapeError(f"SqueezeExcite expects (C, H, W), got {self.input_shape}")
        if reduction < 1:
            raise ShapeError(f"reduction must be >= 1, got {reduction}")
        self.reduction = int(reduction)
        self.squeezed = max(self.input_shape[0] // self.reduction, 1)

    @property
    def output_shape(self) -> Shape:
        return self.input_shape

    def param_shapes(self) -> dict[str, Shape]:
        c = self.input_shape[0]
        return {
            "reduce_weight": (c, self.squeezed),
            "reduce_bias": (self.squeezed,),
            "expand_weight": (self.squeezed, c),
            "expand_bias": (c,),
        }

    @property
    def flops_per_point(self) -> float:
        c = self.input_shape[0]
        pool = float(np.prod(self.input_shape))
        mlp = 2.0 * (c * self.squeezed) * 2
        scale = float(np.prod(self.input_shape))
        return pool + mlp + scale

    def config(self) -> dict:
        return {**super().config(), "reduction": self.reduction}

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        self._require_init()
        p = self._params
        squeezed = x.mean(axis=(2, 3))  # (n, C)
        hidden = np.maximum(squeezed @ p["reduce_weight"] + p["reduce_bias"], 0.0)
        logits = hidden @ p["expand_weight"] + p["expand_bias"]
        gates = 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))
        return x * gates[:, :, None, None]


class Add(Layer):
    """Elementwise addition of two same-shaped activations."""

    @property
    def output_shape(self) -> Shape:
        return self.input_shape

    @property
    def flops_per_point(self) -> float:
        return float(np.prod(self.input_shape))

    def forward(self, x: np.ndarray, shortcut: np.ndarray | None = None) -> np.ndarray:  # type: ignore[override]
        x = self._check_input(x)
        if shortcut is None:
            raise ShapeError("Add.forward needs both inputs")
        if shortcut.shape != x.shape:
            raise ShapeError(f"Add: {x.shape} vs {shortcut.shape}")
        return x + shortcut


class Residual(Layer):
    """A residual block: ``relu(main(x) + shortcut(x))``.

    ``main`` and ``shortcut`` are lists of layers; an empty shortcut is
    the identity.
    """

    def __init__(
        self,
        input_shape: Shape,
        main: list[Layer],
        shortcut: list[Layer] | None = None,
        final_relu: bool = True,
    ) -> None:
        super().__init__(input_shape)
        if not main:
            raise ShapeError("Residual: main path cannot be empty")
        self.main = list(main)
        self.shortcut = list(shortcut) if shortcut else []
        # ResNet applies ReLU after the addition; MBConv (EfficientNet)
        # adds without an activation.
        self.final_relu = bool(final_relu)
        main_out = self.main[-1].output_shape
        short_out = self.shortcut[-1].output_shape if self.shortcut else self.input_shape
        if main_out != short_out:
            raise ShapeError(
                f"Residual: main out {main_out} != shortcut out {short_out}"
            )
        if tuple(self.main[0].input_shape) != self.input_shape:
            raise ShapeError("Residual: main path input mismatch")
        if self.shortcut and tuple(self.shortcut[0].input_shape) != self.input_shape:
            raise ShapeError("Residual: shortcut path input mismatch")

    @property
    def output_shape(self) -> Shape:
        return self.main[-1].output_shape

    def _sublayers(self) -> list[Layer]:
        return self.main + self.shortcut

    def param_shapes(self) -> dict[str, Shape]:
        shapes: dict[str, Shape] = {}
        for prefix, layers in (("main", self.main), ("shortcut", self.shortcut)):
            for i, layer in enumerate(layers):
                for name, shape in layer.param_shapes().items():
                    shapes[f"{prefix}.{i}.{name}"] = shape
        return shapes

    @property
    def flops_per_point(self) -> float:
        body = sum(l.flops_per_point for l in self._sublayers())
        add_and_relu = 2.0 * float(np.prod(self.output_shape))
        return body + add_and_relu

    def initialize(self, rng: np.random.Generator) -> None:
        for layer in self._sublayers():
            layer.initialize(rng)
        self._initialized = True

    def get_params(self) -> dict[str, np.ndarray]:
        params: dict[str, np.ndarray] = {}
        for prefix, layers in (("main", self.main), ("shortcut", self.shortcut)):
            for i, layer in enumerate(layers):
                for name, array in layer.get_params().items():
                    params[f"{prefix}.{i}.{name}"] = array
        return params

    def set_params(self, params: dict[str, np.ndarray]) -> None:
        for prefix, layers in (("main", self.main), ("shortcut", self.shortcut)):
            for i, layer in enumerate(layers):
                expected = layer.param_shapes()
                sub = {
                    name: params[f"{prefix}.{i}.{name}"] for name in expected
                }
                if expected:
                    layer.set_params(sub)
        self._initialized = True

    def config(self) -> dict:
        from repro.nn.model import layer_config, layers_from_config

        __ = layers_from_config  # imported for symmetry; silences linters
        return {
            **super().config(),
            "main": [layer_config(l) for l in self.main],
            "shortcut": [layer_config(l) for l in self.shortcut],
            "final_relu": self.final_relu,
        }

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        out = x
        for layer in self.main:
            out = layer.forward(out)
        short = x
        for layer in self.shortcut:
            short = layer.forward(short)
        combined = out + short
        if self.final_relu:
            return np.maximum(combined, 0.0)
        return combined
