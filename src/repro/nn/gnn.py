"""Graph neural networks: the paper's §9 extension target.

The conclusion names GNN serving as future work because, unlike the
feed-forward models of the study, scoring one node needs its *k-hop
neighborhood* read from historical state. This module provides a real
NumPy GCN (Kipf & Welling-style graph convolutions) whose forward pass
actually computes, plus the static accounting (params, FLOPs as a
function of neighborhood size) that the serving cost models consume.
The state-read side lives in :mod:`repro.serving.state`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.model import Model


def normalize_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """Symmetric GCN normalization: ``D^-1/2 (A + I) D^-1/2``."""
    adjacency = np.asarray(adjacency, dtype=np.float32)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ShapeError(f"adjacency must be square, got {adjacency.shape}")
    a_hat = adjacency + np.eye(adjacency.shape[0], dtype=np.float32)
    degree = a_hat.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
    return a_hat * inv_sqrt[:, None] * inv_sqrt[None, :]


class GraphConvLayer:
    """One graph convolution: ``relu(A_norm @ H @ W + b)``."""

    def __init__(self, in_features: int, out_features: int, final: bool = False) -> None:
        if in_features < 1 or out_features < 1:
            raise ShapeError("GraphConvLayer: features must be >= 1")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.final = final
        self._weight: np.ndarray | None = None
        self._bias: np.ndarray | None = None

    @property
    def param_count(self) -> int:
        return self.in_features * self.out_features + self.out_features

    def initialize(self, rng: np.random.Generator) -> None:
        scale = np.float32(np.sqrt(2.0 / self.in_features))
        self._weight = rng.standard_normal(
            (self.in_features, self.out_features), dtype=np.float32
        ) * scale
        self._bias = np.zeros(self.out_features, dtype=np.float32)

    def forward(self, h: np.ndarray, adj_norm: np.ndarray) -> np.ndarray:
        if self._weight is None:
            raise ShapeError("GraphConvLayer has no weights; call initialize()")
        if h.shape[1] != self.in_features:
            raise ShapeError(
                f"GraphConvLayer expects {self.in_features} features, got {h.shape[1]}"
            )
        out = adj_norm @ (h @ self._weight) + self._bias
        if self.final:
            return out
        return np.maximum(out, 0.0)


class GcnModel(Model):
    """A GCN node classifier with real forward computation.

    ``avg_degree`` and the layer count (= k hops) determine both the
    serving-time FLOPs and — through :mod:`repro.serving.state` — how many
    neighborhood keys a scoring request must read.
    """

    def __init__(
        self,
        feature_dim: int,
        hidden_dim: int,
        classes: int,
        hops: int = 2,
        avg_degree: float = 8.0,
        name: str = "gcn",
    ) -> None:
        if hops < 1:
            raise ShapeError(f"hops must be >= 1, got {hops}")
        if avg_degree < 1:
            raise ShapeError(f"avg_degree must be >= 1, got {avg_degree}")
        self.name = name
        self.feature_dim = int(feature_dim)
        self.hidden_dim = int(hidden_dim)
        self.classes = int(classes)
        self.hops = int(hops)
        self.avg_degree = float(avg_degree)
        dims = [self.feature_dim] + [self.hidden_dim] * (self.hops - 1) + [self.classes]
        self.layers = [
            GraphConvLayer(d_in, d_out, final=(i == self.hops - 1))
            for i, (d_in, d_out) in enumerate(zip(dims, dims[1:]))
        ]
        self._initialized = False

    # -- Model interface ---------------------------------------------------

    @property
    def input_shape(self) -> tuple[int, ...]:
        return (self.feature_dim,)

    @property
    def output_shape(self) -> tuple[int, ...]:
        return (self.classes,)

    @property
    def param_count(self) -> int:
        return sum(layer.param_count for layer in self.layers)

    @property
    def neighborhood_size(self) -> int:
        """Expected nodes in the k-hop neighborhood of one target node."""
        return int(sum(self.avg_degree**i for i in range(self.hops + 1)))

    @property
    def flops_per_point(self) -> float:
        """FLOPs to score one node, including neighborhood aggregation.

        Each layer transforms every node in the neighborhood
        (``2 * n * d_in * d_out``) and aggregates over ~avg_degree
        neighbors per node (``2 * n * avg_degree * d_out``).
        """
        n = self.neighborhood_size
        total = 0.0
        for layer in self.layers:
            total += 2.0 * n * layer.in_features * layer.out_features
            total += 2.0 * n * self.avg_degree * layer.out_features
        return total

    def initialize(self, seed: int = 0) -> "GcnModel":
        # crayfish: allow[global-random]: construction-time weight init, explicitly seeded by the caller; no simulation stream exists yet
        rng = np.random.default_rng(seed)
        for layer in self.layers:
            layer.initialize(rng)
        self._initialized = True
        return self

    def predict(self, x: np.ndarray, adjacency: np.ndarray | None = None) -> np.ndarray:  # type: ignore[override]
        """Classify nodes: ``x`` is (nodes, features); ``adjacency`` the
        (nodes, nodes) graph. Returns per-node class probabilities."""
        if adjacency is None:
            raise ShapeError("GcnModel.predict needs the adjacency matrix")
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2 or x.shape[1] != self.feature_dim:
            raise ShapeError(
                f"expected (nodes, {self.feature_dim}) features, got {x.shape}"
            )
        if adjacency.shape != (x.shape[0], x.shape[0]):
            raise ShapeError(
                f"adjacency {adjacency.shape} does not match {x.shape[0]} nodes"
            )
        adj_norm = normalize_adjacency(adjacency)
        h = x
        for layer in self.layers:
            h = layer.forward(h, adj_norm)
        shifted = h - h.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)


def build_gcn(
    initialize: bool = False,
    seed: int = 0,
    feature_dim: int = 64,
    hidden_dim: int = 64,
    classes: int = 2,
    hops: int = 2,
    avg_degree: float = 8.0,
) -> GcnModel:
    """Builder with the zoo's ``register_model`` signature."""
    model = GcnModel(
        feature_dim=feature_dim,
        hidden_dim=hidden_dim,
        classes=classes,
        hops=hops,
        avg_degree=avg_degree,
        name=f"gcn{hops}hop",
    )
    if initialize:
        model.initialize(seed)
    return model
