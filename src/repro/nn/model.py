"""Model containers and the layer-config registry used by model formats."""

from __future__ import annotations

import typing

import numpy as np

from repro.errors import ModelFormatError, ShapeError
from repro.nn import layers as L

#: Registry of layer type-name -> class, for (de)serialization.
LAYER_TYPES: dict[str, type[L.Layer]] = {
    "Dense": L.Dense,
    "Conv2d": L.Conv2d,
    "DepthwiseConv2d": L.DepthwiseConv2d,
    "BatchNorm2d": L.BatchNorm2d,
    "ReLU": L.ReLU,
    "Softmax": L.Softmax,
    "Flatten": L.Flatten,
    "MaxPool2d": L.MaxPool2d,
    "Gru": L.Gru,
    "Sigmoid": L.Sigmoid,
    "Swish": L.Swish,
    "SqueezeExcite": L.SqueezeExcite,
    "GlobalAvgPool2d": L.GlobalAvgPool2d,
    "Residual": L.Residual,
}
_TYPE_NAMES = {cls: name for name, cls in LAYER_TYPES.items()}


def layer_config(layer: L.Layer) -> dict:
    """A JSON-serializable description of ``layer`` (type + config)."""
    try:
        type_name = _TYPE_NAMES[type(layer)]
    except KeyError:
        raise ModelFormatError(
            f"layer type {type(layer).__name__} is not registered"
        ) from None
    return {"type": type_name, "config": layer.config()}


def layer_from_config(spec: dict) -> L.Layer:
    """Rebuild one layer from its :func:`layer_config` description."""
    try:
        cls = LAYER_TYPES[spec["type"]]
    except KeyError:
        raise ModelFormatError(f"unknown layer type {spec.get('type')!r}") from None
    config = dict(spec["config"])
    config["input_shape"] = tuple(config["input_shape"])
    if cls is L.Residual:
        config["main"] = layers_from_config(config["main"])
        config["shortcut"] = layers_from_config(config.get("shortcut") or [])
    return cls(**config)


def layers_from_config(specs: typing.Sequence[dict]) -> list[L.Layer]:
    return [layer_from_config(spec) for spec in specs]


class Model:
    """Base model interface used by the serving layer and formats."""

    name: str = "model"

    @property
    def input_shape(self) -> tuple[int, ...]:
        raise NotImplementedError

    @property
    def output_shape(self) -> tuple[int, ...]:
        raise NotImplementedError

    @property
    def param_count(self) -> int:
        raise NotImplementedError

    @property
    def flops_per_point(self) -> float:
        raise NotImplementedError

    def predict(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class Sequential(Model):
    """A chain of layers with validated shape hand-offs."""

    def __init__(self, layers: typing.Sequence[L.Layer], name: str = "model") -> None:
        if not layers:
            raise ShapeError("Sequential needs at least one layer")
        self.layers = list(layers)
        self.name = name
        for upstream, downstream in zip(self.layers, self.layers[1:]):
            if tuple(upstream.output_shape) != tuple(downstream.input_shape):
                raise ShapeError(
                    f"{type(upstream).__name__} -> {type(downstream).__name__}: "
                    f"{upstream.output_shape} != {downstream.input_shape}"
                )

    @property
    def input_shape(self) -> tuple[int, ...]:
        return tuple(self.layers[0].input_shape)

    @property
    def output_shape(self) -> tuple[int, ...]:
        return tuple(self.layers[-1].output_shape)

    @property
    def param_count(self) -> int:
        return sum(layer.param_count for layer in self.layers)

    @property
    def flops_per_point(self) -> float:
        return sum(layer.flops_per_point for layer in self.layers)

    @property
    def initialized(self) -> bool:
        return all(
            layer.initialized or not layer.param_shapes() for layer in self.layers
        )

    def initialize(self, seed: int = 0) -> "Sequential":
        """Materialize all weights deterministically from ``seed``."""
        # crayfish: allow[global-random]: construction-time weight init, explicitly seeded by the caller; no simulation stream exists yet
        rng = np.random.default_rng(seed)
        for layer in self.layers:
            layer.initialize(rng)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Run the forward pass over a batch (leading axis = batch)."""
        out = np.asarray(x, dtype=np.float32)
        if tuple(out.shape[1:]) != self.input_shape:
            raise ShapeError(
                f"model {self.name!r} expects {self.input_shape}, "
                f"got {tuple(out.shape[1:])}"
            )
        for layer in self.layers:
            out = layer.forward(out)
        return out

    # -- weights as a flat mapping (used by formats) --------------------

    def get_weights(self) -> dict[str, np.ndarray]:
        weights: dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            if not layer.param_shapes():
                continue
            for name, array in layer.get_params().items():
                weights[f"{i}.{name}"] = array
        return weights

    def set_weights(self, weights: dict[str, np.ndarray]) -> None:
        for i, layer in enumerate(self.layers):
            expected = layer.param_shapes()
            if not expected:
                continue
            sub = {}
            for name in expected:
                key = f"{i}.{name}"
                if key not in weights:
                    raise ModelFormatError(f"missing weight {key!r}")
                sub[name] = weights[key]
            layer.set_params(sub)

    def architecture(self) -> list[dict]:
        """JSON-serializable layer list (the format files' graph section)."""
        return [layer_config(layer) for layer in self.layers]

    @classmethod
    def from_architecture(
        cls, specs: typing.Sequence[dict], name: str = "model"
    ) -> "Sequential":
        return cls(layers_from_config(specs), name=name)
