"""Command-line interface: run single experiments or scenario presets.

Examples::

    crayfish run --sps flink --serving onnx --model ffnn
    crayfish run --sps kafka_streams --serving tf_serving --mp 8
    crayfish latency --sps flink --serving onnx --bsz 128
    crayfish bursts --sps flink --serving onnx
    crayfish list
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import sys
import typing

from repro import calibration  # noqa: F401 - ensures constants import cleanly
from repro.config import (
    ExperimentConfig,
    MODEL_NAMES,
    SERVING_TOOLS,
    SPS_NAMES,
    WorkloadKind,
)
from repro.core.report import format_ms, format_rate, format_table
from repro.core.runner import run_experiment
from repro.core.scenarios import (
    measure_closed_loop_latency,
    measure_sustainable_throughput,
    run_burst_scenario,
)


def _add_sut_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sps", default="flink", choices=SPS_NAMES)
    parser.add_argument("--serving", default="onnx", choices=SERVING_TOOLS)
    parser.add_argument("--model", default="ffnn", choices=MODEL_NAMES)
    parser.add_argument("--bsz", type=int, default=1, help="points per event")
    parser.add_argument("--mp", type=int, default=1, help="inference workers")
    parser.add_argument("--gpu", action="store_true", help="enable the GPU model")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--duration", type=float, default=5.0, help="simulated seconds")
    parser.add_argument(
        "--async-io", type=int, default=0, dest="async_io",
        help="Flink async I/O in-flight window for external calls (0=blocking)",
    )
    parser.add_argument(
        "--server-workers", type=int, default=None, dest="server_workers",
        help="external server workers (default: = mp)",
    )
    parser.add_argument(
        "--json", default=None, dest="json_path",
        help="also write the result(s) as JSON to this path",
    )


def _config_from(args: argparse.Namespace, **extra: typing.Any) -> ExperimentConfig:
    return ExperimentConfig(
        sps=args.sps,
        serving=args.serving,
        model=args.model,
        bsz=args.bsz,
        mp=args.mp,
        gpu=args.gpu,
        seed=args.seed,
        duration=args.duration,
        async_io=args.async_io,
        server_workers=args.server_workers,
        **extra,
    )


def _export_artifact(
    path: str | None,
    writer: typing.Callable[[str], typing.Any],
    label: str,
    note: str = "",
) -> None:
    """Write one export artifact and report where it landed.

    Shared by ``crayfish trace`` and ``crayfish metrics``: ensures the
    output's parent directory exists, invokes ``writer(path)``, and
    prints a uniform "written to" line. ``path=None`` skips the export
    (an optional artifact the user did not ask for).
    """
    if path is None:
        return
    target = pathlib.Path(path)
    if str(target.parent) not in ("", "."):
        target.parent.mkdir(parents=True, exist_ok=True)
    writer(str(target))
    suffix = f" {note}" if note else ""
    print(f"{label} written to {target}{suffix}")


def _maybe_dump(args: argparse.Namespace, results) -> None:
    if getattr(args, "json_path", None):
        from repro.core.results_io import save_results

        save_results(results, args.json_path)
        print(f"results written to {args.json_path}")


def _cmd_run(args: argparse.Namespace) -> int:
    import contextlib

    config = _config_from(args, ir=args.ir)
    tracker = None
    with contextlib.ExitStack() as stack:
        if args.sanitize:
            from repro.analysis.sanitizer import determinism_sanitizer

            stack.enter_context(determinism_sanitizer())
        if args.tie_track:
            from repro.analysis.tierace import TieTracker
            from repro.simul.core import kernel_overrides

            tracker = TieTracker()
            stack.enter_context(kernel_overrides(tracker=tracker))
        result = run_experiment(config)
    rows = [
        ("throughput (events/s)", format_rate(result.throughput)),
        ("mean latency (ms)", format_ms(result.latency.mean)),
        ("p95 latency (ms)", format_ms(result.latency.p95)),
        ("completed batches", result.completed),
    ]
    print(format_table(["metric", "value"], rows, title=config.label()))
    _maybe_dump(args, [result])
    # Recording happens dead last — after the simulation and every
    # export — so the sanitizer and determinism checks never see it.
    _record_results(_open_store(args), [result], kind="run")
    if tracker is not None and _report_tie_conflicts(tracker):
        return 1
    return 0


def _report_tie_conflicts(tracker) -> bool:
    """Print the tie-race report; True when unsuppressed conflicts exist."""
    kept, suppressed = tracker.apply_pragmas()
    print(
        f"tie tracker: {tracker.accesses_recorded} shared-state access(es) "
        f"recorded, {len(kept)} conflict(s), {len(suppressed)} suppressed"
    )
    for conflict in kept:
        print(f"  CONFIRMED {conflict.describe()}")
    for conflict in suppressed:
        print(f"  suppressed {conflict.describe()}")
    if kept:
        print(
            "unsuppressed tie-class conflicts: pop order inside one "
            "(time, priority) class decides results; fix the ordering or "
            "add '# crayfish: allow[tie-race]: reason' at an access site"
        )
    return bool(kept)


def _add_matrix_exec_args(parser: argparse.ArgumentParser) -> None:
    """Worker-pool and result-cache knobs shared by sweep/matrix."""
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes to fan grid points x seeds across",
    )
    parser.add_argument(
        "--cache-dir", default=".crayfish-cache", dest="cache_dir",
        help="content-addressed result cache directory",
    )
    parser.add_argument(
        "--no-cache", action="store_true", dest="no_cache",
        help="bypass the result cache entirely",
    )


def _open_cache(args: argparse.Namespace):
    """The result cache selected by ``--cache-dir`` / ``--no-cache``."""
    if getattr(args, "no_cache", False) or not getattr(args, "cache_dir", None):
        return None
    from repro.matrix import ResultCache

    return ResultCache(args.cache_dir)


def _add_store_args(parser: argparse.ArgumentParser) -> None:
    """Results-database recording knob shared by run-producing commands."""
    parser.add_argument(
        "--store", default=None, dest="store_path", metavar="DB",
        help="record results into this SQLite results database "
        "(default: $CRAYFISH_STORE when set; recording stays off otherwise)",
    )


def _open_store(args: argparse.Namespace):
    """The results store selected by ``--store`` / CRAYFISH_STORE, or None.

    Recording is strictly opt-in: with neither the flag nor the
    environment variable set this returns None, and every export stays
    byte-identical to a build without the store subsystem.
    """
    from repro.store import open_store

    path = getattr(args, "store_path", None) or os.environ.get(
        "CRAYFISH_STORE"
    )
    return open_store(path)


def _record_results(store, results, kind: str, label: str | None = None) -> None:
    """Record finished results and say where they went; closes the store."""
    if store is None:
        return
    with store:
        for result in results:
            store.record_result(result, kind=kind, label=label)
    noun = "run" if len(results) == 1 else "runs"
    print(f"recorded {len(results)} {noun} into {store.path}")


def _add_db_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--db", default=None,
        help="results database path "
        "(default: $CRAYFISH_STORE or .crayfish-store.sqlite)",
    )


def _db_path(args: argparse.Namespace) -> str:
    from repro.store import DEFAULT_STORE_PATH

    return (
        args.db or os.environ.get("CRAYFISH_STORE") or DEFAULT_STORE_PATH
    )


def _require_db(args: argparse.Namespace) -> str | None:
    """The query commands need an existing database; None + error if absent."""
    path = _db_path(args)
    if not os.path.exists(path):
        print(
            f"error: no results database at {path} — record runs with "
            "--store or backfill one with `crayfish store import`",
            file=sys.stderr,
        )
        return None
    return path


def _add_filter_args(parser: argparse.ArgumentParser) -> None:
    """Row filters shared by ``history``/``trend``/``pareto``."""
    _add_db_arg(parser)
    parser.add_argument("--sps", default=None, choices=SPS_NAMES)
    parser.add_argument("--serving", default=None, choices=SERVING_TOOLS)
    parser.add_argument("--model", default=None, choices=MODEL_NAMES)
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument(
        "--kind", default=None,
        help="run kind: run, sweep, matrix, capacity, chaos, bench, golden",
    )
    parser.add_argument("--limit", type=int, default=None)
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable JSON output instead of the table",
    )


def _history_filter(args: argparse.Namespace):
    from repro.store import HistoryFilter

    return HistoryFilter(
        sps=args.sps,
        serving=args.serving,
        model=args.model,
        nodes=args.nodes,
        kind=args.kind,
        limit=args.limit,
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.sweep import sweep
    from repro.errors import ConfigError

    base = _config_from(args, ir=args.ir)
    values = [int(v) for v in args.values.split(",")]
    rows = []

    def progress(overrides, results):
        rows.append(
            (
                overrides[args.field],
                format_rate(sum(r.throughput for r in results) / len(results)),
                format_ms(sum(r.latency.mean for r in results) / len(results)),
            )
        )

    cache = _open_cache(args)
    store = _open_store(args)
    try:
        points = sweep(
            base,
            grid={args.field: values},
            seeds=(args.seed, args.seed + 1),
            hook=progress,
            jobs=args.jobs,
            cache=cache,
            store=store,
        )
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if store is not None:
            store.close()
    print(
        format_table(
            [args.field, "events/s", "mean latency (ms)"],
            rows,
            title=f"{base.label()} sweep over {args.field}",
        )
    )
    if cache is not None:
        print(f"cache {args.cache_dir}: {cache.stats.summary()}")
    if store is not None:
        print(f"recorded sweep into {store.path}")
    _maybe_dump(args, [r for point in points for r in point.results])
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    from repro.core.results_io import (
        save_records_jsonl,
        save_results_csv,
        save_run_meta,
    )
    from repro.errors import ConfigError
    from repro.matrix import (
        format_matrix_table,
        grid_points,
        matrix_meta,
        preset,
        preset_names,
        run_matrix,
    )

    if args.list_presets:
        for name in preset_names():
            spec = preset(name)
            print(
                f"{name}: {spec.description} "
                f"[{spec.task_count} tasks, seeds {spec.seeds}]"
            )
        return 0
    spec = preset(args.preset)
    base = spec.base
    if args.duration is not None:
        base = base.replace(duration=args.duration)
    seeds = (
        spec.seeds
        if args.seeds is None
        else tuple(int(s) for s in args.seeds.split(","))
    )
    cache = _open_cache(args)
    total = len(grid_points(spec.grid))
    emitted = []

    def progress(overrides, results):
        emitted.append(overrides)
        label = (
            " ".join(f"{key}={overrides[key]}" for key in sorted(overrides))
            or base.label()
        )
        throughput = sum(r.throughput for r in results) / len(results)
        latency = sum(r.latency.mean for r in results) / len(results)
        print(
            f"  [{len(emitted)}/{total}] {label}: "
            f"{format_rate(throughput)} events/s, "
            f"{format_ms(latency)} ms mean latency"
        )

    store = _open_store(args)
    try:
        report = run_matrix(
            base,
            spec.grid,
            seeds=seeds,
            jobs=args.jobs,
            cache=cache,
            hook=progress,
            store=store,
            store_kind="matrix",
        )
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if store is not None:
            store.close()
    print()
    print(
        format_matrix_table(
            report, spec.grid, title=f"matrix preset {spec.name!r}"
        )
    )
    from_cache = report.tasks - report.executed
    print(
        f"tasks: {report.tasks} total, {report.executed} executed, "
        f"{from_cache} from cache (jobs={args.jobs})"
    )
    if cache is not None:
        print(
            f"cache {args.cache_dir}: {cache.stats.summary()} "
            f"[code fingerprint {cache.fingerprint}]"
        )
    if store is not None:
        print(f"recorded matrix into {store.path}")
    _export_artifact(
        args.jsonl,
        lambda p: save_records_jsonl(report.records, p),
        "result records JSONL",
    )
    if args.jsonl:
        # Execution metadata (incl. cache hit/miss/invalidation stats)
        # rides in a sidecar: the record lines must stay byte-identical
        # between cold and warm runs, the cache traffic cannot.
        sidecar = save_run_meta(args.jsonl, matrix_meta(report, spec.grid))
        print(f"matrix metadata written to {sidecar}")
    _export_artifact(
        args.csv,
        lambda p: save_results_csv(report.results, p),
        "result CSV",
    )
    _maybe_dump(args, report.results)
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    config = _config_from(args, ir=args.ir, workload=WorkloadKind.CLOSED_LOOP)
    aggregate, __ = measure_closed_loop_latency(config, seeds=(args.seed, args.seed + 1))
    print(
        f"{config.label()}  bsz={config.bsz}: "
        f"{format_ms(aggregate.mean)} ms/batch (std {format_ms(aggregate.std)})"
    )
    return 0


def _cmd_bursts(args: argparse.Namespace) -> int:
    config = _config_from(args, bd=args.bd, tbb=args.tbb)
    st = measure_sustainable_throughput(config, seeds=(args.seed,)).mean
    outcome = run_burst_scenario(config, st, bursts=args.bursts, seed=args.seed)
    print(f"{config.label()}: sustainable throughput {format_rate(st)} events/s")
    for i, report in enumerate(outcome.reports):
        recovered = (
            f"{report.recovery_time:.2f}s"
            if report.recovery_time is not None
            else "not recovered"
        )
        print(
            f"  burst {i + 1} @ {report.burst_start:.0f}s: recovery {recovered}, "
            f"peak latency {format_ms(report.peak_latency)} ms"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.report import format_breakdown
    from repro.core.runner import ExperimentRunner
    from repro.tracing.analysis import bottleneck_ranking
    from repro.tracing.export import save_chrome_trace, save_spans_csv
    from repro.tracing.spans import TraceOptions

    config = _config_from(args, ir=args.ir)
    options = TraceOptions(
        sample_every=args.sample_every, max_traces=args.max_traces
    )
    result = ExperimentRunner(config).run(trace=options)
    tracer = result.trace
    finished = tracer.finished_trace_ids()
    print(
        f"{config.label()}: traced {len(finished)} records "
        f"({tracer.span_count} spans, {tracer.dropped} dropped by cap)"
    )
    if not finished:
        print("no record completed within the run; nothing to analyze")
        return 1
    print()
    print(format_breakdown(tracer))
    print()
    ranked = bottleneck_ranking(tracer, top=3)
    print("bottleneck ranking:")
    for rank, stat in enumerate(ranked, start=1):
        print(
            f"  {rank}. {stat.stage}: {stat.share * 100:.1f}% of latency "
            f"({format_ms(stat.mean)} ms/record)"
        )
    print()
    _export_artifact(
        args.out,
        lambda p: save_chrome_trace(tracer, p),
        "Chrome trace",
        note="(open in chrome://tracing)",
    )
    _export_artifact(args.csv, lambda p: save_spans_csv(tracer, p), "span CSV")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.core.runner import ExperimentRunner
    from repro.metrics import MetricsOptions
    from repro.metrics.dashboard import render_dashboard
    from repro.metrics.export import save_metrics_jsonl, save_openmetrics

    config = _config_from(args, ir=args.ir)
    options = MetricsOptions(scrape_interval=args.scrape_interval)
    result = ExperimentRunner(config).run(metrics=options)
    telemetry = result.telemetry
    scraper = telemetry.scraper
    print(
        f"{config.label()}: scraped {len(telemetry.registry)} instruments "
        f"{scraper.scrapes} times (every {args.scrape_interval}s simulated)"
    )
    print()
    print(render_dashboard(scraper, title=config.label()))
    print()
    _export_artifact(
        args.openmetrics,
        lambda p: save_openmetrics(telemetry.registry, p),
        "OpenMetrics exposition",
    )
    _export_artifact(
        args.jsonl, lambda p: save_metrics_jsonl(scraper, p), "metrics timeline"
    )
    return 0


FAULT_CHOICES = (
    "server-crash",
    "partition",
    "network",
    "straggler",
    "engine-crash",
)


def _chaos_config(args: argparse.Namespace) -> ExperimentConfig:
    """Build the faulted configuration for one ``crayfish chaos`` run."""
    from repro.faults import (
        FaultPlan,
        NetworkDegradation,
        PartitionOutage,
        ResiliencePolicy,
        ServerCrash,
        StragglerReplica,
    )

    extra: dict[str, typing.Any] = {"ir": args.ir}
    if args.fault == "engine-crash":
        extra["checkpoint_interval"] = args.checkpoint_interval
        extra["failure_times"] = (args.at,)
        extra["recovery_time"] = args.fault_duration
    else:
        if args.fault == "server-crash":
            plan = FaultPlan(
                server_crashes=(
                    ServerCrash(at=args.at, downtime=args.fault_duration),
                )
            )
        elif args.fault == "partition":
            plan = FaultPlan(
                partition_outages=(
                    PartitionOutage(
                        at=args.at,
                        duration=args.fault_duration,
                        partitions=tuple(range(args.partitions_hit)),
                    ),
                )
            )
        elif args.fault == "network":
            plan = FaultPlan(
                network_degradations=(
                    NetworkDegradation(
                        at=args.at,
                        duration=args.fault_duration,
                        extra_latency=args.extra_latency,
                        error_rate=args.error_rate,
                    ),
                )
            )
        else:  # straggler
            plan = FaultPlan(
                stragglers=(
                    StragglerReplica(
                        at=args.at,
                        duration=args.fault_duration,
                        slowdown=args.slowdown,
                    ),
                )
            )
        extra["fault_plan"] = plan
    if not args.no_resilience and args.fault != "engine-crash":
        extra["resilience"] = ResiliencePolicy(
            timeout=args.timeout,
            retries=args.retries,
            backoff_base=args.backoff_base,
        )
    return _config_from(args, **extra)


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.report import run_chaos_scenario

    config = _chaos_config(args)
    outcome = run_chaos_scenario(config)
    summary = outcome.faulted.faults
    rows = [
        ("baseline goodput (events/s)", format_rate(outcome.baseline.throughput)),
        ("faulted goodput (events/s)", format_rate(outcome.faulted.throughput)),
        ("goodput ratio", f"{outcome.goodput_ratio:.3f}"),
        ("completed / produced", f"{outcome.faulted.completed} / {outcome.faulted.produced}"),
        ("duplicates (replays)", outcome.faulted.duplicates),
    ]
    if outcome.recovery is not None:
        recovered = (
            f"{outcome.recovery.recovery_time:.2f}s"
            if outcome.recovery.recovery_time is not None
            else "not within run"
        )
        rows.append(("latency recovery", recovered))
        rows.append(("peak latency (ms)", format_ms(outcome.recovery.peak_latency)))
    if summary is not None:
        rows.append(("faults injected", summary.faults_injected))
        rows.append(("retries / timeouts", f"{summary.retries} / {summary.timeouts}"))
        rows.append(("shed / fallbacks", f"{summary.shed} / {summary.fallbacks}"))
        if summary.engine_restarts:
            rows.append(
                ("engine restarts / checkpoints",
                 f"{summary.engine_restarts} / {summary.checkpoints}"),
            )
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"{config.label()} chaos: {args.fault} @ {args.at}s",
        )
    )
    _maybe_dump(args, [outcome.baseline, outcome.faulted])
    _record_results(
        _open_store(args), [outcome.baseline, outcome.faulted], kind="chaos"
    )
    return 0


def _add_cluster_shape_args(parser: argparse.ArgumentParser) -> None:
    """Deployment-shape knobs shared by ``cluster run``/``capacity-search``."""
    parser.add_argument(
        "--nodes", type=int, default=2, help="simulated machines in the cluster"
    )
    parser.add_argument(
        "--racks", type=int, default=1,
        help="racks the nodes spread over (cross-rack hops pay LAN latency)",
    )
    parser.add_argument(
        "--cpus-per-node", type=int, default=16, dest="cpus_per_node",
        help="CPU slots per machine (placement refuses to oversubscribe)",
    )
    parser.add_argument(
        "--tasks-per-node", type=int, default=None, dest="tasks_per_node",
        help="SPS task slots per node (default: = mp)",
    )
    parser.add_argument(
        "--replicas-per-node", type=int, default=1, dest="replicas_per_node",
        help="external serving replicas per node (behind the load balancer)",
    )
    parser.add_argument(
        "--partitions", type=int, default=None,
        help="broker partitions (default: enough for every task slot)",
    )


def _add_population_args(parser: argparse.ArgumentParser) -> None:
    """Population-workload knobs for ``cluster run``."""
    parser.add_argument(
        "--users", type=int, default=0,
        help="simulated population size; 0 keeps the plain --ir workload",
    )
    parser.add_argument(
        "--distribution", default="zipf", choices=("zipf", "lognormal"),
        help="per-user rate distribution",
    )
    parser.add_argument(
        "--zipf-exponent", type=float, default=1.1, dest="zipf_exponent",
        help="power-law exponent for the zipf distribution",
    )
    parser.add_argument(
        "--sigma", type=float, default=1.0,
        help="log-scale dispersion for the lognormal distribution",
    )
    parser.add_argument(
        "--events-per-user-per-day", type=float, default=50.0,
        dest="events_per_user_per_day",
        help="mean events per user per simulated day",
    )
    parser.add_argument(
        "--diurnal-amplitude", type=float, default=0.3,
        dest="diurnal_amplitude",
        help="diurnal swing in [0, 1): 0 is flat",
    )
    parser.add_argument(
        "--diurnal-period", type=float, default=86_400.0,
        dest="diurnal_period",
        help="diurnal period in simulated seconds (compress for short runs)",
    )
    parser.add_argument(
        "--rate-scale", type=float, default=1.0, dest="rate_scale",
        help="multiplier on the aggregate offered rate",
    )
    parser.add_argument(
        "--flash-crowd", action="append", default=[], dest="flash_crowds",
        metavar="AT:DURATION:MULTIPLIER",
        help="layer a flash-crowd burst on top (repeatable)",
    )


def _cluster_spec_from_args(args: argparse.Namespace):
    from repro.cluster.spec import ClusterSpec

    return ClusterSpec(
        nodes=args.nodes,
        racks=args.racks,
        cpus_per_node=args.cpus_per_node,
        tasks_per_node=args.tasks_per_node,
        replicas_per_node=args.replicas_per_node,
    )


def _population_from_args(args: argparse.Namespace):
    from repro.cluster.spec import FlashCrowd, PopulationSpec
    from repro.errors import ConfigError

    if args.users <= 0:
        return None
    crowds = []
    for text in args.flash_crowds:
        parts = text.split(":")
        if len(parts) != 3:
            raise ConfigError(
                f"--flash-crowd wants AT:DURATION:MULTIPLIER, got {text!r}"
            )
        crowds.append(
            FlashCrowd(
                at=float(parts[0]),
                duration=float(parts[1]),
                multiplier=float(parts[2]),
            )
        )
    return PopulationSpec(
        users=args.users,
        distribution=args.distribution,
        zipf_exponent=args.zipf_exponent,
        sigma=args.sigma,
        events_per_user_per_day=args.events_per_user_per_day,
        diurnal_amplitude=args.diurnal_amplitude,
        diurnal_period=args.diurnal_period,
        flash_crowds=tuple(sorted(crowds, key=lambda c: c.at)),
        rate_scale=args.rate_scale,
    )


def _cluster_partitions(args: argparse.Namespace, spec) -> int:
    """Default partition count: at least one per source task slot."""
    if args.partitions is not None:
        return args.partitions
    per_node = spec.tasks_per_node if spec.tasks_per_node else args.mp
    return max(32, per_node * spec.nodes)


def _cluster_config(args: argparse.Namespace, **extra) -> ExperimentConfig:
    spec = _cluster_spec_from_args(args)
    return _config_from(
        args,
        cluster=spec,
        use_broker=True,
        partitions=_cluster_partitions(args, spec),
        **extra,
    )


def _cmd_cluster_run(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError

    try:
        population = _population_from_args(args)
        if population is not None:
            config = _cluster_config(args, population=population)
        else:
            config = _cluster_config(args, ir=args.ir)
        result = run_experiment(config)
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = [
        ("throughput (events/s)", format_rate(result.throughput)),
        ("mean latency (ms)", format_ms(result.latency.mean)),
        ("p95 latency (ms)", format_ms(result.latency.p95)),
        ("completed batches", result.completed),
    ]
    print(format_table(["metric", "value"], rows, title=config.label()))
    if args.placement:
        from repro.cluster import PlacementPlan
        from repro.config import is_embedded

        plan = PlacementPlan.from_spec(
            config.cluster,
            base_tasks=config.mp,
            external_serving=not is_embedded(config.serving),
        )
        print()
        print(plan.describe())
    _maybe_dump(args, [result])
    _record_results(_open_store(args), [result], kind="cluster")
    return 0


def _cmd_cluster_capacity(args: argparse.Namespace) -> int:
    from repro.cluster import SloPolicy, capacity_curve
    from repro.errors import ConfigError

    node_counts = tuple(int(n) for n in args.node_counts.split(","))
    seeds = tuple(int(s) for s in args.seeds.split(","))
    slo = SloPolicy(p95_latency=args.slo_p95, min_goodput=args.min_goodput)
    cache = _open_cache(args)

    def probe_progress(point):
        verdict = "sustained" if point.sustained else "broken"
        print(
            f"  probe {format_rate(point.rate)} events/s: {verdict} "
            f"(goodput {format_rate(point.throughput)}, "
            f"p95 {format_ms(point.p95)} ms)"
        )

    def size_progress(nodes, result):
        print(
            f"{nodes} node(s): {format_rate(result.capacity)} events/s "
            f"sustainable after {len(result.probes)} probes"
        )

    store = _open_store(args)
    try:
        config = _cluster_config(args, ir=None)
        curve = capacity_curve(
            config,
            node_counts=node_counts,
            slo=slo,
            size_hook=size_progress,
            seeds=seeds,
            start_rate=args.start_rate,
            tolerance=args.tolerance,
            max_probes=args.max_probes,
            jobs=args.jobs,
            cache=cache,
            hook=probe_progress if args.verbose else None,
            store=store,
        )
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if store is not None:
            store.close()
    rows = [
        (nodes, format_rate(result.capacity), len(result.probes))
        for nodes, result in curve.points
    ]
    print()
    print(
        format_table(
            ["nodes", "sustainable events/s", "probes"],
            rows,
            title=(
                f"capacity search: {args.sps}/{args.serving}/{args.model} "
                f"SLO p95<={args.slo_p95 * 1000:.0f}ms"
            ),
        )
    )
    verdict = (
        "capacity scales monotonically with node count"
        if curve.monotonic
        else "WARNING: capacity is NOT monotonic over node counts"
    )
    print(verdict)
    if cache is not None:
        print(f"cache {args.cache_dir}: {cache.stats.summary()}")
    if store is not None:
        print(f"recorded capacity search into {store.path}")
    return 0 if curve.monotonic else 1


def _lint_rule_selection(args: argparse.Namespace) -> list[str]:
    """Resolve --select/--ignore (and the legacy --only alias) to rule
    names. Raises ValueError on an unknown rule in either list."""
    from repro.analysis.core import rule_names

    select = args.select or args.only
    known = set(rule_names())
    base = set(select.split(",")) if select else set(known)
    ignored = set(args.ignore.split(",")) if args.ignore else set()
    unknown = sorted((base | ignored) - known)
    if unknown:
        raise ValueError(f"unknown lint rule(s): {', '.join(unknown)}")
    return sorted(base - ignored)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.core import lint_paths, make_rules
    from repro.analysis.report import (
        render_json,
        render_suppressions,
        render_text,
    )

    if args.rules:
        for rule in make_rules():
            print(f"{rule.name}: {rule.description}")
        return 0
    try:
        reports = lint_paths(args.paths, rules=make_rules(_lint_rule_selection(args)))
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.list_suppressions:
        print(render_suppressions(reports))
        return 0
    if args.check_suppressions:
        return _check_suppressions(args.suppressions_file, args.paths, reports)
    if args.format == "json":
        print(render_json(reports))
    else:
        print(render_text(reports, show_suppressed=args.show_suppressed))
    return 0 if all(r.clean for r in reports) else 1


def _check_suppressions(target: str, paths, reports) -> int:
    """Suppression-inventory freshness gate (``--check-suppressions``).

    A stale inventory is actionable, not just nonzero: print the unified
    diff between the committed file and the regenerated one, plus the
    exact command that refreshes it.
    """
    import difflib

    from repro.analysis.report import render_suppressions

    expected = render_suppressions(reports) + "\n"
    committed_path = pathlib.Path(target)
    committed = committed_path.read_text() if committed_path.exists() else ""
    if committed == expected:
        print(f"{target} is fresh ({len(reports)} file(s) linted)")
        return 0
    sys.stdout.writelines(
        difflib.unified_diff(
            committed.splitlines(keepends=True),
            expected.splitlines(keepends=True),
            fromfile=f"{target} (committed)",
            tofile=f"{target} (regenerated)",
        )
    )
    lint_args = " ".join(str(p) for p in paths)
    print(f"{target} is stale; regenerate with:")
    print(f"  crayfish lint --list-suppressions {lint_args} > {target}")
    return 1


def _cmd_verify_determinism(args: argparse.Namespace) -> int:
    from repro.analysis.determinism import verify_determinism

    extra: dict[str, typing.Any] = {}
    if args.nodes > 0:
        from repro.cluster.spec import ClusterSpec

        spec = ClusterSpec(nodes=args.nodes)
        extra["cluster"] = spec
        extra["use_broker"] = True
        extra["partitions"] = max(32, args.mp * args.nodes)
    config = ExperimentConfig(
        sps=SPS_NAMES[0],
        serving=args.serving,
        model=args.model,
        bsz=args.bsz,
        mp=args.mp,
        seed=args.seed,
        duration=args.duration,
        ir=args.ir,
        **extra,
    )
    engines = SPS_NAMES if args.sps == "all" else (args.sps,)
    verdicts = verify_determinism(
        config, engines=engines, sanitize=not args.no_sanitize
    )
    rows = []
    for verdict in verdicts:
        if verdict.identical:
            digest = verdict.digests[0][1][:12]
            rows.append((verdict.sps, "byte-identical", digest))
        else:
            rows.append(
                (verdict.sps, "MISMATCH", ", ".join(verdict.mismatched))
            )
    print(
        format_table(
            ["engine", "dual-run verdict", "results sha256 / diffs"],
            rows,
            title=(
                f"verify-determinism: {args.serving}/{args.model} "
                f"ir={args.ir} duration={args.duration}s seed={args.seed}"
            ),
        )
    )
    failed = [v.sps for v in verdicts if not v.identical]
    if failed:
        print(f"NONDETERMINISM DETECTED in: {', '.join(failed)}")
        return 1
    print(f"all {len(verdicts)} engine(s) reproduce byte-identically")
    return 0


def _cmd_verify_order(args: argparse.Namespace) -> int:
    from repro.analysis.order import verify_order

    extra: dict[str, typing.Any] = {}
    if args.nodes > 0:
        from repro.cluster.spec import ClusterSpec

        extra["cluster"] = ClusterSpec(nodes=args.nodes)
        extra["use_broker"] = True
        extra["partitions"] = max(32, args.mp * args.nodes)
    config = ExperimentConfig(
        sps=SPS_NAMES[0],
        serving=args.serving,
        model=args.model,
        bsz=args.bsz,
        mp=args.mp,
        seed=args.seed,
        duration=args.duration,
        ir=args.ir,
        **extra,
    )
    engines = SPS_NAMES if args.sps == "all" else (args.sps,)
    schedulers = tuple(args.schedulers.split(","))
    verdicts = verify_order(
        config,
        engines=engines,
        permutations=args.permutations,
        schedulers=schedulers,
        sanitize=not args.no_sanitize,
    )
    rows = []
    for verdict in verdicts:
        if verdict.identical:
            digest = dict(verdict.baseline)["results.json"][:12]
            rows.append((verdict.sps, "order-independent", digest))
        else:
            rows.append(
                (verdict.sps, "ORDER-DEPENDENT", ", ".join(verdict.mismatched))
            )
    print(
        format_table(
            ["engine", "perturbation verdict", "results sha256 / diffs"],
            rows,
            title=(
                f"verify-order: {args.serving}/{args.model} ir={args.ir} "
                f"duration={args.duration}s seed={args.seed} "
                f"permutations={args.permutations}"
            ),
        )
    )
    failed = [v.sps for v in verdicts if not v.identical]
    if failed:
        print(
            "ORDERING HAZARD: exports depend on event-tie pop order in: "
            + ", ".join(failed)
        )
        print("locate the conflicting sites with: crayfish run --tie-track")
        return 1
    perturbed = args.permutations * len(schedulers)
    print(
        f"all {len(verdicts)} engine(s) byte-identical across "
        f"{perturbed} perturbed schedule(s) + heap/calendar baselines"
    )
    return 0


def _cmd_store_import(args: argparse.Namespace) -> int:
    from repro.store import ResultStore
    from repro.store.importers import import_all

    path = _db_path(args)
    with ResultStore(path) as store:

        def progress(name, partial):
            print(f"  {name}: {partial.summary()}")

        report = import_all(store, args.root, hook=progress)
        counts = store.counts()
    print(f"import complete: {report.summary()}")
    print(
        f"store {path}: {counts['runs']} run(s), "
        f"{counts['sweeps']} sweep(s), {counts['series']} series row(s), "
        f"{counts['artifacts']} artifact(s)"
    )
    return 0


def _cmd_store_info(args: argparse.Namespace) -> int:
    from repro.store import SCHEMA_VERSION, ResultStore

    path = _require_db(args)
    if path is None:
        return 2
    with ResultStore(path) as store:
        counts = store.counts()
        rows = [
            ("schema version", f"{store.schema_version} (build {SCHEMA_VERSION})"),
            ("code fingerprint", store.fingerprint),
            ("git revision", store.git_rev or "-"),
        ]
        rows.extend((table, count) for table, count in counts.items())
    print(format_table(["field", "value"], rows, title=f"results store {path}"))
    return 0


def _cmd_history(args: argparse.Namespace) -> int:
    from repro.store import ResultStore, format_history, history

    path = _require_db(args)
    if path is None:
        return 2
    with ResultStore(path) as store:
        rows = history(store, _history_filter(args))
    if args.as_json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(format_history(rows, title=f"run history ({path})"))
    return 0


def _cmd_trend(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.store import ResultStore, format_trends, trend

    path = _require_db(args)
    if path is None:
        return 2
    try:
        with ResultStore(path) as store:
            series = trend(
                store,
                args.metric,
                _history_filter(args),
                min_points=args.min_points,
            )
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.as_json:
        print(
            json.dumps(
                [
                    {
                        "slot_id": s.slot_id,
                        "label": s.label,
                        "seed": s.seed,
                        "metric": s.metric,
                        "points": [list(point) for point in s.points],
                    }
                    for s in series
                ],
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(format_trends(series, title=f"{args.metric} trend ({path})"))
    return 0


def _regress_current(result, slowdown: float) -> dict[str, float | None]:
    """The measured metric values the regression gate compares.

    ``slowdown`` > 1 synthetically degrades them (throughput divided,
    latencies multiplied) — the ``--self-test-slowdown`` proof that the
    gate actually fires. NaN (no completions) maps to None, which skips
    the metric.
    """

    def clean(value):
        return None if value is None or math.isnan(value) else value

    current = {
        "throughput": clean(result.throughput),
        "latency_mean": clean(result.latency.mean),
        "latency_p95": clean(result.latency.p95),
        "latency_p99": clean(result.latency.p99),
    }
    if slowdown != 1.0:
        for metric, value in current.items():
            if value is None:
                continue
            current[metric] = (
                value / slowdown if metric == "throughput" else value * slowdown
            )
    return current


def _regress_thresholds(args: argparse.Namespace) -> dict[str, float]:
    from repro.errors import ConfigError
    from repro.store import DEFAULT_THRESHOLDS
    from repro.store.queries import validate_metric

    thresholds = dict(DEFAULT_THRESHOLDS)
    for text in args.thresholds:
        metric, sep, value = text.partition("=")
        if not sep:
            raise ConfigError(
                f"--threshold wants METRIC=FRACTION, got {text!r}"
            )
        thresholds[validate_metric(metric)] = float(value)
    return thresholds


def _cmd_regress(args: argparse.Namespace) -> int:
    """Run the configured experiment and gate it on the stored baseline."""
    from repro.errors import ConfigError
    from repro.store import (
        ResultStore,
        compare_to_baseline,
        format_regression,
        slot_id_of,
    )

    try:
        thresholds = _regress_thresholds(args)
        config = _config_from(args, ir=args.ir)
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    result = run_experiment(config, seed=args.seed)
    current = _regress_current(result, args.self_test_slowdown)
    slot = slot_id_of(config.canonical_dict(), args.seed)
    # Recording the degraded self-test values would poison the baseline.
    may_record = args.self_test_slowdown == 1.0 and not args.no_record
    with ResultStore(_db_path(args)) as store:
        verdict = compare_to_baseline(
            store, slot, config.label(), current, thresholds
        )
        print(format_regression(verdict))
        if not verdict.has_baseline:
            if may_record:
                store.record_result(result, seed=args.seed, kind="run")
            return 0
        if verdict.ok:
            if may_record:
                store.record_result(result, seed=args.seed, kind="run")
                print(f"pass: recorded as the new baseline in {store.path}")
            return 0
        if args.record_anyway and may_record:
            store.record_result(result, seed=args.seed, kind="run")
            print(
                "REGRESSION recorded anyway (--record-anyway): this run is "
                "now the baseline"
            )
            return 0
    regressed = ", ".join(d.metric for d in verdict.regressed)
    print(f"REGRESSION in {regressed} — run not recorded", file=sys.stderr)
    return 1


def _cmd_kernel_bench(args: argparse.Namespace) -> int:
    """Measure kernel events/sec and gate it on the stored baseline."""
    from repro.errors import SimulationError
    from repro.simul.bench import format_kernel_bench, run_kernel_bench
    from repro.store import ResultStore, compare_to_baseline, format_regression
    from repro.store.importers import bench_slot, kernel_label, record_kernel_entries

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    try:
        entries = run_kernel_bench(
            workloads=workloads, scale=args.scale, repeats=args.repeats
        )
    except SimulationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    slowdown = args.self_test_slowdown
    if slowdown != 1.0:
        # Synthetic degradation proving both gates fire; never recorded.
        for entry in entries.values():
            entry["current"]["seconds"] = round(
                entry["current"]["seconds"] * slowdown, 6
            )
            entry["current"]["events_per_sec"] = round(
                entry["current"]["events_per_sec"] / slowdown, 1
            )
            entry["speedup"] = round(entry["speedup"] / slowdown, 3)
    print(format_kernel_bench(entries))

    failures = []
    if "scalability" in entries:
        speedup = entries["scalability"]["speedup"]
        if speedup < args.min_speedup:
            failures.append(
                f"scalability speedup {speedup:.2f}x is below the "
                f"{args.min_speedup:.1f}x floor over the heap scheduler"
            )
    may_record = slowdown == 1.0 and not args.no_record
    with ResultStore(_db_path(args)) as store:
        for workload in sorted(entries):
            label = kernel_label(workload)
            verdict = compare_to_baseline(
                store,
                bench_slot(label),
                label,
                {"throughput": entries[workload]["current"]["events_per_sec"]},
                {"throughput": args.threshold},
            )
            if verdict.has_baseline:
                print(format_regression(verdict))
            if not verdict.ok:
                failures.append(
                    f"{workload}: events/sec regressed beyond "
                    f"{args.threshold:.0%} of the stored baseline"
                )
        if not failures and may_record:
            record_kernel_entries(store, entries)
            print(
                f"recorded {len(entries)} kernel workload(s) into {store.path}"
            )
    if failures:
        for failure in failures:
            print(f"KERNEL REGRESSION: {failure}", file=sys.stderr)
        print("kernel bench not recorded", file=sys.stderr)
        return 1
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(entries, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.update_baseline:
        payload: dict = {}
        if os.path.exists(args.baseline_file):
            with open(args.baseline_file) as handle:
                payload = json.load(handle)
        payload.update(entries)
        with open(args.baseline_file, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"kernel baseline updated: {args.baseline_file}")
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    from repro.store import ResultStore, format_pareto, pareto_frontier

    path = _require_db(args)
    if path is None:
        return 2
    with ResultStore(path) as store:
        points = pareto_frontier(
            store, _history_filter(args), latency_metric=args.latency_metric
        )
    if args.as_json:
        print(
            json.dumps(
                [
                    {
                        "run_id": p.run_id,
                        "slot_id": p.slot_id,
                        "label": p.label,
                        "seed": p.seed,
                        "latency": p.latency,
                        "throughput": p.throughput,
                        "cost": p.cost,
                        "on_frontier": p.on_frontier,
                    }
                    for p in points
                ],
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            format_pareto(
                points,
                title=f"latency/throughput/cost frontier ({path})",
            )
        )
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    print(format_table(["kind", "names"], [
        ("stream processors", ", ".join(SPS_NAMES)),
        ("serving tools", ", ".join(SERVING_TOOLS)),
        ("models", ", ".join(MODEL_NAMES)),
    ]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="crayfish",
        description="Crayfish reproduction: benchmark ML inference in "
        "simulated stream processing systems.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_cmd = commands.add_parser("run", help="one open-loop experiment")
    _add_sut_args(run_cmd)
    run_cmd.add_argument("--ir", type=float, default=None, help="input rate; omit to saturate")
    run_cmd.add_argument(
        "--sanitize", action="store_true",
        help="run under the determinism sanitizer: wall-clock and "
        "global-RNG calls raise instead of corrupting results",
    )
    run_cmd.add_argument(
        "--tie-track", action="store_true", dest="tie_track",
        help="record shared-state accesses per event-tie class and "
        "report CONFIRMED pop-order races (nonzero exit when any are "
        "unsuppressed)",
    )
    _add_store_args(run_cmd)
    run_cmd.set_defaults(func=_cmd_run)

    sweep_cmd = commands.add_parser("sweep", help="sweep one config field")
    _add_sut_args(sweep_cmd)
    sweep_cmd.add_argument("--ir", type=float, default=None)
    sweep_cmd.add_argument("--field", default="mp", help="config field to sweep")
    sweep_cmd.add_argument(
        "--values", default="1,2,4,8,16", help="comma-separated integer values"
    )
    _add_matrix_exec_args(sweep_cmd)
    _add_store_args(sweep_cmd)
    sweep_cmd.set_defaults(func=_cmd_sweep)

    matrix_cmd = commands.add_parser(
        "matrix",
        help="run a full experiment matrix: parallel workers + result cache",
    )
    matrix_cmd.add_argument(
        "--preset", default="smoke",
        choices=(
            "latency", "throughput", "scalability", "burst-recovery",
            "scaleout", "capacity-search", "smoke",
        ),
        help="paper grid to reproduce",
    )
    matrix_cmd.add_argument(
        "--list", action="store_true", dest="list_presets",
        help="describe the available presets and exit",
    )
    matrix_cmd.add_argument(
        "--seeds", default=None,
        help="comma-separated seed list overriding the preset's seeds",
    )
    matrix_cmd.add_argument(
        "--duration", type=float, default=None,
        help="override the preset's simulated duration (seconds)",
    )
    matrix_cmd.add_argument(
        "--jsonl", default=None,
        help="write full result records as JSON Lines to this path",
    )
    matrix_cmd.add_argument(
        "--csv", default=None, help="write a flat result CSV to this path"
    )
    matrix_cmd.add_argument(
        "--json", default=None, dest="json_path",
        help="also write the result(s) as JSON to this path",
    )
    _add_matrix_exec_args(matrix_cmd)
    _add_store_args(matrix_cmd)
    matrix_cmd.set_defaults(func=_cmd_matrix)

    lat_cmd = commands.add_parser("latency", help="closed-loop latency")
    _add_sut_args(lat_cmd)
    lat_cmd.add_argument("--ir", type=float, default=1.0)
    lat_cmd.set_defaults(func=_cmd_latency)

    burst_cmd = commands.add_parser("bursts", help="periodic-burst scenario")
    _add_sut_args(burst_cmd)
    burst_cmd.add_argument("--bd", type=float, default=3.0, help="burst duration (s)")
    burst_cmd.add_argument("--tbb", type=float, default=12.0, help="time between bursts (s)")
    burst_cmd.add_argument("--bursts", type=int, default=3)
    burst_cmd.set_defaults(func=_cmd_bursts)

    trace_cmd = commands.add_parser(
        "trace", help="trace one experiment: per-stage latency breakdown"
    )
    _add_sut_args(trace_cmd)
    trace_cmd.add_argument("--ir", type=float, default=None, help="input rate; omit to saturate")
    trace_cmd.add_argument(
        "--sample-every", type=int, default=1, dest="sample_every",
        help="trace every Nth record (head-based sampling)",
    )
    trace_cmd.add_argument(
        "--max-traces", type=int, default=4096, dest="max_traces",
        help="hard cap on admitted traces (bounds memory)",
    )
    trace_cmd.add_argument(
        "--out", default="crayfish_trace.json",
        help="Chrome trace_event output path",
    )
    trace_cmd.add_argument(
        "--csv", default=None, help="also write spans as CSV to this path"
    )
    trace_cmd.set_defaults(func=_cmd_trace)

    metrics_cmd = commands.add_parser(
        "metrics", help="run one experiment with whole-system telemetry"
    )
    _add_sut_args(metrics_cmd)
    metrics_cmd.add_argument(
        "--ir", type=float, default=None, help="input rate; omit to saturate"
    )
    metrics_cmd.add_argument(
        "--scrape-interval", type=float, default=0.05, dest="scrape_interval",
        help="simulated seconds between scrapes",
    )
    metrics_cmd.add_argument(
        "--openmetrics", default="crayfish_metrics.txt",
        help="OpenMetrics text exposition output path",
    )
    metrics_cmd.add_argument(
        "--jsonl", default=None,
        help="also write the scraped timeline as JSONL to this path",
    )
    metrics_cmd.set_defaults(func=_cmd_metrics)

    chaos_cmd = commands.add_parser(
        "chaos", help="inject one fault and measure recovery vs. a baseline"
    )
    _add_sut_args(chaos_cmd)
    chaos_cmd.add_argument(
        "--ir", type=float, default=None, help="input rate; omit to saturate"
    )
    chaos_cmd.add_argument(
        "--fault", default="server-crash", choices=FAULT_CHOICES,
        help="fault class to inject",
    )
    chaos_cmd.add_argument(
        "--at", type=float, default=2.0, help="fault start time (simulated s)"
    )
    chaos_cmd.add_argument(
        "--fault-duration", type=float, default=0.5, dest="fault_duration",
        help="fault window / downtime / recovery time (s)",
    )
    chaos_cmd.add_argument(
        "--error-rate", type=float, default=0.0, dest="error_rate",
        help="network fault: request drop probability",
    )
    chaos_cmd.add_argument(
        "--extra-latency", type=float, default=0.005, dest="extra_latency",
        help="network fault: added one-way latency (s)",
    )
    chaos_cmd.add_argument(
        "--slowdown", type=float, default=4.0,
        help="straggler fault: inference slowdown factor",
    )
    chaos_cmd.add_argument(
        "--partitions-hit", type=int, default=32, dest="partitions_hit",
        help="partition fault: how many input partitions go down",
    )
    chaos_cmd.add_argument(
        "--retries", type=int, default=5, help="client retry budget"
    )
    chaos_cmd.add_argument(
        "--timeout", type=float, default=None,
        help="client per-attempt deadline (s); omit for none",
    )
    chaos_cmd.add_argument(
        "--backoff-base", type=float, default=0.05, dest="backoff_base",
        help="first retry backoff delay (s)",
    )
    chaos_cmd.add_argument(
        "--checkpoint-interval", type=float, default=0.5,
        dest="checkpoint_interval",
        help="engine-crash fault: checkpoint interval (s)",
    )
    chaos_cmd.add_argument(
        "--no-resilience", action="store_true", dest="no_resilience",
        help="drop the client resilience layer (failed scores are shed)",
    )
    _add_store_args(chaos_cmd)
    chaos_cmd.set_defaults(func=_cmd_chaos)

    cluster_cmd = commands.add_parser(
        "cluster",
        help="multi-node scale-out simulations: placement, population "
        "workloads, sustainable-capacity search",
    )
    cluster_sub = cluster_cmd.add_subparsers(
        dest="cluster_command", required=True
    )

    cluster_run = cluster_sub.add_parser(
        "run", help="one experiment on a simulated multi-node deployment"
    )
    _add_sut_args(cluster_run)
    _add_cluster_shape_args(cluster_run)
    _add_population_args(cluster_run)
    cluster_run.add_argument(
        "--ir", type=float, default=None,
        help="input rate; omit to saturate (ignored when --users > 0)",
    )
    cluster_run.add_argument(
        "--placement", action="store_true",
        help="also print the node placement plan",
    )
    _add_store_args(cluster_run)
    cluster_run.set_defaults(func=_cmd_cluster_run)

    cluster_cap = cluster_sub.add_parser(
        "capacity-search",
        help="binary-search max sustainable events/s per deployment size "
        "against an SLO (Theodolite-style)",
    )
    _add_sut_args(cluster_cap)
    _add_cluster_shape_args(cluster_cap)
    cluster_cap.add_argument(
        "--node-counts", default="1,2,4", dest="node_counts",
        help="comma-separated deployment sizes to search",
    )
    cluster_cap.add_argument(
        "--slo-p95", type=float, default=1.0, dest="slo_p95",
        help="SLO: p95 end-to-end latency bound (seconds)",
    )
    cluster_cap.add_argument(
        "--min-goodput", type=float, default=0.9, dest="min_goodput",
        help="SLO: completed/offered throughput floor in (0, 1]",
    )
    cluster_cap.add_argument(
        "--start-rate", type=float, default=50.0, dest="start_rate",
        help="first probed rate (events/s); doubles until the SLO breaks",
    )
    cluster_cap.add_argument(
        "--tolerance", type=float, default=0.1,
        help="stop when the bracket's relative width drops under this",
    )
    cluster_cap.add_argument(
        "--max-probes", type=int, default=24, dest="max_probes",
        help="probe budget per deployment size",
    )
    cluster_cap.add_argument(
        "--seeds", default="0,1",
        help="comma-separated seeds averaged per probe",
    )
    cluster_cap.add_argument(
        "--verbose", action="store_true",
        help="print every probe, not just per-size results",
    )
    _add_matrix_exec_args(cluster_cap)
    _add_store_args(cluster_cap)
    cluster_cap.set_defaults(func=_cmd_cluster_capacity)

    lint_cmd = commands.add_parser(
        "lint", help="determinism & simulation-safety linter"
    )
    lint_cmd.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint_cmd.add_argument(
        "--format", default="text", choices=("text", "json"),
        help="report format",
    )
    lint_cmd.add_argument(
        "--select", default=None, metavar="RULE[,RULE...]",
        help="run only these rules",
    )
    lint_cmd.add_argument(
        "--ignore", default=None, metavar="RULE[,RULE...]",
        help="run every rule except these",
    )
    lint_cmd.add_argument(
        "--only", default=None, help=argparse.SUPPRESS,  # legacy --select alias
    )
    lint_cmd.add_argument(
        "--show-suppressed", action="store_true", dest="show_suppressed",
        help="also list findings silenced by pragmas",
    )
    lint_cmd.add_argument(
        "--list-suppressions", action="store_true", dest="list_suppressions",
        help="print the suppression inventory instead of findings",
    )
    lint_cmd.add_argument(
        "--check-suppressions", action="store_true", dest="check_suppressions",
        help="diff the committed suppression inventory against a fresh "
        "one; on staleness print the unified diff and the regeneration "
        "command",
    )
    lint_cmd.add_argument(
        "--suppressions-file", default="SUPPRESSIONS.md",
        dest="suppressions_file", metavar="PATH",
        help="inventory checked by --check-suppressions",
    )
    lint_cmd.add_argument(
        "--rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    lint_cmd.set_defaults(func=_cmd_lint)

    verify_cmd = commands.add_parser(
        "verify-determinism",
        help="run the same scenario twice per engine and byte-diff "
        "results/metrics/trace exports",
    )
    verify_cmd.add_argument(
        "--sps", default="all", choices=SPS_NAMES + ("all",),
        help="engine to check, or all four",
    )
    verify_cmd.add_argument("--serving", default="onnx", choices=SERVING_TOOLS)
    verify_cmd.add_argument("--model", default="ffnn", choices=MODEL_NAMES)
    verify_cmd.add_argument("--bsz", type=int, default=1)
    verify_cmd.add_argument("--mp", type=int, default=1)
    verify_cmd.add_argument("--seed", type=int, default=0)
    verify_cmd.add_argument(
        "--ir", type=float, default=50.0, help="input rate (events/s)"
    )
    verify_cmd.add_argument(
        "--duration", type=float, default=2.0, help="simulated seconds"
    )
    verify_cmd.add_argument(
        "--nodes", type=int, default=0,
        help="also cluster the scenario over this many simulated nodes "
        "(0 = single-node, no cluster layer)",
    )
    verify_cmd.add_argument(
        "--no-sanitize", action="store_true", dest="no_sanitize",
        help="skip the runtime sanitizer during the paired runs",
    )
    verify_cmd.set_defaults(func=_cmd_verify_determinism)

    order_cmd = commands.add_parser(
        "verify-order",
        help="schedule-perturbation proof: re-run per engine under seeded "
        "permutations of event-tie pop order and byte-diff all exports",
    )
    order_cmd.add_argument(
        "--sps", default="all", choices=SPS_NAMES + ("all",),
        help="engine to check, or all four",
    )
    order_cmd.add_argument("--serving", default="onnx", choices=SERVING_TOOLS)
    order_cmd.add_argument("--model", default="ffnn", choices=MODEL_NAMES)
    order_cmd.add_argument("--bsz", type=int, default=1)
    order_cmd.add_argument("--mp", type=int, default=1)
    order_cmd.add_argument("--seed", type=int, default=0)
    order_cmd.add_argument(
        "--ir", type=float, default=50.0, help="input rate (events/s)"
    )
    order_cmd.add_argument(
        "--duration", type=float, default=2.0, help="simulated seconds"
    )
    order_cmd.add_argument(
        "--nodes", type=int, default=0,
        help="also cluster the scenario over this many simulated nodes "
        "(0 = single-node, no cluster layer)",
    )
    order_cmd.add_argument(
        "--permutations", type=int, default=3,
        help="seeded tie-permutation runs per scheduler backend",
    )
    order_cmd.add_argument(
        "--schedulers", default="calendar,heap",
        help="comma-separated kernel scheduler backends to prove on",
    )
    order_cmd.add_argument(
        "--no-sanitize", action="store_true", dest="no_sanitize",
        help="skip the runtime sanitizer during the runs",
    )
    order_cmd.set_defaults(func=_cmd_verify_order)

    store_cmd = commands.add_parser(
        "store", help="results database maintenance (import, info)"
    )
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)
    store_import = store_sub.add_parser(
        "import",
        help="backfill history from committed artifacts "
        "(BENCH_metrics.json, golden files, benchmarks/results)",
    )
    _add_db_arg(store_import)
    store_import.add_argument(
        "--root", default=".", help="repository root to scan for artifacts"
    )
    store_import.set_defaults(func=_cmd_store_import)
    store_info = store_sub.add_parser(
        "info", help="schema version, provenance stamps, and row counts"
    )
    _add_db_arg(store_info)
    store_info.set_defaults(func=_cmd_store_info)

    history_cmd = commands.add_parser(
        "history", help="stored run history, newest first"
    )
    _add_filter_args(history_cmd)
    history_cmd.set_defaults(func=_cmd_history)

    trend_cmd = commands.add_parser(
        "trend",
        help="per-configuration metric trajectories across revisions",
    )
    _add_filter_args(trend_cmd)
    trend_cmd.add_argument(
        "--metric", default="throughput",
        help="metric to trend: throughput, latency_mean, latency_p50/p95/"
        "p99/p999, completed, cost_proxy",
    )
    trend_cmd.add_argument(
        "--min-points", type=int, default=2, dest="min_points",
        help="hide slots with fewer recordings than this",
    )
    trend_cmd.set_defaults(func=_cmd_trend)

    regress_cmd = commands.add_parser(
        "regress",
        help="run one experiment and gate it against the stored baseline "
        "(exit 1 on regression — the CI gate)",
    )
    _add_sut_args(regress_cmd)
    regress_cmd.add_argument(
        "--ir", type=float, default=None, help="input rate; omit to saturate"
    )
    _add_db_arg(regress_cmd)
    regress_cmd.add_argument(
        "--threshold", action="append", default=[], dest="thresholds",
        metavar="METRIC=FRACTION",
        help="override a relative threshold, e.g. throughput=0.10 "
        "(repeatable)",
    )
    regress_cmd.add_argument(
        "--self-test-slowdown", type=float, default=1.0,
        dest="self_test_slowdown", metavar="FACTOR",
        help="synthetically degrade the measured metrics by FACTOR to "
        "prove the gate fires (the degraded run is never recorded)",
    )
    regress_cmd.add_argument(
        "--no-record", action="store_true", dest="no_record",
        help="compare only; never record this run into the store",
    )
    regress_cmd.add_argument(
        "--record-anyway", action="store_true", dest="record_anyway",
        help="record the run as the new baseline even if it regressed "
        "(bless an intentional change)",
    )
    regress_cmd.set_defaults(func=_cmd_regress)

    kernel_cmd = commands.add_parser(
        "kernel-bench",
        help="kernel events/sec microbenchmark, gated on the stored "
        "baseline (exit 1 on regression — the CI gate)",
    )
    kernel_cmd.add_argument(
        "--workloads", default="churn,handoff,scalability",
        help="comma-separated kernel workloads to measure",
    )
    kernel_cmd.add_argument(
        "--scale", type=float, default=1.0,
        help="workload size multiplier (smaller = faster smoke run)",
    )
    kernel_cmd.add_argument(
        "--repeats", type=int, default=3,
        help="measurement repeats per mode (best-of wins)",
    )
    _add_db_arg(kernel_cmd)
    kernel_cmd.add_argument(
        "--threshold", type=float, default=0.4, metavar="FRACTION",
        help="max relative events/sec drop vs the stored baseline "
        "(wall-clock rates vary across hosts, hence the generous default)",
    )
    kernel_cmd.add_argument(
        "--min-speedup", type=float, default=5.0, dest="min_speedup",
        metavar="FACTOR",
        help="machine-relative floor: the scalability workload must beat "
        "the heap scheduler by at least this factor",
    )
    kernel_cmd.add_argument(
        "--self-test-slowdown", type=float, default=1.0,
        dest="self_test_slowdown", metavar="FACTOR",
        help="synthetically degrade measured events/sec by FACTOR to "
        "prove the gate fires (the degraded run is never recorded)",
    )
    kernel_cmd.add_argument(
        "--no-record", action="store_true", dest="no_record",
        help="compare only; never record this pass into the store",
    )
    kernel_cmd.add_argument(
        "--json", default=None, dest="json_out", metavar="PATH",
        help="also write the raw entries as JSON",
    )
    kernel_cmd.add_argument(
        "--update-baseline", action="store_true", dest="update_baseline",
        help="merge this pass into the committed BENCH_kernel.json",
    )
    kernel_cmd.add_argument(
        "--baseline-file", default="BENCH_kernel.json", dest="baseline_file",
        help="path of the committed kernel baseline file",
    )
    kernel_cmd.set_defaults(func=_cmd_kernel_bench)

    pareto_cmd = commands.add_parser(
        "pareto",
        help="latency/throughput/cost frontier over stored configurations",
    )
    _add_filter_args(pareto_cmd)
    pareto_cmd.add_argument(
        "--latency-metric", default="latency_p95", dest="latency_metric",
        choices=(
            "latency_mean", "latency_p50", "latency_p95",
            "latency_p99", "latency_p999",
        ),
        help="which latency percentile forms the latency axis",
    )
    pareto_cmd.set_defaults(func=_cmd_pareto)

    list_cmd = commands.add_parser("list", help="registered components")
    list_cmd.set_defaults(func=_cmd_list)
    return parser


def main(argv: typing.Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
