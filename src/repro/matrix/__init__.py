"""repro.matrix — parallel, cached, resumable experiment matrices.

The engine (:mod:`repro.matrix.engine`) fans grid points × seeds across
worker processes and merges deterministically; the cache
(:mod:`repro.matrix.cache`) content-addresses every (config, seed)
result by canonical config + seed + code fingerprint, so re-running a
sweep executes only changed or missing points and interrupted runs
resume for free. Presets (:mod:`repro.matrix.presets`) package the
paper's headline grids behind ``crayfish matrix``.
"""

from repro.matrix.cache import CacheStats, ResultCache
from repro.matrix.engine import (
    MatrixReport,
    execute_task,
    format_matrix_table,
    grid_points,
    matrix_meta,
    record_matrix_report,
    run_matrix,
    run_replicated_cached,
)
from repro.matrix.fingerprint import code_fingerprint
from repro.matrix.presets import MatrixSpec, preset, preset_names

__all__ = [
    "CacheStats",
    "MatrixReport",
    "MatrixSpec",
    "ResultCache",
    "code_fingerprint",
    "execute_task",
    "format_matrix_table",
    "grid_points",
    "matrix_meta",
    "preset",
    "preset_names",
    "record_matrix_report",
    "run_matrix",
    "run_replicated_cached",
]
