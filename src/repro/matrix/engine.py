"""The parallel experiment-matrix engine.

Fans a grid of configurations × seeds out across worker processes and
merges the outcomes deterministically: results are slotted by task index
(point-major, seed-minor, grid points in sorted-key cartesian order), so
output ordering, aggregates, and exports are byte-identical no matter
how many workers raced to produce them — ``jobs=16`` must not be
distinguishable from ``jobs=1`` by anything but wall-clock.

Every task funnels through one serialization round-trip
(:func:`repro.core.results_io.result_record` /
:func:`~repro.core.results_io.result_from_record`), whether it executed
in-process, crossed a process boundary, or replayed from the
content-addressed cache — so all three paths yield identical results by
construction.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import itertools
import typing

from repro.config import ExperimentConfig
from repro.core.report import format_ms, format_rate, format_table
from repro.core.results_io import result_from_record, result_record
from repro.core.runner import ExperimentRunner
from repro.core.sweep import SweepPoint, validate_override_fields
from repro.errors import ConfigError
from repro.matrix.cache import CacheStats, ResultCache

#: Progress/result hook: called once per grid point, in grid order.
PointHook = typing.Callable[
    [dict, typing.Sequence[typing.Any]], None
]


def execute_task(config: ExperimentConfig, seed: int) -> dict:
    """Run one (config, seed) task and return its full result record.

    Module-level so :class:`concurrent.futures.ProcessPoolExecutor` can
    ship it to workers by reference; returns the serialized record (not
    the live result) so every execution path shares the same round-trip.
    """
    result = ExperimentRunner(config).run(seed=seed)
    return result_record(result, seed=seed)


@dataclasses.dataclass
class MatrixReport:
    """Everything one matrix run produced, in deterministic task order."""

    #: Aggregated grid points, in grid order.
    points: list[SweepPoint]
    #: Full result records, task order (point-major, seed-minor).
    records: list[dict]
    #: Seeds each point was replicated over.
    seeds: tuple[int, ...]
    #: Tasks that actually executed (the rest replayed from cache).
    executed: int
    #: Worker processes used for the executed tasks.
    jobs: int
    #: Cache traffic, when a cache was attached; None otherwise.
    cache_stats: CacheStats | None

    @property
    def results(self) -> list:
        """Flat results in task order (matches :attr:`records`)."""
        return [result for point in self.points for result in point.results]

    @property
    def tasks(self) -> int:
        return len(self.records)


def grid_points(
    grid: dict[str, typing.Sequence],
) -> list[dict]:
    """Override dicts for the cartesian product, in deterministic order.

    Keys are sorted; values keep their given order. An empty grid is the
    single empty override — one point, the base config itself.
    """
    if not grid:
        return [{}]
    keys = sorted(grid)
    return [
        dict(zip(keys, values))
        for values in itertools.product(*(grid[key] for key in keys))
    ]


def run_matrix(
    base: ExperimentConfig,
    grid: dict[str, typing.Sequence],
    seeds: typing.Sequence[int] = (0, 1),
    jobs: int = 1,
    cache: ResultCache | None = None,
    hook: PointHook | None = None,
    store: typing.Any = None,
    store_kind: str = "matrix",
) -> MatrixReport:
    """Run ``grid`` × ``seeds`` over ``base``, in parallel and cached.

    ``jobs`` worker processes execute the tasks the cache cannot serve
    (``jobs=1`` stays in-process). ``hook`` fires once per grid point —
    always in grid order, as soon as every earlier point is complete —
    so progress output is deterministic too. Interrupted runs resume for
    free: completed tasks are already in the cache, only missing slots
    re-execute.

    ``store`` (a :class:`repro.store.ResultStore`) records the finished
    matrix as one sweep — every run plus the execution/cache metadata —
    strictly after all tasks complete, so recording can never perturb
    the run itself.
    """
    seeds = tuple(seeds)
    if not seeds:
        raise ConfigError("need at least one seed")
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    validate_override_fields(grid)
    overrides = grid_points(grid)
    configs = [base.replace(**point) for point in overrides]

    width = len(seeds)
    records: list[dict | None] = [None] * (len(configs) * width)
    pending: list[tuple[int, ExperimentConfig, int]] = []
    for point_index, config in enumerate(configs):
        for seed_index, seed in enumerate(seeds):
            index = point_index * width + seed_index
            cached = None if cache is None else cache.get(config, seed)
            if cached is None:
                pending.append((index, config, seed))
            else:
                records[index] = cached

    emit = _OrderedEmitter(overrides, records, width, hook)
    emit.drain()

    if pending:
        if jobs == 1 or len(pending) == 1:
            for index, config, seed in pending:
                records[index] = execute_task(config, seed)
                if cache is not None:
                    cache.put(config, seed, records[index])
                emit.drain()
        else:
            workers = min(jobs, len(pending))
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            ) as pool:
                futures = {
                    pool.submit(execute_task, config, seed): (
                        index,
                        config,
                        seed,
                    )
                    for index, config, seed in pending
                }
                for future in concurrent.futures.as_completed(futures):
                    index, config, seed = futures[future]
                    records[index] = future.result()
                    if cache is not None:
                        cache.put(config, seed, records[index])
                    emit.drain()

    report = MatrixReport(
        points=emit.points,
        records=typing.cast("list[dict]", records),
        seeds=seeds,
        executed=len(pending),
        jobs=jobs,
        cache_stats=None if cache is None else cache.stats,
    )
    if store is not None:
        record_matrix_report(store, report, base, grid, kind=store_kind)
    return report


def matrix_meta(
    report: MatrixReport, grid: dict[str, typing.Sequence]
) -> dict:
    """Execution metadata for one matrix run, including cache traffic.

    This is what the JSONL/JSON exports carry in their ``.meta.json``
    sidecar and what stored sweeps keep in ``meta_json``. It lives
    *next to* the records, never inside them: cache statistics differ
    between a cold and a warm run while the record lines must stay
    byte-identical.
    """
    return {
        "grid": {key: list(values) for key, values in sorted(grid.items())},
        "seeds": list(report.seeds),
        "tasks": report.tasks,
        "executed": report.executed,
        "jobs": report.jobs,
        "cache": (
            None
            if report.cache_stats is None
            else report.cache_stats.to_dict()
        ),
    }


def record_matrix_report(
    store: typing.Any,
    report: MatrixReport,
    base: ExperimentConfig,
    grid: dict[str, typing.Sequence],
    kind: str = "matrix",
    label: str | None = None,
) -> int:
    """Record a finished matrix run into a results store as one sweep."""
    sweep_id = store.record_sweep(
        kind,
        base.label() if label is None else label,
        matrix_meta(report, grid),
    )
    for record in report.records:
        store.record_run(record, kind=kind, sweep_id=sweep_id)
    return int(sweep_id)


class _OrderedEmitter:
    """Builds SweepPoints — and fires the hook — strictly in grid order.

    Workers complete out of order; points materialize only once every
    earlier point is whole, so hook-driven progress output is identical
    for any job count while still streaming as the frontier advances.
    """

    def __init__(
        self,
        overrides: list[dict],
        records: list[dict | None],
        width: int,
        hook: PointHook | None,
    ) -> None:
        self._overrides = overrides
        self._records = records
        self._width = width
        self._hook = hook
        self.points: list[SweepPoint] = []

    def drain(self) -> None:
        while len(self.points) < len(self._overrides):
            start = len(self.points) * self._width
            chunk = self._records[start : start + self._width]
            if any(record is None for record in chunk):
                return
            results = tuple(
                result_from_record(record)
                for record in typing.cast("list[dict]", chunk)
            )
            point = SweepPoint(
                overrides=self._overrides[len(self.points)], results=results
            )
            self.points.append(point)
            if self._hook is not None:
                self._hook(point.overrides, point.results)


def run_replicated_cached(
    config: ExperimentConfig,
    seeds: typing.Sequence[int] = (0, 1),
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> list:
    """The paper's replicate-over-seeds protocol through the engine.

    A one-point matrix: same results as
    :func:`repro.core.runner.run_replicated`, plus the pool and cache.
    """
    report = run_matrix(config, {}, seeds=seeds, jobs=jobs, cache=cache)
    return list(report.points[0].results)


def format_matrix_table(
    report: MatrixReport, grid: dict[str, typing.Sequence], title: str
) -> str:
    """Summary table: one row per point, mean±std aggregates."""
    keys = sorted(grid) if grid else []
    headers = keys + ["events/s", "±std", "mean latency (ms)", "±std (ms)"]
    rows = []
    for point in report.points:
        throughput = point.throughput
        latency = point.mean_latency
        rows.append(
            [str(point.overrides[key]) for key in keys]
            + [
                format_rate(throughput.mean),
                format_rate(throughput.std),
                format_ms(latency.mean),
                format_ms(latency.std),
            ]
        )
    return format_table(headers, rows, title=title)
