"""Content-addressed on-disk cache of experiment results.

Each (config, seed) pair owns one *slot* file named by the digest of the
canonical config serialization plus the run seed. Inside the slot sits
the full result record together with the cache *key* — the same digest
extended with the code fingerprint (:mod:`repro.matrix.fingerprint`).

A lookup therefore distinguishes three outcomes:

- **hit** — slot exists and its key matches: the stored record was
  produced by identical code for an identical experiment; replay it.
- **invalidation** — slot exists but the key differs: the code changed
  since the record was stored. The entry is stale; the caller re-runs
  and the store overwrites the slot in place.
- **miss** — no slot: never ran (or a different config/seed).

Writes go through a temp file + ``os.replace`` so an interrupted sweep
never leaves a half-written record — resuming is just re-running.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib

from repro.config import ExperimentConfig
from repro.matrix.fingerprint import code_fingerprint


@dataclasses.dataclass
class CacheStats:
    """Tallies of one engine run's cache traffic."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.invalidations

    def summary(self) -> str:
        return (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.invalidations} invalidation(s), "
            f"{self.stores} store(s)"
        )

    def to_dict(self) -> dict:
        """Serializable tallies — exported in matrix metadata sidecars
        and recorded with stored sweeps."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "stores": self.stores,
            "lookups": self.lookups,
        }


def canonical_run_dict(config: ExperimentConfig, seed: int) -> dict:
    """The canonical config dict with the *run* seed substituted in.

    ``ExperimentRunner.run(seed=...)`` overrides the config's own seed,
    so two configs differing only in their ``seed`` field describe the
    same run when executed with the same explicit seed — and must share
    a cache slot.
    """
    canonical = config.canonical_dict()
    canonical["seed"] = seed
    return canonical


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class ResultCache:
    """Content-addressed store of full result records under ``root``.

    ``fingerprint`` defaults to the digest of the installed ``repro``
    source tree; tests inject fixed strings to exercise invalidation.
    """

    def __init__(
        self, root: str | pathlib.Path, fingerprint: str | None = None
    ) -> None:
        self.root = pathlib.Path(root)
        self.fingerprint = (
            code_fingerprint() if fingerprint is None else fingerprint
        )
        self.stats = CacheStats()

    # -- keying ------------------------------------------------------------

    def slot_id(self, config: ExperimentConfig, seed: int) -> str:
        """Digest of (canonical config, seed): names the slot file."""
        payload = json.dumps(
            canonical_run_dict(config, seed),
            sort_keys=True,
            separators=(",", ":"),
        )
        return _digest(payload)

    def key(self, config: ExperimentConfig, seed: int) -> str:
        """Full content address: slot id extended with the fingerprint."""
        return _digest(f"{self.slot_id(config, seed)}:{self.fingerprint}")

    def _slot_path(self, slot: str) -> pathlib.Path:
        return self.root / slot[:2] / f"{slot}.json"

    # -- lookups -----------------------------------------------------------

    def get(self, config: ExperimentConfig, seed: int) -> dict | None:
        """The stored record for (config, seed), or None.

        Counts a hit, a miss, or an invalidation (slot present but keyed
        by different code). A corrupt slot — e.g. a file truncated by an
        earlier hard kill — counts as an invalidation too: it is stale
        on-disk state that a re-run will overwrite.
        """
        path = self._slot_path(self.slot_id(config, seed))
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (json.JSONDecodeError, OSError):
            self.stats.invalidations += 1
            return None
        if not isinstance(entry, dict) or entry.get("key") != self.key(
            config, seed
        ):
            self.stats.invalidations += 1
            return None
        self.stats.hits += 1
        return entry["record"]

    def put(
        self, config: ExperimentConfig, seed: int, record: dict
    ) -> None:
        """Store ``record`` for (config, seed), atomically."""
        slot = self.slot_id(config, seed)
        path = self._slot_path(slot)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": self.key(config, seed),
            "fingerprint": self.fingerprint,
            "slot": slot,
            "config": canonical_run_dict(config, seed),
            "record": record,
        }
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w") as handle:
            json.dump(entry, handle, sort_keys=True, separators=(",", ":"))
        os.replace(tmp, path)
        self.stats.stores += 1

    # -- maintenance -------------------------------------------------------

    def entries(self) -> list[pathlib.Path]:
        """All slot files currently on disk, in sorted path order."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def __len__(self) -> int:
        return len(self.entries())
