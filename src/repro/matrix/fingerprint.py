"""Code fingerprinting for cache invalidation.

A cached result is only as trustworthy as the code that produced it: any
edit to the simulator can change the numbers. The fingerprint is a
SHA-256 digest over every ``*.py`` source file of the installed
``repro`` package (relative path + contents, in sorted path order), so
the content-addressed cache key changes — and every stale entry stops
matching — the moment any simulation code changes.
"""

from __future__ import annotations

import hashlib
import pathlib

import repro

_cached: str | None = None


def code_fingerprint() -> str:
    """Digest of the installed ``repro`` source tree (memoized).

    The tree cannot change underneath a running process (imports are
    already bound), so one scan per process is both safe and cheap.
    """
    global _cached
    if _cached is None:
        _cached = fingerprint_tree(pathlib.Path(repro.__file__).parent)
    return _cached


def fingerprint_tree(root: pathlib.Path) -> str:
    """Digest ``root``'s ``*.py`` files by relative path and contents."""
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()[:20]
