"""Canned experiment matrices reproducing the paper's grids.

Each preset is a :class:`MatrixSpec`: a base configuration plus the grid
and seed set to fan out. They mirror the paper's four headline studies —
closed-loop latency (Fig. 5), sustainable throughput across engines and
backends (Table 5), inference-parallelism scaling (Fig. 6), and
burst-recovery behaviour (Fig. 8) — at simulation durations sized so the
full matrix reproduces in minutes, not hours, and incrementally after
the first run thanks to the result cache. ``smoke`` is a seconds-long
grid for CI.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.cluster.spec import ClusterSpec
from repro.config import ExperimentConfig, SPS_NAMES, WorkloadKind
from repro.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class MatrixSpec:
    """One named experiment matrix: base config, grid, and seeds."""

    name: str
    description: str
    base: ExperimentConfig
    grid: dict[str, tuple]
    seeds: tuple[int, ...] = (0, 1)

    @property
    def task_count(self) -> int:
        """Total (point, seed) tasks the matrix fans out."""
        points = 1
        for values in self.grid.values():
            points *= len(values)
        return points * len(self.seeds)

    def configs(self) -> list[ExperimentConfig]:
        """Every grid point's validated configuration, in grid order."""
        from repro.matrix.engine import grid_points

        return [
            self.base.replace(**overrides)
            for overrides in grid_points(self.grid)
        ]


def _latency() -> MatrixSpec:
    return MatrixSpec(
        name="latency",
        description=(
            "closed-loop latency vs batch size, embedded vs external "
            "serving (Fig. 5)"
        ),
        base=ExperimentConfig(
            sps="flink",
            serving="onnx",
            model="ffnn",
            workload=WorkloadKind.CLOSED_LOOP,
            ir=2.0,
            duration=4.0,
        ),
        grid={"serving": ("onnx", "tf_serving"), "bsz": (1, 16, 64)},
    )


def _throughput() -> MatrixSpec:
    return MatrixSpec(
        name="throughput",
        description=(
            "sustainable throughput: every engine x embedded/external "
            "backend, saturating open loop (Table 5)"
        ),
        base=ExperimentConfig(
            sps="flink", serving="onnx", model="ffnn", ir=None, duration=2.0
        ),
        grid={"sps": SPS_NAMES, "serving": ("onnx", "tf_serving")},
    )


def _scalability() -> MatrixSpec:
    return MatrixSpec(
        name="scalability",
        description=(
            "throughput scaling over inference parallelism mp (Fig. 6)"
        ),
        base=ExperimentConfig(
            sps="flink", serving="onnx", model="ffnn", ir=None, duration=1.5
        ),
        grid={"mp": (1, 2, 4, 8), "serving": ("onnx", "tf_serving")},
    )


def _burst_recovery() -> MatrixSpec:
    return MatrixSpec(
        name="burst-recovery",
        description=(
            "periodic bursts above sustainable rate: latency spike and "
            "recovery per engine (Fig. 8)"
        ),
        base=ExperimentConfig(
            sps="flink",
            serving="onnx",
            model="ffnn",
            workload=WorkloadKind.PERIODIC_BURSTS,
            ir=100.0,
            bd=3.0,
            tbb=12.0,
            duration=20.0,
        ),
        grid={"sps": ("flink", "kafka_streams")},
    )


def _scaleout() -> MatrixSpec:
    return MatrixSpec(
        name="scaleout",
        description=(
            "saturating throughput over deployment size: two engines x "
            "1-3 node clusters (PDSP-Bench-style scale-out)"
        ),
        base=ExperimentConfig(
            sps="flink",
            serving="onnx",
            model="ffnn",
            ir=None,
            duration=1.5,
            mp=2,
            use_broker=True,
            partitions=8,
        ),
        grid={
            "sps": ("flink", "kafka_streams"),
            "cluster": (
                ClusterSpec(nodes=1),
                ClusterSpec(nodes=2),
                ClusterSpec(nodes=3),
            ),
        },
        seeds=(0,),
    )


def _capacity_search() -> MatrixSpec:
    return MatrixSpec(
        name="capacity-search",
        description=(
            "fixed rate ladder over cluster sizes: the coarse grid behind "
            "the bisecting `crayfish cluster capacity-search` driver"
        ),
        base=ExperimentConfig(
            sps="flink",
            serving="onnx",
            model="ffnn",
            ir=200.0,
            duration=1.5,
            mp=2,
            use_broker=True,
            partitions=8,
        ),
        grid={
            "cluster": (ClusterSpec(nodes=1), ClusterSpec(nodes=2)),
            "ir": (200.0, 800.0, 3200.0),
        },
        seeds=(0,),
    )


def _smoke() -> MatrixSpec:
    return MatrixSpec(
        name="smoke",
        description=(
            "tiny two-engine grid for CI: seconds of wall-clock, "
            "exercises pool fan-out and the result cache"
        ),
        base=ExperimentConfig(
            sps="flink", serving="onnx", model="ffnn", ir=50.0, duration=1.0
        ),
        grid={"sps": ("flink", "kafka_streams")},
        seeds=(0,),
    )


_PRESETS: dict[str, typing.Callable[[], MatrixSpec]] = {
    "latency": _latency,
    "throughput": _throughput,
    "scalability": _scalability,
    "burst-recovery": _burst_recovery,
    "scaleout": _scaleout,
    "capacity-search": _capacity_search,
    "smoke": _smoke,
}


def preset_names() -> tuple[str, ...]:
    return tuple(sorted(_PRESETS))


def preset(name: str) -> MatrixSpec:
    """Look up a preset matrix by name."""
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown matrix preset {name!r}; available: "
            f"{', '.join(preset_names())}"
        ) from None
    return factory()
