"""Span primitives and the per-record tracer.

A *trace* is the full journey of one :class:`CrayfishDataBatch` through
the pipeline: producer serialization, broker append, topic dwell, the
SPS engine's stages, serving internals, and the output append. Each
stage is a *span* — a named ``[start, end]`` interval in simulated time,
optionally nested under a parent span. The root span of every trace runs
from the batch's ``created_at`` to its completion timestamp, i.e. it is
exactly the record's measured end-to-end latency.

Tracing is strictly observational: recording a span never schedules a
simulation event, never draws from an RNG stream, and never charges
simulated time. A traced run therefore executes the *identical* event
sequence as an untraced one (the determinism regression test asserts
byte-identical latency statistics).

Memory at high input rates is bounded by head-based sampling: the
sampling decision is taken once, when the batch is created
(``sample_every``), and a hard ``max_traces`` cap stops admitting new
traces once reached — spans of unsampled records are never allocated.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.errors import ConfigError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simul import Environment


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """The trace identity carried on a sampled CrayfishDataBatch."""

    trace_id: int


@dataclasses.dataclass(frozen=True)
class TraceOptions:
    """User-facing tracing knobs (the runner builds the Tracer)."""

    #: Head-based sampling: trace every Nth batch (1 = every batch).
    sample_every: int = 1
    #: Hard cap on admitted traces; bounds memory at 30k ev/s.
    max_traces: int = 4096

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ConfigError(
                f"sample_every must be >= 1, got {self.sample_every}"
            )
        if self.max_traces < 1:
            raise ConfigError(f"max_traces must be >= 1, got {self.max_traces}")


class Span:
    """One named interval of a trace. ``end`` is None while open."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start", "end", "attrs")

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: int | None,
        name: str,
        start: float,
        end: float | None = None,
        attrs: dict | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end = end
        self.attrs = attrs if attrs is not None else {}

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.end:.6f}" if self.end is not None else "open"
        return (
            f"Span({self.name!r}, trace={self.trace_id}, "
            f"[{self.start:.6f}, {end}])"
        )


class NullTracer:
    """Tracing disabled: every operation is a no-op returning None.

    Instrumentation sites call the tracer unconditionally; with this
    singleton installed nothing is allocated and no state is touched.
    """

    enabled = False

    def make_context(self, batch_id: int, created_at: float) -> None:
        return None

    def context_of(self, obj: typing.Any) -> None:
        return None

    def begin(self, obj, name, parent=None, **attrs) -> None:
        return None

    def end(self, span, **attrs) -> None:
        return None

    def record(self, obj, name, start, end=None, parent=None, **attrs) -> None:
        return None

    def mark(self, obj, key) -> None:
        return None

    def lapse(self, obj, name, key, parent=None, **attrs) -> None:
        return None

    def close_root(self, obj, end_time=None) -> None:
        return None

    def trace_ids(self) -> tuple:
        return ()


#: The shared "tracing off" instance; components default to it.
NO_TRACE = NullTracer()


class Tracer:
    """Collects spans per trace, in simulated time.

    Accepts a ``CrayfishDataBatch`` (anything with a ``trace``
    attribute), a :class:`TraceContext`, or ``None`` wherever a trace
    subject is expected; unsampled subjects make every call a no-op, so
    call sites need no sampling checks.
    """

    enabled = True

    def __init__(
        self,
        env: "Environment",
        sample_every: int = 1,
        max_traces: int = 4096,
    ) -> None:
        options = TraceOptions(sample_every=sample_every, max_traces=max_traces)
        self.env = env
        self.sample_every = options.sample_every
        self.max_traces = options.max_traces
        #: Traces rejected by the max_traces cap (not by sample_every).
        self.dropped = 0
        self._traces: dict[int, list[Span]] = {}
        self._roots: dict[int, Span] = {}
        self._span_ids = itertools.count(1)
        self._marks: dict[tuple[int, str], float] = {}

    # -- admission -------------------------------------------------------

    def make_context(self, batch_id: int, created_at: float) -> TraceContext | None:
        """Head-based sampling decision for a new batch.

        Returns the context to carry on the batch, or None when the
        batch is unsampled or the trace budget is exhausted.
        """
        if batch_id % self.sample_every != 0:
            return None
        if len(self._traces) >= self.max_traces:
            self.dropped += 1
            return None
        root = Span(batch_id, next(self._span_ids), None, "record", start=created_at)
        self._traces[batch_id] = [root]
        self._roots[batch_id] = root
        return TraceContext(trace_id=batch_id)

    def context_of(self, obj: typing.Any) -> TraceContext | None:
        """Resolve a batch / context / None to a known TraceContext."""
        ctx = getattr(obj, "trace", obj)
        if isinstance(ctx, TraceContext) and ctx.trace_id in self._traces:
            return ctx
        return None

    # -- span lifecycle --------------------------------------------------

    def begin(
        self,
        obj: typing.Any,
        name: str,
        parent: Span | None = None,
        **attrs: typing.Any,
    ) -> Span | None:
        """Open a span now; returns None for unsampled subjects."""
        ctx = self.context_of(obj)
        if ctx is None:
            return None
        parent_id = parent.span_id if parent is not None else (
            self._roots[ctx.trace_id].span_id
        )
        span = Span(
            ctx.trace_id,
            next(self._span_ids),
            parent_id,
            name,
            start=self.env.now,
            attrs=dict(attrs) if attrs else None,
        )
        self._traces[ctx.trace_id].append(span)
        return span

    def end(self, span: Span | None, **attrs: typing.Any) -> None:
        """Close a span now (None-safe)."""
        if span is None:
            return
        span.end = self.env.now
        if attrs:
            span.attrs.update(attrs)

    def record(
        self,
        obj: typing.Any,
        name: str,
        start: float,
        end: float | None = None,
        parent: Span | None = None,
        **attrs: typing.Any,
    ) -> Span | None:
        """Record a retroactive, already-closed span (e.g. queue dwell)."""
        ctx = self.context_of(obj)
        if ctx is None:
            return None
        if end is None:
            end = self.env.now
        if end < start:
            raise ValueError(f"span {name!r}: end {end} before start {start}")
        parent_id = parent.span_id if parent is not None else (
            self._roots[ctx.trace_id].span_id
        )
        span = Span(
            ctx.trace_id,
            next(self._span_ids),
            parent_id,
            name,
            start=start,
            end=end,
            attrs=dict(attrs) if attrs else None,
        )
        self._traces[ctx.trace_id].append(span)
        return span

    # -- marks: measure waits across process boundaries ------------------

    def mark(self, obj: typing.Any, key: str) -> None:
        """Remember 'now' under ``key`` for a later :meth:`lapse`."""
        ctx = self.context_of(obj)
        if ctx is None:
            return
        self._marks[(ctx.trace_id, key)] = self.env.now

    def lapse(
        self,
        obj: typing.Any,
        name: str,
        key: str,
        parent: Span | None = None,
        **attrs: typing.Any,
    ) -> Span | None:
        """Record a span from the matching :meth:`mark` to now."""
        ctx = self.context_of(obj)
        if ctx is None:
            return None
        start = self._marks.pop((ctx.trace_id, key), None)
        if start is None:
            return None
        return self.record(ctx, name, start=start, parent=parent, **attrs)

    # -- root management -------------------------------------------------

    def close_root(self, obj: typing.Any, end_time: float | None = None) -> None:
        """Close a trace's root span at the record's completion time.

        Idempotent: under at-least-once replay the first completion wins
        (matching the metrics collector's duplicate accounting).
        """
        ctx = self.context_of(obj)
        if ctx is None:
            return
        root = self._roots[ctx.trace_id]
        if root.end is not None:
            return
        root.end = self.env.now if end_time is None else end_time

    # -- queries ---------------------------------------------------------

    def trace_ids(self) -> tuple[int, ...]:
        """All admitted trace ids, in admission order."""
        return tuple(self._traces)

    def finished_trace_ids(self) -> tuple[int, ...]:
        """Trace ids whose record completed (root span closed)."""
        return tuple(t for t, root in self._roots.items() if root.end is not None)

    def spans(self, trace_id: int) -> list[Span]:
        """All spans of one trace, root first, in recording order."""
        return list(self._traces[trace_id])

    def root(self, trace_id: int) -> Span:
        return self._roots[trace_id]

    @property
    def span_count(self) -> int:
        return sum(len(spans) for spans in self._traces.values())


def make_tracer(env: "Environment", trace: typing.Any) -> Tracer | NullTracer:
    """Resolve the runner's ``trace`` argument to a tracer instance.

    Accepts ``None`` (off), ``True`` (defaults), :class:`TraceOptions`,
    or a ready :class:`Tracer`.
    """
    if trace is None or trace is False:
        return NO_TRACE
    if trace is True:
        return Tracer(env)
    if isinstance(trace, TraceOptions):
        return Tracer(env, sample_every=trace.sample_every, max_traces=trace.max_traces)
    if isinstance(trace, (Tracer, NullTracer)):
        return trace
    raise ConfigError(f"cannot build a tracer from {trace!r}")
