"""Per-record distributed tracing with latency-breakdown attribution.

Crayfish (§3.3/§3.5) measures only end-to-end latency from outside the
SUT — it can say *who* wins but not *why*. This subsystem attributes
every millisecond: spans are opened and closed in simulated time along
the whole record path (producer serialization, broker append/dwell/
fetch, each SPS engine's stages, serving internals), an analysis layer
turns them into per-stage breakdown tables, critical paths, and
bottleneck rankings, and exporters emit Chrome ``trace_event`` JSON and
CSV. Tracing is off by default and, when off, provably changes nothing:
no simulation events, no RNG draws, no timing.
"""

from repro.tracing.analysis import (
    PathSegment,
    StageStat,
    UNTRACED,
    bottleneck,
    bottleneck_ranking,
    breakdown_table,
    critical_path,
    record_breakdown,
)
from repro.tracing.export import (
    chrome_trace,
    load_chrome_trace,
    save_chrome_trace,
    save_spans_csv,
    span_rows,
)
from repro.tracing.spans import (
    NO_TRACE,
    NullTracer,
    Span,
    TraceContext,
    TraceOptions,
    Tracer,
    make_tracer,
)

__all__ = [
    "NO_TRACE",
    "NullTracer",
    "PathSegment",
    "Span",
    "StageStat",
    "TraceContext",
    "TraceOptions",
    "Tracer",
    "UNTRACED",
    "bottleneck",
    "bottleneck_ranking",
    "breakdown_table",
    "chrome_trace",
    "critical_path",
    "load_chrome_trace",
    "make_tracer",
    "record_breakdown",
    "save_chrome_trace",
    "save_spans_csv",
    "span_rows",
]
