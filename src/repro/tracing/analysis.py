"""Latency-breakdown analysis over raw span data.

The central primitive is the *attribution sweep*: for one record, every
instant of the root span's window is attributed to exactly one stage —
the deepest (most specific) span covering it, ties broken towards the
most recently opened span, and instants no span covers fall to the
synthetic ``(untraced)`` stage. The per-record stage times therefore
tile the record's end-to-end latency exactly: their sum equals the root
span's duration up to float addition error, which is the invariant the
acceptance tests assert.

On top of the sweep sit aggregate views: per-stage breakdown tables
across all completed records, per-record critical-path extraction, and
a bottleneck ranking per configuration.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.tracing.spans import Span, Tracer

#: Stage charged for instants not covered by any recorded span.
UNTRACED = "(untraced)"


@dataclasses.dataclass(frozen=True)
class StageStat:
    """Aggregate cost of one stage across a set of records."""

    stage: str
    #: Summed attributed time over all records (seconds).
    total: float
    #: Mean attributed time per record (seconds; 0 for absent records).
    mean: float
    #: Fraction of summed end-to-end latency this stage accounts for.
    share: float
    #: Records in which the stage appeared.
    records: int


@dataclasses.dataclass(frozen=True)
class PathSegment:
    """One hop of a record's critical path."""

    stage: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def _span_depths(spans: typing.Sequence[Span]) -> dict[int, int]:
    """Depth of each span (root = 0) via parent-chain walking."""
    by_id = {span.span_id: span for span in spans}
    depths: dict[int, int] = {}

    def depth_of(span: Span) -> int:
        if span.span_id in depths:
            return depths[span.span_id]
        if span.parent_id is None or span.parent_id not in by_id:
            depths[span.span_id] = 0
        else:
            depths[span.span_id] = depth_of(by_id[span.parent_id]) + 1
        return depths[span.span_id]

    for span in spans:
        depth_of(span)
    return depths


def _attribution_segments(
    root: Span, spans: typing.Sequence[Span]
) -> list[PathSegment]:
    """The sweep: partition ``[root.start, root.end]`` into owned segments."""
    assert root.end is not None
    candidates = []
    for span in spans:
        if span is root or span.end is None:
            continue
        # Clip to the root window; spans entirely outside contribute nothing.
        start = max(span.start, root.start)
        end = min(span.end, root.end)
        if end < start:
            continue
        candidates.append((span, start, end))

    depths = _span_depths([root, *[span for span, __, __ in candidates]])
    boundaries = sorted({root.start, root.end}.union(
        *[{start, end} for __, start, end in candidates]
    ))
    segments: list[PathSegment] = []
    for left, right in zip(boundaries, boundaries[1:]):
        owner: Span | None = None
        owner_rank: tuple[int, float, int] | None = None
        for span, start, end in candidates:
            if start <= left and end >= right:
                rank = (depths[span.span_id], span.start, span.span_id)
                if owner_rank is None or rank > owner_rank:
                    owner, owner_rank = span, rank
        stage = owner.name if owner is not None else UNTRACED
        segments.append(PathSegment(stage=stage, start=left, end=right))
    return segments


def record_breakdown(tracer: Tracer, trace_id: int) -> dict[str, float]:
    """Per-stage attributed time for one completed record.

    Stage times tile the record's end-to-end latency: their sum equals
    the root span duration (float tolerance). Raises on open roots.
    """
    root = tracer.root(trace_id)
    if root.end is None:
        raise ValueError(f"trace {trace_id} has not completed")
    breakdown: dict[str, float] = {}
    for segment in _attribution_segments(root, tracer.spans(trace_id)):
        breakdown[segment.stage] = breakdown.get(segment.stage, 0.0) + segment.duration
    return breakdown


def critical_path(tracer: Tracer, trace_id: int) -> list[PathSegment]:
    """The record's timeline as an ordered stage sequence.

    Consecutive segments owned by the same stage are merged; zero-length
    segments are dropped. The result walks the record from creation to
    completion — the per-record critical path through the pipeline.
    """
    root = tracer.root(trace_id)
    if root.end is None:
        raise ValueError(f"trace {trace_id} has not completed")
    merged: list[PathSegment] = []
    for segment in _attribution_segments(root, tracer.spans(trace_id)):
        if segment.duration == 0.0:
            continue
        if merged and merged[-1].stage == segment.stage:
            merged[-1] = PathSegment(
                stage=segment.stage, start=merged[-1].start, end=segment.end
            )
        else:
            merged.append(segment)
    return merged


def breakdown_table(
    tracer: Tracer, cutoff: float = 0.0
) -> list[StageStat]:
    """Aggregate per-stage breakdown over completed records.

    ``cutoff`` discards records completing before it (warm-up discard,
    matching the metrics collector). Stages are ordered by total time,
    descending — the first row is the configuration's bottleneck.
    """
    totals: dict[str, float] = {}
    appearances: dict[str, int] = {}
    record_count = 0
    latency_sum = 0.0
    for trace_id in tracer.finished_trace_ids():
        root = tracer.root(trace_id)
        if root.end < cutoff:
            continue
        record_count += 1
        latency_sum += root.duration
        for stage, value in record_breakdown(tracer, trace_id).items():
            totals[stage] = totals.get(stage, 0.0) + value
            appearances[stage] = appearances.get(stage, 0) + 1
    if record_count == 0:
        return []
    stats = [
        StageStat(
            stage=stage,
            total=total,
            mean=total / record_count,
            share=(total / latency_sum) if latency_sum > 0 else 0.0,
            records=appearances[stage],
        )
        for stage, total in totals.items()
    ]
    stats.sort(key=lambda s: (-s.total, s.stage))
    return stats


def bottleneck_ranking(
    tracer: Tracer, cutoff: float = 0.0, top: int | None = None
) -> list[StageStat]:
    """Stages ranked by attributed time; ``top`` truncates the list."""
    ranking = breakdown_table(tracer, cutoff=cutoff)
    return ranking if top is None else ranking[:top]


def bottleneck(tracer: Tracer, cutoff: float = 0.0) -> str | None:
    """The single most expensive stage, or None without completed records."""
    ranking = breakdown_table(tracer, cutoff=cutoff)
    return ranking[0].stage if ranking else None


#: Node charged for span time carrying no ``node`` attribute (all of it,
#: in single-host runs; driver/client-side stages in clustered runs).
UNATTRIBUTED_NODE = "(unattributed)"


def node_breakdown(tracer: Tracer, cutoff: float = 0.0) -> dict[str, float]:
    """Summed span time per cluster node across completed records.

    Scale-out components (:mod:`repro.cluster`) tag their spans with a
    ``node`` attribute; this rolls raw span durations up by that tag so a
    clustered run shows where simulated time was spent. Unlike the
    attribution sweep above, concurrent spans both count — the result is
    *occupancy* per node, not a tiling of end-to-end latency.
    """
    totals: dict[str, float] = {}
    for trace_id in tracer.finished_trace_ids():
        root = tracer.root(trace_id)
        if root.end < cutoff:
            continue
        for span in tracer.spans(trace_id):
            if span is root or span.end is None:
                continue
            node = span.attrs.get("node", UNATTRIBUTED_NODE)
            totals[node] = totals.get(node, 0.0) + span.duration
    return dict(sorted(totals.items()))
