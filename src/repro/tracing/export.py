"""Trace exporters: Chrome ``trace_event`` JSON and flat CSV.

The Chrome format loads directly into ``chrome://tracing`` / Perfetto:
each record becomes one timeline row (``tid`` = trace id) with its spans
as complete ("X") events in microseconds. The CSV export is one span per
row for spreadsheet or pandas analysis.
"""

from __future__ import annotations

import csv
import json
import typing

from repro.tracing.spans import Tracer

_US = 1e6  # simulated seconds -> trace_event microseconds


def chrome_trace(tracer: Tracer) -> dict:
    """The trace as a Chrome ``trace_event`` JSON object."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": "crayfish"},
        }
    ]
    for trace_id in tracer.trace_ids():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": trace_id,
                "args": {"name": f"record {trace_id}"},
            }
        )
        for span in tracer.spans(trace_id):
            if span.end is None:
                continue  # records cut off by the horizon stay out
            event = {
                "name": span.name,
                "cat": "crayfish",
                "ph": "X",
                "ts": span.start * _US,
                "dur": span.duration * _US,
                "pid": 0,
                "tid": trace_id,
            }
            if span.attrs:
                event["args"] = dict(span.attrs)
            events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_chrome_trace(tracer: Tracer, path: str) -> None:
    """Write the Chrome-loadable trace JSON to ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(tracer), handle)


def span_rows(tracer: Tracer) -> list[dict]:
    """One flat dict per finished span (CSV/DataFrame-friendly)."""
    rows = []
    for trace_id in tracer.trace_ids():
        for span in tracer.spans(trace_id):
            if span.end is None:
                continue
            rows.append(
                {
                    "trace_id": trace_id,
                    "span_id": span.span_id,
                    "parent_id": "" if span.parent_id is None else span.parent_id,
                    "name": span.name,
                    "start": span.start,
                    "end": span.end,
                    "duration": span.duration,
                }
            )
    return rows


def save_spans_csv(tracer: Tracer, path: str) -> None:
    """Write every finished span as one CSV row."""
    fields = ["trace_id", "span_id", "parent_id", "name", "start", "end", "duration"]
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields)
        writer.writeheader()
        writer.writerows(span_rows(tracer))


def load_chrome_trace(path: str) -> dict:
    """Read back an exported trace (round-trip convenience)."""
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError(f"{path!r} is not a trace_event JSON file")
    return typing.cast(dict, data)
