"""Crayfish reproduction: ML inference benchmarking for stream processors.

This package reimplements, from scratch and on top of a deterministic
discrete-event simulation, the Crayfish benchmarking framework (EDBT 2024)
together with every substrate its evaluation depends on: a Kafka-like
message broker, four stream-processing engines, three embedded
interoperability libraries, three external serving frameworks, and a real
NumPy neural-network library providing the pre-trained models.

The public entry points are:

- :mod:`repro.core` -- the Crayfish framework (experiments, scenarios,
  metrics, reports).
- :mod:`repro.sps` -- stream-processor adapters (Flink, Kafka Streams,
  Spark Structured Streaming, Ray).
- :mod:`repro.serving` -- embedded and external model-serving tools.
- :mod:`repro.nn` -- the neural-network library and model zoo.
"""

from repro._version import __version__

__all__ = [
    "__version__",
    "ExperimentConfig",
    "WorkloadKind",
    "ExperimentRunner",
    "ExperimentResult",
    "run_experiment",
]

_LAZY = {
    "ExperimentConfig": ("repro.config", "ExperimentConfig"),
    "WorkloadKind": ("repro.config", "WorkloadKind"),
    "ExperimentRunner": ("repro.core.runner", "ExperimentRunner"),
    "ExperimentResult": ("repro.core.runner", "ExperimentResult"),
    "run_experiment": ("repro.core.runner", "run_experiment"),
}


def __getattr__(name: str):
    """Lazily resolve the top-level convenience exports (PEP 562)."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attr)
