"""The input workload producer component (§3.1, Fig. 3 step 1).

Two drive modes:

- :class:`PacedProducer` emits batches on a :class:`RateSchedule`; the
  *start* timestamp is taken before the record is written to the Kafka
  input topic, exactly as in the paper.
- :class:`SaturatingProducer` keeps a bounded backlog ahead of the SUT so
  the pipeline is never input-starved — the steady state of the paper's
  open-loop runs at above-sustainable rates, without simulating millions
  of discarded sends (see EXPERIMENTS.md on time scaling).
"""

from __future__ import annotations

import typing

from repro import calibration as cal
from repro.broker import BrokerCluster, Producer
from repro.core.batch import CrayfishDataBatch
from repro.core.generator import BatchFactory, RateSchedule
from repro.netsim import json_payload
from repro.simul import Environment
from repro.sps.gateways import DirectInput
from repro.tracing.spans import NO_TRACE


class InputProducerBase:
    """Shared plumbing: encode + deliver one batch."""

    def __init__(
        self,
        env: Environment,
        factory: BatchFactory,
        cluster: BrokerCluster | None = None,
        topic: str = "crayfish-input",
        direct: DirectInput | None = None,
        tracer: typing.Any = NO_TRACE,
        node: str | None = None,
    ) -> None:
        if (cluster is None) == (direct is None):
            raise ValueError("provide exactly one of cluster/direct")
        self.env = env
        self.factory = factory
        self.topic = topic
        self.direct = direct
        self.tracer = tracer
        # ``node`` places the producer on a (simulated) machine in
        # scale-out runs — the external driver host by default there.
        self._producer = (
            Producer(env, cluster, node=node) if cluster is not None else None
        )
        self.batches_produced = 0

    def start(self) -> None:
        self.env.process(self._run())

    def _run(self) -> typing.Generator:
        raise NotImplementedError

    def _generation_cost(self, batch: CrayfishDataBatch) -> float:
        return batch.input_values * cal.GENERATOR_PER_VALUE

    def _deliver(self, batch: CrayfishDataBatch) -> typing.Generator:
        """Coroutine: encode on the producer VM and write to the topic."""
        if self.direct is not None:
            self.direct.push(batch)
            self.batches_produced += 1
            return
        payload = json_payload(batch.input_values)
        payload_bytes = payload.nbytes
        span = self.tracer.begin(batch, "producer.serialize")
        yield self.env.service_timeout(payload.encode_cost)
        self.tracer.end(span)
        yield from self._producer.send(
            self.topic,
            value=batch,
            nbytes=payload_bytes,
            timestamp=batch.created_at,
        )
        self.batches_produced += 1


class PacedProducer(InputProducerBase):
    """Emits one batch per ``1/rate`` tick; sends are asynchronous so a
    slow broker path never distorts the offered rate."""

    def __init__(self, *args: typing.Any, schedule: RateSchedule, **kwargs: typing.Any) -> None:
        super().__init__(*args, **kwargs)
        self.schedule = schedule

    def _run(self) -> typing.Generator:
        while True:
            now = self.env.now
            rate = self.schedule.rate_at(now)
            batch = self.factory.make(created_at=now)
            span = self.tracer.begin(batch, "producer.generate")
            yield self.env.service_timeout(self._generation_cost(batch))
            self.tracer.end(span)
            self.env.process(self._deliver(batch))
            interval = 1.0 / rate
            elapsed = self.env.now - now
            if interval > elapsed:
                yield self.env.service_timeout(interval - elapsed)


class SaturatingProducer(InputProducerBase):
    """Keeps ``backlog_target`` unconsumed batches ahead of the SUT.

    ``completed`` is a callable returning how many batches the SUT has
    finished; the producer tops the difference up every ``poll_interval``.
    """

    def __init__(
        self,
        *args: typing.Any,
        completed: typing.Callable[[], int],
        backlog_target: int = 512,
        poll_interval: float = 0.002,
        **kwargs: typing.Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        if backlog_target < 1:
            raise ValueError("backlog_target must be >= 1")
        self.completed = completed
        self.backlog_target = backlog_target
        self.poll_interval = poll_interval
        self.batches_spawned = 0

    def _run(self) -> typing.Generator:
        while True:
            deficit = self.backlog_target - (
                self.batches_spawned - self.completed()
            )
            for __ in range(max(deficit, 0)):
                batch = self.factory.make(created_at=self.env.now)
                self.batches_spawned += 1
                # Deliveries run concurrently: the 4-vCPU producer VM and
                # the broker cluster are sized so generation is never the
                # bottleneck (§3.5's Kafka check).
                self.env.process(self._deliver(batch))
            yield self.env.service_timeout(self.poll_interval)
