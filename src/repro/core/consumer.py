"""The output consumer component (§3.1, Fig. 3 steps 5-6).

Reads scored batches from the Kafka output topic and extracts per-batch
end-to-end latency from the records' LogAppendTime. The experiment runner
normally collects the same numbers through the sink's completion callback
(identical timestamps, fewer simulated events); this component exists for
architectural fidelity and is exercised by the integration tests to prove
the equivalence.
"""

from __future__ import annotations

import typing

from repro.broker import BrokerCluster, Consumer
from repro.core.batch import CrayfishDataBatch
from repro.core.metrics import Completion
from repro.simul import Environment


class OutputConsumer:
    """Drains the output topic and logs measurements."""

    def __init__(
        self,
        env: Environment,
        cluster: BrokerCluster,
        topic: str = "crayfish-output",
    ) -> None:
        self.env = env
        self._consumer = Consumer(env, cluster, topic)
        self.completions: list[Completion] = []

    def start(self) -> None:
        self.env.process(self._run())

    def _run(self) -> typing.Generator:
        while True:
            records = yield from self._consumer.poll()
            for record in records:
                batch: CrayfishDataBatch = record.value
                self.completions.append(
                    Completion(
                        batch_id=batch.batch_id,
                        created_at=record.timestamp,
                        end_time=record.log_append_time,
                    )
                )

    def latencies(self) -> list[float]:
        return [c.latency for c in self.completions]
