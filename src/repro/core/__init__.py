"""The Crayfish benchmarking framework (§3).

Components mirror Figure 1: an input workload producer, the data
processor (SPS + serving tool, built by :mod:`repro.sps` and
:mod:`repro.serving`), an output consumer, and a metrics analyzer. The
:class:`~repro.core.runner.ExperimentRunner` wires them around the
simulated Kafka broker and executes one configuration.

Exports resolve lazily (PEP 562): engine modules import
``repro.core.batch`` while ``repro.core.runner`` imports the engine
registry, so eager re-exports here would create an import cycle.
"""

import importlib

__all__ = [
    "CrayfishDataBatch",
    "LatencyStats",
    "MetricsCollector",
    "ExperimentResult",
    "ExperimentRunner",
    "run_experiment",
]

_LAZY = {
    "CrayfishDataBatch": ("repro.core.batch", "CrayfishDataBatch"),
    "LatencyStats": ("repro.core.metrics", "LatencyStats"),
    "MetricsCollector": ("repro.core.metrics", "MetricsCollector"),
    "ExperimentResult": ("repro.core.runner", "ExperimentResult"),
    "ExperimentRunner": ("repro.core.runner", "ExperimentRunner"),
    "run_experiment": ("repro.core.runner", "run_experiment"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}") from None
    module = importlib.import_module(module_name)
    return getattr(module, attr)
