"""Plain-text reporting in the shape of the paper's tables and figures.

Benchmarks print a ``paper`` column next to the ``measured`` column so
EXPERIMENTS.md can be regenerated straight from benchmark output.
"""

from __future__ import annotations

import typing


def format_table(
    headers: typing.Sequence[str],
    rows: typing.Sequence[typing.Sequence[object]],
    title: str | None = None,
) -> str:
    """A fixed-width text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_rate(events_per_second: float) -> str:
    """Throughput with the paper's precision (events/s)."""
    if events_per_second >= 100:
        return f"{events_per_second:,.0f}"
    return f"{events_per_second:.2f}"


def format_ms(seconds: float) -> str:
    """Latency in milliseconds."""
    return f"{seconds * 1e3:.2f}"


def ratio_note(measured: float, paper: float) -> str:
    """How far a measurement is from the paper's absolute value."""
    if paper <= 0:
        return "n/a"
    return f"{measured / paper:.2f}x"


def format_breakdown(tracer: typing.Any, title: str | None = None) -> str:
    """The per-stage latency breakdown of a traced run, as a text table.

    One row per pipeline stage, sorted by total attributed time: mean
    per-record milliseconds, share of end-to-end latency, and how many
    sampled records passed through the stage. The shares sum to 1.0 —
    the attribution tiles each record's latency exactly.
    """
    from repro.tracing.analysis import breakdown_table

    stats = breakdown_table(tracer)
    rows = [
        (
            stat.stage,
            format_ms(stat.mean),
            f"{stat.share * 100:.1f}%",
            stat.records,
        )
        for stat in stats
    ]
    return format_table(
        ["stage", "mean ms", "share", "records"],
        rows,
        title=title or "Latency breakdown (per traced record)",
    )
