"""Persisting experiment results (the metrics-analyzer output, Fig. 1).

JSON for single results and result sets; JSONL for matrix runs; CSV for
spreadsheet-friendly sweep exports. Loading returns plain dictionaries —
results are records, not live objects — except for
:func:`result_from_record`, which rebuilds a live
:class:`~repro.core.runner.ExperimentResult` from its full record (the
content-addressed cache in :mod:`repro.matrix` depends on this
round-trip being lossless).
"""

from __future__ import annotations

import csv
import dataclasses
import json
import os
import typing

from repro.config import config_from_dict
from repro.core.metrics import LatencyStats
from repro.core.runner import ExperimentResult


def result_to_dict(result: ExperimentResult) -> dict:
    """A JSON-serializable record of one experiment.

    The config block is the *canonical* dict (enums as values, tuples as
    lists, sorted keys), so an in-memory record compares equal to the
    same record after a JSON round-trip — the matrix cache relies on
    replayed records being indistinguishable from fresh ones.
    """
    return {
        "config": result.config.canonical_dict(),
        "throughput": result.throughput,
        "latency": dataclasses.asdict(result.latency),
        "completed": result.completed,
        "produced": result.produced,
        "duplicates": result.duplicates,
        "inference_requests": result.inference_requests,
        "measure_start": result.measure_start,
        "measure_end": result.measure_end,
        "faults": (
            dataclasses.asdict(result.faults)
            if result.faults is not None
            else None
        ),
    }


def result_record(
    result: ExperimentResult, seed: int | None = None
) -> dict:
    """The *full* serializable record of one run.

    Unlike :func:`result_to_dict` this keeps the latency/backlog series,
    so a record round-trips back into an equivalent
    :class:`ExperimentResult` via :func:`result_from_record`. ``seed``
    stores the run seed alongside (``runner.run(seed=...)`` overrides
    the config seed without recording it on the result).
    """
    record = result_to_dict(result)
    record["series"] = [[end, latency] for end, latency in result.series]
    record["backlog_series"] = [
        [when, backlog] for when, backlog in result.backlog_series
    ]
    if seed is not None:
        record["seed"] = seed
    return record


def result_from_record(record: dict) -> ExperimentResult:
    """Rebuild a live :class:`ExperimentResult` from its full record.

    Lossless inverse of :func:`result_record` (JSON represents floats by
    shortest round-trip repr, so every statistic survives exactly).
    Trace/telemetry handles are run-scoped live objects and are never
    serialized; replayed results carry None there.
    """
    faults = None
    if record.get("faults") is not None:
        from repro.faults.summary import FaultSummary

        faults = FaultSummary(**record["faults"])
    return ExperimentResult(
        config=config_from_dict(record["config"]),
        throughput=record["throughput"],
        latency=LatencyStats(**record["latency"]),
        completed=record["completed"],
        produced=record["produced"],
        measure_start=record["measure_start"],
        measure_end=record["measure_end"],
        series=tuple(
            (end, latency) for end, latency in record.get("series", [])
        ),
        duplicates=record["duplicates"],
        inference_requests=record["inference_requests"],
        backlog_series=tuple(
            (when, backlog)
            for when, backlog in record.get("backlog_series", [])
        ),
        faults=faults,
    )


def save_results(results: typing.Sequence[ExperimentResult], path: str) -> None:
    """Write results (without the full latency series) as JSON."""
    with open(path, "w") as handle:
        json.dump([result_to_dict(r) for r in results], handle, indent=2)


def load_results(path: str) -> list[dict]:
    with open(path) as handle:
        records = json.load(handle)
    if not isinstance(records, list):
        raise ValueError(f"{path!r} does not contain a result list")
    return records


def save_records_jsonl(records: typing.Sequence[dict], path: str) -> None:
    """Write result records as JSON Lines, one canonical line per record.

    Lines are serialized with sorted keys and compact separators, so the
    bytes depend only on record *content* — a cache-replayed matrix and
    a cold one export identically, as do ``--jobs 1`` and ``--jobs N``.
    """
    with open(path, "w") as handle:
        for record in records:
            handle.write(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
            )
            handle.write("\n")


def meta_sidecar_path(path: str) -> str:
    """The metadata sidecar next to an export (``x.jsonl`` → ``x.meta.json``)."""
    root, __ = os.path.splitext(path)
    return root + ".meta.json"


def save_run_meta(path: str, meta: dict) -> str:
    """Write execution metadata as the sidecar of the export at ``path``.

    Cache statistics, job counts, and other run-of-the-run facts must
    not live in the record lines — a cache-warm matrix and a cold one
    export byte-identical records but different cache traffic — so they
    go in a sibling ``.meta.json``. Returns the sidecar path.
    """
    sidecar = meta_sidecar_path(path)
    with open(sidecar, "w") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return sidecar


def load_run_meta(path: str) -> dict:
    """Read the metadata sidecar for the export at ``path``."""
    with open(meta_sidecar_path(path)) as handle:
        meta = json.load(handle)
    if not isinstance(meta, dict):
        raise ValueError(f"{path!r} sidecar does not contain metadata")
    return meta


def load_records_jsonl(path: str) -> list[dict]:
    """Read a JSONL export back as a list of record dictionaries."""
    records = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path!r} line {line_number} is not a result record"
                )
            records.append(record)
    return records


def save_results_csv(
    results: typing.Sequence[ExperimentResult], path: str
) -> None:
    """Flat CSV: one row per result, config columns prefixed ``config.``."""
    if not results:
        raise ValueError("no results to save")
    rows = []
    for result in results:
        record = result_to_dict(result)
        row: dict = {}
        for key, value in record["config"].items():
            row[f"config.{key}"] = value
        row["throughput"] = record["throughput"]
        for key, value in record["latency"].items():
            row[f"latency.{key}"] = value
        for key in ("completed", "produced", "duplicates", "inference_requests"):
            row[key] = record[key]
        rows.append(row)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)
