"""Persisting experiment results (the metrics-analyzer output, Fig. 1).

JSON for single results and result sets; CSV for spreadsheet-friendly
sweep exports. Loading returns plain dictionaries — results are records,
not live objects.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import typing

from repro.core.runner import ExperimentResult


def result_to_dict(result: ExperimentResult) -> dict:
    """A JSON-serializable record of one experiment."""
    config = dataclasses.asdict(result.config)
    config["workload"] = result.config.workload.value
    return {
        "config": config,
        "throughput": result.throughput,
        "latency": dataclasses.asdict(result.latency),
        "completed": result.completed,
        "produced": result.produced,
        "duplicates": result.duplicates,
        "inference_requests": result.inference_requests,
        "measure_start": result.measure_start,
        "measure_end": result.measure_end,
        "faults": (
            dataclasses.asdict(result.faults)
            if result.faults is not None
            else None
        ),
    }


def save_results(results: typing.Sequence[ExperimentResult], path: str) -> None:
    """Write results (without the full latency series) as JSON."""
    with open(path, "w") as handle:
        json.dump([result_to_dict(r) for r in results], handle, indent=2)


def load_results(path: str) -> list[dict]:
    with open(path) as handle:
        records = json.load(handle)
    if not isinstance(records, list):
        raise ValueError(f"{path!r} does not contain a result list")
    return records


def save_results_csv(
    results: typing.Sequence[ExperimentResult], path: str
) -> None:
    """Flat CSV: one row per result, config columns prefixed ``config.``."""
    if not results:
        raise ValueError("no results to save")
    rows = []
    for result in results:
        record = result_to_dict(result)
        row: dict = {}
        for key, value in record["config"].items():
            row[f"config.{key}"] = value
        row["throughput"] = record["throughput"]
        for key, value in record["latency"].items():
            row[f"latency.{key}"] = value
        for key in ("completed", "produced", "duplicates", "inference_requests"):
            row[key] = record[key]
        rows.append(row)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)
