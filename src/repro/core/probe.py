"""Pipeline probes: time series of operational state during a run.

The metrics analyzer reports end-to-end outcomes; probes watch the
pipeline's internals while it runs — broker backlog (consumer lag by
proxy), completion rates — which is how the burst experiments *show*
queues building and draining rather than inferring them from latency.
"""

from __future__ import annotations

import typing

from repro.broker import BrokerCluster
from repro.simul import Environment


class BacklogProbe:
    """Samples a topic's unconsumed backlog every ``interval`` seconds.

    Backlog here = records appended minus batches completed (reported by
    the caller through ``completed``), i.e. work somewhere inside the
    SUT or queued in front of it.
    """

    def __init__(
        self,
        env: Environment,
        cluster: BrokerCluster,
        topic: str,
        completed: typing.Callable[[], int],
        interval: float = 0.1,
        horizon: float | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.env = env
        self.cluster = cluster
        self.topic = topic
        self.completed = completed
        self.interval = interval
        self.horizon = horizon
        self.samples: list[tuple[float, int]] = []

    def start(self) -> None:
        self.env.process(self._run())

    def _run(self) -> typing.Generator:
        while self.horizon is None or self.env.now < self.horizon:
            yield self.env.service_timeout(self.interval)
            backlog = self.cluster.topic(self.topic).total_records() - self.completed()
            self.samples.append((self.env.now, max(backlog, 0)))

    def peak(self) -> int:
        return max((backlog for __, backlog in self.samples), default=0)

    def series(self) -> list[tuple[float, float]]:
        return [(t, float(b)) for t, b in self.samples]
