"""ASCII line charts for figure-style benchmark output.

The paper's figures are curves; the benchmarks reproduce their *shapes*,
so the reports render them as terminal charts — one series per labelled
line, log-or-linear y axis — alongside the numeric tables.
"""

from __future__ import annotations

import math
import typing

Series = typing.Sequence[tuple[float, float]]


def _format_value(value: float) -> str:
    if value >= 1000:
        return f"{value / 1000:.1f}k"
    if value >= 10:
        return f"{value:.0f}"
    return f"{value:.2f}"


def render_chart(
    series: dict[str, Series],
    title: str = "",
    width: int = 60,
    height: int = 16,
    log_y: bool = False,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render labelled (x, y) series as an ASCII chart.

    Each series gets a distinct marker; points are plotted on a
    ``width`` x ``height`` grid with min/max axis annotations.
    """
    if not series:
        raise ValueError("no series to plot")
    markers = "ox*+#@%&"
    points = [
        (x, y) for values in series.values() for x, y in values
    ]
    if not points:
        raise ValueError("series contain no points")
    xs = [x for x, __ in points]
    ys = [y for __, y in points]
    if log_y and min(ys) <= 0:
        raise ValueError("log_y needs positive values")

    def transform_y(y: float) -> float:
        return math.log10(y) if log_y else y

    x_low, x_high = min(xs), max(xs)
    y_low, y_high = transform_y(min(ys)), transform_y(max(ys))
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for __ in range(height)]
    for (name, values), marker in zip(series.items(), markers):
        for x, y in values:
            col = round((x - x_low) / x_span * (width - 1))
            row = round((transform_y(y) - y_low) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = _format_value(max(ys))
    bottom_label = _format_value(min(ys))
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(label_width)
        elif i == height - 1:
            prefix = bottom_label.rjust(label_width)
        elif i == height // 2 and y_label:
            prefix = y_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = f"{' ' * label_width} +{'-' * width}"
    lines.append(axis)
    x_axis = (
        f"{' ' * label_width}  {_format_value(x_low)}"
        f"{x_label.center(width - 12)}{_format_value(x_high)}"
    )
    lines.append(x_axis)
    legend = "   ".join(
        f"{marker}={name}" for (name, __), marker in zip(series.items(), markers)
    )
    lines.append(f"{' ' * label_width}  [{legend}]")
    return "\n".join(lines)
