"""The CrayfishDataBatch: the benchmark's unit of computation (§3.1).

A batch carries ``points`` data points of a fixed shape plus the creation
timestamp used for end-to-end latency. Stream processors treat one batch
as a single event (producer-level batching, §3.5).
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ConfigError
from repro.netsim import json_payload
from repro.tracing.spans import TraceContext


@dataclasses.dataclass(frozen=True)
class CrayfishDataBatch:
    """One scoring request travelling through the pipeline."""

    #: Monotonically increasing id assigned by the input producer.
    batch_id: int
    #: Producer-local creation time — the *start* timestamp (§3.3 step 1).
    created_at: float
    #: Number of data points in the batch (``bsz``).
    points: int
    #: Shape of one data point (``isz``).
    point_shape: tuple[int, ...]
    #: Trace context when this record is head-sampled for tracing;
    #: None (the default) means untraced — the zero-overhead path.
    trace: TraceContext | None = None

    def __post_init__(self) -> None:
        if self.points < 1:
            raise ConfigError(f"batch needs >= 1 point, got {self.points}")
        if not self.point_shape or any(d < 1 for d in self.point_shape):
            raise ConfigError(f"invalid point shape {self.point_shape}")

    @property
    def values_per_point(self) -> int:
        return int(math.prod(self.point_shape))

    @property
    def input_values(self) -> int:
        """Total scalar values carried."""
        return self.points * self.values_per_point

    def input_json_bytes(self) -> float:
        """Wire size of the batch as Crayfish's JSON encoding."""
        return json_payload(self.input_values).nbytes
