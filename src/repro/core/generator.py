"""Synthetic workload generation: rate schedules and batch factories.

The input producer (§3.1) generates tensor-like data of user-defined size
and shape at a constant rate or with periodic bursts (Table 1). Data
*content* is irrelevant to inference latency (§4.1), so the simulated
pipeline carries batch descriptors; the real-array path for applications
lives in :mod:`repro.nn`.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.core.batch import CrayfishDataBatch
from repro.errors import ConfigError
from repro.tracing.spans import NO_TRACE


class RateSchedule:
    """Offered input rate (events/s) as a function of simulated time."""

    def rate_at(self, time: float) -> float:
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class ConstantRate(RateSchedule):
    """The open/closed-loop schedules: a fixed ``ir``."""

    events_per_second: float

    def __post_init__(self) -> None:
        if self.events_per_second <= 0:
            raise ConfigError(f"rate must be positive, got {self.events_per_second}")

    def rate_at(self, time: float) -> float:
        return self.events_per_second


@dataclasses.dataclass(frozen=True)
class PeriodicBursts(RateSchedule):
    """§4.1's bursty schedule: ``high_rate`` for ``bd`` seconds out of
    every ``tbb + bd`` cycle, ``low_rate`` otherwise. The paper drives
    bursts at 110% of sustainable throughput and valleys at 70%."""

    low_rate: float
    high_rate: float
    burst_duration: float  # bd
    time_between_bursts: float  # tbb

    def __post_init__(self) -> None:
        if self.low_rate <= 0 or self.high_rate <= 0:
            raise ConfigError("burst rates must be positive")
        if self.burst_duration <= 0 or self.time_between_bursts <= 0:
            raise ConfigError("bd and tbb must be positive")

    @property
    def cycle(self) -> float:
        return self.time_between_bursts + self.burst_duration

    def in_burst(self, time: float) -> bool:
        return (time % self.cycle) >= self.time_between_bursts

    def rate_at(self, time: float) -> float:
        return self.high_rate if self.in_burst(time) else self.low_rate

    def burst_windows(self, horizon: float) -> list[tuple[float, float]]:
        """(start, end) of every burst beginning before ``horizon``."""
        windows = []
        start = self.time_between_bursts
        while start < horizon:
            windows.append((start, start + self.burst_duration))
            start += self.cycle
        return windows


@dataclasses.dataclass(frozen=True)
class TraceSchedule(RateSchedule):
    """Replay a recorded rate trace: piecewise-constant ``(time, rate)``
    steps, holding the last rate forever (and cycling if ``loop``).

    Lets Crayfish drive the SUT with production traffic shapes beyond
    the paper's constant/bursty generators.
    """

    steps: tuple[tuple[float, float], ...]
    loop: bool = False

    def __post_init__(self) -> None:
        if not self.steps:
            raise ConfigError("trace needs at least one (time, rate) step")
        times = [t for t, __ in self.steps]
        if times[0] != 0.0:
            raise ConfigError("trace must start at time 0")
        if times != sorted(times) or len(set(times)) != len(times):
            raise ConfigError("trace times must be strictly increasing")
        if any(rate <= 0 for __, rate in self.steps):
            raise ConfigError("trace rates must be positive")

    @property
    def span(self) -> float:
        return self.steps[-1][0]

    def rate_at(self, time: float) -> float:
        if self.loop and self.span > 0:
            time = time % self.span if time > self.span else time
        current = self.steps[0][1]
        for step_time, rate in self.steps:
            if step_time <= time:
                current = rate
            else:
                break
        return current


class BatchFactory:
    """Produces CrayfishDataBatch descriptors with consecutive ids.

    When a tracer is attached, the head-based sampling decision is taken
    here, at creation: sampled batches carry a trace context for every
    downstream component to attach spans to.
    """

    def __init__(
        self,
        points: int,
        point_shape: typing.Sequence[int],
        tracer: typing.Any = NO_TRACE,
    ) -> None:
        if points < 1:
            raise ConfigError(f"points must be >= 1, got {points}")
        self.points = points
        self.point_shape = tuple(int(d) for d in point_shape)
        if not self.point_shape or any(d < 1 for d in self.point_shape):
            raise ConfigError(f"invalid point shape {self.point_shape}")
        self.tracer = tracer
        self._ids = itertools.count()

    def make(self, created_at: float) -> CrayfishDataBatch:
        batch_id = next(self._ids)
        return CrayfishDataBatch(
            batch_id=batch_id,
            created_at=created_at,
            points=self.points,
            point_shape=self.point_shape,
            trace=self.tracer.make_context(batch_id, created_at),
        )
