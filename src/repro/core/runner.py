"""The experiment runner: wires components and executes one benchmark.

Assembles, per :class:`~repro.config.ExperimentConfig`: the broker cluster
with its input/output topics (or the direct gateways of the standalone
mode), the input producer, the data processor (SPS + serving tool), and
the metrics collector — then runs the simulation and summarizes.
"""

from __future__ import annotations

import dataclasses
import typing

from repro import calibration as cal
from repro.broker import BrokerCluster
from repro.config import ExperimentConfig, WorkloadKind
from repro.core.generator import BatchFactory, ConstantRate, PeriodicBursts, RateSchedule
from repro.core.metrics import LatencyStats, MetricsCollector
from repro.core.producer import InputProducerBase, PacedProducer, SaturatingProducer
from repro.errors import ConfigError
from repro.metrics import MetricsOptions, Scraper, Telemetry, make_registry
from repro.nn.zoo import model_info
from repro.serving import create_serving_tool
from repro.simul import Environment, RandomStreams
from repro.sps import create_data_processor
from repro.sps.gateways import BrokerInput, BrokerOutput, DirectInput, DirectOutput
from repro.tracing.spans import NullTracer, Tracer, make_tracer

if typing.TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.faults.summary import FaultSummary

INPUT_TOPIC = "crayfish-input"
OUTPUT_TOPIC = "crayfish-output"

#: Backlog kept ahead of the SUT by the saturating producer. Spark drains
#: up to SPARK_MAX_BATCH_EVENTS per trigger, so it needs deeper backlog.
_SATURATION_BACKLOG = {"spark_ss": int(cal.SPARK_MAX_BATCH_EVENTS * 1.6)}
_DEFAULT_BACKLOG = 512


@dataclasses.dataclass(frozen=True)
class ExperimentResult:
    """Everything one run produced."""

    config: ExperimentConfig
    #: Completed events per second over the measured (post-warmup) window.
    throughput: float
    #: Latency statistics over the measured window.
    latency: LatencyStats
    #: Batches completed in total (including warm-up).
    completed: int
    #: Batches written to the input topic in total.
    produced: int
    #: Simulated time when measurement started (end of warm-up).
    measure_start: float
    #: Simulated time when the run stopped.
    measure_end: float
    #: (end_time, latency) samples over the whole run, for burst analysis.
    series: tuple[tuple[float, float], ...]
    #: Batches delivered downstream more than once (failure replays under
    #: at-least-once; always 0 otherwise).
    duplicates: int = 0
    #: Scoring calls the serving tool actually served — exceeds distinct
    #: completions when failures replay inference requests.
    inference_requests: int = 0
    #: (time, unconsumed backlog) samples when a backlog probe was
    #: requested; empty otherwise.
    backlog_series: tuple[tuple[float, float], ...] = ()
    #: The per-record tracer, when the run was started with tracing on
    #: (``run(trace=...)``); None otherwise. Feed it to
    #: :mod:`repro.tracing.analysis` / :mod:`repro.tracing.export`.
    trace: "Tracer | None" = None
    #: Scraped whole-system telemetry, when the run was started with
    #: metrics on (``run(metrics=...)``); None otherwise. Feed it to
    #: :mod:`repro.metrics.export` / :mod:`repro.metrics.dashboard`.
    telemetry: "Telemetry | None" = None
    #: Fault-injection and resilience tallies, when the run had a fault
    #: plan, a resilience policy, or checkpoint recovery; None otherwise.
    faults: "FaultSummary | None" = None

    @property
    def label(self) -> str:
        return self.config.label()


class ExperimentRunner:
    """Builds and executes one experiment configuration."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config

    # -- assembly ----------------------------------------------------------

    def _schedule(self, seed: int) -> RateSchedule | None:
        config = self.config
        if config.population is not None:
            from repro.cluster.workload import PopulationWorkload

            return PopulationWorkload(config.population, seed=seed).schedule()
        if config.workload is WorkloadKind.PERIODIC_BURSTS:
            # §4.1: 110% of sustainable throughput in bursts, 70% between.
            return PeriodicBursts(
                low_rate=0.7 * config.ir,
                high_rate=1.1 * config.ir,
                burst_duration=config.bd,
                time_between_bursts=config.tbb,
            )
        if config.ir is None:
            return None  # saturating open loop
        return ConstantRate(config.ir)

    def _point_shape(self) -> tuple[int, ...]:
        if self.config.isz is not None:
            return self.config.isz
        return model_info(self.config.model).input_shape

    def _scoring_parallelism(self) -> int:
        if self.config.operator_parallelism is not None:
            return self.config.operator_parallelism[1]
        return self._engine_parallelism()

    def _engine_parallelism(self) -> int:
        """Task slots the engine deploys: ``mp`` on one host, the summed
        per-node slots across a cluster."""
        if self.config.cluster is None:
            return self.config.mp
        from repro.cluster.runtime import total_parallelism

        return total_parallelism(self.config)

    def _fault_tolerance(self):
        """The engine's fault-tolerance plan, when checkpointing is on."""
        if not self.config.fault_tolerant:
            return None
        from repro.sps.flink.fault_tolerance import FaultToleranceConfig

        return FaultToleranceConfig(
            checkpoint_interval=self.config.checkpoint_interval,
            guarantee=self.config.delivery_guarantee,
            failure_times=self.config.failure_times,
            recovery_time=self.config.recovery_time,
        )

    def _serving_name(self) -> str:
        """Ray cannot reach TF-Serving/TorchServe natively: the paper
        substitutes Ray Serve for any external tool on Ray (Fig. 10/11
        footnote: "not using TensorFlow Serving, but simulating it using
        Ray Serve")."""
        from repro.config import is_embedded

        if self.config.sps == "ray" and not is_embedded(self.config.serving):
            return "ray_serve"
        return self.config.serving

    def run(
        self,
        seed: int | None = None,
        backlog_probe_interval: float | None = None,
        trace: typing.Any = None,
        metrics: typing.Any = None,
    ) -> ExperimentResult:
        """Execute the experiment; ``seed`` overrides the config seed.

        ``backlog_probe_interval`` additionally samples the input topic's
        unconsumed backlog at that period (broker mode only).

        ``trace`` turns on per-record tracing: ``True`` for defaults, a
        :class:`~repro.tracing.spans.TraceOptions` for sampling knobs.

        ``metrics`` turns on whole-system telemetry: ``True`` for
        defaults, a :class:`~repro.metrics.MetricsOptions` for the scrape
        interval. Both are observational — they never change the event
        sequence, so instrumented results are identical to plain ones.
        """
        config = self.config
        env = Environment()
        tracer = make_tracer(env, trace)
        registry = make_registry(env, metrics)
        run_seed = config.seed if seed is None else seed
        rng = RandomStreams(run_seed)
        # Failure injection can legitimately replay batches to the sink.
        collector = MetricsCollector(env, strict=not config.fault_tolerant)

        # Scale-out: topology + placement, derived once per run.
        scale_out = None
        if config.cluster is not None:
            from repro.cluster.runtime import ClusterRuntime

            scale_out = ClusterRuntime(
                env, config, serving_name=self._serving_name(), metrics=registry
            )

        # Transport: Kafka (default) or direct in-process (Fig. 13).
        if config.use_broker:
            cluster = BrokerCluster(
                env,
                tracer=tracer,
                metrics=registry,
                placement=scale_out.placement if scale_out is not None else None,
            )
            cluster.create_topic(INPUT_TOPIC, config.partitions)
            cluster.create_topic(OUTPUT_TOPIC, config.partitions)
            input_gateway: typing.Any = BrokerInput(
                env,
                cluster,
                INPUT_TOPIC,
                node_of_member=(
                    scale_out.node_of_task if scale_out is not None else None
                ),
            )
            output_gateway: typing.Any = BrokerOutput(env, cluster, OUTPUT_TOPIC)
            producer_kwargs = {"cluster": cluster, "topic": INPUT_TOPIC}
            if scale_out is not None:
                # The workload generator runs outside the cluster, like
                # the paper's dedicated input-producer VM.
                producer_kwargs["node"] = scale_out.driver_node
        else:
            input_gateway = DirectInput(env)
            output_gateway = DirectOutput(env)
            producer_kwargs = {"direct": input_gateway}

        protocol = (
            # Ray substitutes Ray Serve (HTTP-only) for external tools,
            # so a grpc/rest preference does not apply there.
            config.protocol
            if self._serving_name() == config.serving
            else None
        )
        tool = None
        if scale_out is not None:
            tool = scale_out.build_serving(
                config.model,
                gpu=config.gpu,
                rng=rng,
                server_workers=config.server_workers,
                protocol=protocol,
            )
        if tool is None:
            tool = create_serving_tool(
                self._serving_name(),
                env,
                config.model,
                mp=self._scoring_parallelism(),
                gpu=config.gpu,
                rng=rng,
                server_workers=config.server_workers,
                protocol=protocol,
            )
        tool.tracer = tracer
        # Metrics install before batching/autoscaling: those layers pick
        # up the registry from ``tool.metrics`` when wiring their own
        # instruments.
        tool.install_metrics(registry)
        if config.adaptive_batching is not None:
            from repro.serving.external.batching import (
                BatchingPolicy,
                install_adaptive_batching,
            )

            size, delay = config.adaptive_batching
            install_adaptive_batching(
                tool, BatchingPolicy(max_size=size, max_delay=delay)
            )
        if config.autoscale is not None:
            from repro.serving.external.autoscaler import (
                AutoscalePolicy,
                Autoscaler,
            )

            low, high = config.autoscale
            Autoscaler(
                env,
                tool,
                AutoscalePolicy(min_workers=low, max_workers=high),
                horizon=config.duration,
            )
        # The fault injector targets the real server; the engine scores
        # through the (optionally) resilience-wrapped tool.
        service = tool
        plan = config.fault_plan
        resilience = None
        if config.resilience is not None or (
            plan is not None and plan.can_fail_requests
        ):
            from repro.faults.plan import ResiliencePolicy
            from repro.faults.resilience import ResilientScorer

            # A fault plan that can fail requests needs *some* policy or a
            # failed score would crash the scoring task: default to
            # shedding the batch (drop it, count it, move on).
            policy = (
                config.resilience
                if config.resilience is not None
                else ResiliencePolicy(on_exhausted="shed")
            )
            fallback = None
            if policy.fallback is not None:
                fallback = create_serving_tool(
                    policy.fallback,
                    env,
                    config.model,
                    mp=self._scoring_parallelism(),
                    gpu=config.gpu,
                    rng=rng,
                )
                fallback.tracer = tracer
            tool = resilience = ResilientScorer(
                env, tool, policy, rng=rng, fallback=fallback
            )
        on_complete = collector.on_complete
        if registry.enabled:
            latency_hist = registry.histogram(
                "pipeline_latency_seconds",
                help="end-to-end event-time latency of completed batches",
            )
            inner_on_complete = collector.on_complete

            def on_complete(batch, end_time):  # noqa: F811
                latency_hist.observe(end_time - batch.created_at)
                inner_on_complete(batch, end_time)

        engine = create_data_processor(
            config.sps,
            env,
            tool,
            input_gateway,
            output_gateway,
            mp=self._engine_parallelism(),
            on_complete=on_complete,
            output_values_per_point=model_info(config.model).output_values,
            operator_parallelism=config.operator_parallelism,
            async_io=config.async_io,
            scoring_window=config.scoring_window,
            # Flink checkpoints natively; the other engines get recovery
            # attached externally below.
            fault_tolerance=(
                self._fault_tolerance() if config.sps == "flink" else None
            ),
            tracer=tracer,
            metrics=registry,
        )
        recovery = None
        if config.fault_tolerant and config.sps != "flink":
            from repro.faults.recovery import EngineRecovery

            recovery = EngineRecovery(env, engine, self._fault_tolerance())
            recovery.start()
        injector = None
        if plan is not None and not plan.empty:
            from repro.faults.injectors import FaultInjector

            injector = FaultInjector(
                env,
                plan,
                cluster=cluster if config.use_broker else None,
                server=service if plan.touches_serving else None,
                topics={"input": INPUT_TOPIC, "output": OUTPUT_TOPIC},
                rng=rng,
                metrics=registry,
            )
            injector.start()

        factory = BatchFactory(config.bsz, self._point_shape(), tracer=tracer)
        producer = self._build_producer(
            env, factory, collector, run_seed, tracer=tracer, **producer_kwargs
        )

        probe = None
        if backlog_probe_interval is not None and config.use_broker:
            from repro.core.probe import BacklogProbe

            probe = BacklogProbe(
                env,
                cluster,
                INPUT_TOPIC,
                completed=lambda: collector.count,
                interval=backlog_probe_interval,
                horizon=config.duration,
            )
            probe.start()

        scraper = None
        if registry.enabled:
            registry.counter(
                "pipeline_batches_produced",
                help="batches written to the input side in total",
                fn=lambda: producer.batches_produced,
            )
            registry.counter(
                "pipeline_batches_completed",
                help="batches that reached the output side in total",
                fn=lambda: collector.count,
            )
            options = metrics if isinstance(metrics, MetricsOptions) else MetricsOptions()
            scraper = Scraper(
                env,
                registry,
                interval=options.scrape_interval,
                horizon=config.duration,
            )
            scraper.start()

        engine.start()
        producer.start()
        env.run(until=config.duration)

        cutoff = config.duration * config.warmup_fraction
        return ExperimentResult(
            config=config,
            # Throughput and latency summarize the SAME closed window
            # [cutoff, duration]: one population of completions.
            throughput=collector.throughput(cutoff, config.duration),
            latency=collector.latency_stats(cutoff, config.duration),
            completed=collector.count,
            produced=producer.batches_produced,
            measure_start=cutoff,
            measure_end=config.duration,
            series=tuple(collector.latency_series()),
            duplicates=collector.duplicates,
            inference_requests=tool.requests_served,
            backlog_series=tuple(probe.series()) if probe is not None else (),
            trace=tracer if not isinstance(tracer, NullTracer) else None,
            telemetry=Telemetry(registry, scraper) if scraper is not None else None,
            faults=self._fault_summary(engine, injector, resilience, recovery),
        )

    def _fault_summary(
        self,
        engine: typing.Any,
        injector: typing.Any,
        resilience: typing.Any,
        recovery: typing.Any,
    ) -> "FaultSummary | None":
        """Tally what the chaos machinery did; None on a plain run."""
        chaos_active = (
            injector is not None
            or resilience is not None
            or recovery is not None
            or self.config.fault_tolerant
        )
        if not chaos_active:
            return None
        from repro.faults.summary import FaultSummary

        counts = injector.counts if injector is not None else {}
        breaker = resilience.breaker if resilience is not None else None
        if recovery is not None:
            failures = recovery.failures_injected
            restarts = recovery.restarts
            checkpoints = recovery.checkpoints_completed
        else:  # Flink's native checkpointing (or no recovery at all)
            failures = getattr(engine, "failures_injected", 0)
            restarts = getattr(engine, "restarts", 0)
            checkpoints = getattr(engine, "checkpoints_completed", 0)
        return FaultSummary(
            server_crashes=counts.get("server_crash", 0),
            partition_outages=counts.get("partition_outage", 0),
            network_degradations=counts.get("network_degradation", 0),
            stragglers=counts.get("straggler", 0),
            engine_failures=failures,
            engine_restarts=restarts,
            checkpoints=checkpoints,
            retries=resilience.retries if resilience is not None else 0,
            timeouts=resilience.timeouts if resilience is not None else 0,
            shed=resilience.shed if resilience is not None else 0,
            fallbacks=resilience.fallbacks if resilience is not None else 0,
            breaker_opens=breaker.opens if breaker is not None else 0,
            breaker_fast_fails=breaker.fast_fails if breaker is not None else 0,
        )

    def _build_producer(
        self,
        env: Environment,
        factory: BatchFactory,
        metrics: MetricsCollector,
        seed: int,
        **producer_kwargs: typing.Any,
    ) -> InputProducerBase:
        schedule = self._schedule(seed)
        if schedule is None:
            backlog = _SATURATION_BACKLOG.get(
                self.config.sps, _DEFAULT_BACKLOG
            )
            return SaturatingProducer(
                env,
                factory,
                completed=lambda: metrics.count,
                backlog_target=backlog,
                **producer_kwargs,
            )
        return PacedProducer(env, factory, schedule=schedule, **producer_kwargs)


def run_experiment(
    config: ExperimentConfig,
    seed: int | None = None,
    store: typing.Any = None,
    store_kind: str = "run",
) -> ExperimentResult:
    """Convenience wrapper: build a runner and execute once.

    ``store`` (a :class:`repro.store.ResultStore`) records the finished
    result. Recording happens strictly after the simulation completes —
    the store never touches the event loop or RNG streams, so a recorded
    run is indistinguishable from an unrecorded one.
    """
    result = ExperimentRunner(config).run(seed=seed)
    if store is not None:
        store.record_result(result, seed=seed, kind=store_kind)
    return result


def run_replicated(
    config: ExperimentConfig,
    seeds: typing.Sequence[int] = (0, 1),
    jobs: int = 1,
    cache: typing.Any = None,
) -> list[ExperimentResult]:
    """The paper's protocol: run each experiment twice and report
    averages and standard deviations (§4.2).

    ``jobs`` > 1 replicates across worker processes, and ``cache`` (a
    :class:`repro.matrix.cache.ResultCache`) replays seeds that already
    ran — both through :mod:`repro.matrix.engine`, which guarantees
    results identical to the plain in-process loop.
    """
    if not seeds:
        raise ConfigError("need at least one seed")
    if jobs != 1 or cache is not None:
        from repro.matrix.engine import run_replicated_cached

        return run_replicated_cached(config, seeds, jobs=jobs, cache=cache)
    runner = ExperimentRunner(config)
    return [runner.run(seed=seed) for seed in seeds]
