"""Real-dataset inputs for the workload producer (§3.1 option 2).

Crayfish's input producer can either synthesize tensors or read real
datasets from disk. This module provides the file-backed path: datasets
are stored as ``.npz`` archives (a ``data`` array of points, an optional
``labels`` array) and replayed in order, cycling when exhausted — the
replay order matters for cache behaviour, not for the performance study
(§4.1 notes content is irrelevant to inference latency).

The simulated pipeline only consumes point *shapes*; applications built
on :mod:`repro.nn` consume the actual arrays via :meth:`Dataset.batches`.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.errors import ConfigError


class Dataset:
    """An in-memory dataset of fixed-shape points."""

    def __init__(self, data: np.ndarray, labels: np.ndarray | None = None) -> None:
        data = np.asarray(data, dtype=np.float32)
        if data.ndim < 2:
            raise ConfigError(
                f"dataset needs (points, *shape) arrays, got {data.shape}"
            )
        if labels is not None:
            labels = np.asarray(labels)
            if len(labels) != len(data):
                raise ConfigError(
                    f"{len(labels)} labels for {len(data)} points"
                )
        self.data = data
        self.labels = labels

    def __len__(self) -> int:
        return len(self.data)

    @property
    def point_shape(self) -> tuple[int, ...]:
        return tuple(self.data.shape[1:])

    # -- construction -----------------------------------------------------

    @classmethod
    def synthetic(
        cls,
        points: int,
        point_shape: typing.Sequence[int],
        classes: int = 10,
        seed: int = 0,
    ) -> "Dataset":
        """Uniform-random tensors with random labels (the paper's default
        generator, materialized)."""
        if points < 1:
            raise ConfigError(f"points must be >= 1, got {points}")
        # crayfish: allow[global-random]: dataset materialization is seeded by an explicit config seed and happens before any simulation runs
        rng = np.random.default_rng(seed)
        data = rng.random((points, *point_shape), dtype=np.float32)
        labels = rng.integers(0, classes, size=points)
        return cls(data, labels)

    @classmethod
    def load(cls, path: str) -> "Dataset":
        """Read a ``.npz`` archive with ``data`` (and optional ``labels``)."""
        with np.load(path) as archive:
            if "data" not in archive:
                raise ConfigError(f"{path!r} has no 'data' array")
            labels = archive["labels"] if "labels" in archive else None
            return cls(archive["data"], labels)

    def save(self, path: str) -> None:
        arrays = {"data": self.data}
        if self.labels is not None:
            arrays["labels"] = self.labels
        np.savez_compressed(path, **arrays)

    # -- replay --------------------------------------------------------------

    def batches(self, bsz: int) -> typing.Iterator[np.ndarray]:
        """Endless batches of ``bsz`` points, cycling through the data."""
        if bsz < 1:
            raise ConfigError(f"bsz must be >= 1, got {bsz}")
        index = 0
        n = len(self.data)
        while True:
            picks = [(index + i) % n for i in range(bsz)]
            index = (index + bsz) % n
            yield self.data[picks]

    def take_batches(self, count: int, bsz: int) -> list[np.ndarray]:
        """The first ``count`` batches, for bounded replay."""
        iterator = self.batches(bsz)
        return [next(iterator) for __ in range(count)]
