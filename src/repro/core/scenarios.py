"""The paper's three pre-configured workload scenarios (§4.1), packaged.

These helpers encode the measurement protocol so benchmarks and examples
don't repeat it:

- :func:`measure_sustainable_throughput` — open loop, input-saturated.
- :func:`measure_closed_loop_latency` — low rate, inference-dominated.
- :func:`run_burst_scenario` — periodic bursts at 110%/70% of sustainable
  throughput, with per-burst recovery analysis.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.config import ExperimentConfig, WorkloadKind
from repro.core.analyzer import Aggregate, RecoveryReport, recovery_time
from repro.core.generator import PeriodicBursts
from repro.core.runner import ExperimentResult, ExperimentRunner


def measure_sustainable_throughput(
    config: ExperimentConfig,
    seeds: typing.Sequence[int] = (0, 1),
) -> Aggregate:
    """Open-loop saturated run: events/s the SUT sustains (mean ± std
    across replicated runs, like the paper's protocol)."""
    open_loop = config.replace(workload=WorkloadKind.OPEN_LOOP, ir=None)
    runner = ExperimentRunner(open_loop)
    return Aggregate.of([runner.run(seed=seed).throughput for seed in seeds])


def measure_closed_loop_latency(
    config: ExperimentConfig,
    seeds: typing.Sequence[int] = (0, 1),
) -> tuple[Aggregate, list[ExperimentResult]]:
    """Closed-loop run: mean end-to-end latency per batch (seconds)."""
    if config.ir is None:
        config = config.replace(ir=1.0)
    closed = config.replace(workload=WorkloadKind.CLOSED_LOOP)
    runner = ExperimentRunner(closed)
    results = [runner.run(seed=seed) for seed in seeds]
    return Aggregate.of([r.latency.mean for r in results]), results


@dataclasses.dataclass(frozen=True)
class BurstScenarioResult:
    """Outcome of one bursty run."""

    result: ExperimentResult
    reports: tuple[RecoveryReport, ...]

    @property
    def recovery_times(self) -> list[float]:
        return [r.recovery_time for r in self.reports if r.recovery_time is not None]


def run_burst_scenario(
    config: ExperimentConfig,
    sustainable_throughput: float,
    bursts: int = 3,
    seed: int = 0,
    threshold_factor: float = 1.5,
) -> BurstScenarioResult:
    """Drive the SUT with periodic bursts and measure recovery per burst.

    The producer runs at 110% of ``sustainable_throughput`` for ``bd``
    seconds out of every ``tbb + bd`` cycle and at 70% otherwise; recovery
    is timed from each burst's start (§5.1.4).
    """
    horizon = (config.tbb + config.bd) * bursts + config.tbb
    bursty = config.replace(
        workload=WorkloadKind.PERIODIC_BURSTS,
        ir=sustainable_throughput,
        duration=horizon,
        warmup_fraction=0.0,
    )
    result = ExperimentRunner(bursty).run(seed=seed)
    schedule = PeriodicBursts(
        low_rate=0.7 * sustainable_throughput,
        high_rate=1.1 * sustainable_throughput,
        burst_duration=config.bd,
        time_between_bursts=config.tbb,
    )
    reports = []
    for burst_start, burst_end in schedule.burst_windows(horizon - config.tbb / 2):
        reports.append(
            recovery_time(
                result.series,
                burst_start,
                burst_end,
                horizon=burst_start + config.bd + config.tbb,
                threshold_factor=threshold_factor,
                dwell=min(1.0, config.tbb / 8),
                baseline_window=config.tbb / 3,
            )
        )
    return BurstScenarioResult(result=result, reports=tuple(reports))
