"""Parameter sweeps: run grids of configurations with replication."""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.config import ExperimentConfig
from repro.core.analyzer import Aggregate
from repro.core.runner import ExperimentResult, ExperimentRunner


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One grid point's aggregated outcome."""

    overrides: dict
    results: tuple[ExperimentResult, ...]

    @property
    def throughput(self) -> Aggregate:
        return Aggregate.of([r.throughput for r in self.results])

    @property
    def mean_latency(self) -> Aggregate:
        return Aggregate.of([r.latency.mean for r in self.results])


def sweep(
    base: ExperimentConfig,
    grid: dict[str, typing.Sequence],
    seeds: typing.Sequence[int] = (0, 1),
    hook: typing.Callable[[dict, typing.Sequence[ExperimentResult]], None] | None = None,
) -> list[SweepPoint]:
    """Run the cartesian product of ``grid`` over ``base``.

    ``grid`` maps ExperimentConfig field names to value lists. Each point
    is replicated over ``seeds`` (the paper runs everything twice).
    ``hook`` is called after each point, e.g. for progress printing.
    """
    if not grid:
        raise ValueError("empty sweep grid")
    points = []
    keys = sorted(grid)
    for values in itertools.product(*(grid[k] for k in keys)):
        overrides = dict(zip(keys, values))
        config = base.replace(**overrides)
        runner = ExperimentRunner(config)
        results = tuple(runner.run(seed=seed) for seed in seeds)
        point = SweepPoint(overrides=overrides, results=results)
        points.append(point)
        if hook is not None:
            hook(overrides, results)
    return points
