"""Parameter sweeps: run grids of configurations with replication.

:func:`sweep` is the stable front door; since PR 5 it delegates to the
parallel experiment-matrix engine (:mod:`repro.matrix.engine`), so
callers can opt into worker processes (``jobs``) and the
content-addressed result cache (``cache``) without changing shape:
ordering, aggregates, and hook sequence are byte-identical to the old
serial implementation.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.config import ExperimentConfig
from repro.core.analyzer import Aggregate
from repro.core.runner import ExperimentResult
from repro.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One grid point's aggregated outcome."""

    overrides: dict
    results: tuple[ExperimentResult, ...]

    @property
    def throughput(self) -> Aggregate:
        return Aggregate.of([r.throughput for r in self.results])

    @property
    def mean_latency(self) -> Aggregate:
        return Aggregate.of([r.latency.mean for r in self.results])


def validate_override_fields(names: typing.Iterable[str]) -> None:
    """Reject grid/override keys that are not ExperimentConfig fields.

    Catches typos like ``{"batch_size": [...]}`` up front with a message
    naming both the offender and the valid field set — previously an
    unknown key surfaced only deep inside ``dataclasses.replace`` as an
    unexpected-keyword TypeError.
    """
    valid = {field.name for field in dataclasses.fields(ExperimentConfig)}
    unknown = sorted(set(names) - valid)
    if unknown:
        listed = ", ".join(repr(name) for name in unknown)
        raise ConfigError(
            f"unknown sweep field(s) {listed}; valid ExperimentConfig "
            f"fields are: {', '.join(sorted(valid))}"
        )


def sweep(
    base: ExperimentConfig,
    grid: dict[str, typing.Sequence],
    seeds: typing.Sequence[int] = (0, 1),
    hook: typing.Callable[[dict, typing.Sequence[ExperimentResult]], None] | None = None,
    jobs: int = 1,
    cache: typing.Any = None,
    store: typing.Any = None,
) -> list[SweepPoint]:
    """Run the cartesian product of ``grid`` over ``base``.

    ``grid`` maps ExperimentConfig field names to value lists (names are
    validated up front). Each point is replicated over ``seeds`` (the
    paper runs everything twice). ``hook`` is called after each point in
    grid order, e.g. for progress printing.

    ``jobs`` > 1 fans the points × seeds out over worker processes;
    ``cache`` (a :class:`repro.matrix.cache.ResultCache`) replays
    already-computed points instead of re-executing them. Both leave the
    returned points identical to a serial, uncached run. ``store`` (a
    :class:`repro.store.ResultStore`) records the finished sweep.
    """
    if not grid:
        raise ValueError("empty sweep grid")
    from repro.matrix.engine import run_matrix

    report = run_matrix(
        base,
        grid,
        seeds=seeds,
        jobs=jobs,
        cache=cache,
        hook=hook,
        store=store,
        store_kind="sweep",
    )
    return report.points
