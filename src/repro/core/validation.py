"""Pre-flight deployment checks (§3.5 / §4.3).

Before measuring, the paper verifies that the Kafka cluster itself can
sustain the experiment's maximum arrival rate (a no-op "inference" run)
so broker limits never masquerade as SUT limits. This module reproduces
that check: a paced producer against the simulated cluster with a
trivial drain, reporting achieved rate and broker utilization headroom.
"""

from __future__ import annotations

import dataclasses
import typing

from repro import calibration as cal
from repro.broker import BrokerCluster, Consumer, Producer
from repro.core.batch import CrayfishDataBatch
from repro.core.generator import BatchFactory, ConstantRate
from repro.core.producer import PacedProducer
from repro.errors import ConfigError
from repro.simul import Environment


@dataclasses.dataclass(frozen=True)
class BrokerHeadroomReport:
    """Outcome of the no-op broker check."""

    target_rate: float
    achieved_rate: float
    consumed_rate: float
    #: Fraction of one broker's service time used per second (mean).
    broker_utilization: float

    @property
    def ok(self) -> bool:
        """True when the cluster keeps up with the target rate with
        comfortable service headroom (the paper's acceptance bar)."""
        return (
            self.achieved_rate >= 0.95 * self.target_rate
            and self.consumed_rate >= 0.95 * self.target_rate
            and self.broker_utilization < 0.7
        )


def verify_broker_headroom(
    target_rate: float,
    bsz: int = 1,
    point_shape: typing.Sequence[int] = (28, 28),
    partitions: int = 32,
    duration: float = 2.0,
) -> BrokerHeadroomReport:
    """Run the no-op pipeline: produce at ``target_rate``, drain, report.

    The "inference" is a no-op — records are consumed and dropped — so
    any shortfall is the broker's, not a SUT's.
    """
    if target_rate <= 0:
        raise ConfigError(f"target_rate must be positive, got {target_rate}")
    env = Environment()
    cluster = BrokerCluster(env)
    cluster.create_topic("headroom-check", partitions)
    factory = BatchFactory(bsz, tuple(point_shape))
    producer = PacedProducer(
        env,
        factory,
        cluster=cluster,
        topic="headroom-check",
        schedule=ConstantRate(target_rate),
    )
    consumer = Consumer(env, cluster, "headroom-check")
    consumed = {"count": 0}

    def drain() -> typing.Generator:
        while True:
            records = yield from consumer.poll()
            consumed["count"] += len(records)

    producer.start()
    env.process(drain())
    env.run(until=duration)

    # Broker utilization estimate: per-record append service over the
    # cluster's aggregate capacity.
    batch = CrayfishDataBatch(
        batch_id=0, created_at=0.0, points=bsz, point_shape=tuple(point_shape)
    )
    per_record_service = (
        cal.BROKER_APPEND_OVERHEAD
        + batch.input_json_bytes() / cal.BROKER_IO_BANDWIDTH
    )
    utilization = (
        producer.batches_produced / duration * per_record_service
    ) / cluster.broker_count
    return BrokerHeadroomReport(
        target_rate=target_rate,
        achieved_rate=producer.batches_produced / duration,
        consumed_rate=consumed["count"] / duration,
        broker_utilization=utilization,
    )
