"""Metrics collection (§3.3): end-to-end latency and throughput.

Latency per CrayfishDataBatch = ``end - start`` where *start* is the
producer-local creation time (recorded before the write to the input
topic) and *end* is the broker's LogAppendTime on the output topic.
Both timestamps are captured outside the SUT (SUT separation, §3.5).
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.core.batch import CrayfishDataBatch
from repro.simul import Environment


@dataclasses.dataclass(frozen=True)
class LatencyStats:
    """Summary statistics over a latency sample (seconds)."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    p99: float
    p999: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: typing.Sequence[float]) -> "LatencyStats":
        if not samples:
            nan = math.nan
            return cls(0, nan, nan, nan, nan, nan, nan, nan, nan)
        ordered = sorted(samples)
        n = len(ordered)
        mean = sum(ordered) / n
        variance = sum((x - mean) ** 2 for x in ordered) / n
        return cls(
            count=n,
            mean=mean,
            std=math.sqrt(variance),
            minimum=ordered[0],
            p50=percentile(ordered, 0.50),
            p95=percentile(ordered, 0.95),
            p99=percentile(ordered, 0.99),
            p999=percentile(ordered, 0.999),
            maximum=ordered[-1],
        )

    def to_dict(self) -> dict[str, float]:
        """Field-name -> value mapping (JSON-friendly; NaNs preserved)."""
        return dataclasses.asdict(self)


def percentile(ordered: typing.Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an already sorted sample.

    An empty sample yields NaN — the same convention as
    :meth:`LatencyStats.from_samples`, so empty measurement windows
    propagate as NaN statistics instead of raising mid-report.
    """
    if not ordered:
        return math.nan
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    # a + (b - a) * f is exact when a == b, so interpolated percentiles
    # can never exceed the sample maximum by a rounding ulp.
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


@dataclasses.dataclass(frozen=True)
class Completion:
    """One observed batch completion."""

    batch_id: int
    created_at: float
    end_time: float

    @property
    def latency(self) -> float:
        return self.end_time - self.created_at


class MetricsCollector:
    """Receives completions from the pipeline and summarizes them.

    ``strict=True`` (the default) treats a repeated batch id as a bug —
    correct for failure-free runs. Fault-tolerance experiments set
    ``strict=False``: under at-least-once recovery replayed batches
    legitimately reach the sink twice, and the collector counts them as
    :attr:`duplicates` instead of raising.
    """

    def __init__(self, env: Environment, strict: bool = True) -> None:
        self.env = env
        self.strict = strict
        self.completions: list[Completion] = []
        self.duplicates = 0
        self._seen: set[int] = set()

    def on_complete(self, batch: CrayfishDataBatch, end_time: float) -> None:
        """Completion callback handed to the data processor."""
        if end_time < batch.created_at:
            raise ValueError(
                f"batch {batch.batch_id}: end {end_time} before start "
                f"{batch.created_at}"
            )
        if batch.batch_id in self._seen:
            if self.strict:
                raise ValueError(f"batch {batch.batch_id} completed twice")
            # A replayed batch is sink-duplicated work, not a second
            # completion: counting it in the stats would inflate
            # throughput and skew latency toward the replay tail.
            self.duplicates += 1
            return
        self._seen.add(batch.batch_id)
        self.completions.append(
            Completion(batch.batch_id, batch.created_at, end_time)
        )

    @property
    def count(self) -> int:
        return len(self.completions)

    def after(
        self, cutoff: float, end: float | None = None
    ) -> list[Completion]:
        """Completions whose *end* falls in ``[cutoff, end]`` (warm-up
        discard happens on the end timestamp, like the paper's discard of
        the first 25% of measurements). ``end=None`` leaves the window
        open on the right."""
        return [
            c
            for c in self.completions
            if c.end_time >= cutoff and (end is None or c.end_time <= end)
        ]

    def latency_stats(
        self, cutoff: float = 0.0, end: float | None = None
    ) -> LatencyStats:
        return LatencyStats.from_samples(
            [c.latency for c in self.after(cutoff, end)]
        )

    def throughput(self, start: float, end: float) -> float:
        """Completed events per second over the closed window
        ``[start, end]`` — the same window :meth:`latency_stats` uses, so
        both report over one population of completions."""
        if end <= start:
            raise ValueError(f"empty window [{start}, {end}]")
        completed = sum(1 for c in self.completions if start <= c.end_time <= end)
        return completed / (end - start)

    def latency_series(self, cutoff: float = 0.0) -> list[tuple[float, float]]:
        """(end_time, latency) pairs, for burst-recovery analysis."""
        return [(c.end_time, c.latency) for c in self.after(cutoff)]
