"""The metrics analyzer component: derived performance statistics.

Implements the paper's derived measures: sustainable throughput (the
maximum arrival rate the SUT sustains, §4.1) and burst recovery time
(how long after a burst begins the latency re-stabilizes, §5.1.4).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.metrics import LatencyStats, percentile


@dataclasses.dataclass(frozen=True)
class RecoveryReport:
    """Recovery analysis of one burst."""

    burst_start: float
    burst_end: float
    #: Time from burst start until latency re-stabilized; None if the SUT
    #: never recovered inside the observation window.
    recovery_time: float | None
    #: Latency threshold used to declare recovery.
    threshold: float
    #: Peak latency observed during/after the burst.
    peak_latency: float


def baseline_latency(
    series: typing.Sequence[tuple[float, float]],
    until: float,
    window: float | None = None,
) -> float:
    """p95 latency of samples completing before ``until``.

    ``window`` restricts the baseline to the last ``window`` seconds
    before ``until`` — essential between bursts, where the full history
    contains the previous burst's spike.
    """
    since = -float("inf") if window is None else until - window
    sample = sorted(lat for t, lat in series if since <= t < until)
    if not sample:
        raise ValueError(f"no samples before t={until} to build a baseline")
    return percentile(sample, 0.95)


def recovery_time(
    series: typing.Sequence[tuple[float, float]],
    burst_start: float,
    burst_end: float,
    horizon: float,
    threshold_factor: float = 1.5,
    dwell: float = 1.0,
    baseline_window: float | None = None,
) -> RecoveryReport:
    """Time until latency stabilizes after a burst.

    Recovery is declared at the first sample time ``t >= burst_start``
    from which every sample in ``[t, t + dwell]`` stays below
    ``threshold_factor`` x the pre-burst p95 latency — i.e. latency is
    back *and stays* back.
    """
    if burst_end <= burst_start:
        raise ValueError("burst_end must be after burst_start")
    threshold = threshold_factor * baseline_latency(
        series, burst_start, window=baseline_window
    )
    window = [(t, lat) for t, lat in series if burst_start <= t <= horizon]
    if not window:
        return RecoveryReport(burst_start, burst_end, None, threshold, 0.0)
    peak = max(lat for __, lat in window)
    times = [t for t, __ in window]
    for i, (t, lat) in enumerate(window):
        if lat >= threshold:
            continue
        # Check the dwell period starting here.
        ok = True
        j = i
        while j < len(window) and window[j][0] <= t + dwell:
            if window[j][1] >= threshold:
                ok = False
                break
            j += 1
        if not ok:
            continue
        if t + dwell > times[-1] and j >= len(window):
            # Dwell extends past the data; accept only if this is after
            # the burst ended (the tail is drained, nothing more coming).
            if t < burst_end:
                continue
        return RecoveryReport(burst_start, burst_end, t - burst_start, threshold, peak)
    return RecoveryReport(burst_start, burst_end, None, threshold, peak)


@dataclasses.dataclass(frozen=True)
class Aggregate:
    """Mean/std over replicated runs (the paper reports both, §4.2)."""

    mean: float
    std: float
    runs: int

    @classmethod
    def of(cls, values: typing.Sequence[float]) -> "Aggregate":
        n = len(values)
        if n == 0:
            raise ValueError("no values to aggregate")
        mean = sum(values) / n
        variance = sum((v - mean) ** 2 for v in values) / n
        return cls(mean=mean, std=variance**0.5, runs=n)


def aggregate_latency(stats: typing.Sequence[LatencyStats]) -> Aggregate:
    """Aggregate mean latencies across runs."""
    return Aggregate.of([s.mean for s in stats if s.count])
