"""Point-to-point LAN link model.

Transfer time = one-way base latency + size / effective bandwidth,
calibrated against the paper's ping measurements (§4.2): 0.945 ms round
trip for a 3 KB payload and 1.565 ms for 64 KB on a 1 Gbps LAN.
"""

from __future__ import annotations

from repro import calibration as cal


class Link:
    """A LAN hop between two hosts in the simulated cluster."""

    def __init__(
        self,
        base_latency: float = cal.NET_BASE_LATENCY,
        bandwidth: float = cal.NET_BANDWIDTH,
    ) -> None:
        if base_latency < 0:
            raise ValueError("base latency must be non-negative")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.base_latency = base_latency
        self.bandwidth = bandwidth

    def transfer_time(self, nbytes: float) -> float:
        """One-way delivery time for a payload of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.base_latency + nbytes / self.bandwidth

    def rtt(self, request_bytes: float, response_bytes: float = 64.0) -> float:
        """Round-trip time for a request/response pair."""
        return self.transfer_time(request_bytes) + self.transfer_time(response_bytes)


#: The cluster LAN (all paper hosts share one GCP network).
LAN = Link()
