"""RPC channel models (gRPC and HTTP) between SPS and external servers.

A channel charges the *client* for request encoding and response decoding,
the *network* for two transfers, and leaves server-side handling to the
server model. The paper uses gRPC for TF-Serving and TorchServe and HTTP
(JSON) for Ray Serve (§3.4.3-§3.4.4).
"""

from __future__ import annotations

import dataclasses

from repro.netsim.link import Link
from repro.netsim.payload import Payload, binary_payload, json_payload


@dataclasses.dataclass(frozen=True)
class RpcCosts:
    """Cost breakdown of one round trip, excluding server-side service."""

    client_cpu: float
    request_transfer: float
    response_transfer: float

    @property
    def total(self) -> float:
        return self.client_cpu + self.request_transfer + self.response_transfer


class RpcChannel:
    """Base RPC channel; subclasses choose the payload encoding.

    A channel can be *impaired* by the fault injector: extra one-way
    latency and/or a request error rate for the duration of a network
    degradation window. Unimpaired channels (the default) add zero cost
    and never draw randomness, keeping fault-free runs byte-identical.
    """

    #: Extra fixed client-side cost per call (stub dispatch, headers).
    call_overhead = 0.0

    def __init__(self, link: Link | None = None) -> None:
        self.link = link if link is not None else Link()
        self._extra_latency = 0.0
        self._error_rate = 0.0
        self._error_rng = None

    def _encode(self, values: int) -> Payload:
        raise NotImplementedError

    def impair(
        self,
        extra_latency: float = 0.0,
        error_rate: float = 0.0,
        rng=None,
    ) -> None:
        """Degrade the channel: ``extra_latency`` is added to each one-way
        transfer; ``error_rate`` makes :meth:`roll_error` drop requests
        with that probability, drawing from ``rng`` (a seeded stream)."""
        self._extra_latency = extra_latency
        self._error_rate = error_rate
        self._error_rng = rng

    def clear_impairment(self) -> None:
        """Restore the healthy channel."""
        self._extra_latency = 0.0
        self._error_rate = 0.0
        self._error_rng = None

    @property
    def impaired(self) -> bool:
        return self._extra_latency > 0.0 or self._error_rate > 0.0

    def roll_error(self) -> bool:
        """Did the network drop this request? Only draws randomness while
        an error-rate impairment is active."""
        if self._error_rate <= 0.0 or self._error_rng is None:
            return False
        return float(self._error_rng.uniform()) < self._error_rate

    def round_trip_costs(self, request_values: int, response_values: int) -> RpcCosts:
        """Transport costs of a call carrying the given tensor sizes."""
        request = self._encode(request_values)
        response = self._encode(response_values)
        client_cpu = (
            self.call_overhead + request.encode_cost + response.decode_cost
        )
        return RpcCosts(
            client_cpu=client_cpu,
            request_transfer=self.link.transfer_time(request.nbytes)
            + self._extra_latency,
            response_transfer=self.link.transfer_time(response.nbytes)
            + self._extra_latency,
        )

    def server_decode_cost(self, request_values: int) -> float:
        """Server-side CPU to decode the incoming request."""
        return self._encode(request_values).decode_cost

    def server_encode_cost(self, response_values: int) -> float:
        """Server-side CPU to encode the outgoing response."""
        return self._encode(response_values).encode_cost


class GrpcChannel(RpcChannel):
    """gRPC with binary tensor payloads (TF-Serving, TorchServe)."""

    call_overhead = 0.00005  # 0.05 ms stub/header cost

    def _encode(self, values: int) -> Payload:
        return binary_payload(values)


class HttpChannel(RpcChannel):
    """HTTP/1.1 with JSON payloads (Ray Serve)."""

    call_overhead = 0.00020  # 0.2 ms connection/header cost

    def _encode(self, values: int) -> Payload:
        return json_payload(values)
