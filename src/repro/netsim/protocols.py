"""RPC channel models (gRPC and HTTP) between SPS and external servers.

A channel charges the *client* for request encoding and response decoding,
the *network* for two transfers, and leaves server-side handling to the
server model. The paper uses gRPC for TF-Serving and TorchServe and HTTP
(JSON) for Ray Serve (§3.4.3-§3.4.4).
"""

from __future__ import annotations

import dataclasses

from repro.netsim.link import Link
from repro.netsim.payload import Payload, binary_payload, json_payload


@dataclasses.dataclass(frozen=True)
class RpcCosts:
    """Cost breakdown of one round trip, excluding server-side service."""

    client_cpu: float
    request_transfer: float
    response_transfer: float

    @property
    def total(self) -> float:
        return self.client_cpu + self.request_transfer + self.response_transfer


class RpcChannel:
    """Base RPC channel; subclasses choose the payload encoding."""

    #: Extra fixed client-side cost per call (stub dispatch, headers).
    call_overhead = 0.0

    def __init__(self, link: Link | None = None) -> None:
        self.link = link if link is not None else Link()

    def _encode(self, values: int) -> Payload:
        raise NotImplementedError

    def round_trip_costs(self, request_values: int, response_values: int) -> RpcCosts:
        """Transport costs of a call carrying the given tensor sizes."""
        request = self._encode(request_values)
        response = self._encode(response_values)
        client_cpu = (
            self.call_overhead + request.encode_cost + response.decode_cost
        )
        return RpcCosts(
            client_cpu=client_cpu,
            request_transfer=self.link.transfer_time(request.nbytes),
            response_transfer=self.link.transfer_time(response.nbytes),
        )

    def server_decode_cost(self, request_values: int) -> float:
        """Server-side CPU to decode the incoming request."""
        return self._encode(request_values).decode_cost

    def server_encode_cost(self, response_values: int) -> float:
        """Server-side CPU to encode the outgoing response."""
        return self._encode(response_values).encode_cost


class GrpcChannel(RpcChannel):
    """gRPC with binary tensor payloads (TF-Serving, TorchServe)."""

    call_overhead = 0.00005  # 0.05 ms stub/header cost

    def _encode(self, values: int) -> Payload:
        return binary_payload(values)


class HttpChannel(RpcChannel):
    """HTTP/1.1 with JSON payloads (Ray Serve)."""

    call_overhead = 0.00020  # 0.2 ms connection/header cost

    def _encode(self, values: int) -> Payload:
        return json_payload(values)
