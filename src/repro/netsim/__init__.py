"""Network and serialization cost models for the simulated cluster."""

from repro.netsim.payload import Payload, json_payload, binary_payload
from repro.netsim.link import Link
from repro.netsim.protocols import GrpcChannel, HttpChannel, RpcChannel

__all__ = [
    "Payload",
    "json_payload",
    "binary_payload",
    "Link",
    "GrpcChannel",
    "HttpChannel",
    "RpcChannel",
]
