"""Payload sizing and serialization cost model.

Crayfish serializes CrayfishDataBatch objects as JSON end to end (§3.1);
gRPC requests to external servers carry binary tensors. Both the wire
*size* and the CPU *cost* of encoding/decoding scale with the number of
scalar values in the batch.
"""

from __future__ import annotations

import dataclasses

from repro import calibration as cal


@dataclasses.dataclass(frozen=True)
class Payload:
    """A sized unit of data travelling through the pipeline."""

    #: Number of scalar values carried (e.g. bsz * prod(isz)).
    values: int
    #: Wire size in bytes.
    nbytes: float
    #: CPU seconds to encode the payload on the sender.
    encode_cost: float
    #: CPU seconds to decode the payload on the receiver.
    decode_cost: float

    def __post_init__(self) -> None:
        if self.values < 0 or self.nbytes < 0:
            raise ValueError("payload values/nbytes must be non-negative")


def json_payload(values: int) -> Payload:
    """The JSON encoding of ``values`` float32 scalars plus envelope."""
    nbytes = values * cal.JSON_BYTES_PER_VALUE + cal.JSON_ENVELOPE_BYTES
    return Payload(
        values=values,
        nbytes=nbytes,
        encode_cost=nbytes * cal.JSON_ENCODE_PER_BYTE,
        decode_cost=nbytes * cal.JSON_DECODE_PER_BYTE,
    )


def binary_payload(values: int) -> Payload:
    """The protobuf/tensor encoding used on gRPC channels."""
    nbytes = values * cal.BINARY_BYTES_PER_VALUE + 64.0
    return Payload(
        values=values,
        nbytes=nbytes,
        encode_cost=nbytes * cal.BINARY_CODEC_PER_BYTE,
        decode_cost=nbytes * cal.BINARY_CODEC_PER_BYTE,
    )
