"""Exception hierarchy shared across the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError` so callers can catch library failures without
swallowing programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """A discrete-event simulation was driven into an invalid state."""


class ConfigError(ReproError):
    """An experiment or component configuration is invalid."""


class BrokerError(ReproError):
    """Base class for message-broker failures."""


class UnknownTopicError(BrokerError):
    """A producer or consumer referenced a topic that does not exist."""


class MessageTooLargeError(BrokerError):
    """A record exceeded the broker's ``max.request.size``."""


class ModelFormatError(ReproError):
    """A serialized model artifact is malformed or of the wrong format."""


class ShapeError(ReproError):
    """Tensor shapes do not line up in the NN library."""


class ServingError(ReproError):
    """A model-serving component failed (load or apply)."""


class TransientError(ReproError):
    """A retryable failure on the serving path: a crashed/unreachable
    server, an injected network fault, or a client-side timeout.

    Raised only when fault injection is active; the resilience layer
    catches it to drive retries, circuit breaking, and degradation."""
