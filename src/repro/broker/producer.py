"""Producer client: writes records to topic partitions."""

from __future__ import annotations

import typing

from repro.broker.kafka_cluster import BrokerCluster
from repro.broker.records import RecordMetadata
from repro.simul import Environment


class Producer:
    """Sticky round-robin producer.

    Serialization cost is *not* charged here: callers encode on their own
    CPU budget (the input-producer VM or an SPS sink task) and hand the
    resulting size to :meth:`send`.
    """

    def __init__(
        self,
        env: Environment,
        cluster: BrokerCluster,
        node: str | None = None,
    ) -> None:
        #: Cluster node this producer runs on (scale-out simulations);
        #: None keeps the single shared-LAN cost model.
        self.node = node
        self.env = env
        self.cluster = cluster
        self._next_partition: dict[str, int] = {}
        self.records_sent = 0

    def _pick_partition(self, topic: str, key: int | None) -> int:
        count = self.cluster.topic(topic).partition_count
        if key is not None:
            return key % count
        index = self._next_partition.get(topic, 0)
        self._next_partition[topic] = (index + 1) % count
        return index

    def send(
        self,
        topic: str,
        value: typing.Any,
        nbytes: float,
        timestamp: float | None = None,
        key: int | None = None,
    ) -> typing.Generator:
        """Coroutine: deliver one record; returns :class:`RecordMetadata`."""
        if timestamp is None:
            timestamp = self.env.now
        partition = self._pick_partition(topic, key)
        metadata: RecordMetadata = yield from self.cluster.append(
            topic, partition, timestamp, value, nbytes, client_node=self.node
        )
        self.records_sent += 1
        return metadata
