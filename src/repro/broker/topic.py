"""Topics: named groups of partitions."""

from __future__ import annotations

from repro.broker.partition import PartitionLog
from repro.errors import ConfigError
from repro.simul import Environment


class Topic:
    """A named topic with a fixed number of partitions."""

    def __init__(self, env: Environment, name: str, partitions: int) -> None:
        if partitions < 1:
            raise ConfigError(f"topic needs >= 1 partition, got {partitions}")
        self.name = name
        self.partitions = [PartitionLog(env, name, i) for i in range(partitions)]

    @property
    def partition_count(self) -> int:
        return len(self.partitions)

    def partition(self, index: int) -> PartitionLog:
        return self.partitions[index]

    def total_records(self) -> int:
        return sum(p.end_offset for p in self.partitions)
