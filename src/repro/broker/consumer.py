"""Consumer client with Kafka-style group partition assignment."""

from __future__ import annotations

import typing

from repro.broker.kafka_cluster import BrokerCluster
from repro.broker.records import ConsumerRecord
from repro.errors import ConfigError
from repro.simul import Environment


def assign_partitions(partition_count: int, member: int, members: int) -> list[int]:
    """Range assignment: which partitions ``member`` of ``members`` owns."""
    if members < 1:
        raise ConfigError(f"members must be >= 1, got {members}")
    if not 0 <= member < members:
        raise ConfigError(f"member index {member} out of range for {members}")
    return [p for p in range(partition_count) if p % members == member]


class Consumer:
    """One consumer-group member reading a subset of a topic's partitions.

    ``poll`` blocks (in simulated time) until at least one record is
    available on an assigned partition, mirroring ``KafkaConsumer.poll``.
    Deserialization is charged by the caller, not here.
    """

    def __init__(
        self,
        env: Environment,
        cluster: BrokerCluster,
        topic: str,
        member: int = 0,
        members: int = 1,
        node: str | None = None,
    ) -> None:
        self.env = env
        self.cluster = cluster
        self.topic = topic
        #: Cluster node this consumer's task runs on (scale-out
        #: simulations); None keeps the single shared-LAN cost model.
        self.node = node
        partition_count = cluster.topic(topic).partition_count
        self.partitions = assign_partitions(partition_count, member, members)
        if not self.partitions:
            raise ConfigError(
                f"consumer {member}/{members} got no partitions of "
                f"{topic!r} ({partition_count} partitions)"
            )
        self._offsets = {p: 0 for p in self.partitions}
        self.records_consumed = 0
        cluster.register_consumer(self)

    def lag(self) -> int:
        """Total records appended but not yet consumed on our partitions."""
        topic = self.cluster.topic(self.topic)
        return sum(
            topic.partition(p).end_offset - self._offsets[p] for p in self.partitions
        )

    def position(self) -> dict[int, int]:
        """Current consume offsets per assigned partition (for
        checkpointing)."""
        return dict(self._offsets)

    def seek(self, offsets: dict[int, int]) -> None:
        """Rewind/advance to the given offsets (checkpoint restore)."""
        for partition, offset in offsets.items():
            if partition not in self._offsets:
                raise ConfigError(
                    f"partition {partition} is not assigned to this consumer"
                )
            if offset < 0:
                raise ConfigError(f"negative offset {offset}")
            self._offsets[partition] = offset

    def poll(
        self, max_records: int = 500, data_transfer: bool = True
    ) -> typing.Generator:
        """Coroutine: block until records are available, then fetch.

        ``data_transfer=False`` is the metadata-only planning fetch (see
        :meth:`BrokerCluster.fetch_many`). Returns a non-empty list of
        :class:`ConsumerRecord`.
        """
        while True:
            if not self._has_fetchable():
                # Nothing fetchable anywhere: sleep until an assigned
                # partition grows (or recovers from an outage).
                waiters = [
                    self.cluster.wait_for_data(self.topic, p, self._offsets[p])
                    for p in self.partitions
                ]
                yield self.env.any_of(waiters)
                # Cancel the losers: a waiter that never fires would sit
                # in its partition's list forever (unbounded growth on
                # partitions that rarely grow).
                for partition, waiter in zip(self.partitions, waiters):
                    self.cluster.cancel_wait(self.topic, partition, waiter)
            records, self._offsets = yield from self.cluster.fetch_many(
                self.topic,
                self._offsets,
                max_records,
                data_transfer=data_transfer,
                client_node=self.node,
            )
            if records:
                self.records_consumed += len(records)
                return records

    def _has_fetchable(self) -> bool:
        """True when any assigned partition would serve records now.

        Equivalent to ``lag() > 0`` on a healthy cluster; during a
        partition outage it also treats blocked partitions as empty so
        the consumer parks instead of spinning on empty fetches.
        """
        return any(
            self.cluster.fetchable(self.topic, p, self._offsets[p])
            for p in self.partitions
        )
