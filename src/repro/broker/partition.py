"""A single topic partition: an append-only record log."""

from __future__ import annotations

import typing

from repro.broker.records import ConsumerRecord
from repro.simul import Environment, Event


class PartitionLog:
    """Append-only log with monotonically increasing offsets.

    Consumers track their own offsets; the log never forgets (retention
    is irrelevant at benchmark time scales).
    """

    def __init__(self, env: Environment, topic: str, index: int) -> None:
        self.env = env
        self.topic = topic
        self.index = index
        self._records: list[ConsumerRecord] = []
        self._waiters: list[Event] = []

    @property
    def end_offset(self) -> int:
        """Offset the next record will receive (== current length)."""
        return len(self._records)

    def append(self, timestamp: float, value: typing.Any, nbytes: float) -> ConsumerRecord:
        """Append at the current simulated time (LogAppendTime semantics)."""
        record = ConsumerRecord(
            topic=self.topic,
            partition=self.index,
            offset=len(self._records),
            timestamp=timestamp,
            log_append_time=self.env.now,
            value=value,
            nbytes=nbytes,
        )
        self._records.append(record)
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed()
        return record

    def fetch(self, offset: int, max_records: int) -> list[ConsumerRecord]:
        """Records in ``[offset, offset + max_records)`` that exist now."""
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        return self._records[offset : offset + max_records]

    def data_available(self, offset: int) -> Event:
        """Event firing once the log grows past ``offset``."""
        event = Event(self.env)
        if len(self._records) > offset:
            event.succeed()
        else:
            self._waiters.append(event)
        return event
