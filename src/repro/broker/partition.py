"""A single topic partition: an append-only record log."""

from __future__ import annotations

import typing

from repro.broker.records import ConsumerRecord
from repro.simul import Environment, Event


class PartitionLog:
    """Append-only log with monotonically increasing offsets.

    Consumers track their own offsets; the log never forgets (retention
    is irrelevant at benchmark time scales).
    """

    def __init__(self, env: Environment, topic: str, index: int) -> None:
        self.env = env
        self.topic = topic
        self.index = index
        self._records: list[ConsumerRecord] = []
        self._waiters: list[Event] = []
        # Fault injection: an unavailable partition (leader lost) serves
        # no fetches and defers data-available wake-ups until recovery.
        self._blocked = False

    @property
    def end_offset(self) -> int:
        """Offset the next record will receive (== current length)."""
        return len(self._records)

    def append(self, timestamp: float, value: typing.Any, nbytes: float) -> ConsumerRecord:
        """Append at the current simulated time (LogAppendTime semantics)."""
        record = ConsumerRecord(
            topic=self.topic,
            partition=self.index,
            offset=len(self._records),
            timestamp=timestamp,
            log_append_time=self.env.now,
            value=value,
            nbytes=nbytes,
        )
        self._records.append(record)
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed()
        return record

    def fetch(self, offset: int, max_records: int) -> list[ConsumerRecord]:
        """Records in ``[offset, offset + max_records)`` that exist now.

        An unavailable partition serves nothing (the consumer's fetch
        gets an empty response, as from a partition with no leader).
        """
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        if self._blocked:
            return []
        return self._records[offset : offset + max_records]

    def fetchable_past(self, offset: int) -> bool:
        """True when a fetch at ``offset`` would return records now."""
        return not self._blocked and len(self._records) > offset

    def data_available(self, offset: int) -> Event:
        """Event firing once the log grows past ``offset``.

        While the partition is unavailable the event is parked even if
        the data exists — it fires when the partition recovers.
        """
        event = Event(self.env)
        if not self._blocked and len(self._records) > offset:
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def cancel_wait(self, event: Event) -> None:
        """Deregister a waiter produced by :meth:`data_available`.

        Consumers wake on *any* of their partitions' waiters; the losers
        must be cancelled or a partition that rarely grows accumulates
        stale events without bound.
        """
        if not event.triggered:
            try:
                self._waiters.remove(event)
            except ValueError:
                pass

    # -- availability (fault injection) --------------------------------

    @property
    def blocked(self) -> bool:
        return self._blocked

    def block(self) -> None:
        """Take the partition offline (no leader): fetches return nothing
        and data-available waits park until :meth:`unblock`."""
        self._blocked = True

    def unblock(self) -> None:
        """Restore the partition and wake every parked waiter (consumers
        re-check availability themselves, so spurious wakes are safe)."""
        self._blocked = False
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed()
