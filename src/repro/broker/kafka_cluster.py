"""The broker-internal cluster: topics plus broker-side service costs.

(Known as ``repro.broker.cluster`` before the multi-node scale-out
package :mod:`repro.cluster` arrived; the old import path remains as a
deprecation shim.)

The paper deploys 4 Kafka brokers and verifies they are never the
bottleneck (§3.5). Each partition is owned by one broker; appends and
fetches occupy that broker's service resource for a size-dependent time,
so a *mis*-configured cluster would show up as queueing — reproducing the
paper's bottleneck check.

In scale-out simulations (:mod:`repro.cluster`) a broker placement maps
each partition onto a simulated machine: clients then pay the network
link between *their* node and the partition owner's node, so colocated
hops stay local while cross-node hops pay rack/LAN cost. Without a
placement (the default), behaviour is byte-identical to the single-LAN
model of the paper.
"""

from __future__ import annotations

import typing

from repro import calibration as cal
from repro.broker.records import ConsumerRecord, RecordMetadata
from repro.broker.topic import Topic
from repro.errors import ConfigError, MessageTooLargeError, UnknownTopicError
from repro.metrics.registry import NO_METRICS
from repro.netsim import Link
from repro.simul import Environment, Event, Resource
from repro.tracing.spans import NO_TRACE


class BrokerCluster:
    """A cluster of ``broker_count`` brokers sharing topic partitions."""

    def __init__(
        self,
        env: Environment,
        broker_count: int = cal.BROKER_COUNT,
        max_request_bytes: float = cal.BROKER_MAX_REQUEST_BYTES,
        link: Link | None = None,
        tracer: typing.Any = NO_TRACE,
        metrics: typing.Any = NO_METRICS,
        placement: typing.Any = None,
    ) -> None:
        """``placement`` (a :class:`repro.cluster.placement.PlacementPlan`)
        makes the cluster node-aware: one broker per cluster node, each
        partition owned by its placed node, and every data-path link
        resolved between the client's node and the owner's node. ``None``
        keeps the paper's single shared-LAN model."""
        if placement is not None:
            broker_count = placement.broker_count
        if broker_count < 1:
            raise ConfigError(f"need >= 1 broker, got {broker_count}")
        self.env = env
        self.broker_count = broker_count
        self.max_request_bytes = max_request_bytes
        self.link = link if link is not None else Link()
        self.placement = placement
        self.tracer = tracer
        self.metrics = metrics
        self._topics: dict[str, Topic] = {}
        # Active partition outages: producers block on the gate event
        # until the partition's leadership is restored.
        self._outages: dict[tuple[str, int], Event] = {}
        # Consumers register themselves so group lag is observable.
        self._consumers: list[typing.Any] = []
        # One service unit per broker: appends/fetches to its partitions
        # queue here.
        self._brokers = [Resource(env, capacity=1) for __ in range(broker_count)]
        metrics.gauge(
            "broker_utilization",
            help="fraction of brokers busy serving an append or fetch",
            fn=lambda: sum(b.count for b in self._brokers) / self.broker_count,
        )
        metrics.gauge(
            "broker_service_queue",
            help="append/fetch requests waiting for a broker",
            fn=lambda: sum(len(b.queue) for b in self._brokers),
        )

    # -- admin ---------------------------------------------------------

    def create_topic(self, name: str, partitions: int) -> Topic:
        if name in self._topics:
            raise ConfigError(f"topic {name!r} already exists")
        topic = Topic(self.env, name, partitions)
        self._topics[name] = topic
        self.metrics.gauge(
            "broker_partition_depth",
            help="records appended across the topic's partitions",
            labels={"topic": name},
            fn=lambda t=topic: sum(
                t.partition(p).end_offset for p in range(t.partition_count)
            ),
        )
        return topic

    def register_consumer(self, consumer: typing.Any) -> None:
        """Track a consumer-group member so its topic's lag is scrapable."""
        self._consumers.append(consumer)
        self.metrics.gauge(
            "broker_consumer_lag",
            help="records appended but not yet consumed by the group",
            labels={"topic": consumer.topic},
            fn=lambda topic=consumer.topic: sum(
                c.lag() for c in self._consumers if c.topic == topic
            ),
        )

    def topic(self, name: str) -> Topic:
        try:
            return self._topics[name]
        except KeyError:
            raise UnknownTopicError(name) from None

    def broker_for(self, topic: str, partition: int) -> Resource:
        """The broker resource owning a partition (round-robin layout)."""
        __ = self.topic(topic)  # validate
        if self.placement is not None:
            return self._brokers[self.placement.broker_index(partition)]
        return self._brokers[partition % self.broker_count]

    def _link_for(self, partition: int, client_node: str | None) -> Link:
        """The network link one data-path hop pays.

        Placed clusters resolve the hop between the client's node and the
        partition owner's node (loopback when colocated); unplaced runs
        keep the single shared LAN link."""
        if self.placement is None:
            return self.link
        return self.placement.link_to_partition(client_node, partition)

    def _node_attrs(self, partition: int) -> dict:
        """Span attribution for the broker owning ``partition`` (empty —
        and allocation-free for the null tracer — when unplaced)."""
        if self.placement is None or not self.tracer.enabled:
            return {}
        return {"node": self.placement.node_of_partition(partition)}

    # -- data path -----------------------------------------------------

    def append(
        self,
        topic: str,
        partition: int,
        timestamp: float,
        value: typing.Any,
        nbytes: float,
        client_node: str | None = None,
    ) -> typing.Generator:
        """Coroutine: network transfer + broker append service.

        Returns :class:`RecordMetadata`; the record's ``log_append_time``
        is the broker clock when the append completes (§3.3 step 5).
        """
        if nbytes > self.max_request_bytes:
            raise MessageTooLargeError(
                f"{nbytes:.0f} B exceeds max.request.size "
                f"{self.max_request_bytes:.0f} B"
            )
        log = self.topic(topic).partition(partition)
        # An unavailable partition has no leader to accept the write: the
        # producer's delivery blocks until the outage ends (librdkafka-style
        # internal retries, collapsed into one wait).
        while True:
            gate = self._outages.get((topic, partition))
            if gate is None:
                break
            span = self.tracer.begin(value, f"broker.unavailable:{topic}")
            yield gate
            self.tracer.end(span)
        attrs = self._node_attrs(partition)
        span = self.tracer.begin(value, f"broker.send:{topic}", **attrs)
        yield self.env.service_timeout(
            self._link_for(partition, client_node).transfer_time(nbytes)
        )
        self.tracer.end(span)
        broker = self.broker_for(topic, partition)
        wait = self.tracer.begin(value, f"broker.append_wait:{topic}", **attrs)
        with broker.request() as req:
            yield req
            self.tracer.end(wait)
            span = self.tracer.begin(value, f"broker.append:{topic}", **attrs)
            service = cal.BROKER_APPEND_OVERHEAD + nbytes / cal.BROKER_IO_BANDWIDTH
            yield self.env.service_timeout(service)
            record = log.append(timestamp, value, nbytes)
            self.tracer.end(span)
        return RecordMetadata(
            topic=topic,
            partition=partition,
            offset=record.offset,
            log_append_time=record.log_append_time,
        )

    def fetch(
        self,
        topic: str,
        partition: int,
        offset: int,
        max_records: int,
        client_node: str | None = None,
    ) -> typing.Generator:
        """Coroutine: broker fetch service + network transfer back.

        Returns the (possibly empty) list of records available now.
        """
        log = self.topic(topic).partition(partition)
        records = log.fetch(offset, max_records)
        fetch_start = self.env.now
        broker = self.broker_for(topic, partition)
        with broker.request() as req:
            yield req
            nbytes = sum(r.nbytes for r in records)
            service = cal.BROKER_FETCH_OVERHEAD + nbytes / cal.BROKER_IO_BANDWIDTH
            yield self.env.service_timeout(service)
        if records:
            total = sum(r.nbytes for r in records)
            yield self.env.service_timeout(
                self._link_for(partition, client_node).transfer_time(total)
            )
        self._trace_fetched(topic, records, fetch_start)
        return list(records)

    def fetch_many(
        self,
        topic: str,
        offsets: dict[int, int],
        max_records: int,
        data_transfer: bool = True,
        client_node: str | None = None,
    ) -> typing.Generator:
        """Coroutine: one fetch request spanning several partitions.

        Mirrors Kafka's batched fetch: a single request/response pays one
        fixed overhead plus size-proportional service and transfer costs.
        ``data_transfer=False`` fetches only offsets/metadata — Spark's
        driver plans micro-batches this way while executors pull the
        record data directly from the brokers in parallel.
        Returns ``(records, new_offsets)``.
        """
        topic_obj = self.topic(topic)
        fetch_start = self.env.now
        records: list[ConsumerRecord] = []
        new_offsets = dict(offsets)
        byte_budget = self.max_request_bytes  # Kafka's fetch.max.bytes
        for partition, offset in offsets.items():
            budget = max_records - len(records)
            if budget <= 0 or byte_budget <= 0:
                break
            chunk = topic_obj.partition(partition).fetch(offset, budget)
            taken = []
            for record in chunk:
                # Always make progress: accept at least one record even if
                # it alone exceeds the byte budget (Kafka does the same).
                if taken and record.nbytes > byte_budget:
                    break
                taken.append(record)
                byte_budget -= record.nbytes
            if taken:
                records.extend(taken)
                new_offsets[partition] = taken[-1].offset + 1
        # The fetch response is served by the broker owning the first
        # requested partition; size-based costs dominate anyway.
        first = next(iter(offsets))
        broker = self.broker_for(topic, first)
        nbytes = sum(r.nbytes for r in records) if data_transfer else 0.0
        with broker.request() as req:
            yield req
            service = cal.BROKER_FETCH_OVERHEAD + nbytes / cal.BROKER_IO_BANDWIDTH
            yield self.env.service_timeout(service)
        if records and data_transfer:
            yield self.env.service_timeout(
                self._link_for(first, client_node).transfer_time(nbytes)
            )
        self._trace_fetched(topic, records, fetch_start)
        return records, new_offsets

    def _trace_fetched(
        self,
        topic: str,
        records: typing.Sequence[ConsumerRecord],
        fetch_start: float,
    ) -> None:
        """Attribute topic dwell and fetch time to each sampled record.

        *Dwell* runs from the record's LogAppendTime to the moment the
        consumer's fetch found it — the backlog wait when the SUT cannot
        keep up. *Fetch* covers broker service + transfer back.
        """
        if not self.tracer.enabled:
            return
        for record in records:
            ctx = self.tracer.context_of(record.value)
            if ctx is None:
                continue
            self.tracer.record(
                ctx,
                f"broker.dwell:{topic}",
                start=record.log_append_time,
                end=fetch_start,
            )
            self.tracer.record(ctx, f"broker.fetch:{topic}", start=fetch_start)

    def wait_for_data(self, topic: str, partition: int, offset: int):
        """Event firing once the partition has records past ``offset``."""
        return self.topic(topic).partition(partition).data_available(offset)

    def cancel_wait(self, topic: str, partition: int, event) -> None:
        """Deregister a stale :meth:`wait_for_data` event (an ``any_of``
        loser) so partitions that never grow don't leak waiters."""
        self.topic(topic).partition(partition).cancel_wait(event)

    def fetchable(self, topic: str, partition: int, offset: int) -> bool:
        """Would a fetch at ``offset`` return records right now?"""
        return self.topic(topic).partition(partition).fetchable_past(offset)

    # -- fault injection -----------------------------------------------

    def begin_partition_outage(
        self, topic: str, partitions: typing.Sequence[int]
    ) -> None:
        """Take the partitions offline: appends park on a gate event and
        fetches return nothing until :meth:`end_partition_outage`."""
        for partition in partitions:
            self.topic(topic).partition(partition).block()
            key = (topic, partition)
            if key not in self._outages:
                self._outages[key] = Event(self.env)

    def end_partition_outage(
        self, topic: str, partitions: typing.Sequence[int]
    ) -> None:
        """Restore leadership: wake parked producers and consumers."""
        for partition in partitions:
            self.topic(topic).partition(partition).unblock()
            gate = self._outages.pop((topic, partition), None)
            if gate is not None and not gate.triggered:
                gate.succeed()
