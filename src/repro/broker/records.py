"""Record types exchanged with the broker."""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class RecordMetadata:
    """Returned to a producer once a record is durably appended."""

    topic: str
    partition: int
    offset: int
    log_append_time: float


@dataclasses.dataclass(frozen=True)
class ConsumerRecord:
    """One record as seen by a consumer."""

    topic: str
    partition: int
    offset: int
    #: Producer-assigned event time (Crayfish start timestamp).
    timestamp: float
    #: Broker-local time at append (Kafka's LogAppendTime).
    log_append_time: float
    #: Application payload (carried by reference; sizes travel separately).
    value: typing.Any
    #: Serialized size in bytes, used for transfer costs.
    nbytes: float
