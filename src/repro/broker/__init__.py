"""Simulated Kafka-like publish/subscribe message broker.

Topics are split into partitions, each an append-only log owned by one of
the brokers in the cluster. Records are stamped with ``LogAppendTime`` —
the broker-local (simulated) time at append — which is how Crayfish
measures the *end* timestamp of a batch (§3.3). Producers pay a network
transfer plus broker append service; consumers pull with Kafka-style
``poll`` semantics, so both push-style engines (which run their own fetch
loops) and pull-style engines can be built on top.
"""

from repro.broker.records import ConsumerRecord, RecordMetadata
from repro.broker.partition import PartitionLog
from repro.broker.topic import Topic
from repro.broker.kafka_cluster import BrokerCluster
from repro.broker.producer import Producer
from repro.broker.consumer import Consumer

__all__ = [
    "ConsumerRecord",
    "RecordMetadata",
    "PartitionLog",
    "Topic",
    "BrokerCluster",
    "Producer",
    "Consumer",
]
