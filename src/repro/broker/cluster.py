"""Deprecated import path for the broker-internal cluster.

``repro.broker.cluster`` predates the multi-node scale-out package
:mod:`repro.cluster`; the two names collided badly enough that the
broker-internal module moved to :mod:`repro.broker.kafka_cluster`.
This shim keeps old imports working while pointing callers at the two
unambiguous homes:

- :class:`repro.broker.kafka_cluster.BrokerCluster` — the Kafka-like
  broker fleet (topics, partitions, append/fetch service costs).
- :mod:`repro.cluster` — simulated multi-node deployments (topologies,
  placement, population workloads, capacity search).
"""

import warnings

from repro.broker.kafka_cluster import BrokerCluster

__all__ = ["BrokerCluster"]

warnings.warn(
    "repro.broker.cluster moved to repro.broker.kafka_cluster (the new "
    "repro.cluster package is the multi-node scale-out simulator); this "
    "alias will be removed in a future release",
    DeprecationWarning,
    stacklevel=2,
)
