"""Pure-configuration types for multi-node scale-out simulations.

These dataclasses are the only part of :mod:`repro.cluster` that
:mod:`repro.config` imports (mirroring how :mod:`repro.faults` exposes
its plan types): they carry no simulation state, validate eagerly with
friendly :class:`~repro.errors.ConfigError` messages, and round-trip
losslessly through ``ExperimentConfig.canonical_dict`` /
``config_from_dict`` so cached matrix runs with cluster configurations
replay byte-identically.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError

#: Supported per-user rate distributions for population workloads.
DISTRIBUTIONS = ("zipf", "lognormal")


@dataclasses.dataclass(frozen=True)
class ClusterSpec:
    """Shape of one simulated multi-node deployment.

    Every node hosts one broker, ``tasks_per_node`` SPS task slots, and
    (for external serving) ``replicas_per_node`` serving replicas behind
    a load balancer, so adding nodes scales brokers, compute, and
    serving together — the scale-out methodology of PDSP-Bench and
    Theodolite, where each configuration is a *deployment size*.
    """

    #: Simulated machines in the cluster.
    nodes: int = 2
    #: CPU slots per machine; placement refuses to oversubscribe them.
    cpus_per_node: int = 16
    #: Racks the nodes spread over (round-robin). Nodes in one rack talk
    #: over the rack link; nodes in different racks pay the LAN link.
    racks: int = 1
    #: SPS task slots placed per node. None derives it from the
    #: experiment's ``mp`` (total engine parallelism = mp × nodes).
    tasks_per_node: int | None = None
    #: External-serving replicas placed per node (behind the simulated
    #: load balancer). Ignored for embedded serving.
    replicas_per_node: int = 1
    #: One-way base latency of an intra-rack hop (seconds). None uses
    #: the calibrated default (half the paper's LAN base latency).
    rack_latency: float | None = None
    #: One-way base latency of a cross-rack (LAN) hop (seconds). None
    #: uses the paper's calibrated LAN latency.
    lan_latency: float | None = None
    #: Link bandwidth in bytes/second shared by rack and LAN hops. None
    #: uses the paper's calibrated 1 Gbps-class LAN bandwidth.
    bandwidth: float | None = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigError(f"cluster needs >= 1 node, got {self.nodes}")
        if self.nodes > 1024:
            raise ConfigError(
                f"cluster caps at 1024 simulated nodes, got {self.nodes}"
            )
        if self.cpus_per_node < 1:
            raise ConfigError(
                f"cpus_per_node must be >= 1, got {self.cpus_per_node}"
            )
        if self.racks < 1:
            raise ConfigError(f"racks must be >= 1, got {self.racks}")
        if self.racks > self.nodes:
            raise ConfigError(
                f"more racks ({self.racks}) than nodes ({self.nodes})"
            )
        if self.tasks_per_node is not None and self.tasks_per_node < 1:
            raise ConfigError(
                f"tasks_per_node must be >= 1, got {self.tasks_per_node}"
            )
        if self.replicas_per_node < 1:
            raise ConfigError(
                f"replicas_per_node must be >= 1, got {self.replicas_per_node}"
            )
        for name in ("rack_latency", "lan_latency"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ConfigError(f"{name} must be non-negative, got {value}")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ConfigError(
                f"bandwidth must be positive, got {self.bandwidth}"
            )

    def __str__(self) -> str:
        """Compact form for matrix tables: ``3n`` / ``4n/2r``."""
        racks = f"/{self.racks}r" if self.racks > 1 else ""
        return f"{self.nodes}n{racks}"


@dataclasses.dataclass(frozen=True)
class FlashCrowd:
    """One flash-crowd burst: offered load multiplies by ``multiplier``
    for ``duration`` seconds starting at ``at``."""

    at: float
    duration: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigError(f"flash crowd start must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise ConfigError(
                f"flash crowd duration must be positive, got {self.duration}"
            )
        if self.multiplier <= 0:
            raise ConfigError(
                f"flash crowd multiplier must be positive, got {self.multiplier}"
            )

    def active(self, time: float) -> bool:
        return self.at <= time < self.at + self.duration


@dataclasses.dataclass(frozen=True)
class PopulationSpec:
    """A population-scale workload: millions of users, each with its own
    heavy-tailed event rate, modulated by a diurnal cycle and optional
    flash crowds. Everything derives deterministically from the run seed.
    """

    #: Simulated users. The generator is O(users) once per run (a NumPy
    #: draw), so millions are cheap.
    users: int = 1_000_000
    #: Per-user rate distribution: "zipf" (rank-weighted power law) or
    #: "lognormal" (seeded multiplicative draws).
    distribution: str = "zipf"
    #: Power-law exponent for the zipf distribution (> 1 concentrates
    #: traffic in the head).
    zipf_exponent: float = 1.1
    #: Log-scale dispersion for the lognormal distribution.
    sigma: float = 1.0
    #: Mean events per user per simulated day; the aggregate offered
    #: rate is ``users * events_per_user_per_day / 86400 * rate_scale``.
    events_per_user_per_day: float = 50.0
    #: Relative amplitude of the diurnal cycle in [0, 1): 0 is flat,
    #: 0.5 swings offered load ±50% around the mean.
    diurnal_amplitude: float = 0.3
    #: Diurnal period in simulated seconds (86400 = one day; benchmarks
    #: compress it so a short run still sees peaks and troughs).
    diurnal_period: float = 86_400.0
    #: Flash-crowd bursts layered on top, in start-time order.
    flash_crowds: tuple[FlashCrowd, ...] = ()
    #: Multiplier on the aggregate offered rate. The capacity search
    #: scales a population workload through this knob.
    rate_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.users < 1:
            raise ConfigError(f"population needs >= 1 user, got {self.users}")
        if self.users > 100_000_000:
            raise ConfigError(
                f"population caps at 100M simulated users, got {self.users}"
            )
        if self.distribution not in DISTRIBUTIONS:
            raise ConfigError(
                f"unknown distribution {self.distribution!r}; expected one "
                f"of {DISTRIBUTIONS}"
            )
        if self.zipf_exponent <= 1.0:
            raise ConfigError(
                f"zipf_exponent must be > 1, got {self.zipf_exponent}"
            )
        if self.sigma < 0:
            raise ConfigError(f"sigma must be >= 0, got {self.sigma}")
        if self.events_per_user_per_day <= 0:
            raise ConfigError(
                "events_per_user_per_day must be positive, got "
                f"{self.events_per_user_per_day}"
            )
        if not 0 <= self.diurnal_amplitude < 1:
            raise ConfigError(
                f"diurnal_amplitude must be in [0, 1), got "
                f"{self.diurnal_amplitude}"
            )
        if self.diurnal_period <= 0:
            raise ConfigError(
                f"diurnal_period must be positive, got {self.diurnal_period}"
            )
        if self.rate_scale <= 0:
            raise ConfigError(
                f"rate_scale must be positive, got {self.rate_scale}"
            )
        starts = [crowd.at for crowd in self.flash_crowds]
        if starts != sorted(starts):
            raise ConfigError("flash_crowds must be sorted by start time")

    @property
    def mean_rate(self) -> float:
        """Aggregate mean offered rate in events per simulated second."""
        return (
            self.users * self.events_per_user_per_day / 86_400.0
        ) * self.rate_scale

    def __str__(self) -> str:
        """Compact form for matrix tables: ``1000000u-zipf``."""
        return f"{self.users}u-{self.distribution}"


def cluster_spec_from_dict(record: dict) -> ClusterSpec:
    """Rebuild a :class:`ClusterSpec` from its canonical dict."""
    known = {field.name for field in dataclasses.fields(ClusterSpec)}
    unknown = sorted(set(record) - known)
    if unknown:
        raise ConfigError(f"unknown cluster field(s) in record: {unknown}")
    return ClusterSpec(**record)


def population_spec_from_dict(record: dict) -> PopulationSpec:
    """Rebuild a :class:`PopulationSpec` from its canonical dict."""
    known = {field.name for field in dataclasses.fields(PopulationSpec)}
    unknown = sorted(set(record) - known)
    if unknown:
        raise ConfigError(f"unknown population field(s) in record: {unknown}")
    data = dict(record)
    data["flash_crowds"] = tuple(
        FlashCrowd(**crowd) for crowd in data.get("flash_crowds", ())
    )
    return PopulationSpec(**data)
