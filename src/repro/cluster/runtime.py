"""Runtime assembly of a clustered experiment.

:class:`ClusterRuntime` is what the experiment runner instantiates when
``config.cluster`` is set: it derives the topology and placement plan
once, then hands the runner node-aware pieces — the broker placement,
the source-task → node mapping for input gateways, the driver node for
the producer, and (for external serving) the load-balanced replica
fleet. It also registers the per-node gauges.
"""

from __future__ import annotations

import typing

from repro.cluster.placement import PlacementPlan
from repro.cluster.serving import LoadBalancedFleet
from repro.cluster.topology import DRIVER_NODE, ClusterTopology
from repro.metrics.registry import NO_METRICS
from repro.serving.factory import channel_for, create_serving_tool

if typing.TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.config import ExperimentConfig


def total_parallelism(config: "ExperimentConfig") -> int:
    """Engine task slots a clustered config deploys across all nodes
    (``tasks_per_node × nodes``, with ``mp`` standing in per node when
    ``tasks_per_node`` is unset). Plain configs keep ``mp``."""
    if config.cluster is None:
        return config.mp
    per_node = (
        config.cluster.tasks_per_node
        if config.cluster.tasks_per_node is not None
        else config.mp
    )
    return per_node * config.cluster.nodes


class ClusterRuntime:
    """Node-aware wiring for one clustered run."""

    def __init__(
        self,
        env: typing.Any,
        config: "ExperimentConfig",
        serving_name: str,
        metrics: typing.Any = NO_METRICS,
    ) -> None:
        from repro.config import is_embedded

        assert config.cluster is not None
        self.env = env
        self.config = config
        self.serving_name = serving_name
        self.external_serving = not is_embedded(serving_name)
        self.topology = ClusterTopology.from_spec(config.cluster)
        self.placement = PlacementPlan.from_spec(
            config.cluster,
            base_tasks=config.mp,
            external_serving=self.external_serving,
            topology=self.topology,
        )
        self.driver_node = DRIVER_NODE
        self._register_metrics(metrics)

    def _register_metrics(self, registry: typing.Any) -> None:
        registry.gauge(
            "cluster_nodes",
            help="simulated machines in the cluster",
            fn=lambda: self.placement.node_count,
        )
        for name, counts in self.placement.counts_by_node().items():
            for component in ("brokers", "tasks", "replicas"):
                registry.gauge(
                    f"cluster_node_{component}",
                    help=f"{component} placed on this node",
                    labels={"node": name},
                    fn=lambda c=counts, k=component: c[k],
                )

    # -- pieces the runner plugs in --------------------------------------

    def node_of_task(self, slot: int) -> str:
        """Source-task → node mapping for :class:`BrokerInput`."""
        return self.placement.node_of_task(slot)

    def build_serving(
        self,
        model: str,
        gpu: bool,
        rng: typing.Any,
        server_workers: int | None,
        protocol: str | None,
    ) -> LoadBalancedFleet | None:
        """The load-balanced replica fleet, or None for embedded serving
        (embedded tools scale through the task count instead)."""
        if not self.external_serving:
            return None
        replicas = []
        for index in range(self.placement.total_replicas):
            node = self.placement.node_of_replica(index)
            replicas.append(
                create_serving_tool(
                    self.serving_name,
                    self.env,
                    model,
                    mp=self.config.mp,
                    gpu=gpu,
                    rng=rng,
                    server_workers=server_workers,
                    protocol=protocol,
                    link=self.topology.link_between(
                        self.placement.lb_node, node
                    ),
                )
            )
        return LoadBalancedFleet(
            self.env,
            replicas,
            replica_nodes=self.placement.replica_nodes,
            lb_node=self.placement.lb_node,
            # Scoring tasks spread over every node; the hop to the
            # balancer is the cluster's typical internal link.
            ingress_channel=channel_for(
                self.serving_name,
                protocol=protocol,
                link=self.topology.typical_internal_link(),
            ),
        )
