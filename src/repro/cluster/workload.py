"""Population-scale workload generation.

Instead of the paper's fixed input rate (``ir``), a
:class:`PopulationWorkload` derives the offered load from a simulated
*population*: millions of users, each with its own mean event rate drawn
from a heavy-tailed distribution (Zipf rank weights or seeded lognormal
draws), aggregated and modulated by a diurnal cycle plus optional
flash-crowd bursts. The result plugs into the existing open-loop
producer as a :class:`~repro.core.generator.RateSchedule`.

Everything is a pure function of ``(spec, seed)``:

- Zipf weights are closed-form rank weights ``k^-s`` — no RNG at all;
- lognormal draws come from a dedicated
  :class:`~repro.simul.rng.RandomStreams` stream, so the same seed
  yields bit-identical per-user rates in any process;
- diurnal and flash-crowd modulation are deterministic trigonometry.

:meth:`PopulationWorkload.compile` discretizes the aggregate rate curve
into piecewise-constant steps, and :meth:`schedule_bytes` renders those
steps canonically — the byte string property tests compare across runs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cluster.spec import PopulationSpec
from repro.core.generator import RateSchedule
from repro.simul.rng import RandomStreams


class PopulationSchedule(RateSchedule):
    """Aggregate offered rate of a :class:`PopulationWorkload`."""

    def __init__(self, workload: "PopulationWorkload") -> None:
        self._workload = workload

    def rate_at(self, time: float) -> float:
        return self._workload.rate_at(time)


class PopulationWorkload:
    """A deterministic population of users and its aggregate load curve."""

    def __init__(self, spec: PopulationSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = int(seed)
        self._rates: np.ndarray | None = None

    # -- per-user rates -------------------------------------------------

    def user_rates(self) -> np.ndarray:
        """Mean events/s per user, heaviest first, summing (up to float
        rounding) to ``spec.mean_rate``. Computed once and cached."""
        if self._rates is None:
            if self.spec.distribution == "zipf":
                weights = self._zipf_weights()
            else:
                weights = self._lognormal_weights()
            total = float(weights.sum())
            self._rates = weights * (self.spec.mean_rate / total)
        return self._rates

    def _zipf_weights(self) -> np.ndarray:
        ranks = np.arange(1, self.spec.users + 1, dtype=np.float64)
        return ranks ** (-self.spec.zipf_exponent)

    def _lognormal_weights(self) -> np.ndarray:
        rng = RandomStreams(self.seed).stream("cluster.population")
        draws = rng.lognormal(
            mean=0.0, sigma=self.spec.sigma, size=self.spec.users
        )
        return np.sort(draws)[::-1]

    @property
    def base_rate(self) -> float:
        """Aggregate mean offered rate (events/s) before modulation."""
        return self.spec.mean_rate

    def head_share(self, fraction: float = 0.01) -> float:
        """Share of total load carried by the heaviest ``fraction`` of
        users — the heavy-tail diagnostic the property tests assert on."""
        rates = self.user_rates()
        head = max(1, int(len(rates) * fraction))
        return float(rates[:head].sum() / rates.sum())

    # -- modulation -----------------------------------------------------

    def modulation(self, time: float) -> float:
        """Deterministic rate multiplier at ``time``: diurnal sinusoid
        (mean 1.0) times any active flash-crowd multiplier."""
        factor = 1.0 + self.spec.diurnal_amplitude * math.sin(
            2.0 * math.pi * time / self.spec.diurnal_period
        )
        for crowd in self.spec.flash_crowds:
            if crowd.active(time):
                factor *= crowd.multiplier
        return factor

    def rate_at(self, time: float) -> float:
        return self.base_rate * self.modulation(time)

    def schedule(self) -> PopulationSchedule:
        """The :class:`~repro.core.generator.RateSchedule` driving the
        open-loop producer."""
        return PopulationSchedule(self)

    # -- canonical renderings (for byte-identical tests) ----------------

    def compile(
        self, horizon: float, resolution: float = 1.0
    ) -> tuple[tuple[float, float], ...]:
        """Piecewise-constant ``(time, rate)`` steps sampling the curve
        every ``resolution`` seconds up to ``horizon``."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if resolution <= 0:
            raise ValueError(f"resolution must be positive, got {resolution}")
        steps = []
        time = 0.0
        while time < horizon:
            steps.append((time, self.rate_at(time)))
            time += resolution
        return tuple(steps)

    def schedule_bytes(self, horizon: float, resolution: float = 1.0) -> bytes:
        """Canonical byte rendering of :meth:`compile` plus the head of
        the per-user rate vector; equal seeds ⇒ equal bytes."""
        steps = self.compile(horizon, resolution)
        head = self.user_rates()[: min(1000, self.spec.users)]
        lines = [f"{t:.9e} {r:.9e}" for t, r in steps]
        lines.append("users " + " ".join(f"{r:.9e}" for r in head))
        return "\n".join(lines).encode("ascii")
