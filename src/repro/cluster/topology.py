"""Cluster topologies: named nodes, racks, and the links between them.

A :class:`ClusterTopology` models the machines of a simulated scale-out
deployment. Each node has a CPU-slot budget (a placement-time resource
cap) and belongs to a rack; any two endpoints resolve to one of three
:class:`~repro.netsim.link.Link` classes:

- **loopback** — same node: near-zero latency, memory-bus bandwidth;
- **rack** — same rack, different node: sub-LAN latency;
- **lan** — different racks: the paper's calibrated LAN (§4.2).

An external **driver** host (the workload generator of §3.1) sits
outside every rack and always pays the LAN link, exactly like the
paper's dedicated input-producer VM.
"""

from __future__ import annotations

import dataclasses

from repro import calibration as cal
from repro.cluster.spec import ClusterSpec
from repro.errors import ConfigError
from repro.netsim import Link

#: The workload generator's host, outside the cluster (paper §4.2: the
#: input producer runs on its own VM).
DRIVER_NODE = "driver"

#: Loopback hop: effectively free transfer for colocated components.
LOOPBACK_LATENCY = 0.000005  # 5 µs kernel round through localhost
LOOPBACK_BANDWIDTH = 8e9  # memory-bus class, bytes/s

#: Intra-rack hop: top-of-rack switch only, half the paper's LAN latency.
RACK_LATENCY = 0.5 * cal.NET_BASE_LATENCY


@dataclasses.dataclass(frozen=True)
class NodeSpec:
    """One simulated machine."""

    name: str
    cpus: int
    rack: int

    def __post_init__(self) -> None:
        if self.cpus < 1:
            raise ConfigError(f"node {self.name!r} needs >= 1 cpu")
        if self.rack < 0:
            raise ConfigError(f"node {self.name!r} has negative rack")


class ClusterTopology:
    """The machines of one simulated deployment and their links."""

    def __init__(
        self,
        nodes: list[NodeSpec] | tuple[NodeSpec, ...],
        rack_link: Link | None = None,
        lan_link: Link | None = None,
        loopback: Link | None = None,
    ) -> None:
        if not nodes:
            raise ConfigError("topology needs at least one node")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate node names in topology: {names}")
        if DRIVER_NODE in names:
            raise ConfigError(
                f"node name {DRIVER_NODE!r} is reserved for the workload driver"
            )
        self.nodes: tuple[NodeSpec, ...] = tuple(nodes)
        self._by_name = {node.name: node for node in self.nodes}
        self.loopback = loopback if loopback is not None else Link(
            base_latency=LOOPBACK_LATENCY, bandwidth=LOOPBACK_BANDWIDTH
        )
        self.rack_link = rack_link if rack_link is not None else Link(
            base_latency=RACK_LATENCY
        )
        self.lan_link = lan_link if lan_link is not None else Link()

    @classmethod
    def from_spec(cls, spec: ClusterSpec) -> "ClusterTopology":
        """Build the regular topology a :class:`ClusterSpec` describes:
        ``nodes`` identical machines named ``node-0..n-1``, spread
        round-robin over ``racks`` racks."""
        nodes = [
            NodeSpec(
                name=f"node-{index}",
                cpus=spec.cpus_per_node,
                rack=index % spec.racks,
            )
            for index in range(spec.nodes)
        ]
        bandwidth = (
            spec.bandwidth if spec.bandwidth is not None else cal.NET_BANDWIDTH
        )
        rack_latency = (
            spec.rack_latency if spec.rack_latency is not None else RACK_LATENCY
        )
        lan_latency = (
            spec.lan_latency
            if spec.lan_latency is not None
            else cal.NET_BASE_LATENCY
        )
        return cls(
            nodes,
            rack_link=Link(base_latency=rack_latency, bandwidth=bandwidth),
            lan_link=Link(base_latency=lan_latency, bandwidth=bandwidth),
        )

    # -- lookups -------------------------------------------------------

    @property
    def node_names(self) -> tuple[str, ...]:
        return tuple(node.name for node in self.nodes)

    @property
    def rack_count(self) -> int:
        return len({node.rack for node in self.nodes})

    def node(self, name: str) -> NodeSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigError(
                f"unknown node {name!r}; have {sorted(self._by_name)}"
            ) from None

    def link_between(self, a: str | None, b: str | None) -> Link:
        """The link one hop between ``a`` and ``b`` pays.

        Either endpoint may be :data:`DRIVER_NODE` (or ``None``, meaning
        an unattributed cluster-internal endpoint). The driver always
        pays the LAN; unattributed internal endpoints pay the
        *typical* internal hop so costs stay deterministic without
        per-call attribution."""
        if a == b and a is not None and a != DRIVER_NODE:
            return self.loopback
        if a == DRIVER_NODE or b == DRIVER_NODE:
            return self.lan_link
        if a is None or b is None:
            return self.typical_internal_link()
        if self.node(a).rack == self.node(b).rack:
            return self.rack_link
        return self.lan_link

    def typical_internal_link(self) -> Link:
        """The hop an unattributed in-cluster client pays: loopback on a
        one-node cluster, the rack link inside one rack, LAN otherwise."""
        if len(self.nodes) == 1:
            return self.loopback
        if self.rack_count == 1:
            return self.rack_link
        return self.lan_link
