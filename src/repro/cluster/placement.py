"""Deterministic placement of pipeline components onto cluster nodes.

A :class:`PlacementPlan` decides, before the simulation starts, which
node hosts each broker partition, each SPS task slot, and each
external-serving replica (plus the load balancer in front of them).
Everything is round-robin and derived purely from the
:class:`~repro.cluster.spec.ClusterSpec`, so the same configuration
always yields the same placement — a prerequisite for byte-identical
dual runs.

The plan also implements the link-resolution interface the node-aware
:class:`~repro.broker.kafka_cluster.BrokerCluster` consumes:
``broker_count`` / ``broker_index`` / ``node_of_partition`` /
``link_to_partition``.
"""

from __future__ import annotations

from repro.cluster.spec import ClusterSpec
from repro.cluster.topology import DRIVER_NODE, ClusterTopology
from repro.errors import ConfigError
from repro.netsim import Link


class PlacementPlan:
    """Where every pipeline component of one experiment runs.

    Layout per node: 1 broker, ``tasks_per_node`` SPS task slots, and
    (external serving only) ``replicas_per_node`` serving replicas. The
    load balancer lives on the first node; the workload driver sits
    outside the cluster on :data:`~repro.cluster.topology.DRIVER_NODE`.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        tasks_per_node: int,
        replicas_per_node: int = 0,
        cpus_per_task: int = 1,
        cpus_per_replica: int = 1,
    ) -> None:
        if tasks_per_node < 1:
            raise ConfigError(
                f"tasks_per_node must be >= 1, got {tasks_per_node}"
            )
        if replicas_per_node < 0:
            raise ConfigError(
                f"replicas_per_node must be >= 0, got {replicas_per_node}"
            )
        self.topology = topology
        self.tasks_per_node = tasks_per_node
        self.replicas_per_node = replicas_per_node
        names = topology.node_names
        #: One broker per node, broker i on node i.
        self.broker_nodes: tuple[str, ...] = names
        #: Task slot t runs on node t // tasks_per_node (slots fill a
        #: node before spilling to the next, like Flink slot groups).
        self.task_nodes: tuple[str, ...] = tuple(
            names[slot // tasks_per_node]
            for slot in range(tasks_per_node * len(names))
        )
        #: Replica r runs on node r // replicas_per_node.
        self.replica_nodes: tuple[str, ...] = tuple(
            names[replica // replicas_per_node]
            for replica in range(replicas_per_node * len(names))
        )
        #: The simulated load balancer fronting external serving.
        self.lb_node: str = names[0]
        self.driver_node: str = DRIVER_NODE
        self._check_capacity(cpus_per_task, cpus_per_replica)

    @classmethod
    def from_spec(
        cls,
        spec: ClusterSpec,
        base_tasks: int,
        external_serving: bool,
        topology: ClusterTopology | None = None,
    ) -> "PlacementPlan":
        """Build the plan a :class:`ClusterSpec` implies for one
        experiment: ``tasks_per_node`` explicit slots per node, or the
        experiment's own parallelism (``base_tasks``) replicated per
        node when unset."""
        if topology is None:
            topology = ClusterTopology.from_spec(spec)
        tasks = (
            spec.tasks_per_node
            if spec.tasks_per_node is not None
            else base_tasks
        )
        replicas = spec.replicas_per_node if external_serving else 0
        return cls(topology, tasks_per_node=tasks, replicas_per_node=replicas)

    def _check_capacity(self, cpus_per_task: int, cpus_per_replica: int) -> None:
        for node in self.topology.nodes:
            # 1 CPU for the colocated broker.
            demand = (
                1
                + self.tasks_per_node * cpus_per_task
                + self.replicas_per_node * cpus_per_replica
                + (1 if node.name == self.lb_node and self.replicas_per_node else 0)
            )
            if demand > node.cpus:
                raise ConfigError(
                    f"placement oversubscribes node {node.name!r}: needs "
                    f"{demand} CPU slots (1 broker + {self.tasks_per_node} "
                    f"tasks + {self.replicas_per_node} replicas"
                    f"{' + 1 lb' if node.name == self.lb_node and self.replicas_per_node else ''}"
                    f") but the node has {node.cpus}; raise cpus_per_node "
                    f"or lower tasks_per_node/replicas_per_node"
                )

    # -- totals --------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.topology.nodes)

    @property
    def total_tasks(self) -> int:
        """Engine parallelism across the whole cluster."""
        return len(self.task_nodes)

    @property
    def total_replicas(self) -> int:
        return len(self.replica_nodes)

    # -- broker interface (consumed by BrokerCluster) ------------------

    @property
    def broker_count(self) -> int:
        return len(self.broker_nodes)

    def broker_index(self, partition: int) -> int:
        return partition % self.broker_count

    def node_of_partition(self, partition: int) -> str:
        return self.broker_nodes[self.broker_index(partition)]

    def link_to_partition(self, client_node: str | None, partition: int) -> Link:
        return self.topology.link_between(
            client_node, self.node_of_partition(partition)
        )

    # -- component lookups ---------------------------------------------

    def node_of_task(self, slot: int) -> str:
        return self.task_nodes[slot % len(self.task_nodes)]

    def node_of_replica(self, replica: int) -> str:
        return self.replica_nodes[replica % len(self.replica_nodes)]

    def counts_by_node(self) -> dict[str, dict[str, int]]:
        """Per-node component counts (for gauges and the CLI report)."""
        out: dict[str, dict[str, int]] = {
            name: {"brokers": 0, "tasks": 0, "replicas": 0}
            for name in self.topology.node_names
        }
        for name in self.broker_nodes:
            out[name]["brokers"] += 1
        for name in self.task_nodes:
            out[name]["tasks"] += 1
        for name in self.replica_nodes:
            out[name]["replicas"] += 1
        return out

    def describe(self) -> str:
        """Human-readable placement summary for the CLI."""
        lines = []
        for name, counts in self.counts_by_node().items():
            rack = self.topology.node(name).rack
            parts = [f"{counts['brokers']} broker", f"{counts['tasks']} tasks"]
            if counts["replicas"]:
                parts.append(f"{counts['replicas']} replicas")
            if name == self.lb_node and self.total_replicas:
                parts.append("lb")
            lines.append(f"  {name} (rack {rack}): " + ", ".join(parts))
        return "\n".join(lines)
