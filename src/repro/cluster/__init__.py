"""Multi-node scale-out simulation: topologies, placement, population
workloads, load-balanced serving fleets, and sustainable-capacity search.

Only the pure-configuration types (:mod:`repro.cluster.spec`) are
imported eagerly: :mod:`repro.config` embeds them in
``ExperimentConfig``, so this package's runtime modules — which import
config-adjacent machinery — must load lazily to avoid a cycle (the same
layering :mod:`repro.faults` uses for its plan types).
"""

from __future__ import annotations

import typing

from repro.cluster.spec import (
    DISTRIBUTIONS,
    ClusterSpec,
    FlashCrowd,
    PopulationSpec,
    cluster_spec_from_dict,
    population_spec_from_dict,
)

__all__ = [
    "DISTRIBUTIONS",
    "ClusterSpec",
    "FlashCrowd",
    "PopulationSpec",
    "cluster_spec_from_dict",
    "population_spec_from_dict",
    # Lazily loaded (see __getattr__):
    "ClusterTopology",
    "NodeSpec",
    "DRIVER_NODE",
    "PlacementPlan",
    "PopulationWorkload",
    "PopulationSchedule",
    "LoadBalancedFleet",
    "ClusterRuntime",
    "SloPolicy",
    "CapacityPoint",
    "CapacityCurve",
    "search_capacity",
    "capacity_curve",
]

_LAZY = {
    "ClusterTopology": "repro.cluster.topology",
    "NodeSpec": "repro.cluster.topology",
    "DRIVER_NODE": "repro.cluster.topology",
    "PlacementPlan": "repro.cluster.placement",
    "PopulationWorkload": "repro.cluster.workload",
    "PopulationSchedule": "repro.cluster.workload",
    "LoadBalancedFleet": "repro.cluster.serving",
    "ClusterRuntime": "repro.cluster.runtime",
    "SloPolicy": "repro.cluster.capacity",
    "CapacityPoint": "repro.cluster.capacity",
    "CapacityCurve": "repro.cluster.capacity",
    "search_capacity": "repro.cluster.capacity",
    "capacity_curve": "repro.cluster.capacity",
}


def __getattr__(name: str) -> typing.Any:
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), name)
