"""Sustainable-capacity search: how much load a deployment can take.

Fixed-rate benchmarking answers "how does the system behave at rate X";
scale-out studies need the inverse question — "what is the highest rate
this deployment size sustains within an SLO?" (the methodology of
Theodolite / Henning & Hasselbring, also used by PDSP-Bench). The
driver here binary-searches that rate per configuration: geometric
doubling until the SLO first breaks, then bisection of the bracket to a
relative tolerance. Every probe runs through
:func:`repro.core.runner.run_replicated`, so worker processes and the
content-addressed result cache apply — re-searching a cached
configuration replays instantly.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.config import ExperimentConfig, WorkloadKind
from repro.core.runner import ExperimentResult, run_replicated
from repro.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class SloPolicy:
    """The predicate a probe must satisfy to count as *sustained*.

    Both criteria are evaluated on seed-averaged measurements: the p95
    end-to-end latency must stay under ``p95_latency``, and completed
    throughput must reach ``min_goodput`` of the offered rate (a
    pipeline that falls behind has unbounded queues even if the events
    it does finish are fast).
    """

    p95_latency: float = 1.0
    min_goodput: float = 0.9

    def __post_init__(self) -> None:
        if self.p95_latency <= 0:
            raise ConfigError(
                f"p95_latency must be positive, got {self.p95_latency}"
            )
        if not 0 < self.min_goodput <= 1:
            raise ConfigError(
                f"min_goodput must be in (0, 1], got {self.min_goodput}"
            )

    def satisfied(
        self, offered_rate: float, results: typing.Sequence[ExperimentResult]
    ) -> bool:
        throughput = sum(r.throughput for r in results) / len(results)
        p95s = [r.latency.p95 for r in results]
        if any(math.isnan(p) for p in p95s):
            return False  # no completions in the measured window
        p95 = sum(p95s) / len(p95s)
        return p95 <= self.p95_latency and throughput >= (
            self.min_goodput * offered_rate
        )


@dataclasses.dataclass(frozen=True)
class CapacityPoint:
    """One probe of the search."""

    rate: float
    sustained: bool
    throughput: float
    p95: float


@dataclasses.dataclass(frozen=True)
class CapacityResult:
    """Outcome of one configuration's search."""

    config: ExperimentConfig
    #: Highest probed rate that satisfied the SLO (0.0 when even the
    #: lowest probe failed).
    capacity: float
    probes: tuple[CapacityPoint, ...]

    @property
    def label(self) -> str:
        return self.config.label()


@dataclasses.dataclass(frozen=True)
class CapacityCurve:
    """Sustainable capacity as a function of deployment size."""

    points: tuple[tuple[int, CapacityResult], ...]

    @property
    def monotonic(self) -> bool:
        """Does capacity grow (weakly) with node count?"""
        capacities = [result.capacity for __, result in self.points]
        return all(b >= a for a, b in zip(capacities, capacities[1:]))


def _at_rate(config: ExperimentConfig, rate: float) -> ExperimentConfig:
    """The probe configuration offering ``rate`` events/s."""
    if config.population is not None:
        population = config.population
        scale = population.rate_scale * rate / population.mean_rate
        return config.replace(
            population=dataclasses.replace(population, rate_scale=scale)
        )
    return config.replace(ir=rate, workload=WorkloadKind.OPEN_LOOP)


def search_capacity(
    config: ExperimentConfig,
    slo: SloPolicy | None = None,
    seeds: typing.Sequence[int] = (0, 1),
    start_rate: float = 50.0,
    tolerance: float = 0.1,
    max_probes: int = 24,
    jobs: int = 1,
    cache: typing.Any = None,
    hook: typing.Callable[[CapacityPoint], None] | None = None,
    store: typing.Any = None,
) -> CapacityResult:
    """Binary-search the highest offered rate ``config`` sustains.

    Doubles from ``start_rate`` until the SLO breaks (establishing a
    ``[sustained, broken]`` bracket), then bisects the bracket until its
    relative width drops under ``tolerance``. ``hook`` observes each
    probe (progress printing). The returned capacity is the highest
    *actually probed and sustained* rate — a conservative lower bound.

    ``store`` (a :class:`repro.store.ResultStore`) records every probe
    run under one ``capacity`` sweep whose metadata carries the found
    capacity and the probe trajectory. Probe configs differ in offered
    rate, so each probe owns its own content-addressed slot.
    """
    if slo is None:
        slo = SloPolicy()
    if start_rate <= 0:
        raise ConfigError(f"start_rate must be positive, got {start_rate}")
    if not 0 < tolerance < 1:
        raise ConfigError(f"tolerance must be in (0, 1), got {tolerance}")
    if max_probes < 2:
        raise ConfigError(f"max_probes must be >= 2, got {max_probes}")

    probes: list[CapacityPoint] = []
    sweep_id = None
    if store is not None:
        sweep_id = store.record_sweep(
            "capacity", config.label(), {"status": "searching"}
        )

    def probe(rate: float) -> bool:
        results = run_replicated(
            _at_rate(config, rate), seeds=seeds, jobs=jobs, cache=cache
        )
        if store is not None:
            for seed, result in zip(seeds, results):
                store.record_result(
                    result, seed=seed, kind="capacity", sweep_id=sweep_id
                )
        point = CapacityPoint(
            rate=rate,
            sustained=slo.satisfied(rate, results),
            throughput=sum(r.throughput for r in results) / len(results),
            p95=sum(r.latency.p95 for r in results) / len(results),
        )
        probes.append(point)
        if hook is not None:
            hook(point)
        return point.sustained

    # Phase 1: geometric doubling until the SLO first breaks. A failing
    # first probe still brackets — bisection then searches downward.
    low, high = 0.0, None
    rate = start_rate
    while len(probes) < max_probes and high is None:
        if probe(rate):
            low = rate
            rate *= 2.0
        else:
            high = rate
    # Phase 2: bisect the [sustained, broken] bracket.
    if high is not None:
        while len(probes) < max_probes and (high - low) > tolerance * high:
            mid = (low + high) / 2.0
            if probe(mid):
                low = mid
            else:
                high = mid
    result = CapacityResult(config=config, capacity=low, probes=tuple(probes))
    if store is not None:
        store.update_sweep_meta(
            sweep_id,
            {
                "capacity": result.capacity,
                "probes": [dataclasses.asdict(p) for p in result.probes],
                "seeds": list(seeds),
                "slo": dataclasses.asdict(slo),
            },
        )
    return result


def capacity_curve(
    config: ExperimentConfig,
    node_counts: typing.Sequence[int],
    slo: SloPolicy | None = None,
    size_hook: typing.Callable[[int, CapacityResult], None] | None = None,
    **kwargs: typing.Any,
) -> CapacityCurve:
    """Run the capacity search across deployment sizes.

    ``config.cluster`` is re-shaped to each entry of ``node_counts``
    (racks clamped so they never exceed the node count); everything else
    is inherited. ``size_hook`` observes each completed size's result
    (progress printing); per-probe ``hook`` — and ``store``, which
    records one ``capacity`` sweep per deployment size — pass through to
    :func:`search_capacity`. The acceptance check of the scale-out
    reproduction is :attr:`CapacityCurve.monotonic` over 1 → 2 → 4 nodes.
    """
    if config.cluster is None:
        raise ConfigError("capacity_curve needs a clustered config")
    if not node_counts:
        raise ConfigError("need at least one node count")
    points = []
    for nodes in node_counts:
        spec = dataclasses.replace(
            config.cluster, nodes=nodes, racks=min(config.cluster.racks, nodes)
        )
        result = search_capacity(
            config.replace(cluster=spec), slo=slo, **kwargs
        )
        if size_hook is not None:
            size_hook(nodes, result)
        points.append((nodes, result))
    return CapacityCurve(points=tuple(points))
