"""Load-balanced external-serving fleets for scale-out simulations.

A :class:`LoadBalancedFleet` puts ``replicas_per_node × nodes`` external
serving replicas behind one simulated L4 load balancer: SPS scoring
tasks call the fleet like any :class:`~repro.serving.base.ServingTool`,
the balancer forwards each request round-robin to a replica, and each
hop pays its link — client → balancer over the cluster's typical
internal hop, balancer → replica over the link between the balancer's
node and the replica's node (baked into the replica's RPC channel by the
factory). Replica choice is a plain deterministic counter, so dual runs
stay byte-identical.

The balancer adds forwarding latency but is deliberately *not* a
serialized chokepoint (contrast Ray Serve's single HTTP proxy, Fig. 11):
capacity should scale with replicas so the sustainable-capacity search
can observe scale-out.
"""

from __future__ import annotations

import typing

from repro.errors import ConfigError
from repro.serving.base import ServingTool
from repro.serving.external.server import ExternalServingService
from repro.simul import Environment

#: Per-request forwarding cost of the simulated L4 balancer (connection
#: tracking + NAT rewrite; no payload inspection).
LB_FORWARD_COST = 0.00003  # 30 µs


class LoadBalancedFleet(ServingTool):
    """External serving replicas behind one load balancer."""

    kind = "external"

    def __init__(
        self,
        env: Environment,
        replicas: typing.Sequence[ExternalServingService],
        replica_nodes: typing.Sequence[str],
        lb_node: str,
        ingress_channel: typing.Any,
    ) -> None:
        if not replicas:
            raise ConfigError("a serving fleet needs at least one replica")
        if len(replicas) != len(replica_nodes):
            raise ConfigError(
                f"{len(replicas)} replicas but {len(replica_nodes)} nodes"
            )
        # Set before super().__init__: the tracer property below touches
        # _replicas and the base constructor assigns tracer/metrics.
        self._replicas = tuple(replicas)
        self.replica_nodes = tuple(replica_nodes)
        self.lb_node = lb_node
        #: Same channel class as the replicas but carrying the client →
        #: balancer link; only its transfer costs are used (the replica
        #: call charges the client CPU exactly once).
        self.ingress_channel = ingress_channel
        super().__init__(env, replicas[0].costs)
        self._next_replica = 0

    # -- tracer propagation ----------------------------------------------

    @property
    def tracer(self) -> typing.Any:
        return self._tracer

    @tracer.setter
    def tracer(self, value: typing.Any) -> None:
        # The runner installs the tracer by attribute assignment; fan it
        # out so replica-internal spans (queueing, inference) attach too.
        self._tracer = value
        for replica in self._replicas:
            replica.tracer = value

    # -- aggregate views -------------------------------------------------

    @property
    def replicas(self) -> tuple[ExternalServingService, ...]:
        return self._replicas

    @property
    def replica_count(self) -> int:
        return len(self._replicas)

    def node_requests(self, node: str) -> int:
        """Requests served by replicas placed on ``node``."""
        return sum(
            replica.requests_served
            for replica, name in zip(self._replicas, self.replica_nodes)
            if name == node
        )

    def _register_metrics(self, registry: typing.Any) -> None:
        registry.gauge(
            "serving_fleet_replicas",
            help="external serving replicas behind the load balancer",
            fn=lambda: self.replica_count,
        )
        for node in dict.fromkeys(self.replica_nodes):
            registry.counter(
                "serving_node_requests",
                help="scoring calls served by replicas on this node",
                labels={"node": node},
                fn=lambda n=node: self.node_requests(n),
            )
            registry.gauge(
                "serving_node_queue_depth",
                help="requests queued at this node's replicas",
                labels={"node": node},
                fn=lambda n=node: sum(
                    replica._queue.level
                    for replica, name in zip(self._replicas, self.replica_nodes)
                    if name == n
                ),
            )

    # -- ServingTool interface -------------------------------------------

    def load(self) -> typing.Generator:
        """Bring every replica up concurrently (real fleets roll out in
        parallel); warm-up ends when the slowest replica is ready."""
        processes = [
            self.env.process(replica.load()) for replica in self._replicas
        ]
        yield self.env.all_of(processes)
        self._loaded = True

    def _pick_replica(self) -> int:
        index = self._next_replica
        self._next_replica = (index + 1) % len(self._replicas)
        return index

    def score(
        self, bsz: int, vectorized: bool = False, ctx: typing.Any = None
    ) -> typing.Generator:
        self._require_loaded()
        start = self.env.now
        model = self.costs.model
        ingress = self.ingress_channel.round_trip_costs(
            request_values=bsz * model.input_values,
            response_values=bsz * model.output_values,
        )
        # Client → balancer transfer (client CPU is charged inside the
        # replica call, exactly once).
        span = self.tracer.begin(ctx, "lb.ingress", node=self.lb_node)
        yield self.env.timeout(ingress.request_transfer + LB_FORWARD_COST)
        self.tracer.end(span)
        index = self._pick_replica()
        span = self.tracer.begin(
            ctx, "lb.forward", node=self.replica_nodes[index], replica=index
        )
        result = yield from self._replicas[index].score(
            bsz, vectorized=vectorized, ctx=ctx
        )
        self.tracer.end(span)
        # Balancer → client response transfer.
        span = self.tracer.begin(ctx, "lb.egress", node=self.lb_node)
        yield self.env.timeout(ingress.response_transfer)
        self.tracer.end(span)
        self.requests_served += 1
        return type(result)(
            points=result.points,
            output_values=result.output_values,
            service_time=self.env.now - start,
        )
