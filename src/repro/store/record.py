"""Turning run results into database rows (and back).

The store persists the *full* result record (the same dict the matrix
engine and content-addressed cache round-trip through
:mod:`repro.core.results_io`) as canonical JSON, plus a denormalized set
of aggregate columns for querying. :func:`run_row_from_record` computes
those columns; :func:`record_from_row` recovers the exact record — the
store→load round-trip is lossless by construction because the columns
are derived and the JSON is authoritative.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import typing

from repro.config import EMBEDDED_TOOLS


def canonical_json(value: typing.Any) -> str:
    """Deterministic JSON: sorted keys, compact separators."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def slot_id_of(config_dict: dict, seed: int | None) -> str:
    """Content address of one (canonical config, run seed) experiment.

    Matches :meth:`repro.matrix.cache.ResultCache.slot_id`: the run seed
    substitutes the config's own ``seed`` field, so a stored run and a
    cache slot for the same experiment share an identity — ``crayfish
    regress`` can find the baseline for exactly the experiment it just
    ran.
    """
    canonical = dict(config_dict)
    if seed is not None:
        canonical["seed"] = seed
    return hashlib.sha256(canonical_json(canonical).encode()).hexdigest()


def parse_label(label: str) -> tuple[str, str, str, int]:
    """Split a config label into (sps, serving, model, nodes).

    Inverse of :meth:`repro.config.ExperimentConfig.label`, accepting
    the ``-gpu`` serving suffix and the ``@Nn`` cluster suffix. Used by
    importers that only have the human-readable label.
    """
    nodes = 1
    body = label
    if "@" in body:
        body, __, suffix = body.rpartition("@")
        if not suffix.endswith("n"):
            raise ValueError(f"malformed cluster suffix in label {label!r}")
        nodes = int(suffix[:-1])
    parts = body.split("/")
    if len(parts) != 3:
        raise ValueError(f"malformed config label {label!r}")
    sps, serving, model = parts
    if serving.endswith("-gpu"):
        serving = serving[: -len("-gpu")]
    return sps, serving, model, nodes


def _nodes_of(config_dict: dict) -> int:
    cluster = config_dict.get("cluster")
    if isinstance(cluster, dict):
        return int(cluster.get("nodes", 1))
    return 1


def _engine_workers(config_dict: dict) -> int:
    """Task slots the engine deploys for this config."""
    cluster = config_dict.get("cluster")
    mp = int(config_dict.get("mp", 1))
    if isinstance(cluster, dict):
        per_node = cluster.get("tasks_per_node") or mp
        return int(per_node) * int(cluster.get("nodes", 1))
    return mp


def _serving_workers(config_dict: dict) -> int:
    """Worker processes on the serving side (0 for embedded tools)."""
    serving = config_dict.get("serving")
    if serving in EMBEDDED_TOOLS:
        return 0
    cluster = config_dict.get("cluster")
    if isinstance(cluster, dict):
        return int(cluster.get("replicas_per_node", 1)) * int(
            cluster.get("nodes", 1)
        )
    workers = config_dict.get("server_workers")
    if workers is None:
        autoscale = config_dict.get("autoscale")
        if autoscale:
            return int(autoscale[1])  # budget for the scaled-out maximum
        workers = config_dict.get("mp", 1)
    return int(workers)


def cost_proxy(config_dict: dict, record: dict) -> float | None:
    """Worker-seconds per 1000 completed events — the cost stand-in.

    A deterministic function of the configuration and the run's
    completion count: (engine task slots + serving workers) x simulated
    duration, normalized per 1000 completed events. It is a *proxy* —
    no dollars, no per-instance pricing — but it orders configurations
    the way "On the Cost of Model-Serving Frameworks" orders real
    deployments: more replicas must buy proportionate throughput or the
    frontier exposes them. None when the run completed nothing.
    """
    completed = record.get("completed") or 0
    duration = float(config_dict.get("duration") or 0.0)
    if completed <= 0 or duration <= 0:
        return None
    workers = _engine_workers(config_dict) + _serving_workers(config_dict)
    return workers * duration / completed * 1000.0


def _clean(value: float | None) -> float | None:
    """NaN -> None for numeric columns (SQLite has no NaN)."""
    if value is None:
        return None
    value = float(value)
    return None if math.isnan(value) else value


@dataclasses.dataclass(frozen=True)
class RunRow:
    """One run, denormalized for the ``runs`` table.

    ``record`` is the authoritative full result record; every other
    field is derived from it (plus the recording context) and exists for
    SQL-side filtering and aggregation.
    """

    slot_id: str
    kind: str
    source: str
    label: str
    sps: str
    serving: str
    model: str
    nodes: int
    seed: int | None
    fingerprint: str
    git_rev: str | None
    recorded_at: float
    throughput: float | None
    latency_mean: float | None
    latency_p50: float | None
    latency_p95: float | None
    latency_p99: float | None
    latency_p999: float | None
    completed: int | None
    produced: int | None
    duplicates: int | None
    inference_requests: int | None
    measure_start: float | None
    measure_end: float | None
    cost_proxy: float | None
    record: dict


def run_row_from_record(
    record: dict,
    kind: str = "run",
    source: str = "live",
    fingerprint: str = "",
    git_rev: str | None = None,
    recorded_at: float = 0.0,
    label: str | None = None,
) -> RunRow:
    """Derive the denormalized row for one full result record.

    ``record`` must carry a canonical ``config`` block (as written by
    :func:`repro.core.results_io.result_record`); ``seed`` is read from
    the record when present, else from the config.
    """
    config = record["config"]
    seed = record.get("seed", config.get("seed"))
    latency = record.get("latency") or {}
    if label is None:
        suffix = "-gpu" if config.get("gpu") else ""
        nodes = _nodes_of(config)
        cluster_suffix = f"@{nodes}n" if config.get("cluster") else ""
        label = (
            f"{config['sps']}/{config['serving']}{suffix}/"
            f"{config['model']}{cluster_suffix}"
        )
    return RunRow(
        slot_id=slot_id_of(config, seed),
        kind=kind,
        source=source,
        label=label,
        sps=config["sps"],
        serving=config["serving"],
        model=config["model"],
        nodes=_nodes_of(config),
        seed=seed,
        fingerprint=fingerprint,
        git_rev=git_rev,
        recorded_at=recorded_at,
        throughput=_clean(record.get("throughput")),
        latency_mean=_clean(latency.get("mean")),
        latency_p50=_clean(latency.get("p50")),
        latency_p95=_clean(latency.get("p95")),
        latency_p99=_clean(latency.get("p99")),
        latency_p999=_clean(latency.get("p999")),
        completed=record.get("completed"),
        produced=record.get("produced"),
        duplicates=record.get("duplicates"),
        inference_requests=record.get("inference_requests"),
        measure_start=_clean(record.get("measure_start")),
        measure_end=_clean(record.get("measure_end")),
        cost_proxy=cost_proxy(config, record),
        record=record,
    )


def record_from_row(row: typing.Mapping) -> dict:
    """The full result record a stored row was built from (lossless)."""
    return json.loads(row["record_json"])


#: Metrics ``crayfish trend`` / ``crayfish regress`` can select, with
#: their improvement direction (+1: higher is better, -1: lower is
#: better).
METRIC_DIRECTIONS: dict[str, int] = {
    "throughput": +1,
    "latency_mean": -1,
    "latency_p50": -1,
    "latency_p95": -1,
    "latency_p99": -1,
    "latency_p999": -1,
    "completed": +1,
    "cost_proxy": -1,
}
