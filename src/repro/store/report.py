"""Text rendering for the results-database queries.

Reuses the repo's table formatter and the metrics dashboard's sparkline
renderer so `crayfish history`/`trend`/`regress`/`pareto` read like the
rest of the CLI.
"""

from __future__ import annotations

import datetime

from repro.core.report import format_table
from repro.metrics.dashboard import sparkline
from repro.store.queries import (
    ParetoPoint,
    RegressionVerdict,
    TrendSeries,
)


def _stamp(recorded_at: float | None) -> str:
    if recorded_at is None:
        return "-"
    stamp = datetime.datetime.fromtimestamp(
        recorded_at, tz=datetime.timezone.utc
    )
    return stamp.strftime("%Y-%m-%d %H:%M")


def _num(value: float | None, spec: str = ".1f") -> str:
    return "-" if value is None else format(value, spec)


def _ms(value: float | None) -> str:
    return "-" if value is None else f"{value * 1e3:.2f}"


def format_history(rows: list[dict], title: str = "run history") -> str:
    """One line per stored run, newest first."""
    if not rows:
        return "(no stored runs match)"
    table_rows = []
    for row in rows:
        table_rows.append(
            (
                row["id"],
                _stamp(row["recorded_at"]),
                row["git_rev"] or "-",
                row["kind"],
                row["label"],
                row["seed"] if row["seed"] is not None else "-",
                _num(row["throughput"]),
                _ms(row["latency_mean"]),
                _ms(row["latency_p95"]),
                row["completed"] if row["completed"] is not None else "-",
                _num(row["cost_proxy"], ".2f"),
            )
        )
    return format_table(
        [
            "id",
            "recorded (UTC)",
            "git rev",
            "kind",
            "config",
            "seed",
            "events/s",
            "mean ms",
            "p95 ms",
            "completed",
            "cost",
        ],
        table_rows,
        title=title,
    )


def format_trends(
    trends: list[TrendSeries], width: int = 32, title: str = "trend"
) -> str:
    """Sparkline per config slot: the metric across recordings."""
    if not trends:
        return "(no slot has enough recordings to trend)"
    lines = [title]
    name_width = max(
        len(f"{t.label} seed={t.seed}") for t in trends
    )
    for series in trends:
        values = series.values
        first = values[0] if values else None
        last = values[-1] if values else None
        revs = [rev for __, rev, __v in series.points if rev]
        span = (
            f"{revs[0]}..{revs[-1]}"
            if revs and revs[0] != revs[-1]
            else (revs[0] if revs else "-")
        )
        name = f"{series.label} seed={series.seed}".ljust(name_width)
        lines.append(
            f"{name} {sparkline(values, width)} "
            f"{_num(first, '.4g')} -> {_num(last, '.4g')} "
            f"({len(series.points)} runs, {span})"
        )
    return "\n".join(lines)


def format_regression(verdict: RegressionVerdict) -> str:
    """The regress gate's report: per-metric deltas and the verdict."""
    if not verdict.has_baseline:
        return (
            f"{verdict.label}: no stored baseline for this configuration "
            f"slot ({verdict.slot_id[:12]}); recording this run as the "
            "first baseline"
        )
    rows = []
    for delta in verdict.deltas:
        gain = delta.relative_gain * 100
        if gain == 0:
            gain = 0.0  # normalize -0.0 so the sign prefix reads right
        direction = "+" if gain >= 0 else ""
        rows.append(
            (
                delta.metric,
                f"{delta.baseline:.6g}",
                f"{delta.current:.6g}",
                f"{direction}{gain:.1f}%",
                f"{delta.threshold * 100:.0f}%",
                "REGRESSED" if delta.regressed else "ok",
            )
        )
    header = (
        f"baseline: run {verdict.baseline_run_id} "
        f"@ {verdict.baseline_git_rev or 'unknown rev'} "
        f"({_stamp(verdict.baseline_recorded_at)} UTC)"
    )
    table = format_table(
        ["metric", "baseline", "current", "change", "allowed", "verdict"],
        rows,
        title=f"{verdict.label}: regression check",
    )
    return f"{table}\n{header}"


def format_pareto(
    points: list[ParetoPoint], title: str = "latency/throughput/cost frontier"
) -> str:
    """Frontier table: frontier members first, dominated points after."""
    if not points:
        return "(no stored run carries all three axes yet)"
    rows = [
        (
            "*" if point.on_frontier else "",
            point.label,
            point.seed if point.seed is not None else "-",
            _ms(point.latency),
            f"{point.throughput:.1f}",
            f"{point.cost:.2f}",
        )
        for point in points
    ]
    frontier = sum(1 for p in points if p.on_frontier)
    table = format_table(
        ["front", "config", "seed", "latency ms", "events/s", "cost/1k"],
        rows,
        title=title,
    )
    return (
        f"{table}\n{frontier} of {len(points)} stored configuration(s) "
        "on the Pareto frontier (cost = worker-seconds per 1000 events)"
    )
